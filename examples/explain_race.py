#!/usr/bin/env python
"""Explain a race with a happens-before graph, then show its flakiness.

Two things the FastTrack report alone doesn't tell you:

1. *Why* is this a race? The happens-before graph answers with the
   missing synchronization chain (or shows the chain that orders a
   non-race).
2. *Would another run have caught it?* Happens-before detection is
   schedule-dependent (paper §7.3); the schedule explorer quantifies the
   detection rate across seeds.

    python examples/explain_race.py
"""

from repro.analyses.generic_tool import FullInstrumentationTool
from repro.analyses.hbgraph import HBGraph, explain_pair
from repro.analyses.record import FullTraceRecorder, TraceRecorder
from repro.core.system import AikidoSystem
from repro.dbr.engine import DBREngine
from repro.guestos.kernel import Kernel
from repro.harness.explore import explore, render_exploration
from repro.workloads import micro


def record_full(program, seed=3, quantum=5):
    """Ground-truth trace: every access, not just shared-page ones."""
    kernel = Kernel(seed=seed, quantum=quantum, jitter=0.0)
    kernel.create_process(program)
    engine = DBREngine(kernel)
    recorder = FullTraceRecorder()
    engine.attach_tool(FullInstrumentationTool(kernel, recorder))
    kernel.run()
    return recorder.trace


def main():
    # 1. Record a ground-truth execution of the racy-flag program.
    program, info = micro.racy_flag()
    trace = record_full(program)

    graph = HBGraph(trace)
    block = info["flag"] // 8
    pairs = graph.racing_pairs(block)
    print("=== happens-before analysis of the flag word ===")
    if pairs:
        for a, b in pairs[:3]:
            print(" ", explain_pair(graph, a, b))
    else:
        print("  this schedule ordered the accesses — see below why that")
        print("  doesn't mean the program is race free")

    # Contrast with a properly locked program.
    program2, info2 = micro.locked_counter(2, 5)
    graph2 = HBGraph(record_full(program2))
    nodes = graph2.accesses_to_block(info2["counter"] // 8)
    cross = [(a, b) for a in nodes for b in nodes
             if a < b and graph2.trace[a][1] != graph2.trace[b][1]]
    if cross:
        print("\n=== the locked counter, for contrast ===")
        print(" ", explain_pair(graph2, *cross[0]))

    # 2. Schedule exploration: how often is the flag race even visible?
    print("\n=== schedule exploration (racy_flag, 10 seeds x 2 quanta) ===")
    result = explore(lambda: micro.racy_flag()[0], seeds=range(10),
                     quanta=(3, 20))
    print(render_exploration(result))
    print("\nLesson: a single clean run proves nothing; the §6/§7.3")
    print("discussion of schedule dependence is about exactly this.")


if __name__ == "__main__":
    main()
