#!/usr/bin/env python
"""Quickstart: find a data race with Aikido-accelerated FastTrack.

Builds a small two-thread program with an unsynchronized counter, runs it
under the full Aikido stack (AikidoVM hypervisor -> guest kernel -> DBR
engine -> AikidoSD -> FastTrack), and prints the detected races plus the
sharing-detector statistics that explain *why* this was cheap: only the
shared page's accesses were instrumented.

    python examples/quickstart.py
"""

from repro.analyses.fasttrack.aikido_tool import AikidoFastTrack
from repro.core.system import AikidoSystem
from repro.machine.asm import ProgramBuilder


def build_racy_program():
    """Two threads increment a shared counter; only one uses the lock."""
    b = ProgramBuilder("quickstart")
    data = b.segment("shared", 64)

    b.label("main")
    b.li(3, 0)
    b.spawn(5, "careless", arg_reg=3)   # child: no lock
    b.li(4, data)
    with b.loop(counter=2, count=30):   # main: properly locked
        b.lock(lock_id=1)
        b.load(6, base=4, disp=0)
        b.add(6, 6, imm=1)
        b.store(6, base=4, disp=0)
        b.unlock(lock_id=1)
    b.join(5)
    b.halt()

    b.label("careless")
    b.li(4, data)
    with b.loop(counter=2, count=30):   # no lock: races with main
        b.load(6, base=4, disp=0)
        b.add(6, 6, imm=1)
        b.store(6, base=4, disp=0)
    b.halt()
    return b.build(), data


def main():
    program, data = build_racy_program()
    system = AikidoSystem(program, lambda kernel: AikidoFastTrack(kernel),
                          seed=7, quantum=11, jitter=0.2)
    system.run()

    print("=== Races ===")
    for race in system.analysis.races:
        print(" ", race.describe())
    if not system.analysis.races:
        print("  none found (try another seed)")

    print("\n=== Why it was cheap (AikidoSD statistics) ===")
    stats = system.stats
    run = system.run_stats
    print(f"  memory accesses executed:       {run.memory_refs}")
    print(f"  accesses to shared pages:       {stats.shared_accesses}")
    print(f"  instructions instrumented:      "
          f"{stats.instructions_instrumented} (static)")
    print(f"  pages private / shared:         "
          f"{system.sd.pagestate.private_pages} / "
          f"{system.sd.pagestate.shared_pages}")
    print(f"  faults delivered by AikidoVM:   "
          f"{system.hypervisor_stats.segfaults_delivered}")
    print(f"  final counter value:            "
          f"{system.process.vm.read_word(data)} (60 if no update was lost)")


if __name__ == "__main__":
    main()
