#!/usr/bin/env python
"""Watch AikidoSD decide what to instrument, instruction by instruction.

Runs a benchmark under Aikido and prints the disassembly of its worker
code with the instructions that ended up instrumented marked with ``*``
— making the paper's core effect visible: only the instructions that
actually touched shared pages carry instrumentation; everything else
still runs native.

    python examples/inspect_instrumentation.py [benchmark]
"""

import sys

from repro.analyses.fasttrack.aikido_tool import AikidoFastTrack
from repro.core.system import AikidoSystem
from repro.machine.disasm import disassemble
from repro.workloads.parsec import benchmark_names, build_benchmark


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "blackscholes"
    if name not in benchmark_names():
        raise SystemExit(f"unknown benchmark {name!r}; "
                         f"choose from {benchmark_names()}")
    program = build_benchmark(name, threads=4, scale=0.4)
    system = AikidoSystem(program, lambda k: AikidoFastTrack(k), seed=1,
                          quantum=150)
    system.run()

    instrumented = system.sd.instrumented
    total_mem = program.static_memory_instruction_count()
    print(f"=== {name}: {len(instrumented)} of {total_mem} static memory "
          "instructions instrumented (marked *) ===\n")
    print(disassemble(program, highlight_uids=instrumented))
    stats = system.stats
    print(f"\nDynamic: {system.run_stats.memory_refs} accesses, "
          f"{stats.shared_accesses} through instrumentation, "
          f"{stats.private_fastpath} took the Fig. 4 private fast path, "
          f"{stats.rejit_flushes} blocks re-JITed.")


if __name__ == "__main__":
    main()
