#!/usr/bin/env python
"""A custom shared-data analysis: a page-sharing profiler.

Aikido is a *framework*, not just a race detector (paper §1: "a new
system and framework that enables the development of efficient and
transparent analyses that operate on shared data"). This example plugs a
different analysis into AikidoSD: a profiler that attributes shared-page
traffic to instructions and pages — the kind of tool a developer would
use to find false sharing or hot communication channels.

    python examples/sharing_profile.py [benchmark]
"""

import sys
from collections import Counter

from repro.core.analysis import SharedDataAnalysis
from repro.core.system import AikidoSystem
from repro.machine.paging import PAGE_SHIFT
from repro.workloads.parsec import benchmark_names, build_benchmark


class SharingProfiler(SharedDataAnalysis):
    """Counts shared-page traffic by page, by thread pair, by instruction."""

    name = "sharing-profiler"

    def __init__(self):
        self.page_traffic = Counter()       # vpn -> accesses
        self.page_writers = {}              # vpn -> set of tids
        self.page_readers = {}              # vpn -> set of tids
        self.instr_traffic = Counter()      # instruction uid -> accesses
        self.total = 0

    def on_shared_access(self, thread, instr, addr, is_write):
        vpn = addr >> PAGE_SHIFT
        self.total += 1
        self.page_traffic[vpn] += 1
        self.instr_traffic[instr.uid] += 1
        bucket = self.page_writers if is_write else self.page_readers
        bucket.setdefault(vpn, set()).add(thread.tid)

    def classify(self, vpn):
        writers = self.page_writers.get(vpn, set())
        readers = self.page_readers.get(vpn, set())
        if len(writers) > 1:
            return "write-shared (communication or contention)"
        if writers and readers - writers:
            return "producer/consumer"
        return "read-shared (replicable)"


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "streamcluster"
    if name not in benchmark_names():
        raise SystemExit(f"unknown benchmark {name!r}; "
                         f"choose from {benchmark_names()}")
    program = build_benchmark(name, threads=4, scale=0.5)
    profiler = SharingProfiler()
    system = AikidoSystem(program, profiler, seed=1, quantum=150)
    system.run()

    print(f"=== Sharing profile: {name} ===")
    print(f"total memory accesses:   {system.run_stats.memory_refs}")
    shared_pct = 100 * profiler.total / max(1, system.run_stats.memory_refs)
    print(f"shared-page accesses:    {profiler.total} ({shared_pct:.1f}%)")
    print(f"shared pages:            {system.sd.pagestate.shared_pages} "
          f"of {len(system.sd.pagestate)} touched")
    print("\nhottest shared pages:")
    for vpn, count in profiler.page_traffic.most_common(5):
        print(f"  page {vpn:#07x}: {count:6d} accesses — "
              f"{profiler.classify(vpn)}")
    print("\nhottest communicating instructions (static):")
    for uid, count in profiler.instr_traffic.most_common(5):
        instr = program.instruction_at(uid)
        print(f"  uid {uid:4d} ({instr.op.name:>6s}): {count:6d} "
              "shared accesses")


if __name__ == "__main__":
    main()
