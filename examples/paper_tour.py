#!/usr/bin/env python
"""A guided tour of the paper, one live demonstration per mechanism.

Walks through §3's machinery in order, printing what each layer does on
a tiny program. Think of it as the executable version of the paper's
design section (and of docs/internals.md).

    python examples/paper_tour.py
"""

from repro.analyses.fasttrack.aikido_tool import AikidoFastTrack
from repro.core.sharing import SharingDetector
from repro.dbr.engine import DBREngine
from repro.guestos.kernel import Kernel
from repro.guestos import syscalls
from repro.hypervisor.aikidovm import AikidoVM
from repro.machine.asm import ProgramBuilder
from repro.machine.paging import PAGE_SHIFT


def tour_program():
    b = ProgramBuilder("tour")
    shared = b.segment("shared", 64)
    private = b.segment("private", 64, initial={0: 5, 8: 6})
    b.label("main")
    b.li(1, private)
    b.li(2, 2)
    b.syscall(syscalls.SYS_WRITE)  # guest kernel trips over protection
    b.li(4, private)
    b.li(6, 1)
    b.store(6, base=4, disp=0)     # userspace touch triggers the restore
    b.li(3, 0)
    b.spawn(5, "worker", arg_reg=3)
    b.li(4, shared)
    with b.loop(counter=2, count=6):
        b.load(6, base=4, disp=0)
        b.add(6, 6, imm=1)
        b.store(6, base=4, disp=0)  # unsynchronized: races with worker
    b.join(5)
    b.halt()
    b.label("worker")
    b.li(4, shared)
    with b.loop(counter=2, count=6):
        b.load(6, base=4, disp=0)
        b.add(6, 6, imm=1)
        b.store(6, base=4, disp=0)
    b.halt()
    return b.build(), shared, private


def main():
    program, shared, private = tour_program()
    hypervisor = AikidoVM()
    kernel = Kernel(platform=hypervisor, seed=11, quantum=4, jitter=0.2)
    kernel.create_process(program)
    engine = DBREngine(kernel)
    analysis = AikidoFastTrack(kernel)
    sd = SharingDetector(kernel, hypervisor, analysis)
    sd.install(engine)

    print("§3.2.4 per-thread page protection")
    print(f"  {hypervisor.stats.protection_updates} protection-table "
          "entries installed before the first instruction ran")
    print(f"  fault landing pads at {sd.lib.read_fault_page:#x} (read) / "
          f"{sd.lib.write_fault_page:#x} (write), mailbox at "
          f"{sd.lib.mailbox:#x}")

    kernel.run()

    print("\n§3.2.5 fake-fault delivery")
    print(f"  {hypervisor.stats.segfaults_delivered} Aikido faults "
          "delivered through the guest kernel's SIGSEGV path")
    print(f"  {hypervisor.stats.vmexits} VM exits total, "
          f"{hypervisor.stats.tlb_invalidations} TLB shootdowns")

    print("\n§3.2.6 guest-kernel emulation")
    print(f"  {hypervisor.stats.emulated_kernel_accesses} kernel accesses "
          "emulated on Aikido-protected pages, "
          f"{hypervisor.stats.temp_unprotect_restores} restore(s) on the "
          "next userspace touch")

    print("\n§3.3.2 sharing detection")
    print(f"  pages: {sd.pagestate.private_pages} stayed private, "
          f"{sd.pagestate.shared_pages} became shared")
    print(f"  page {shared >> PAGE_SHIFT:#x} (the contended counter): "
          f"{sd.pagestate.state(shared >> PAGE_SHIFT)[0].value}")
    print(f"  page {private >> PAGE_SHIFT:#x} (main's scratch): "
          f"{sd.pagestate.state(private >> PAGE_SHIFT)[0].value}")

    print("\n§3.3.2 re-JIT instrumentation")
    print(f"  {sd.stats.instructions_instrumented} static instructions "
          f"instrumented (of {program.static_memory_instruction_count()} "
          "memory instructions), "
          f"{sd.stats.rejit_flushes} code-cache flushes")

    print("\n§3.3.3 mirror pages")
    mirror = sd.mirror.mirror_address(shared)
    print(f"  {shared:#x} is aliased at {mirror:#x}; both read "
          f"{kernel.process.vm.read_word(shared)} (same physical frame)")

    print("\n§4 the accelerated FastTrack")
    print(f"  observed {sd.stats.shared_accesses} shared accesses of "
          f"{engine.stats.memory_refs} total memory references")
    for race in analysis.races[:3]:
        print("  " + race.describe_with_program(program).replace(
            "\n", "\n  "))
    if not analysis.races:
        print("  (no race on this schedule — try another seed)")

    print("\n§5-ish cycle accounting")
    top = sorted(kernel.counter.snapshot().items(),
                 key=lambda kv: -kv[1])[:5]
    for category, cycles in top:
        print(f"  {category:>16s}: {cycles:9d} cycles")


if __name__ == "__main__":
    main()
