#!/usr/bin/env python
"""Atomicity checking under Aikido (the paper's *other* analysis class).

The paper's introduction motivates Aikido with race detectors *and*
atomicity checkers [AVIO, Atomizer, Velodrome]. This example runs the
AVIO access-interleaving-invariant checker on a bank-account program with
a classic atomicity bug: the deposit's read-modify-write runs inside a
critical section, but an audit thread writes the balance without taking
the lock — the deposit's two accesses can observe the interleaved write,
which is unserializable (AVIO case R-W-W / W-W-R).

    python examples/atomicity_check.py
"""

from repro.analyses.atomicity import AikidoAtomicity
from repro.core.system import AikidoSystem
from repro.guestos import syscalls
from repro.machine.asm import ProgramBuilder


def bank_program(buggy: bool):
    b = ProgramBuilder("bank")
    account = b.segment("account", 64)
    b.label("main")
    b.li(4, account)
    b.li(5, 1000)
    b.store(5, base=4, disp=0)          # balance = 1000
    b.li(3, 0)
    b.spawn(6, "auditor", arg_reg=3)
    with b.loop(counter=2, count=15):   # depositor
        b.lock(lock_id=1)
        b.load(7, base=4, disp=0)       # read balance
        b.syscall(syscalls.SYS_YIELD)   # widen the window
        b.add(7, 7, imm=10)
        b.store(7, base=4, disp=0)      # write balance
        b.unlock(lock_id=1)
    b.join(6)
    b.halt()
    b.label("auditor")
    b.li(4, account)
    with b.loop(counter=2, count=15):
        if not buggy:
            b.lock(lock_id=1)
        b.load(8, base=4, disp=0)
        b.li(9, 0)
        b.store(9, base=4, disp=8)      # writes the audit log...
        b.store(8, base=4, disp=0)      # ...and "corrects" the balance
        if not buggy:
            b.unlock(lock_id=1)
    b.halt()
    return b.build()


def run(buggy: bool):
    system = AikidoSystem(bank_program(buggy),
                          lambda kernel: AikidoAtomicity(kernel),
                          seed=9, quantum=5, jitter=0.3)
    system.run()
    return system


def main():
    print("=== buggy auditor (no lock) ===")
    system = run(buggy=True)
    for violation in system.analysis.violations[:4]:
        print("  ", violation.describe())
    if not system.analysis.violations:
        print("   no violation observed on this schedule (try other seeds)")
    print(f"   checked {system.analysis.checker.checked} shared accesses "
          f"out of {system.run_stats.memory_refs} total — "
          "Aikido skipped the rest")

    print("\n=== fixed auditor (locked) ===")
    system = run(buggy=False)
    print(f"   violations: {len(system.analysis.violations)}")


if __name__ == "__main__":
    main()
