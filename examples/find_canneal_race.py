#!/usr/bin/env python
"""Reproduce the paper's §5.3 finding: canneal's Mersenne-Twister race.

"An example race we found was in the random number generator (based on
Mersenne Twister) in the canneal benchmark." — the RNG state is advanced
by every annealing thread without synchronization.

This script runs the canneal-like workload under both configurations and
shows (a) both detect the RNG race, and (b) Aikido does it with a
fraction of FastTrack's instrumentation work.

    python examples/find_canneal_race.py
"""

from repro.harness.runner import (
    run_aikido_fasttrack,
    run_fasttrack,
    run_native,
)
from repro.workloads.parsec import build_benchmark

THREADS = 4
SCALE = 0.5


def program():
    return build_benchmark("canneal", threads=THREADS, scale=SCALE)


def main():
    print(f"canneal ({THREADS} threads, scale {SCALE}) ...")
    native = run_native(program(), seed=1, quantum=150)
    fasttrack = run_fasttrack(program(), seed=1, quantum=150)
    aikido = run_aikido_fasttrack(program(), seed=1, quantum=150)

    print("\n=== FastTrack (instrument everything) ===")
    print(f"  slowdown vs native: {fasttrack.slowdown_vs(native):.1f}x")
    for race in fasttrack.races[:5]:
        print("   race:", race.describe())

    print("\n=== Aikido-FastTrack (shared pages only) ===")
    print(f"  slowdown vs native: {aikido.slowdown_vs(native):.1f}x")
    for race in aikido.races[:5]:
        print("   race:", race.describe())

    ft_keys = {r.key for r in fasttrack.races}
    aik_keys = {r.key for r in aikido.races}
    print("\n=== Comparison (paper §5.3) ===")
    print(f"  FastTrack races:        {len(ft_keys)}")
    print(f"  Aikido-FastTrack races: {len(aik_keys)}")
    print(f"  Aikido subset of FastTrack: {aik_keys <= ft_keys}")
    print(f"  speedup from Aikido:    "
          f"{fasttrack.slowdown_vs(native)/aikido.slowdown_vs(native):.2f}x")
    print(f"  instrumentation avoided: "
          f"{aikido.memory_refs - aikido.instrumented_execs} of "
          f"{aikido.memory_refs} accesses ran uninstrumented")
    print("\nNote: the RNG race is 'benign' in the sense of §5.3 — but as")
    print("the paper observes, the statistical properties of a Mersenne")
    print("Twister under racy updates are anyone's guess.")


if __name__ == "__main__":
    main()
