#!/usr/bin/env python
"""The §6 soundness discussion, executable.

Aikido introduces a *well-defined* class of false negatives: the first
two accesses to a page (one per thread) happen before the sharing
detector can instrument anything. For verification use cases — e.g.
guaranteeing race freedom so a Weak/SyncOrder deterministic runtime can
promise determinism — that is not acceptable.

The paper's §6 workaround: have the deterministic substrate order those
first accesses, at which point the ordering can be fed back into the
analysis as a happens-before edge. This script shows all three positions:

1. full FastTrack sees the first-touch race;
2. default Aikido-FastTrack misses it (fast, but unsound);
3. Aikido with ``order_first_accesses=True`` is *soundly silent*: the
   accesses really are ordered by the (simulated) deterministic runtime,
   so there is no race to report.

    python examples/deterministic_check.py
"""

from repro.core.config import AikidoConfig
from repro.harness.runner import run_aikido_fasttrack, run_fasttrack
from repro.workloads import micro


def describe(label, races):
    print(f"  {label:<42s} "
          f"{len(races)} race(s)"
          + (": " + races[0].describe() if races else ""))


def main():
    print("Scenario (micro.first_touch_race): thread A writes a page")
    print("exactly once; thread B reads it exactly once; no sync.\n")

    ft = run_fasttrack(micro.first_touch_race()[0], seed=3, quantum=20)
    describe("FastTrack (sound, slow)", ft.races)

    aik = run_aikido_fasttrack(micro.first_touch_race()[0], seed=3,
                               quantum=20)
    describe("Aikido-FastTrack (fast, misses it)", aik.races)

    ordered = run_aikido_fasttrack(
        micro.first_touch_race()[0], seed=3, quantum=20,
        config=AikidoConfig(order_first_accesses=True))
    describe("Aikido + ordered first accesses", ordered.races)

    print("\nInterpretation:")
    print(" - Line 1 is the ground truth: the program races.")
    print(" - Line 2 is Aikido's documented §6 false negative.")
    print(" - Line 3 reports nothing *by construction*: the deterministic")
    print("   substrate orders the page's first two accesses, so the")
    print("   combined system still guarantees deterministic execution —")
    print("   the guarantee the paper's §6 argues can be salvaged cheaply.")
    print("\nOn a race the workaround cannot hide (later accesses):")
    ft2 = run_fasttrack(micro.racy_counter(2, 15)[0], seed=3, quantum=20)
    aik2 = run_aikido_fasttrack(
        micro.racy_counter(2, 15)[0], seed=3, quantum=20,
        config=AikidoConfig(order_first_accesses=True))
    describe("FastTrack", ft2.races)
    describe("Aikido + ordering (still catches it)", aik2.races)


if __name__ == "__main__":
    main()
