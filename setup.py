"""Setup shim for environments without the `wheel` package.

Normal installs should use ``pip install -e .`` (PEP 660); this shim lets
``python setup.py develop`` work in fully offline environments where pip
cannot build editable wheels.
"""

from setuptools import setup

setup()
