"""Aikido (ASPLOS 2012) reproduction: accelerating shared data dynamic
analyses with per-thread page protection.

Public API surface (see README.md for a tour):

* :class:`repro.core.system.AikidoSystem` — assemble and run the full
  stack on a program with any :class:`repro.core.analysis.SharedDataAnalysis`.
* :class:`repro.machine.asm.ProgramBuilder` — write mini-ISA workloads.
* :mod:`repro.harness.runner` — ``run_native`` / ``run_fasttrack`` /
  ``run_aikido_fasttrack`` and :class:`RunResult`.
* :mod:`repro.analyses` — FastTrack (full + Aikido-accelerated), Eraser
  LockSet, AVIO atomicity, LiteRace-style sampling.
* :mod:`repro.workloads.parsec` — the ten PARSEC-like benchmarks.
"""

__version__ = "1.4.0"

from repro.core.analysis import SharedDataAnalysis
from repro.core.config import AikidoConfig
from repro.core.system import AikidoSystem
from repro.machine.asm import ProgramBuilder

__all__ = [
    "AikidoConfig",
    "AikidoSystem",
    "ProgramBuilder",
    "SharedDataAnalysis",
    "__version__",
]
