"""The chaos injector: deterministic firing decisions + a replay log.

One :class:`ChaosInjector` serves one run. Each injection point draws
from its own ``random.Random(f"{seed}:{point}")`` stream (string seeding
is process-stable, unlike hash-based seeding), so enabling or disabling
one point never shifts the decisions of another — a plan's points are
independently reproducible.

Every delivered injection is appended to :attr:`log` as a
:class:`ChaosEvent` carrying the simulated cycle, point name, thread and
a free-form detail string, which is exactly the information needed to
replay or diff two chaotic runs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.chaos.plan import ChaosPlan


@dataclass(frozen=True)
class ChaosEvent:
    """One delivered injection, logged for replay."""

    cycle: int
    point: str
    tid: Optional[int]
    detail: str

    def to_dict(self) -> Dict:
        return {"cycle": self.cycle, "point": self.point, "tid": self.tid,
                "detail": self.detail}


class ChaosInjector:
    """Decides, per opportunity, whether an injection point fires.

    The components it is attached to (kernel, hypervisor, TLBs, DBR
    engine) call :meth:`fires` at their injection sites; a True return
    means "inject now" and has already been logged and counted. Sites
    whose fault was absorbed by a recovery path report it via
    :meth:`note_recovered`, so the survivability table can show
    delivered vs recovered per point.
    """

    def __init__(self, plan: ChaosPlan):
        self.plan = plan
        self._rngs: Dict[str, random.Random] = {
            point: random.Random(f"{plan.seed}:{point}")
            for point in plan.points}
        self.delivered: Dict[str, int] = {}
        self.recovered: Dict[str, int] = {}
        self.log: List[ChaosEvent] = []
        #: The run's cycle counter; attached by AikidoSystem so events
        #: carry simulated timestamps.
        self.counter = None

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach(self, kernel, engine=None, hypervisor=None) -> None:
        """Install this injector on every layer of one stack."""
        self.counter = kernel.counter
        kernel.chaos = self
        # The scheduler draws chaos preemptions from the injector's
        # dedicated stream; binding it here (rather than passing an RNG
        # per rotation) keeps the schedule a pure function of
        # (scheduler seed, chaos seed).
        kernel.scheduler.bind_chaos_rng(self.rng("preempt"))
        if engine is not None:
            engine.chaos = self
        if hypervisor is not None:
            hypervisor.chaos = self
        for process in kernel.processes.values():
            for thread in process.threads.values():
                self.attach_thread(thread)

    def attach_thread(self, thread) -> None:
        """Hook one thread's TLB (called again for every future spawn)."""
        thread.tlb.chaos = self
        thread.tlb.owner_tid = thread.tid

    # ------------------------------------------------------------------
    # firing decisions
    # ------------------------------------------------------------------
    def active(self, point: str) -> bool:
        return self.plan.rate(point) > 0

    def fires(self, point: str, tid: Optional[int] = None,
              detail: str = "") -> bool:
        """Draw this opportunity; log + count when the point fires."""
        rate = self.plan.rate(point)
        if rate <= 0:
            return False
        cap = self.plan.max_per_point
        if cap and self.delivered.get(point, 0) >= cap:
            return False
        if self._rngs[point].random() >= rate:
            return False
        cycle = self.counter.total if self.counter is not None else 0
        self.log.append(ChaosEvent(cycle, point, tid, detail))
        self.delivered[point] = self.delivered.get(point, 0) + 1
        return True

    def rng(self, point: str) -> random.Random:
        """The point's dedicated stream (for choosing *what* to corrupt).

        Streams exist eagerly for every point in the plan and are
        created on demand for points the plan omits (a plan without
        ``preempt`` still binds a deterministic scheduler stream).
        """
        rng = self._rngs.get(point)
        if rng is None:
            rng = self._rngs[point] = random.Random(
                f"{self.plan.seed}:{point}")
        return rng

    def note_recovered(self, point: str) -> None:
        """Record that the stack absorbed one delivered injection."""
        self.recovered[point] = self.recovered.get(point, 0) + 1

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    @property
    def total_delivered(self) -> int:
        return sum(self.delivered.values())

    @property
    def total_recovered(self) -> int:
        return sum(self.recovered.values())

    def as_dict(self) -> Dict:
        """JSON-safe summary (merged into run stats / sweep artifacts)."""
        return {
            "plan": self.plan.to_dict(),
            "delivered": dict(self.delivered),
            "recovered": dict(self.recovered),
            "events": self.replay_log(),
        }

    def replay_log(self) -> List[Dict]:
        return [event.to_dict() for event in self.log]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ChaosInjector seed={self.plan.seed} "
                f"delivered={self.total_delivered} "
                f"recovered={self.total_recovered}>")
