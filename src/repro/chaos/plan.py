"""Deterministic fault-injection plans.

A :class:`ChaosPlan` is plain data: a seed plus a map of injection-point
names to firing rates. The plan is a dataclass so it folds into
:class:`~repro.core.config.AikidoConfig` (and therefore into harness
cache keys) without special handling, and it serializes to JSON for
replay files and the chaos-sweep artifact.

Injection points are registered in :data:`INJECTION_POINTS` with two
classification bits that the survivability analysis relies on:

``recoverable``
    The stack has a designed recovery path for this event (hidden-fault
    resync, instruction refault, bounded hypercall retry, block rebuild,
    ...). Non-recoverable points (``stale_tlb``) model *silent* state
    corruption; they exist to prove the invariant monitor converts them
    into structured :class:`~repro.errors.InvariantViolationError`\\ s.

``schedule_neutral``
    Firing the injection cannot change the thread interleaving, because
    scheduling is instruction-count based and the event only adds
    hypervisor/kernel work (cycles) or redundant state transitions.
    Race reports of happens-before detection are schedule-dependent, so
    only the schedule-neutral recoverable subset (the *recovery plan*)
    carries the bit-identical-races guarantee; ``preempt`` deliberately
    perturbs interleavings and is instead validated by the invariants
    holding under hostile schedules.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, Tuple

from repro.errors import ChaosError


@dataclass(frozen=True)
class InjectionPoint:
    """Metadata for one supported injection point."""

    name: str
    layer: str
    description: str
    recoverable: bool = True
    schedule_neutral: bool = True


#: Every injection point the stack supports, keyed by name.
INJECTION_POINTS: Dict[str, InjectionPoint] = {p.name: p for p in (
    InjectionPoint(
        "spurious_fault", "guestos/kernel",
        "re-dispatch a just-repaired page fault a second time (duplicate "
        "delivery); absorbed by the hidden-fault / redundant-fault paths"),
    InjectionPoint(
        "delay_signal", "guestos/kernel",
        "postpone a deliverable SIGSEGV: the faulting instruction "
        "re-executes, refaults, and delivery happens on a later attempt"),
    InjectionPoint(
        "preempt", "guestos/scheduler",
        "force a yield and adversarially rotate the scheduler cursor at "
        "lock/unlock/barrier and fault boundaries",
        recoverable=True, schedule_neutral=False),
    InjectionPoint(
        "tlb_flush", "machine/tlb",
        "escalate a single-page INVLPG into a spurious full TLB flush "
        "(a superset of the requested shootdown; perf-only)"),
    InjectionPoint(
        "stale_tlb", "machine/tlb",
        "DROP a TLB invalidation, leaving a stale permissive translation "
        "— silent corruption the invariant monitor must flag",
        recoverable=False, schedule_neutral=True),
    InjectionPoint(
        "hypercall_fail", "hypervisor/aikidovm",
        "fail an HC_SET_PROT hypercall transiently before it takes "
        "effect; AikidoLib retries with a bounded budget"),
    InjectionPoint(
        "shadow_desync", "hypervisor/shadow",
        "drop one shadow PTE at a context switch (with its TLB "
        "shootdown); the next access takes a hidden fault and resyncs"),
    InjectionPoint(
        "codecache_flush", "dbr/engine",
        "flush the whole code cache at a quantum boundary; blocks "
        "rebuild and instrumentation hooks reinstall"),
)}

#: The schedule-neutral recoverable subset: safe to enable while still
#: demanding bit-identical race reports vs the chaos-free run.
RECOVERY_POINTS: Tuple[str, ...] = tuple(
    p.name for p in INJECTION_POINTS.values()
    if p.recoverable and p.schedule_neutral)

#: Recovery points plus adversarial preemption (hostile interleavings).
HOSTILE_POINTS: Tuple[str, ...] = tuple(
    p.name for p in INJECTION_POINTS.values() if p.recoverable)

#: Points that corrupt state silently; require --check-invariants.
UNSOUND_POINTS: Tuple[str, ...] = tuple(
    p.name for p in INJECTION_POINTS.values() if not p.recoverable)


@dataclass(frozen=True)
class ChaosPlan:
    """A seeded, serializable description of what to inject where.

    ``points`` maps injection-point names to firing rates in ``[0, 1]``
    (the per-opportunity probability drawn from that point's dedicated
    RNG stream). ``max_per_point`` caps deliveries per point (0 =
    unbounded) so hostile plans terminate on pathological workloads.
    """

    seed: int = 1
    points: Dict[str, float] = field(default_factory=dict)
    max_per_point: int = 0

    def __post_init__(self):
        unknown = set(self.points) - set(INJECTION_POINTS)
        if unknown:
            raise ChaosError(
                f"unknown injection point(s) {sorted(unknown)}; "
                f"supported: {sorted(INJECTION_POINTS)}")
        for name, rate in self.points.items():
            if not 0.0 <= rate <= 1.0:
                raise ChaosError(
                    f"injection rate for {name!r} must be in [0, 1], "
                    f"got {rate}")
        if self.max_per_point < 0:
            raise ChaosError(
                f"max_per_point must be >= 0, got {self.max_per_point}")

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def single(cls, point: str, *, seed: int = 1, intensity: float = 0.05,
               max_per_point: int = 0) -> "ChaosPlan":
        """A plan firing exactly one injection point."""
        return cls(seed=seed, points={point: intensity},
                   max_per_point=max_per_point)

    @classmethod
    def recovery(cls, *, seed: int = 1, intensity: float = 0.05,
                 max_per_point: int = 0) -> "ChaosPlan":
        """Every schedule-neutral recoverable point at one intensity."""
        return cls(seed=seed,
                   points={name: intensity for name in RECOVERY_POINTS},
                   max_per_point=max_per_point)

    @classmethod
    def hostile(cls, *, seed: int = 1, intensity: float = 0.05,
                max_per_point: int = 0) -> "ChaosPlan":
        """The recovery plan plus adversarial preemption."""
        return cls(seed=seed,
                   points={name: intensity for name in HOSTILE_POINTS},
                   max_per_point=max_per_point)

    # ------------------------------------------------------------------
    # queries & serialization
    # ------------------------------------------------------------------
    def rate(self, point: str) -> float:
        return self.points.get(point, 0.0)

    def active_points(self) -> Tuple[str, ...]:
        return tuple(sorted(n for n, r in self.points.items() if r > 0))

    @property
    def schedule_neutral(self) -> bool:
        """True when no active point can perturb the interleaving."""
        return all(INJECTION_POINTS[n].schedule_neutral
                   for n in self.active_points())

    @property
    def sound(self) -> bool:
        """True when every active point has a recovery path."""
        return all(INJECTION_POINTS[n].recoverable
                   for n in self.active_points())

    def to_dict(self) -> Dict:
        return {"seed": self.seed, "points": dict(self.points),
                "max_per_point": self.max_per_point}

    @classmethod
    def from_dict(cls, payload: Dict) -> "ChaosPlan":
        return cls(seed=payload["seed"],
                   points=dict(payload.get("points", {})),
                   max_per_point=payload.get("max_per_point", 0))

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ChaosPlan":
        return cls.from_dict(json.loads(text))


def describe_points(names: Iterable[str] = ()) -> str:
    """Human-readable registry listing (for ``--help`` style output)."""
    selected = list(names) or sorted(INJECTION_POINTS)
    lines = []
    for name in selected:
        point = INJECTION_POINTS[name]
        tags = []
        if not point.recoverable:
            tags.append("unsound")
        if not point.schedule_neutral:
            tags.append("schedule-perturbing")
        suffix = f" [{', '.join(tags)}]" if tags else ""
        lines.append(f"{name} ({point.layer}){suffix}: {point.description}")
    return "\n".join(lines)
