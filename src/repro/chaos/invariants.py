"""Cross-layer invariant monitoring for the Aikido stack.

The stack's correctness rests on agreements between layers that no
single layer can check alone: shadow page tables must re-derive from the
guest table plus the protection table, TLBs must never cache permissions
the current tables would deny, mirror aliases must resolve to the very
frames they alias, and the sharing state machine must only ever move
forward. :class:`InvariantMonitor` walks these structures — from the
host side, costing no simulated cycles, like a VMI-style external
checker — and raises :class:`~repro.errors.InvariantViolationError`
with a structured diagnosis on the first inconsistency.

Checks run at a configurable cadence (every N scheduler quanta, via the
kernel's tick hooks) and once more at run end. The monitor is the
soundness net for chaos runs: recoverable injections must never trip it,
while ``stale_tlb`` (a dropped invalidation) must be *caught* here
instead of silently corrupting analysis results.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import InvariantViolationError
from repro.hypervisor.shadow import effective_flags
from repro.machine.paging import (
    PAGE_SHIFT,
    PTE_PRESENT,
    PTE_USER,
    PTE_WRITABLE,
)

#: The permission bits a stale TLB entry could illegally grant.
_PERMISSION_BITS = PTE_PRESENT | PTE_WRITABLE | PTE_USER

#: Shared marker in the page-state snapshot (matches PageStateTable).
_SHARED = -1

#: All checks the monitor runs, in execution order.
INVARIANTS = (
    "shadow_subset",
    "protection_agreement",
    "mirror_alias",
    "page_state_monotone",
    "tlb_coherence",
    "elision_no_shared",
)


class InvariantMonitor:
    """Runs the six cross-layer checks against one live Aikido stack."""

    def __init__(self, kernel, hypervisor, sd=None):
        self.kernel = kernel
        self.hypervisor = hypervisor
        self.sd = sd
        self.checks_run = 0
        self.violations = 0
        #: vpn -> owner tid (or _SHARED) as of the previous check; the
        #: monotonicity check compares against this snapshot.
        self._page_snapshot: Dict[int, int] = {}
        self._quanta = 0

    # ------------------------------------------------------------------
    # installation
    # ------------------------------------------------------------------
    def install(self, cadence: int = 50) -> None:
        """Run :meth:`check_all` every ``cadence`` scheduler quanta.

        ``cadence=0`` installs nothing (run-end check only).
        """
        if cadence <= 0:
            return

        def _tick():
            self._quanta += 1
            if self._quanta % cadence == 0:
                self.check_all()

        self.kernel.tick_hooks.append(_tick)

    # ------------------------------------------------------------------
    # the checks
    # ------------------------------------------------------------------
    def check_all(self) -> None:
        self.checks_run += 1
        try:
            self.check_shadow_subset()
            self.check_protection_agreement()
            self.check_mirror_alias()
            self.check_page_state_monotone()
            self.check_tlb_coherence()
            self.check_elision_no_shared()
        except InvariantViolationError:
            self.violations += 1
            raise

    def _live_threads(self):
        for process in self.kernel.processes.values():
            for thread in process.live_threads:
                yield thread

    def check_shadow_subset(self) -> None:
        """Every shadow PTE maps a page the guest maps, to the same frame.

        Shadow tables only ever *restrict* the guest view (§3.2.3); an
        entry for an unmapped guest page, or one pointing at a different
        frame, means a propagation was lost.
        """
        for thread in self._live_threads():
            shadow = self.hypervisor.shadow_tables.get(thread.tid)
            if shadow is None:
                continue
            guest = thread.process.page_table
            for vpn, spte in shadow.entries.items():
                gpte = guest.lookup(vpn)
                if gpte is None or not gpte.flags & PTE_PRESENT:
                    raise InvariantViolationError(
                        "shadow_subset",
                        f"t{thread.tid} shadow maps vpn {vpn:#x} which "
                        f"the guest does not",
                        tid=thread.tid, vpn=vpn)
                if spte.pfn != gpte.pfn:
                    raise InvariantViolationError(
                        "shadow_subset",
                        f"t{thread.tid} shadow vpn {vpn:#x} points at "
                        f"frame {spte.pfn}, guest says {gpte.pfn}",
                        tid=thread.tid, vpn=vpn, shadow_pfn=spte.pfn,
                        guest_pfn=gpte.pfn)

    def check_protection_agreement(self) -> None:
        """Shadow flags == effective(guest flags, protection override).

        This is the exact flag-combination rule of
        :func:`repro.hypervisor.shadow.effective_flags`; any drift means
        a protection update or resync was dropped.
        """
        for thread in self._live_threads():
            tid = thread.tid
            shadow = self.hypervisor.shadow_tables.get(tid)
            ptable = self.hypervisor.protection_tables.get(tid)
            if shadow is None or ptable is None:
                continue
            guest = thread.process.page_table
            for vpn, spte in shadow.entries.items():
                gpte = guest.lookup(vpn)
                if gpte is None:
                    continue  # shadow_subset reports this case
                expected = effective_flags(
                    gpte.flags, ptable.get(vpn),
                    self.hypervisor.is_temp_kernel_unprotected(tid, vpn))
                if spte.flags != expected:
                    raise InvariantViolationError(
                        "protection_agreement",
                        f"t{tid} shadow vpn {vpn:#x} has flags "
                        f"{spte.flags:#05b}, protection tables derive "
                        f"{expected:#05b}",
                        tid=tid, vpn=vpn, shadow_flags=spte.flags,
                        expected_flags=expected,
                        override=ptable.get(vpn))

    def check_mirror_alias(self) -> None:
        """Each mirrored region's alias resolves to the aliased frames.

        Walks every region with a mirror mapping and compares the guest
        frame of each original page with the frame of its mirror page —
        the property AikidoSD's rewritten instructions rely on (§3.3.3).
        """
        if self.sd is None or not getattr(self.sd.mirror, "enabled", False):
            return
        guest = self.sd.process.page_table
        for start in list(self.sd.shadow._starts):
            region = self.sd.shadow.region_for(start)
            if region is None or region.mirror_base is None:
                continue
            pages = (region.length + (1 << PAGE_SHIFT) - 1) >> PAGE_SHIFT
            for page in range(pages):
                app_vpn = (region.app_start >> PAGE_SHIFT) + page
                mirror_vpn = (region.mirror_base >> PAGE_SHIFT) + page
                app_pte = guest.lookup(app_vpn)
                mirror_pte = guest.lookup(mirror_vpn)
                if app_pte is None or mirror_pte is None:
                    continue  # partially mapped region tails are legal
                if app_pte.pfn != mirror_pte.pfn:
                    raise InvariantViolationError(
                        "mirror_alias",
                        f"mirror vpn {mirror_vpn:#x} maps frame "
                        f"{mirror_pte.pfn}, original vpn {app_vpn:#x} "
                        f"maps {app_pte.pfn}",
                        app_vpn=app_vpn, mirror_vpn=mirror_vpn,
                        app_pfn=app_pte.pfn, mirror_pfn=mirror_pte.pfn)

    def check_page_state_monotone(self) -> None:
        """Pages only move UNUSED -> PRIVATE(t) -> SHARED, never back.

        Compares the sharing detector's page-state table against the
        snapshot taken at the previous check: a tracked page must never
        disappear, change private owner, or leave SHARED.
        """
        if self.sd is None:
            return
        current = dict(self.sd.pagestate._table)
        for vpn, old in self._page_snapshot.items():
            new = current.get(vpn)
            if new is None:
                raise InvariantViolationError(
                    "page_state_monotone",
                    f"vpn {vpn:#x} was tracked and is now untracked",
                    vpn=vpn, old=old)
            if old == _SHARED and new != _SHARED:
                raise InvariantViolationError(
                    "page_state_monotone",
                    f"vpn {vpn:#x} left the absorbing SHARED state",
                    vpn=vpn, old=old, new=new)
            if old != _SHARED and new not in (old, _SHARED):
                raise InvariantViolationError(
                    "page_state_monotone",
                    f"vpn {vpn:#x} changed private owner t{old} -> "
                    f"t{new}",
                    vpn=vpn, old=old, new=new)
        self._page_snapshot = current

    def check_tlb_coherence(self) -> None:
        """No TLB entry grants more than the current tables would.

        x86 semantics make stale *restrictive* entries self-healing (the
        access faults, the walk re-derives), so only two conditions are
        violations: a cached translation to the wrong frame, and cached
        permission bits exceeding what the shadow derivation currently
        allows — exactly what a dropped invalidation leaves behind.
        """
        for thread in self._live_threads():
            tid = thread.tid
            ptable = self.hypervisor.protection_tables.get(tid)
            guest = thread.process.page_table
            for vpn, (pfn, flags) in thread.tlb.items():
                gpte = guest.lookup(vpn)
                if gpte is None or not gpte.flags & PTE_PRESENT:
                    if flags & PTE_PRESENT:
                        raise InvariantViolationError(
                            "tlb_coherence",
                            f"t{tid} TLB caches unmapped vpn {vpn:#x} "
                            f"as present",
                            tid=tid, vpn=vpn, flags=flags)
                    continue
                if pfn != gpte.pfn:
                    raise InvariantViolationError(
                        "tlb_coherence",
                        f"t{tid} TLB vpn {vpn:#x} translates to frame "
                        f"{pfn}, tables say {gpte.pfn}",
                        tid=tid, vpn=vpn, tlb_pfn=pfn, guest_pfn=gpte.pfn)
                override = ptable.get(vpn) if ptable is not None else None
                expected = effective_flags(
                    gpte.flags, override,
                    self.hypervisor.is_temp_kernel_unprotected(tid, vpn))
                extra = flags & ~expected & _PERMISSION_BITS
                if extra:
                    raise InvariantViolationError(
                        "tlb_coherence",
                        f"t{tid} TLB vpn {vpn:#x} caches permission "
                        f"bits {flags:#05b} exceeding the derived "
                        f"{expected:#05b} (stale invalidation?)",
                        tid=tid, vpn=vpn, tlb_flags=flags,
                        expected_flags=expected, extra_bits=extra)
            self._check_tlb_fast_maps(thread)

    def _check_tlb_fast_maps(self, thread) -> None:
        """The translation micro-caches mirror the TLB's entry table.

        ``fast_ro``/``fast_rw`` (see :class:`repro.machine.tlb.TLB`) must
        hold exactly the entries whose cached flags permit a user-mode
        read/write, mapped to the entry's frame base — a mismatch means
        an invalidation updated one structure but not the other, which
        would let the compiled tier translate through a mapping the
        interpreter tier would fault on. Under ``stale_tlb`` chaos the
        fast maps stay in lockstep with the (stale) entry table, so this
        check still holds; the permissive staleness itself is what
        :meth:`check_tlb_coherence` reports against the page tables.
        """
        tid = thread.tid
        tlb = thread.tlb
        user_r = PTE_PRESENT | PTE_USER
        user_w = user_r | PTE_WRITABLE
        for name, want in (("fast_ro", user_r), ("fast_rw", user_w)):
            fast = getattr(tlb, name)
            for vpn, base in fast.items():
                entry = tlb._entries.get(vpn)
                if entry is None:
                    raise InvariantViolationError(
                        "tlb_coherence",
                        f"t{tid} {name} caches vpn {vpn:#x} with no "
                        f"backing TLB entry",
                        tid=tid, vpn=vpn, fast_map=name)
                pfn, flags = entry
                if base != pfn << PAGE_SHIFT:
                    raise InvariantViolationError(
                        "tlb_coherence",
                        f"t{tid} {name} vpn {vpn:#x} holds base "
                        f"{base:#x}, TLB entry derives "
                        f"{pfn << PAGE_SHIFT:#x}",
                        tid=tid, vpn=vpn, fast_map=name)
                if flags & want != want:
                    raise InvariantViolationError(
                        "tlb_coherence",
                        f"t{tid} {name} caches vpn {vpn:#x} whose TLB "
                        f"flags {flags:#05b} deny the fast-path access",
                        tid=tid, vpn=vpn, fast_map=name, flags=flags)
        for vpn, (pfn, flags) in tlb.items():
            if flags & user_r == user_r and vpn not in tlb.fast_ro:
                raise InvariantViolationError(
                    "tlb_coherence",
                    f"t{tid} TLB vpn {vpn:#x} permits user reads but is "
                    f"missing from fast_ro",
                    tid=tid, vpn=vpn, flags=flags)
            if flags & user_w == user_w and vpn not in tlb.fast_rw:
                raise InvariantViolationError(
                    "tlb_coherence",
                    f"t{tid} TLB vpn {vpn:#x} permits user writes but is "
                    f"missing from fast_rw",
                    tid=tid, vpn=vpn, flags=flags)

    def check_elision_no_shared(self) -> None:
        """No live elided fast path coexists with a SHARED page it covers.

        Two faces of the ``--static-elide`` tripwire contract
        (:meth:`repro.dbr.engine.DBREngine.note_page_shared`): a
        compiled closure must never still fuse a uid the engine has
        retired (the closure drop happened synchronously inside the
        page-share transition), and no closure fusing a *private-tier*
        uid may survive while any page of that uid's static footprint is
        SHARED in the sharing detector's table.
        """
        if self.sd is None:
            return
        engine = getattr(self.sd, "engine", None)
        if engine is None or getattr(engine, "elision_plan", None) is None:
            return
        plan = engine.elision_plan
        retired = engine._elision_retired
        shared_vpns = [vpn for vpn, owner in self.sd.pagestate._table.items()
                       if owner == _SHARED]
        for cached in engine.codecache._blocks.values():
            compiled = cached.compiled
            if compiled is None:
                continue
            stale = compiled.elided_uids & retired
            if stale:
                raise InvariantViolationError(
                    "elision_no_shared",
                    f"block {cached.block_index} still fuses retired "
                    f"elided uid(s) {sorted(stale)} (closure drop lost?)",
                    block=cached.block_index, uids=sorted(stale))
            for uid in compiled.elided_private:
                for lo, hi in plan.footprints[uid]:
                    for vpn in shared_vpns:
                        if lo <= vpn <= hi:
                            raise InvariantViolationError(
                                "elision_no_shared",
                                f"private-tier elided uid {uid} (block "
                                f"{cached.block_index}) fused while vpn "
                                f"{vpn:#x} in its footprint is SHARED",
                                block=cached.block_index, uid=uid,
                                vpn=vpn)

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, int]:
        return {"invariant_checks": self.checks_run,
                "invariant_violations": self.violations}


# ---------------------------------------------------------------------
# Cross-analysis agreement (the replay fan-out invariant)
# ---------------------------------------------------------------------

#: Invariants checked over *replay verdicts* rather than a live stack;
#: :class:`repro.eventlog.replay.ReplayFanout` runs them after every
#: fan-out, and the scengen oracle re-derives them per scenario.
REPLAY_INVARIANTS = ("analysis_agreement",)


def cross_analysis_disagreements(block_sets: Dict[str, set]) -> list:
    """Pairwise consistency over per-analysis *reported block* sets.

    Takes ``{analysis_name: set_of_block_ids}`` (missing analyses are
    skipped) and returns human-readable disagreement strings:

    * ``fasttrack`` and ``djit`` implement the same happens-before
      relation, so they must flag exactly the same blocks;
    * ``memtag``'s tag masks over-approximate ``eraser``'s locksets (tag
      collisions only ever *suppress* reports), so memtag's blocks must
      be a subset of Eraser's.
    """
    disagreements = []
    if "fasttrack" in block_sets and "djit" in block_sets:
        ft, djit = block_sets["fasttrack"], block_sets["djit"]
        for block in sorted(ft - djit):
            disagreements.append(
                f"block {block:#x} flagged by fasttrack but not djit")
        for block in sorted(djit - ft):
            disagreements.append(
                f"block {block:#x} flagged by djit but not fasttrack")
    if "memtag" in block_sets and "eraser" in block_sets:
        extra = block_sets["memtag"] - block_sets["eraser"]
        for block in sorted(extra):
            disagreements.append(
                f"block {block:#x} flagged by memtag but not eraser "
                f"(tag masks can only suppress lockset reports)")
    return disagreements


def check_analysis_agreement(block_sets: Dict[str, set]) -> None:
    """Raise :class:`InvariantViolationError` on any disagreement."""
    disagreements = cross_analysis_disagreements(block_sets)
    if disagreements:
        raise InvariantViolationError(
            "analysis_agreement",
            f"{len(disagreements)} cross-analysis disagreement(s): "
            + "; ".join(disagreements[:5]),
            disagreements=disagreements,
            analyses=sorted(block_sets))
