"""Deterministic fault injection and cross-layer invariant monitoring.

Public surface:

* :class:`ChaosPlan` — seeded, serializable description of injection
  points and intensities (see :data:`INJECTION_POINTS` for the registry);
* :class:`ChaosInjector` — per-run firing decisions + replay log;
* :class:`InvariantMonitor` — the five cross-layer consistency checks,
  raising :class:`~repro.errors.InvariantViolationError`.
"""

from repro.chaos.injector import ChaosEvent, ChaosInjector
from repro.chaos.invariants import INVARIANTS, InvariantMonitor
from repro.chaos.plan import (
    HOSTILE_POINTS,
    INJECTION_POINTS,
    RECOVERY_POINTS,
    UNSOUND_POINTS,
    ChaosPlan,
    InjectionPoint,
    describe_points,
)

__all__ = [
    "ChaosEvent",
    "ChaosInjector",
    "ChaosPlan",
    "InjectionPoint",
    "InvariantMonitor",
    "INVARIANTS",
    "INJECTION_POINTS",
    "RECOVERY_POINTS",
    "HOSTILE_POINTS",
    "UNSOUND_POINTS",
    "describe_points",
]
