"""Processes and threads of the simulated guest OS.

All threads of a process share one :class:`~repro.machine.paging.GuestPageTable`
— the very property that makes per-thread page protection impossible
without AikidoVM (paper §3.2.2). Each thread carries its own register
file, program counter, shadow call stack, and TLB.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Dict, Optional

from repro.machine.isa import REGISTER_COUNT
from repro.machine.paging import GuestPageTable
from repro.machine.tlb import TLB


class ThreadStatus(enum.Enum):
    RUNNABLE = "runnable"
    BLOCKED_LOCK = "blocked_lock"
    BLOCKED_JOIN = "blocked_join"
    BLOCKED_BARRIER = "blocked_barrier"
    BLOCKED_CV = "blocked_cv"
    EXITED = "exited"


class Thread:
    """One guest thread: registers, PC, shadow call stack, TLB."""

    __slots__ = (
        "tid", "process", "program", "regs", "pc", "call_stack", "status",
        "tlb", "barrier_wait", "instructions_retired", "joiners",
        "cv_state",
    )

    def __init__(self, tid: int, process: "Process", start_block: int,
                 arg: int = 0, tlb_capacity: int = 64):
        self.tid = tid
        self.process = process
        self.program = process.program
        self.regs = [0] * REGISTER_COUNT
        self.regs[1] = arg
        #: Program counter as a mutable [block_index, instr_index] pair.
        self.pc = [start_block, 0]
        self.call_stack: list = []
        self.status = ThreadStatus.RUNNABLE
        self.tlb = TLB(tlb_capacity)
        #: (barrier_id, generation) this thread is parked on, if any.
        self.barrier_wait: Optional[tuple] = None
        self.instructions_retired = 0
        #: tids blocked joining on this thread.
        self.joiners: list = []
        #: Condition-variable progress: None, or
        #: ("waiting"|"signaled", cv_id, lock_id).
        self.cv_state = None

    @property
    def runnable(self) -> bool:
        return self.status is ThreadStatus.RUNNABLE

    @property
    def exited(self) -> bool:
        return self.status is ThreadStatus.EXITED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Thread tid={self.tid} pc={tuple(self.pc)} "
                f"{self.status.value}>")


class LockState:
    """A guest userspace lock (futex-like): owner plus FIFO wait queue.

    ``_handoff`` marks a direct grant: UNLOCK hands the lock to the first
    waiter, who re-executes its LOCK instruction on wakeup and must see
    "already mine, already acquired" exactly once.
    """

    __slots__ = ("lock_id", "owner", "waiters", "acquisitions", "_handoff")

    def __init__(self, lock_id: int):
        self.lock_id = lock_id
        self.owner: Optional[int] = None
        self.waiters: deque = deque()
        self.acquisitions = 0
        self._handoff: Optional[int] = None


class BarrierState:
    """A generation-counted barrier.

    Threads that arrive park with the current generation; the last arrival
    bumps the generation and wakes everyone. A woken thread re-executes
    its BARRIER instruction, sees its stored generation has passed, and
    proceeds — matching the re-execution protocol of the driver.
    """

    __slots__ = ("barrier_id", "generation", "arrived")

    def __init__(self, barrier_id: int):
        self.barrier_id = barrier_id
        self.generation = 0
        self.arrived: list = []


class Process:
    """A guest process: one page table, many threads.

    ``tid_allocator`` (when provided by the kernel) makes thread ids
    globally unique across processes — what Linux's single tid namespace
    gives the real AikidoVM, and what lets the hypervisor key shadow
    tables by tid alone.
    """

    def __init__(self, pid: int, program, tlb_capacity: int = 64,
                 tid_allocator=None):
        self.pid = pid
        self.program = program
        self.page_table = GuestPageTable(f"pid{pid}-pt")
        self.threads: Dict[int, Thread] = {}
        self.locks: Dict[int, LockState] = {}
        self.barriers: Dict[int, BarrierState] = {}
        #: condition variable id -> deque of waiting tids.
        self.condvars: Dict[int, deque] = {}
        #: signal number -> host-level handler callable(thread, SignalInfo).
        #: Handlers model userspace runtime code (DynamoRIO's master signal
        #: handler); see DESIGN.md on the host-level-runtime convention.
        self.signal_handlers: Dict[int, object] = {}
        self._next_tid = 1
        self._tid_allocator = tid_allocator
        self._tlb_capacity = tlb_capacity
        #: Set once every thread has exited.
        self.finished = False
        #: Segment name -> mapped base address (filled by the loader).
        self.segment_bases: Dict[str, int] = {}

    def create_thread(self, start_block: int, arg: int = 0) -> Thread:
        """Create a new thread; the caller schedules it."""
        if self._tid_allocator is not None:
            tid = self._tid_allocator()
        else:
            tid = self._next_tid
            self._next_tid += 1
        thread = Thread(tid, self, start_block, arg,
                        tlb_capacity=self._tlb_capacity)
        self.threads[tid] = thread
        return thread

    def lock_state(self, lock_id: int) -> LockState:
        state = self.locks.get(lock_id)
        if state is None:
            state = self.locks[lock_id] = LockState(lock_id)
        return state

    def condvar_waiters(self, cv_id: int) -> deque:
        waiters = self.condvars.get(cv_id)
        if waiters is None:
            waiters = self.condvars[cv_id] = deque()
        return waiters

    def barrier_state(self, barrier_id: int) -> BarrierState:
        state = self.barriers.get(barrier_id)
        if state is None:
            state = self.barriers[barrier_id] = BarrierState(barrier_id)
        return state

    @property
    def live_threads(self) -> list:
        return [t for t in self.threads.values() if not t.exited]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process pid={self.pid} threads={len(self.threads)}>"
