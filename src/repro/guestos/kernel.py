"""The simulated guest kernel.

Owns physical memory, the scheduler, syscall dispatch, synchronization
objects, fault repair and signal delivery. The kernel is written against
the :class:`~repro.guestos.platform.Platform` interface so the very same
kernel runs bare-metal or under AikidoVM — the paper's point that the
guest OS needs *no modifications* (modulo the context-switch notification,
which is modeled by the kernel calling ``platform.on_context_switch``,
standing in for the hypercall/trampoline probe of §3.2.3).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro import costs
from repro.errors import (
    DeadlockError,
    GuestOSError,
    HarnessError,
    NoSuchSyscallError,
    SegmentationFaultError,
)
from repro.events import (
    AcquireEvent,
    BarrierEvent,
    ForkEvent,
    JoinEvent,
    ReleaseEvent,
    ThreadExitEvent,
)
from repro.guestos.platform import NativePlatform, Platform
from repro.guestos.process import Process, Thread, ThreadStatus
from repro.guestos.scheduler import Scheduler
from repro.guestos.signals import SIGSEGV, HandlerResult, SignalInfo
from repro.guestos.vm import VMManager
from repro.guestos import syscalls
from repro.machine.cpu import (
    CPU,
    BarrierAction,
    CycleCounter,
    HaltAction,
    HypercallAction,
    JoinAction,
    LockAction,
    NotifyAction,
    SpawnAction,
    SyscallAction,
    UnlockAction,
    WaitAction,
)
from repro.machine.layout import static_segment_bases
from repro.machine.memory import PhysicalMemory, WORD_SIZE
from repro.machine.paging import PageFault


class Kernel:
    """A single-core, single-process guest kernel."""

    def __init__(self, platform: Optional[Platform] = None, *,
                 seed: int = 0, quantum: int = 200, jitter: float = 0.1,
                 frame_limit: int = 1 << 20, tlb_capacity: int = 64):
        self.memory = PhysicalMemory(frame_limit)
        self.counter = CycleCounter()
        self.platform = platform if platform is not None else NativePlatform()
        if getattr(self.platform, "counter", None) is None:
            self.platform.counter = self.counter
        self.scheduler = Scheduler(seed=seed, quantum=quantum, jitter=jitter)
        self.cpu = CPU(self.memory, self.platform.translate)
        self.processes: Dict[int, Process] = {}
        self._next_pid = 1
        self._next_tid = 1
        self._tlb_capacity = tlb_capacity
        self._sync_listeners: List[Callable] = []
        self._yield_requested = False
        #: pid -> execution driver; processes without an entry use the
        #: shared default (native) driver.
        self.drivers: Dict[int, object] = {}
        self._default_driver = None
        #: Kernel-observed totals (fault & signal bookkeeping).
        self.signals_delivered = 0
        self.faults_seen = 0
        #: SIGSEGV deliveries postponed by chaos (instruction refaults).
        self.signals_delayed = 0
        #: tid -> pending delay count for the *next* delivered signal.
        self._delay_counts: Dict[int, int] = {}
        #: Chaos injector, attached by ChaosInjector.attach (None = off).
        self.chaos = None
        #: Host-side callables invoked after every scheduler quantum;
        #: used by the invariant monitor's cadence. Must not mutate
        #: guest state (they run outside the simulated machine).
        self.tick_hooks: List[Callable] = []
        #: Observability tracer, attached by AikidoSystem (None = off).
        self.tracer = None

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    @property
    def process(self) -> Optional[Process]:
        """The primary (first-created) process, for the common
        single-process case."""
        return self.processes.get(1)

    @property
    def driver(self):
        """The primary process's driver (single-process convenience)."""
        return self.drivers.get(1, self._default_driver)

    def _alloc_tid(self) -> int:
        tid = self._next_tid
        self._next_tid += 1
        return tid

    def create_process(self, program) -> Process:
        """Load ``program`` into a fresh process with one main thread.

        May be called multiple times: each call creates an isolated
        address space; the scheduler interleaves threads of all
        processes and the run ends when every process has finished.
        """
        pid = self._next_pid
        self._next_pid += 1
        process = Process(pid, program, tlb_capacity=self._tlb_capacity,
                          tid_allocator=self._alloc_tid)
        process.vm = VMManager(self.memory, process.page_table)
        self.processes[pid] = process
        self.platform.attach_process(process)
        # Map static segments with the canonical layout, then fill in the
        # initial values through the page table.
        segments = program.segments
        bases = static_segment_bases([s.size for s in segments])
        for segment, base in zip(segments, bases):
            region = process.vm.map_region(base, segment.size,
                                           segment.name, kind="static")
            process.segment_bases[segment.name] = base
            for offset, value in segment.initial.items():
                process.vm.write_word(base + offset, value)
            if not segment.writable:
                # .rodata semantics: initialized above, then sealed.
                from repro.machine.paging import PTE_PRESENT, PTE_USER
                for vpn in region.vpns():
                    process.page_table.set_flags(
                        vpn, PTE_PRESENT | PTE_USER)
        main = process.create_thread(start_block=0)
        self.platform.on_thread_created(main)
        if self.chaos is not None:
            self.chaos.attach_thread(main)
        self.scheduler.register(main)
        return process

    def set_driver(self, driver, process: Optional[Process] = None) -> None:
        """Install an execution driver.

        With ``process`` given, the driver serves only that process's
        threads (a DBR engine is bound to one program); otherwise it
        serves the primary process.
        """
        target = process if process is not None else self.process
        if target is None:
            self._default_driver = driver
        else:
            self.drivers[target.pid] = driver

    def driver_for(self, thread: Thread):
        driver = self.drivers.get(thread.process.pid)
        return driver if driver is not None else self._default_driver

    def add_sync_listener(self, listener: Callable) -> None:
        """Subscribe an analysis to synchronization events."""
        self._sync_listeners.append(listener)

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self, max_instructions: int = 200_000_000) -> None:
        """Run every process to completion (all threads exited)."""
        if not self.processes:
            raise GuestOSError("no process loaded")
        if self._default_driver is None:
            from repro.guestos.driver import NativeDriver
            self._default_driver = NativeDriver(self)
        prev: Optional[Thread] = None
        retired = 0
        while not all(p.finished for p in self.processes.values()):
            thread = self.scheduler.pick()
            if thread is None:
                live = [t for p in self.processes.values()
                        for t in p.live_threads]
                if not live:
                    for p in self.processes.values():
                        p.finished = True
                    break
                raise DeadlockError(
                    "all live threads are blocked: "
                    + ", ".join(f"t{t.tid}:{t.status.value}"
                                for t in live))
            if prev is not None and thread is not prev:
                self.counter.charge("context_switch", costs.CONTEXT_SWITCH)
                if self.tracer is not None:
                    self.tracer.instant("context_switch", "kernel",
                                        tid=thread.tid,
                                        from_tid=prev.tid)
                if prev.process is not thread.process:
                    # Cross-process switch: the kernel reloads CR3, which
                    # a hypervisor traps (§3.2.2).
                    self.platform.on_address_space_switch(prev, thread)
                self.platform.on_context_switch(prev, thread)
            driver = self.driver_for(thread)
            before = driver.stats.instructions
            driver.run(thread, self.scheduler.quantum)
            retired += driver.stats.instructions - before
            if self.tick_hooks:
                for hook in self.tick_hooks:
                    hook()
            prev = thread
            if retired > max_instructions:
                raise HarnessError(
                    f"instruction budget exceeded ({max_instructions}); "
                    "runaway workload?")

    # ------------------------------------------------------------------
    # fault repair & signal delivery
    # ------------------------------------------------------------------
    def repair_fault(self, thread: Thread, fault: PageFault) -> None:
        """Handle a fault raised by user-mode execution.

        Returns normally when the faulting instruction may be retried;
        raises :class:`~repro.errors.SegmentationFaultError` when the
        process must die.
        """
        self.faults_seen += 1
        self._dispatch_fault(thread, fault)
        chaos = self.chaos
        if chaos is None:
            return
        if chaos.fires("spurious_fault", tid=thread.tid,
                       detail=f"vpn={fault.vpn:#x}"):
            # Duplicate delivery of the same (already repaired) fault —
            # the hardware re-raising an in-flight exception. The stack
            # must absorb it: the hypervisor sees a hidden/redundant
            # fault and the sharing detector's state machine is
            # idempotent for re-delivered faults.
            self.faults_seen += 1
            self._dispatch_fault(thread, fault)
            chaos.note_recovered("spurious_fault")
        if chaos.fires("preempt", tid=thread.tid,
                       detail=f"fault vpn={fault.vpn:#x}"):
            self._chaos_preempt(chaos)

    def _dispatch_fault(self, thread: Thread, fault: PageFault) -> None:
        """One platform dispatch + (possibly delayed) signal delivery."""
        if self.tracer is None:
            return self._dispatch_fault_inner(thread, fault)
        with self.tracer.span("fault_dispatch", "kernel", tid=thread.tid,
                              vaddr=fault.vaddr, write=fault.is_write):
            return self._dispatch_fault_inner(thread, fault)

    def _dispatch_fault_inner(self, thread: Thread,
                              fault: PageFault) -> None:
        disposition = self.platform.handle_fault(thread, fault)
        if disposition.kind == "retry":
            return
        # The guest kernel's own fault path: no mapping to repair (eager
        # mmap), so deliver SIGSEGV to a registered handler, if any.
        self.counter.charge("kernel_fault", costs.KERNEL_FAULT_PATH)
        handler = thread.process.signal_handlers.get(SIGSEGV)
        if handler is None:
            raise SegmentationFaultError(
                f"unhandled fault at {fault.vaddr:#x}",
                address=fault.vaddr, thread_id=thread.tid)
        chaos = self.chaos
        if chaos is not None and chaos.fires(
                "delay_signal", tid=thread.tid,
                detail=f"addr={fault.vaddr:#x}"):
            # Postpone delivery: return without invoking the handler.
            # Nothing was repaired, so the instruction re-executes,
            # faults again, and delivery happens on a later attempt —
            # delayed, never lost.
            self.signals_delayed += 1
            self._delay_counts[thread.tid] = \
                self._delay_counts.get(thread.tid, 0) + 1
            chaos.note_recovered("delay_signal")
            return
        self.counter.charge("signal_delivery", costs.SIGNAL_DELIVERY)
        if self.tracer is not None:
            self.tracer.instant("signal_delivery", "kernel",
                                tid=thread.tid, signal="SIGSEGV",
                                addr=disposition.delivered_address)
        self.signals_delivered += 1
        info = SignalInfo(SIGSEGV, disposition.delivered_address,
                          fault.is_write, thread.tid,
                          attempt=self._delay_counts.pop(thread.tid, 0) + 1)
        result = handler(thread, info)
        if result is HandlerResult.RESUME:
            return
        raise SegmentationFaultError(
            f"signal handler declined fault at {fault.vaddr:#x}",
            address=fault.vaddr, thread_id=thread.tid)

    def _chaos_preempt(self, chaos) -> None:
        """Adversarial preemption: yield now, resume somewhere hostile."""
        self._yield_requested = True
        self.scheduler.chaos_rotate()
        chaos.note_recovered("preempt")

    # ------------------------------------------------------------------
    # kernel-mode user memory access (the §3.2.6 path)
    # ------------------------------------------------------------------
    def kernel_read_word(self, thread: Thread, vaddr: int) -> int:
        """Read a user word from kernel mode, retrying through the platform."""
        while True:
            try:
                paddr = self.platform.translate(thread, vaddr, False,
                                                user_mode=False)
                return self.memory.read_word(paddr)
            except PageFault as fault:
                disposition = self.platform.handle_fault(thread, fault)
                if disposition.kind != "retry":
                    raise SegmentationFaultError(
                        f"kernel oops: bad user buffer at {vaddr:#x}",
                        address=vaddr, thread_id=thread.tid)

    def kernel_write_word(self, thread: Thread, vaddr: int,
                          value: int) -> None:
        """Write a user word from kernel mode, retrying through the platform."""
        while True:
            try:
                paddr = self.platform.translate(thread, vaddr, True,
                                                user_mode=False)
                self.memory.write_word(paddr, value)
                return
            except PageFault as fault:
                disposition = self.platform.handle_fault(thread, fault)
                if disposition.kind != "retry":
                    raise SegmentationFaultError(
                        f"kernel oops: bad user buffer at {vaddr:#x}",
                        address=vaddr, thread_id=thread.tid)

    # ------------------------------------------------------------------
    # trap servicing
    # ------------------------------------------------------------------
    def service(self, thread: Thread, action) -> bool:
        """Service a trap; returns True when the instruction retired."""
        retired = self._service_action(thread, action)
        chaos = self.chaos
        if chaos is not None \
                and action.__class__ in (LockAction, UnlockAction,
                                         BarrierAction) \
                and chaos.fires("preempt", tid=thread.tid,
                                detail=action.__class__.__name__):
            self._chaos_preempt(chaos)
        return retired

    def _service_action(self, thread: Thread, action) -> bool:
        cls = action.__class__
        if cls is LockAction:
            return self._service_lock(thread, action)
        if cls is UnlockAction:
            return self._service_unlock(thread, action)
        if cls is BarrierAction:
            return self._service_barrier(thread, action)
        if cls is WaitAction:
            return self._service_wait(thread, action)
        if cls is NotifyAction:
            return self._service_notify(thread, action)
        if cls is SpawnAction:
            return self._service_spawn(thread, action)
        if cls is JoinAction:
            return self._service_join(thread, action)
        if cls is SyscallAction:
            return self._service_syscall(thread, action)
        if cls is HaltAction:
            self._exit_thread(thread)
            return True
        if cls is HypercallAction:
            # ABI: number in the instruction, args in r1..r4, result in r0.
            thread.regs[0] = self.platform.hypercall(
                thread, action.number, thread.regs[1:5]) or 0
            return True
        raise GuestOSError(f"unserviceable action {action!r}")

    def consume_yield(self) -> bool:
        """True once after a thread requested preemption (sched_yield)."""
        if self._yield_requested:
            self._yield_requested = False
            return True
        return False

    # -- locks ----------------------------------------------------------
    def _service_lock(self, thread: Thread, action) -> bool:
        return self._try_acquire(thread, action.lock_id)

    def _try_acquire(self, thread: Thread, lock_id: int) -> bool:
        """Acquire or block; shared by LOCK and WAIT's re-acquisition."""
        state = thread.process.lock_state(lock_id)
        if state.owner is None:
            state.owner = thread.tid
            state.acquisitions += 1
            self.counter.charge("sync", costs.LOCK_FAST)
            self._emit(AcquireEvent(thread.tid, lock_id))
            return True
        if state.owner == thread.tid:
            if state._handoff == thread.tid:
                # Granted while we slept; acquire event fired at grant time.
                state._handoff = None
                return True
            raise GuestOSError(
                f"thread {thread.tid} recursively acquired lock "
                f"{lock_id}")
        self._check_lock_cycle(thread, state)
        state.waiters.append(thread.tid)
        thread.status = ThreadStatus.BLOCKED_LOCK
        self.counter.charge("sync", costs.LOCK_BLOCK)
        return False

    def _check_lock_cycle(self, thread: Thread, wanted) -> None:
        """Detect AB-BA style deadlocks *at block time*.

        Walks the waits-for chain: the thread about to block waits for
        ``wanted``'s owner; if that owner is itself blocked on a lock,
        follow it, and so on. Reaching the blocking thread closes a
        cycle — report it immediately instead of hanging until every
        other thread drains.
        """
        process = thread.process
        chain = [wanted.lock_id]
        owner_tid = wanted.owner
        seen = set()
        while owner_tid is not None:
            if owner_tid == thread.tid:
                raise DeadlockError(
                    f"lock cycle: thread {thread.tid} would wait on "
                    f"locks {chain} held (transitively) by itself")
            if owner_tid in seen:
                return  # cycle among other threads; they will report it
            seen.add(owner_tid)
            owner = process.threads.get(owner_tid)
            if owner is None or owner.status is not ThreadStatus.BLOCKED_LOCK:
                return
            # Which lock is the owner waiting for?
            next_lock = next(
                (ls for ls in process.locks.values()
                 if owner_tid in ls.waiters), None)
            if next_lock is None:
                return
            chain.append(next_lock.lock_id)
            owner_tid = next_lock.owner

    def _service_unlock(self, thread: Thread, action) -> bool:
        self._release_lock(thread, action.lock_id)
        return True

    def _release_lock(self, thread: Thread, lock_id: int) -> None:
        """Release + FIFO handoff; shared by UNLOCK and WAIT."""
        state = thread.process.lock_state(lock_id)
        if state.owner != thread.tid:
            raise GuestOSError(
                f"thread {thread.tid} released lock {lock_id} "
                f"owned by {state.owner}")
        self.counter.charge("sync", costs.LOCK_FAST)
        self._emit(ReleaseEvent(thread.tid, lock_id))
        if state.waiters:
            next_tid = state.waiters.popleft()
            state.owner = next_tid
            state.acquisitions += 1
            state._handoff = next_tid
            waiter = thread.process.threads[next_tid]
            waiter.status = ThreadStatus.RUNNABLE
            # The waiter's critical section happens-after this release.
            self._emit(AcquireEvent(next_tid, lock_id))
        else:
            state.owner = None

    # -- condition variables ---------------------------------------------
    def _service_wait(self, thread: Thread, action) -> bool:
        """pthread_cond_wait semantics via instruction re-execution.

        First execution: release the (held) lock, park on the condition
        variable. After NOTIFY marks us signaled, the re-executed WAIT
        re-acquires the lock (possibly blocking again) and then retires.
        Happens-before flows through the lock's release/acquire events —
        the standard conservative treatment of condition variables.
        """
        process = thread.process
        if thread.cv_state is None:
            lock = process.lock_state(action.lock_id)
            if lock.owner != thread.tid:
                raise GuestOSError(
                    f"thread {thread.tid} waits on cv {action.cv_id} "
                    f"without holding lock {action.lock_id}")
            self._release_lock(thread, action.lock_id)
            process.condvar_waiters(action.cv_id).append(thread.tid)
            thread.cv_state = ("waiting", action.cv_id, action.lock_id)
            thread.status = ThreadStatus.BLOCKED_CV
            self.counter.charge("sync", costs.LOCK_BLOCK)
            return False
        phase, cv_id, lock_id = thread.cv_state
        if phase == "signaled":
            if self._try_acquire(thread, lock_id):
                thread.cv_state = None
                return True
            return False  # parked on the lock; WAIT re-executes on grant
        raise GuestOSError(
            f"thread {thread.tid} re-executed WAIT while parked")

    def _service_notify(self, thread: Thread, action) -> bool:
        waiters = thread.process.condvar_waiters(action.cv_id)
        count = len(waiters) if action.notify_all else min(1, len(waiters))
        for _ in range(count):
            tid = waiters.popleft()
            waiter = thread.process.threads[tid]
            phase, cv_id, lock_id = waiter.cv_state
            waiter.cv_state = ("signaled", cv_id, lock_id)
            waiter.status = ThreadStatus.RUNNABLE
        self.counter.charge("sync", costs.LOCK_FAST)
        return True

    # -- barriers -------------------------------------------------------
    def _service_barrier(self, thread: Thread, action) -> bool:
        state = thread.process.barrier_state(action.barrier_id)
        waited = thread.barrier_wait
        if waited is not None and waited[0] == action.barrier_id \
                and waited[1] < state.generation:
            # Our generation completed while we slept.
            thread.barrier_wait = None
            return True
        self.counter.charge("sync", costs.BARRIER_WAIT)
        if action.parties <= 0:
            raise GuestOSError("barrier with non-positive party count")
        state.arrived.append(thread.tid)
        if len(state.arrived) >= action.parties:
            participants = tuple(state.arrived)
            state.arrived = []
            generation = state.generation
            state.generation += 1
            for tid in participants:
                other = thread.process.threads[tid]
                if other.status is ThreadStatus.BLOCKED_BARRIER:
                    other.status = ThreadStatus.RUNNABLE
            self._emit(BarrierEvent(action.barrier_id, generation,
                                    participants))
            thread.barrier_wait = None
            return True
        thread.barrier_wait = (action.barrier_id, state.generation)
        thread.status = ThreadStatus.BLOCKED_BARRIER
        return False

    # -- thread lifecycle ------------------------------------------------
    def _service_spawn(self, thread: Thread, action) -> bool:
        child = thread.process.create_thread(action.target_block,
                                             action.arg)
        self.counter.charge("sync", costs.SPAWN_THREAD)
        self.platform.on_thread_created(child)
        if self.chaos is not None:
            self.chaos.attach_thread(child)
        self.scheduler.register(child)
        thread.regs[action.rd] = child.tid
        self._emit(ForkEvent(thread.tid, child.tid))
        return True

    def _service_join(self, thread: Thread, action) -> bool:
        target = thread.process.threads.get(action.tid)
        if target is None:
            raise GuestOSError(f"join on unknown tid {action.tid}")
        self.counter.charge("sync", costs.JOIN_THREAD)
        if target.exited:
            self._emit(JoinEvent(thread.tid, target.tid))
            return True
        target.joiners.append(thread.tid)
        thread.status = ThreadStatus.BLOCKED_JOIN
        return False

    def _exit_thread(self, thread: Thread) -> None:
        thread.status = ThreadStatus.EXITED
        self.platform.on_thread_exited(thread)
        self.scheduler.unregister(thread)
        self._emit(ThreadExitEvent(thread.tid))
        for tid in thread.joiners:
            joiner = thread.process.threads[tid]
            if joiner.status is ThreadStatus.BLOCKED_JOIN:
                joiner.status = ThreadStatus.RUNNABLE
        thread.joiners.clear()
        if not thread.process.live_threads:
            thread.process.finished = True

    # -- syscalls ---------------------------------------------------------
    def _service_syscall(self, thread: Thread, action) -> bool:
        self.counter.charge("syscall", costs.SYSCALL)
        if self.tracer is not None:
            self.tracer.instant("syscall", "kernel", tid=thread.tid,
                                number=action.number)
        number = action.number
        regs = thread.regs
        if number == syscalls.SYS_EXIT:
            self._exit_thread(thread)
            return True
        if number == syscalls.SYS_MMAP:
            regs[0] = thread.process.vm.mmap(regs[1])
            return True
        if number == syscalls.SYS_BRK:
            regs[0] = thread.process.vm.brk(regs[1])
            return True
        if number == syscalls.SYS_GETTID:
            regs[0] = thread.tid
            return True
        if number == syscalls.SYS_WRITE:
            addr, words = regs[1], regs[2]
            checksum = 0
            for i in range(words):
                checksum = (checksum
                            + self.kernel_read_word(thread,
                                                    addr + i * WORD_SIZE)) \
                    & 0xFFFFFFFFFFFFFFFF
            regs[0] = checksum
            return True
        if number == syscalls.SYS_FILL:
            addr, words, value = regs[1], regs[2], regs[3]
            for i in range(words):
                self.kernel_write_word(thread, addr + i * WORD_SIZE, value)
            regs[0] = 0
            return True
        if number == syscalls.SYS_YIELD:
            self._yield_requested = True
            return True
        raise NoSuchSyscallError(f"syscall {number}")

    # ------------------------------------------------------------------
    def _emit(self, event) -> None:
        for listener in self._sync_listeners:
            listener(event)
