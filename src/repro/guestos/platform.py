"""Platform abstraction: who translates addresses and sees faults first.

The kernel and drivers are written against :class:`Platform`. On bare
metal (:class:`NativePlatform`) translation walks the guest page table and
faults go straight to the kernel. Under AikidoVM
(:class:`repro.hypervisor.aikidovm.VirtualizedPlatform`) translation walks
the *current thread's shadow page table* and every fault is first a VM
exit into the hypervisor.

TLB semantics follow x86: a permissive TLB entry grants access without a
walk (so a stale permissive entry hides protection downgrades — the reason
AikidoVM must shoot down TLBs), while a restrictive TLB entry triggers a
re-walk before any fault is raised (hardware re-validates on fault, so
protection *upgrades* never need a flush).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import HypervisorError
from repro.machine.paging import PAGE_SHIFT, PAGE_SIZE, PageFault


class FaultDisposition:
    """What the platform decided about a fault.

    ``retry``: the cause was repaired transparently (e.g. shadow-table
    sync); re-execute the instruction without guest involvement.
    ``deliver``: the guest kernel should see a fault at
    ``delivered_address`` (for Aikido faults this is the fake address; the
    true one went to the AikidoLib mailbox).
    """

    __slots__ = ("kind", "delivered_address")

    def __init__(self, kind: str, delivered_address: Optional[int] = None):
        self.kind = kind
        self.delivered_address = delivered_address

    @classmethod
    def retry(cls) -> "FaultDisposition":
        return cls("retry")

    @classmethod
    def deliver(cls, address: int) -> "FaultDisposition":
        return cls("deliver", address)


class Platform:
    """Interface the kernel and execution drivers program against."""

    def attach_process(self, process) -> None:
        """Called once when a process is created."""

    def on_thread_created(self, thread) -> None:
        """Called after a thread exists but before it runs."""

    def on_thread_exited(self, thread) -> None:
        """Called when a thread exits."""

    def on_context_switch(self, prev, nxt) -> None:
        """Called by the kernel on every context switch."""

    def on_address_space_switch(self, prev, nxt) -> None:
        """Called (before on_context_switch) when the switch crosses
        processes: the kernel reloads CR3, which hypervisors trap."""

    def translate(self, thread, vaddr: int, is_write: bool,
                  user_mode: bool = True) -> int:
        raise NotImplementedError

    def handle_fault(self, thread, fault: PageFault) -> FaultDisposition:
        raise NotImplementedError

    def hypercall(self, thread, number: int, args) -> int:
        raise HypervisorError("no hypervisor on this platform")


class NativePlatform(Platform):
    """Bare-metal translation straight through the guest page table."""

    def __init__(self, counter=None):
        #: Optional CycleCounter; native translation itself is free (it is
        #: the hardware walking the tables) but kept for symmetry.
        self.counter = counter

    def translate(self, thread, vaddr: int, is_write: bool,
                  user_mode: bool = True) -> int:
        vpn = vaddr >> PAGE_SHIFT
        tlb = thread.tlb
        hit = tlb.lookup(vpn)
        if hit is not None:
            pfn, flags = hit
            if _permits(flags, is_write, user_mode):
                return (pfn << PAGE_SHIFT) | (vaddr & (PAGE_SIZE - 1))
        # Miss or restrictive entry: hardware walk (re-validates).
        paddr = thread.process.page_table.translate(
            vaddr, is_write=is_write, user_mode=user_mode)
        entry = thread.process.page_table.lookup(vpn)
        tlb.fill(vpn, entry.pfn, entry.flags)
        return paddr

    def handle_fault(self, thread, fault: PageFault) -> FaultDisposition:
        # Eager mapping means there is nothing to repair: deliver as-is.
        return FaultDisposition.deliver(fault.vaddr)


def _permits(flags: int, is_write: bool, user_mode: bool) -> bool:
    """Check TLB-cached permission bits (mirrors PTE.permits)."""
    if not flags & 0b001:  # PRESENT
        return False
    if is_write and not flags & 0b010:  # WRITABLE
        return False
    if user_mode and not flags & 0b100:  # USER
        return False
    return True
