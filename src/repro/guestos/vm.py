"""Per-process virtual memory management: regions, mmap, brk, aliasing.

Mappings are *eager*: every page of a new region is backed by a physical
frame immediately. This keeps the Aikido contract crisp — "AikidoSD will
page protect all mapped pages in the target application's address space"
(§3.3.2) is well-defined when mapping and backing coincide.

``map_alias_at`` is the primitive under mirror pages: it maps a fresh
virtual range onto the *same physical frames* as an existing range, which
is what the paper achieves by mmapping one backing file twice (§3.3.3).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional

from repro.errors import GuestOSError
from repro.machine.layout import (
    HEAP_BASE,
    HEAP_LIMIT,
    MIRROR_BASE,
    MMAP_BASE,
    MMAP_LIMIT,
    align_up,
)
from repro.machine.memory import PhysicalMemory
from repro.machine.paging import (
    PAGE_SHIFT,
    PAGE_SIZE,
    PTE_PRESENT,
    PTE_USER,
    PTE_WRITABLE,
)

#: Default permission bits for fresh user mappings.
USER_RW = PTE_PRESENT | PTE_WRITABLE | PTE_USER


class Region:
    """A contiguous mapped range of the process address space."""

    __slots__ = ("name", "start", "length", "kind", "alias_of")

    def __init__(self, name: str, start: int, length: int, kind: str,
                 alias_of: Optional[int] = None):
        self.name = name
        self.start = start
        self.length = length
        self.kind = kind
        #: Start address of the range this region aliases, if any.
        self.alias_of = alias_of

    @property
    def end(self) -> int:
        return self.start + self.length

    def contains(self, addr: int) -> bool:
        return self.start <= addr < self.end

    def vpns(self) -> Iterator[int]:
        return iter(range(self.start >> PAGE_SHIFT,
                          (self.end + PAGE_SIZE - 1) >> PAGE_SHIFT))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Region {self.name!r} {self.start:#x}+{self.length:#x} "
                f"{self.kind}>")


class VMManager:
    """Manages one process's address space over shared physical memory."""

    def __init__(self, memory: PhysicalMemory, page_table):
        self.memory = memory
        self.page_table = page_table
        self.regions: List[Region] = []
        self._mmap_cursor = MMAP_BASE
        self._mirror_cursor = MIRROR_BASE
        self._brk = HEAP_BASE
        self._heap_mapped_end = HEAP_BASE
        #: Callbacks fired after every new mapping (AikidoSD's mmap/brk
        #: interception point). Receives the new Region.
        self.post_map_hooks: List[Callable[[Region], None]] = []
        #: mmap/brk statistics for the harness.
        self.mmap_count = 0
        self.brk_count = 0

    # ------------------------------------------------------------------
    # primitive mapping
    # ------------------------------------------------------------------
    def map_region(self, start: int, length: int, name: str,
                   kind: str = "mmap", flags: int = USER_RW,
                   notify: bool = True) -> Region:
        """Eagerly map [start, start+length) with fresh zeroed frames."""
        if start & (PAGE_SIZE - 1):
            raise GuestOSError(f"unaligned mapping at {start:#x}")
        region = Region(name, start, align_up(length), kind)
        for vpn in region.vpns():
            if self.page_table.lookup(vpn) is not None:
                raise GuestOSError(
                    f"mapping {name!r} overlaps existing page {vpn:#x}")
            self.page_table.map(vpn, self.memory.alloc_frame(), flags)
        self.regions.append(region)
        if notify:
            for hook in self.post_map_hooks:
                hook(region)
        return region

    def map_alias_at(self, dst_start: int, src_start: int, length: int,
                     name: str, flags: int = USER_RW) -> Region:
        """Map [dst, dst+length) onto the same frames as [src, src+length).

        Both ranges must be page-aligned; the source must be fully mapped.
        No post-map hooks fire (aliases are created *by* the mirror layer).
        """
        if dst_start & (PAGE_SIZE - 1) or src_start & (PAGE_SIZE - 1):
            raise GuestOSError("unaligned alias mapping")
        length = align_up(length)
        region = Region(name, dst_start, length, "alias",
                        alias_of=src_start)
        pages = length >> PAGE_SHIFT
        for i in range(pages):
            src_vpn = (src_start >> PAGE_SHIFT) + i
            dst_vpn = (dst_start >> PAGE_SHIFT) + i
            src_pte = self.page_table.lookup(src_vpn)
            if src_pte is None:
                raise GuestOSError(
                    f"alias source page {src_vpn:#x} is not mapped")
            if self.page_table.lookup(dst_vpn) is not None:
                raise GuestOSError(
                    f"alias destination page {dst_vpn:#x} already mapped")
            self.page_table.map(dst_vpn, src_pte.pfn, flags)
        self.regions.append(region)
        return region

    def alloc_mirror_range(self, length: int) -> int:
        """Reserve an address range in the mirror arena (no mapping)."""
        addr = self._mirror_cursor
        self._mirror_cursor += align_up(length) + PAGE_SIZE
        return addr

    # ------------------------------------------------------------------
    # syscall-level operations
    # ------------------------------------------------------------------
    def mmap(self, length: int, name: str = "mmap") -> int:
        """Anonymous private mapping; returns the base address."""
        if length <= 0:
            raise GuestOSError("mmap with non-positive length")
        addr = self._mmap_cursor
        if addr + align_up(length) > MMAP_LIMIT:
            raise GuestOSError("mmap arena exhausted")
        # Guard page between mappings.
        self._mmap_cursor = addr + align_up(length) + PAGE_SIZE
        self.map_region(addr, length, name, kind="mmap")
        self.mmap_count += 1
        return addr

    def brk(self, increment: int) -> int:
        """Grow the heap by ``increment`` bytes; returns the old break."""
        old = self._brk
        if increment < 0:
            raise GuestOSError("shrinking brk is not supported")
        if increment == 0:
            return old
        new = old + increment
        if new > HEAP_LIMIT:
            raise GuestOSError("heap limit exceeded")
        mapped_target = align_up(new)
        if mapped_target > self._heap_mapped_end:
            self.map_region(self._heap_mapped_end,
                            mapped_target - self._heap_mapped_end,
                            f"heap@{self._heap_mapped_end:#x}", kind="heap")
        self._heap_mapped_end = max(self._heap_mapped_end, mapped_target)
        self._brk = new
        self.brk_count += 1
        return old

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def region_for(self, addr: int) -> Optional[Region]:
        for region in self.regions:
            if region.contains(addr):
                return region
        return None

    def user_regions(self) -> List[Region]:
        """Regions subject to Aikido protection (not aliases/special)."""
        return [r for r in self.regions
                if r.kind in ("static", "heap", "mmap")]

    def mapped_user_vpns(self) -> Iterator[int]:
        for region in self.user_regions():
            yield from region.vpns()

    # ------------------------------------------------------------------
    # direct (host-level) data access helpers for loaders and tests
    # ------------------------------------------------------------------
    def read_word(self, vaddr: int) -> int:
        """Kernel-omniscient read through the guest page table."""
        paddr = self.page_table.translate(vaddr, is_write=False,
                                          user_mode=False)
        return self.memory.read_word(paddr)

    def write_word(self, vaddr: int, value: int) -> None:
        """Kernel-omniscient write through the guest page table."""
        paddr = self.page_table.translate(vaddr, is_write=True,
                                          user_mode=False)
        self.memory.write_word(paddr, value)
