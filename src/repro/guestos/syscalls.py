"""Syscall numbers and their kernel-side semantics.

Arguments arrive in r1..r3 and the result is written to r0, mirroring a
conventional register ABI. ``SYS_WRITE`` deliberately reads the user
buffer *from kernel mode*: under AikidoVM this is the §3.2.6 case where
the guest OS trips over protections it does not know about, and the
hypervisor must emulate the access and temporarily unprotect the page with
the USER bit cleared.
"""

from __future__ import annotations

SYS_EXIT = 1
SYS_MMAP = 2       # r1 = length              -> r0 = base address
SYS_BRK = 3        # r1 = increment (bytes)   -> r0 = old break
SYS_GETTID = 4     #                          -> r0 = tid
SYS_WRITE = 5      # r1 = addr, r2 = words    -> r0 = checksum (kernel reads buffer)
SYS_FILL = 6       # r1 = addr, r2 = words, r3 = value (kernel writes buffer)
SYS_YIELD = 7

NAMES = {
    SYS_EXIT: "exit",
    SYS_MMAP: "mmap",
    SYS_BRK: "brk",
    SYS_GETTID: "gettid",
    SYS_WRITE: "write",
    SYS_FILL: "fill",
    SYS_YIELD: "yield",
}
