"""Signal delivery plumbing.

Only SIGSEGV matters to Aikido: the guest kernel turns unhandleable page
faults into SIGSEGV and invokes the process's registered handler — which,
under DynamoRIO, is the *master signal handler* that routes Aikido faults
to the sharing detector (paper §3.4). Handlers are host-level callables
(they model userspace runtime code, not guest application code); they
receive a :class:`SignalInfo` and return a :class:`HandlerResult`.
"""

from __future__ import annotations

import enum

SIGSEGV = 11


class HandlerResult(enum.Enum):
    """What the userspace signal handler asks the kernel to do next."""

    #: Re-execute the faulting instruction (the handler repaired the cause).
    RESUME = "resume"
    #: The handler could not deal with the fault; kill the process.
    FATAL = "fatal"


class SignalInfo:
    """The siginfo_t of a delivered SIGSEGV.

    ``fault_address`` is what the *kernel* saw — for Aikido faults this is
    the pre-registered fake address, and the true address must be fetched
    from the AikidoLib mailbox (paper §3.2.5). ``is_write`` mirrors the
    page-fault error code.

    ``attempt`` counts delivery attempts for this signal: 1 for a normal
    delivery, higher when chaos postponed earlier deliveries (the
    faulting instruction refaulted until the delivery went through).
    """

    __slots__ = ("signum", "fault_address", "is_write", "thread_id",
                 "attempt")

    def __init__(self, signum: int, fault_address: int, is_write: bool,
                 thread_id: int, attempt: int = 1):
        self.signum = signum
        self.fault_address = fault_address
        self.is_write = is_write
        self.thread_id = thread_id
        self.attempt = attempt

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "write" if self.is_write else "read"
        return (f"<SignalInfo sig={self.signum} addr={self.fault_address:#x} "
                f"{kind} tid={self.thread_id}>")
