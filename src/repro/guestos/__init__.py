"""Simulated guest operating system.

Models the pieces of a Linux-like kernel that Aikido's protocols interact
with: a single page table shared by all threads of a process, a
deterministic scheduler whose context switches the hypervisor can
intercept, mmap/brk memory management, POSIX-style signal delivery (the
route by which Aikido's fake page faults reach the DynamoRIO master signal
handler), and syscalls that touch user memory from kernel mode (the §3.2.6
case).
"""

from repro.guestos.process import Process, Thread, ThreadStatus
from repro.guestos.scheduler import Scheduler
from repro.guestos.signals import SIGSEGV, SignalInfo
from repro.guestos.vm import Region, VMManager
from repro.guestos.kernel import Kernel
from repro.guestos.platform import NativePlatform, Platform
from repro.guestos.driver import ExecutionDriver, NativeDriver
from repro.guestos import syscalls

__all__ = [
    "ExecutionDriver",
    "Kernel",
    "NativeDriver",
    "NativePlatform",
    "Platform",
    "Process",
    "Region",
    "SIGSEGV",
    "Scheduler",
    "SignalInfo",
    "Thread",
    "ThreadStatus",
    "VMManager",
    "syscalls",
]
