"""Deterministic thread scheduler.

A seeded round-robin scheduler with optional random rotation. Determinism
matters twice over: every experiment regenerates bit-identical numbers,
and the race detectors' reports are reproducible (happens-before race
detection is schedule-dependent; the paper makes the same point in §7.3).
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.errors import GuestOSError
from repro.guestos.process import Thread


class Scheduler:
    """Picks the next runnable thread of a process.

    ``quantum`` is the number of instructions a thread runs before being
    preempted. With ``jitter > 0`` the scheduler occasionally (with that
    probability, from the seeded RNG) skips ahead in the ring, perturbing
    interleavings between runs with different seeds while staying
    reproducible for a fixed seed.
    """

    def __init__(self, seed: int = 0, quantum: int = 200,
                 jitter: float = 0.1):
        if not isinstance(seed, int):
            # random.Random(None) would seed from OS entropy: the
            # schedule could never be replayed from the recorded seed —
            # exactly the silent divergence the oracle checks for.
            raise GuestOSError(
                f"scheduler seed must be an int, got {seed!r}; an "
                f"unseeded schedule cannot be replayed")
        self.quantum = quantum
        self.jitter = jitter
        self._rng = random.Random(seed)
        self._chaos_rng: Optional[random.Random] = None
        self._ring: List[Thread] = []
        self._cursor = 0
        #: Adversarial cursor rotations performed by the chaos injector.
        self.chaos_preemptions = 0

    def register(self, thread: Thread) -> None:
        """Add a newly created thread to the ring."""
        self._ring.append(thread)

    def unregister(self, thread: Thread) -> None:
        """Remove an exited thread."""
        try:
            idx = self._ring.index(thread)
        except ValueError:
            return
        del self._ring[idx]
        if idx < self._cursor:
            self._cursor -= 1
        if self._ring:
            self._cursor %= len(self._ring)
        else:
            self._cursor = 0

    def pick(self) -> Optional[Thread]:
        """Return the next runnable thread, or None when all are blocked.

        Advances the round-robin cursor; with probability ``jitter`` the
        cursor takes a random extra hop.
        """
        n = len(self._ring)
        if n == 0:
            return None
        if self.jitter > 0 and self._rng.random() < self.jitter:
            self._cursor = (self._cursor + self._rng.randrange(n)) % n
        for _ in range(n):
            thread = self._ring[self._cursor]
            self._cursor = (self._cursor + 1) % n
            if thread.runnable:
                return thread
        return None

    def bind_chaos_rng(self, rng: random.Random) -> None:
        """Bind the chaos injector's dedicated preemption stream.

        Called once by :meth:`ChaosInjector.attach`. Keeping the stream
        bound (instead of letting each call site pass any RNG) means a
        schedule is a pure function of ``(scheduler seed, chaos seed)``:
        there is no third path that could feed the rotation a different
        stream — or, worse, ``self._rng`` itself, which would perturb
        the jitter sequence and break seed-for-seed replay.
        """
        self._chaos_rng = rng

    def chaos_rotate(self) -> None:
        """Adversarially re-aim the cursor (chaos preemption).

        Draws from the injector's bound stream, never from ``self._rng``
        — the scheduler's own jitter sequence must stay identical
        whether or not chaos is enabled.
        """
        if self._chaos_rng is None:
            raise GuestOSError(
                "chaos_rotate without a bound chaos stream; call "
                "bind_chaos_rng (ChaosInjector.attach does) first")
        self.chaos_preemptions += 1
        if self._ring:
            self._cursor = self._chaos_rng.randrange(len(self._ring))

    @property
    def registered_count(self) -> int:
        return len(self._ring)
