"""Execution drivers: the fetch/execute/retire loop.

A driver runs one thread for up to a quantum of instructions, consulting
the CPU for instruction semantics and the kernel for traps and faults.
:class:`NativeDriver` executes the program directly (the paper's "native"
baseline); the DBR engine (:class:`repro.dbr.engine.DBREngine`) implements
the same interface but fetches through a code cache and runs
instrumentation hooks.

Fault protocol: a :class:`~repro.machine.paging.PageFault` means the
instruction did not retire. The driver asks the kernel to repair it
(platform/hypervisor first, then signal delivery); on success the same
instruction is re-executed. This retry loop is what lets AikidoSD repair
the world (unprotect a page, rewrite a block) behind the application's
back.
"""

from __future__ import annotations

from repro.machine.cpu import Action, BASE_COST
from repro.machine.isa import MEMORY_OPCODES
from repro.machine.paging import PageFault


class RunStats:
    """Dynamic execution statistics for one run (Table 2 raw material)."""

    def __init__(self):
        #: Dynamic count of executed instructions that reference memory
        #: (Table 2, column 1: what a conservative tool must instrument).
        self.memory_refs = 0
        #: All retired instructions.
        self.instructions = 0
        #: Dynamic executions of *instrumented* instructions (Table 2 col 2).
        self.instrumented_execs = 0
        #: How many of those executions touched a shared page (col 3).
        self.shared_accesses = 0
        #: Analysis events actually delivered to the tool.
        self.tool_invocations = 0

    def as_dict(self) -> dict:
        return {
            "memory_refs": self.memory_refs,
            "instructions": self.instructions,
            "instrumented_execs": self.instrumented_execs,
            "shared_accesses": self.shared_accesses,
            "tool_invocations": self.tool_invocations,
        }


class ExecutionDriver:
    """Common driver machinery; subclasses override the fetch path."""

    def __init__(self, kernel):
        self.kernel = kernel
        self.cpu = kernel.cpu
        self.counter = kernel.counter
        self.stats = RunStats()

    def run(self, thread, budget: int) -> str:
        """Run ``thread`` for at most ``budget`` instructions.

        Returns the stop reason: ``"quantum"``, ``"blocked"``,
        ``"exited"``, or ``"yield"``.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def _apply_result(self, thread, pc, ii: int, res) -> bool:
        """Apply a non-None CPU result; returns False if thread blocked.

        ``res`` is a control tuple or an Action. The caller has already
        handled ``None`` (fallthrough).
        """
        if res.__class__ is tuple:
            tag = res[0]
            if tag == "jmp":
                pc[0] = res[1]
                pc[1] = 0
            elif tag == "call":
                thread.call_stack.append((pc[0], ii + 1))
                pc[0] = res[1]
                pc[1] = 0
            else:  # ret
                if not thread.call_stack:
                    from repro.errors import InvalidInstructionError
                    raise InvalidInstructionError(
                        f"RET with empty call stack in thread {thread.tid}")
                pc[0], pc[1] = thread.call_stack.pop()
            return True
        # Action: trap into the kernel.
        advanced = self.kernel.service(thread, res)
        if advanced:
            pc[1] = ii + 1
        return thread.runnable


class NativeDriver(ExecutionDriver):
    """Direct interpretation of the static program (no DBR, no tool)."""

    def run(self, thread, budget: int) -> str:
        kernel = self.kernel
        execute = self.cpu.execute
        counter = self.counter
        stats = self.stats
        pc = thread.pc
        blocks = thread.program.blocks
        executed = 0
        while executed < budget:
            if not thread.runnable:
                return "exited" if thread.exited else "blocked"
            block_instrs = blocks[pc[0]].instructions
            ii = pc[1]
            if ii >= len(block_instrs):
                pc[0] += 1
                pc[1] = 0
                continue
            instr = block_instrs[ii]
            try:
                res = execute(instr, thread)
            except PageFault as fault:
                kernel.repair_fault(thread, fault)
                continue  # re-execute the faulting instruction
            op = instr.op
            counter.instr_cycles += BASE_COST[op]
            executed += 1
            stats.instructions += 1
            if op in MEMORY_OPCODES:
                stats.memory_refs += 1
            if res is None:
                pc[1] = ii + 1
            elif not self._apply_result(thread, pc, ii, res):
                return "exited" if thread.exited else "blocked"
            if kernel.consume_yield():
                return "yield"
        return "quantum"
