"""Analysis-facing event records.

Synchronization events are emitted by the guest kernel (which is where
locks, barriers and thread lifecycle live) and consumed by dynamic
analyses such as FastTrack. Memory events are delivered separately — the
DBR engine calls tool hooks inline at instrumented instructions — so this
module only defines the synchronization vocabulary plus the common base.

Event ordering guarantee: events are emitted in the global (simulated)
serialization order of the single-core machine, which is a legal total
order of the execution — exactly what a happens-before detector needs.
"""

from __future__ import annotations


class SyncEvent:
    """Base class for synchronization events."""

    __slots__ = ()


class ForkEvent(SyncEvent):
    """Parent spawned child (child's first action happens-after this)."""

    __slots__ = ("parent_tid", "child_tid")

    def __init__(self, parent_tid: int, child_tid: int):
        self.parent_tid = parent_tid
        self.child_tid = child_tid


class JoinEvent(SyncEvent):
    """Parent observed child's exit via JOIN."""

    __slots__ = ("parent_tid", "child_tid")

    def __init__(self, parent_tid: int, child_tid: int):
        self.parent_tid = parent_tid
        self.child_tid = child_tid


class AcquireEvent(SyncEvent):
    __slots__ = ("tid", "lock_id")

    def __init__(self, tid: int, lock_id: int):
        self.tid = tid
        self.lock_id = lock_id


class ReleaseEvent(SyncEvent):
    __slots__ = ("tid", "lock_id")

    def __init__(self, tid: int, lock_id: int):
        self.tid = tid
        self.lock_id = lock_id


class BarrierEvent(SyncEvent):
    """All ``tids`` crossed barrier ``barrier_id``; all-to-all ordering."""

    __slots__ = ("barrier_id", "generation", "tids")

    def __init__(self, barrier_id: int, generation: int, tids: tuple):
        self.barrier_id = barrier_id
        self.generation = generation
        self.tids = tids


class ThreadExitEvent(SyncEvent):
    __slots__ = ("tid",)

    def __init__(self, tid: int):
        self.tid = tid
