"""Must-hold-lockset forward dataflow over the PR-2 CFG.

For each thread context (entry block + abstract spawn argument, see
:mod:`repro.staticanalysis.sharing`) this computes, per instruction, the
set of lock ids *provably held on every path* from the context entry to
that instruction. Lock ids are resolved through the context's constant
propagation states (``LOCK 3`` and ``LI r2, 3; LOCK r2`` both resolve);
an unresolvable id poisons the state.

Two transfer modes share one implementation:

* ``sound=False`` — the linter's historical semantics (findings such as
  ``unlock-unheld`` key off the *may* set and a kept-but-poisoned
  *must* set). Used by :mod:`repro.staticanalysis.lint` only.
* ``sound=True`` — the race analyzer's semantics: anything the analysis
  cannot prove still held clears the must set. An UNLOCK of an unknown
  id may release *any* lock, so ``must`` collapses to empty; a CALL
  into a callee whose reachable body touches locks likewise collapses
  ``must`` (the callee may release anything; its own body is analyzed
  through the CALL edge with the call-site state, which is exactly the
  intersection-of-callers a must-analysis needs).

WAIT leaves the lockset unchanged in both modes: the guest kernel
releases and re-acquires the mutex around the park
(``_service_wait``), emitting real Acquire/Release events, so the
happens-before edges a common-lock argument relies on exist in every
dynamic tool — while at the instant the WAIT retires the lock is held
again, matching pthread_cond_wait.

SPAWN edges are deliberately outside ``THREAD_EDGES``: a spawned thread
starts with an *empty* lockset (its own context is solved separately),
never inheriting the parent's critical section.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Set

from repro.machine.isa import Instruction, Opcode
from repro.machine.program import Program
from repro.staticanalysis.cfg import CFG, THREAD_EDGES, EdgeKind
from repro.staticanalysis.constprop import RegState
from repro.staticanalysis.dataflow import ForwardProblem, solve_forward

_EMPTY: FrozenSet[int] = frozenset()


class LockState:
    """(must-held, may-held, poisoned) lockset lattice element.

    ``must`` intersects at joins, ``may`` unions, ``poisoned`` marks a
    path where some lock operation could not be resolved statically
    (consumers must not trust *absence* from ``may`` on poisoned
    states; ``must`` stays trustworthy in sound mode because every
    unresolvable operation clears it).
    """

    __slots__ = ("must", "may", "poisoned")

    def __init__(self, must: FrozenSet[int] = _EMPTY,
                 may: FrozenSet[int] = _EMPTY,
                 poisoned: bool = False):
        self.must = must
        self.may = may
        self.poisoned = poisoned

    def join(self, other: "LockState") -> "LockState":
        return LockState(self.must & other.must, self.may | other.may,
                         self.poisoned or other.poisoned)

    def __eq__(self, other) -> bool:
        return (isinstance(other, LockState)
                and self.must == other.must and self.may == other.may
                and self.poisoned == other.poisoned)

    def __hash__(self) -> int:
        return hash((self.must, self.may, self.poisoned))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = " poisoned" if self.poisoned else ""
        return (f"<LockState must={sorted(self.must)} "
                f"may={sorted(self.may)}{tag}>")


def resolve_lock_id(instr: Instruction,
                    regs: Optional[RegState]) -> Optional[int]:
    """The lock id a LOCK/UNLOCK/WAIT names, if statically constant."""
    if instr.rs1 is None:
        return instr.imm
    if regs is None:
        return None
    return regs[instr.rs1].as_constant()


def lock_touching_entries(cfg: CFG) -> Set[int]:
    """CALL-target blocks whose reachable body contains LOCK/UNLOCK.

    A call into such a callee may change the held set in ways the
    caller-side transfer cannot see, so the sound transfer clears
    ``must`` across the call site. Bodies are explored over
    ``THREAD_EDGES`` (a callee's own calls count against it).
    """
    program = cfg.program
    targets = {bi for bi in range(len(cfg.preds))
               if any(kind is EdgeKind.CALL for _, kind in cfg.preds[bi])}
    touching: Set[int] = set()
    for target in targets:
        body = cfg.reachable(target, THREAD_EDGES)
        for bi in body:
            if any(instr.op in (Opcode.LOCK, Opcode.UNLOCK)
                   for instr in program.blocks[bi].instructions):
                touching.add(target)
                break
    return touching


def step_lock_state(state: LockState, instr: Instruction,
                    lock_id: Optional[int], *, sound: bool,
                    call_clobbers: bool = False) -> LockState:
    """Transfer one instruction; shared by the linter and the analyzer."""
    op = instr.op
    if op is Opcode.LOCK:
        if lock_id is None:
            # Unknown id: some lock is now held, we cannot say which.
            return LockState(state.must, state.may, True)
        return LockState(state.must | {lock_id}, state.may | {lock_id},
                         state.poisoned)
    if op is Opcode.UNLOCK:
        if lock_id is None:
            if sound:
                # May release any held lock: nothing is must-held now.
                return LockState(_EMPTY, state.may, True)
            return LockState(state.must, state.may, True)
        return LockState(state.must - {lock_id}, state.may - {lock_id},
                         state.poisoned)
    if op is Opcode.CALL and sound and call_clobbers:
        return LockState(_EMPTY, state.may, True)
    # WAIT: released and re-acquired around the park — unchanged.
    return state


@dataclass
class LocksetResult:
    """Fixed-point locksets for one thread context."""

    entry: int
    #: uid -> must-held lockset *before* the instruction executes.
    must_at: Dict[int, FrozenSet[int]] = field(default_factory=dict)
    #: uid -> the pre-state was poisoned on some path.
    poisoned_at: Dict[int, bool] = field(default_factory=dict)
    #: block index -> lockset at block entry.
    block_in: Dict[int, LockState] = field(default_factory=dict)

    def must_held(self, uid: int) -> FrozenSet[int]:
        return self.must_at.get(uid, _EMPTY)


def compute_locksets(cfg: CFG, states: Dict[int, RegState], *,
                     entry: int = 0,
                     touching: Optional[Set[int]] = None) -> LocksetResult:
    """Sound must-lockset fixed point for the context entered at ``entry``.

    ``states`` are the context's per-uid constant-propagation states
    (used only to resolve register-named lock ids); ``touching`` is the
    :func:`lock_touching_entries` set, recomputed when not supplied.
    """
    program = cfg.program
    if touching is None:
        touching = lock_touching_entries(cfg)

    def transfer_instr(state: LockState, instr: Instruction) -> LockState:
        lock_id = None
        if instr.op in (Opcode.LOCK, Opcode.UNLOCK):
            lock_id = resolve_lock_id(instr, states.get(instr.uid))
        clobbers = (instr.op is Opcode.CALL
                    and program.label_index(instr.label) in touching)
        return step_lock_state(state, instr, lock_id, sound=True,
                               call_clobbers=clobbers)

    class _Problem(ForwardProblem):
        edge_kinds = THREAD_EDGES

        def initial(self):
            return LockState()

        def entry_state(self):
            return LockState()

        def join(self, a, b):
            return a.join(b)

        def transfer(self, block, state):
            for instr in program.blocks[block].instructions:
                state = transfer_instr(state, instr)
            return state

    block_in = solve_forward(cfg, _Problem(), entry=entry)
    result = LocksetResult(entry=entry, block_in=block_in)
    for block, state in block_in.items():
        for instr in program.blocks[block].instructions:
            result.must_at[instr.uid] = state.must
            result.poisoned_at[instr.uid] = state.poisoned
            state = transfer_instr(state, instr)
    return result
