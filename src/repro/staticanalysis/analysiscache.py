"""One static-analysis pass per program, shared by every consumer.

The sharing-detector prepass, the linter, the static race analyzer and
the elision planner all start from the same expensive artifacts: the CFG
and the context discovery + footprint pass. Before this module each
consumer rebuilt them from scratch — up to four CFG constructions per
harness job. :func:`analysis_for` memoizes a :class:`ProgramAnalysis`
per *program fingerprint* (a content hash, so two structurally identical
builds of the same workload share an entry even across distinct
``Program`` objects), and each artifact inside it is computed lazily at
most once.

The cache is bounded (:data:`MAX_ENTRIES`, FIFO eviction) and safe under
the harness's process-pool parallelism: each worker process has its own
cache, and every artifact is a pure function of the finalized program.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import List, Optional, TYPE_CHECKING

from repro.machine.program import Program
from repro.staticanalysis.cfg import CFG
from repro.staticanalysis.lockset import (
    LocksetResult,
    compute_locksets,
    lock_touching_entries,
)
from repro.staticanalysis.sharing import (
    Context,
    SharingReport,
    _compute_footprints,
    classify_sharing,
    discover_contexts,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.staticanalysis.elision import ElisionPlan
    from repro.staticanalysis.lint import Finding
    from repro.staticanalysis.races import StaticRaceReport

#: Cached programs per process; eviction is FIFO (oldest insert first).
MAX_ENTRIES = 32

_MISSING = object()


def program_fingerprint(program: Program) -> str:
    """Content hash identifying a finalized program's analysis inputs.

    Covers everything the static analyses read: the instruction stream
    (via ``repr``, which round-trips through the disassembler), block
    labels and order, and every data segment's name/size/writability and
    initial words. Deliberately excludes object identity, so rebuilding
    the same workload in another process hits the same corpus entry.
    """
    h = hashlib.sha256()
    h.update(program.name.encode())
    for block in program.blocks:
        h.update(b"\x00B")
        h.update(block.label.encode())
        for instr in block.instructions:
            h.update(b"\x00I")
            h.update(repr(instr).encode())
    for seg in program.segments:
        h.update(b"\x00S")
        h.update(f"{seg.name}|{seg.size}|{int(seg.writable)}".encode())
        for off in sorted(seg.initial):
            h.update(f"|{off}:{seg.initial[off]}".encode())
    return h.hexdigest()


class ProgramAnalysis:
    """Lazily-computed static-analysis artifacts for one program."""

    def __init__(self, program: Program, fingerprint: str):
        self.program = program
        self.fingerprint = fingerprint
        self._cfg: Optional[CFG] = None
        self._contexts: Optional[List[Context]] = None
        self._discovery_reason: Optional[str] = None
        self._sharing: Optional[SharingReport] = None
        self._locksets: Optional[List[LocksetResult]] = None
        self._races = _MISSING
        self._elision = _MISSING
        self._lint = _MISSING

    @property
    def cfg(self) -> CFG:
        if self._cfg is None:
            self._cfg = CFG(self.program)
        return self._cfg

    def _discover(self) -> None:
        if self._contexts is None:
            contexts, reason = discover_contexts(self.cfg)
            if not reason:
                for ctx in contexts:
                    _compute_footprints(self.cfg, ctx)
            self._contexts = contexts
            self._discovery_reason = reason

    @property
    def contexts(self) -> List[Context]:
        """Discovered thread contexts, footprints already computed."""
        self._discover()
        return self._contexts

    @property
    def discovery_reason(self) -> str:
        """Nonempty when context discovery bailed out."""
        self._discover()
        return self._discovery_reason

    @property
    def sharing(self) -> SharingReport:
        if self._sharing is None:
            self._sharing = classify_sharing(
                self.program, self.cfg, contexts=self.contexts,
                discovery_reason=self.discovery_reason)
        return self._sharing

    @property
    def locksets(self) -> List[LocksetResult]:
        """Per-context sound must-locksets (parallel to ``contexts``)."""
        if self._locksets is None:
            touching = lock_touching_entries(self.cfg)
            self._locksets = [
                compute_locksets(self.cfg, ctx.states,
                                 entry=ctx.key.entry, touching=touching)
                for ctx in self.contexts]
        return self._locksets

    @property
    def races(self) -> "StaticRaceReport":
        if self._races is _MISSING:
            from repro.staticanalysis.races import analyze_races

            locksets = None if self.discovery_reason else self.locksets
            self._races = analyze_races(
                self.program, cfg=self.cfg, contexts=self.contexts,
                discovery_reason=self.discovery_reason,
                locksets=locksets)
        return self._races

    @property
    def elision(self) -> "ElisionPlan":
        if self._elision is _MISSING:
            from repro.staticanalysis.elision import build_elision_plan

            self._elision = build_elision_plan(self)
        return self._elision

    @property
    def lint(self) -> List["Finding"]:
        if self._lint is _MISSING:
            from repro.staticanalysis.lint import lint_program

            self._lint = lint_program(self.program, cfg=self.cfg,
                                      _cacheable=False)
        return self._lint


_CACHE: "OrderedDict[str, ProgramAnalysis]" = OrderedDict()


def analysis_for(program: Program) -> ProgramAnalysis:
    """The (cached) :class:`ProgramAnalysis` for ``program``."""
    key = program_fingerprint(program)
    entry = _CACHE.get(key)
    if entry is None:
        entry = ProgramAnalysis(program, key)
        _CACHE[key] = entry
        while len(_CACHE) > MAX_ENTRIES:
            _CACHE.popitem(last=False)
    return entry


def cache_info() -> dict:
    """Introspection for tests: fingerprints currently cached."""
    return {"entries": len(_CACHE), "max_entries": MAX_ENTRIES,
            "fingerprints": list(_CACHE)}


def clear_cache() -> None:
    _CACHE.clear()
