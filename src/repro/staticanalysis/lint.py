"""Workload linter: structural and concurrency checks over programs.

Driven by ``aikido-repro lint``; also wired into ``scripts/smoke.sh`` so
every bundled workload stays clean. Checks:

* ``unreachable-block`` — basic blocks no thread can ever reach;
* ``never-written-register`` — a register is read but no reachable
  instruction ever writes it (registers start at zero, so this is legal
  but almost always a bug; ``r1`` is exempt as the spawn argument);
* ``direct-address-out-of-segment`` — a direct memory operand outside
  every declared :class:`~repro.machine.program.DataSegment`;
* ``store-to-readonly-segment`` — a store/atomic whose address provably
  lies in a ``writable=False`` segment;
* ``unlock-unheld`` / ``double-acquire`` / ``halt-holding-lock`` —
  lockset dataflow along each thread context's paths (the guest kernel
  raises at runtime for the first two; the third deadlocks peers);
* ``barrier-arity-mismatch`` — one barrier id used with conflicting
  party counts (or a provably non-positive count);
* ``join-non-tid`` — JOIN of a register that cannot hold a thread id
  (never receives a SPAWN result, a spawn argument, or loaded data).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.machine.isa import MEMORY_OPCODES, Instruction, Opcode
from repro.machine.layout import HEAP_BASE, STATIC_BASE, static_segment_bases
from repro.machine.program import Program
from repro.staticanalysis.cfg import CFG, THREAD_EDGES, EdgeKind
from repro.staticanalysis.constprop import (
    AVal,
    ConstProp,
    RegState,
    initial_regs,
    instruction_address_bounds,
)
from repro.staticanalysis.lockset import (
    LockState,
    resolve_lock_id,
    step_lock_state,
)


@dataclass(frozen=True)
class Finding:
    """One lint diagnostic."""

    check: str
    severity: str  # "error" | "warning"
    message: str
    block: Optional[str] = None
    uid: Optional[int] = None

    def render(self) -> str:
        where = f" [{self.block}]" if self.block else ""
        return f"{self.severity}: {self.check}{where}: {self.message}"


def _read_registers(instr: Instruction) -> List[int]:
    op = instr.op
    regs: List[int] = []
    if op in (Opcode.MOV, Opcode.BZ, Opcode.BNZ, Opcode.JOIN,
              Opcode.SPAWN, Opcode.BARRIER, Opcode.WAIT):
        regs.append(instr.rs1)
    elif op in (Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.AND,
                Opcode.OR, Opcode.XOR, Opcode.SHL, Opcode.SHR,
                Opcode.MOD):
        regs.append(instr.rs1)
        if instr.rs2 is not None:
            regs.append(instr.rs2)
    elif op in (Opcode.BLT, Opcode.BGE):
        regs.extend((instr.rs1, instr.rs2))
    elif op in (Opcode.STORE, Opcode.ATOMIC_ADD):
        regs.append(instr.rs1)
    elif op in (Opcode.LOCK, Opcode.UNLOCK, Opcode.NOTIFY):
        if instr.rs1 is not None:
            regs.append(instr.rs1)
    if instr.mem is not None and instr.mem.base is not None:
        regs.append(instr.mem.base)
    return regs


def _written_registers(instr: Instruction) -> List[int]:
    op = instr.op
    if op in (Opcode.LI, Opcode.MOV, Opcode.ADD, Opcode.SUB, Opcode.MUL,
              Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SHL, Opcode.SHR,
              Opcode.MOD, Opcode.LOAD, Opcode.SPAWN):
        return [instr.rd]
    if op is Opcode.ATOMIC_ADD and instr.rd is not None:
        return [instr.rd]
    if op in (Opcode.SYSCALL, Opcode.HYPERCALL):
        return [0]  # result register
    return []


# ---------------------------------------------------------------------
# individual checks
# ---------------------------------------------------------------------
def _check_unreachable(cfg: CFG) -> List[Finding]:
    return [
        Finding("unreachable-block", "warning",
                f"block {cfg.program.blocks[bi].label!r} is unreachable "
                f"from the entry",
                block=cfg.program.blocks[bi].label)
        for bi in cfg.unreachable_blocks()
    ]


def _check_never_written(cfg: CFG, live: Set[int]) -> List[Finding]:
    program = cfg.program
    written = {1}  # r1 is the spawn-argument register
    for bi in live:
        for instr in program.blocks[bi].instructions:
            written.update(_written_registers(instr))
    findings = []
    for bi in sorted(live):
        block = program.blocks[bi]
        for instr in block.instructions:
            bad = [r for r in _read_registers(instr) if r not in written]
            if bad:
                regs = ", ".join(f"r{r}" for r in sorted(set(bad)))
                findings.append(Finding(
                    "never-written-register", "warning",
                    f"{instr!r} reads {regs}, which no reachable "
                    f"instruction writes (always zero)",
                    block=block.label, uid=instr.uid))
    return findings


def _segment_ranges(program: Program) -> List[Tuple[str, int, int, bool]]:
    segments = program.segments
    bases = static_segment_bases([s.size for s in segments])
    return [(seg.name, base, base + seg.size, seg.writable)
            for seg, base in zip(segments, bases)]


def _check_direct_addresses(cfg: CFG, live: Set[int]) -> List[Finding]:
    program = cfg.program
    ranges = _segment_ranges(program)
    findings = []
    for bi in sorted(live):
        block = program.blocks[bi]
        for instr in block.instructions:
            if instr.op not in MEMORY_OPCODES or instr.mem.base is not None:
                continue
            addr = instr.mem.disp
            hit = next((r for r in ranges
                        if r[1] <= addr and addr + 8 <= r[2]), None)
            if hit is None:
                severity = ("error"
                            if STATIC_BASE <= addr < HEAP_BASE or not ranges
                            else "warning")
                findings.append(Finding(
                    "direct-address-out-of-segment", severity,
                    f"{instr!r} targets {addr:#x}, outside every "
                    f"declared data segment",
                    block=block.label, uid=instr.uid))
            elif instr.is_write and not hit[3]:
                findings.append(Finding(
                    "store-to-readonly-segment", "error",
                    f"{instr!r} writes {addr:#x} in read-only "
                    f"segment {hit[0]!r}",
                    block=block.label, uid=instr.uid))
    return findings


def _entry_contexts(cfg: CFG) -> List[int]:
    """Entry blocks of every thread context (main + spawn targets)."""
    entries = [0]
    for _, _, target in cfg.spawn_sites:
        if target not in entries:
            entries.append(target)
    return entries


def _entry_states(cfg: CFG, entry: int) -> Dict[int, RegState]:
    # Spawned contexts receive an unknown (possibly-tid) argument; main
    # starts with r1 = 0, but using TOP for it too keeps the lint checks
    # uniformly conservative.
    arg = AVal.top(maybe_tid=True)
    cp = ConstProp(cfg, initial_regs(arg))
    return cp.states_at_instructions(entry=entry)


def _check_indirect_ro_stores(cfg: CFG, entries_states) -> List[Finding]:
    program = cfg.program
    ro = [(name, lo, hi) for name, lo, hi, writable
          in _segment_ranges(program) if not writable]
    if not ro:
        return []
    findings = []
    seen = set()
    for states in entries_states.values():
        for uid, regs in states.items():
            instr = program.instruction_at(uid)
            if not instr.is_write or instr.mem is None \
                    or instr.mem.base is None or uid in seen:
                continue
            bounds = instruction_address_bounds(instr, regs)
            if bounds is None:
                continue
            hit = next((r for r in ro
                        if r[1] <= bounds[0] and bounds[1] + 8 <= r[2]),
                       None)
            if hit is not None:
                seen.add(uid)
                bi = cfg.instruction_block(uid)
                findings.append(Finding(
                    "store-to-readonly-segment", "error",
                    f"{instr!r} provably writes read-only segment "
                    f"{hit[0]!r} (address range "
                    f"[{bounds[0]:#x}, {bounds[1]:#x}])",
                    block=program.blocks[bi].label, uid=uid))
    return findings


def _check_locks(cfg: CFG, entry: int,
                 states: Dict[int, RegState]) -> List[Finding]:
    """Lockset dataflow over one thread context; findings emitted once
    per (uid, problem) on the final fixed-point states.

    State evolution is the shared :func:`step_lock_state` transfer in
    its lint (``sound=False``) mode: unresolved ids poison but keep the
    sets, so ``unlock-unheld`` still keys off the accumulated ``may``
    set; the race analyzer's sound mode lives in
    :mod:`repro.staticanalysis.lockset`.
    """
    from repro.staticanalysis.dataflow import ForwardProblem, solve_forward

    program = cfg.program

    def step(state: LockState, instr: Instruction,
             findings: Optional[List[Finding]],
             block_label: str) -> LockState:
        if instr.op in (Opcode.LOCK, Opcode.UNLOCK):
            lock = resolve_lock_id(instr, states.get(instr.uid))
            if findings is not None and lock is not None \
                    and not state.poisoned:
                if instr.op is Opcode.LOCK and lock in state.must:
                    findings.append(Finding(
                        "double-acquire", "error",
                        f"{instr!r} re-acquires lock {lock} already held "
                        f"on every path here (the kernel raises on "
                        f"recursive acquire)",
                        block=block_label, uid=instr.uid))
                elif instr.op is Opcode.UNLOCK and lock not in state.may:
                    findings.append(Finding(
                        "unlock-unheld", "error",
                        f"{instr!r} releases lock {lock}, which is not "
                        f"held on any path here",
                        block=block_label, uid=instr.uid))
            return step_lock_state(state, instr, lock, sound=False)
        return step_lock_state(state, instr, None, sound=False)

    class _Problem(ForwardProblem):
        edge_kinds = THREAD_EDGES

        def initial(self):
            return LockState()

        def entry_state(self):
            return LockState()

        def join(self, a, b):
            return a.join(b)

        def transfer(self, block, state):
            for instr in program.blocks[block].instructions:
                state = step(state, instr, None, "")
            return state

    in_states = solve_forward(cfg, _Problem(), entry=entry)
    findings: List[Finding] = []
    for block, state in in_states.items():
        label = program.blocks[block].label
        for instr in program.blocks[block].instructions:
            state = step(state, instr, findings, label)
            if instr.op is Opcode.HALT and state.must \
                    and not state.poisoned:
                locks = ", ".join(str(x) for x in sorted(state.must))
                findings.append(Finding(
                    "halt-holding-lock", "error",
                    f"thread halts while still holding lock(s) {locks}",
                    block=label, uid=instr.uid))
    return findings


def _check_barriers(cfg: CFG, entries_states) -> List[Finding]:
    program = cfg.program
    arity: Dict[int, Set[int]] = {}
    locations: Dict[int, Tuple[str, int]] = {}
    findings: List[Finding] = []
    flagged: Set[int] = set()
    for states in entries_states.values():
        for uid, regs in states.items():
            instr = program.instruction_at(uid)
            if instr.op is not Opcode.BARRIER:
                continue
            label = program.blocks[cfg.instruction_block(uid)].label
            locations.setdefault(instr.imm, (label, uid))
            parties = regs[instr.rs1].as_constant()
            if parties is None:
                continue
            if parties == 0 or parties > (1 << 31):
                if uid not in flagged:
                    flagged.add(uid)
                    findings.append(Finding(
                        "barrier-arity-mismatch", "error",
                        f"{instr!r} waits on barrier {instr.imm} with a "
                        f"non-positive party count ({parties})",
                        block=label, uid=uid))
                continue
            arity.setdefault(instr.imm, set()).add(parties)
    for barrier_id, parties in sorted(arity.items()):
        if len(parties) > 1:
            label, uid = locations[barrier_id]
            counts = ", ".join(str(p) for p in sorted(parties))
            findings.append(Finding(
                "barrier-arity-mismatch", "error",
                f"barrier {barrier_id} is used with conflicting party "
                f"counts: {counts} (threads would wait forever)",
                block=label, uid=uid))
    return findings


def _check_joins(cfg: CFG, entries_states) -> List[Finding]:
    program = cfg.program
    findings = []
    flagged: Set[int] = set()
    for states in entries_states.values():
        for uid, regs in states.items():
            instr = program.instruction_at(uid)
            if instr.op is not Opcode.JOIN or uid in flagged:
                continue
            val = regs[instr.rs1]
            if not val.maybe_tid and not val.is_bot:
                flagged.add(uid)
                label = program.blocks[cfg.instruction_block(uid)].label
                findings.append(Finding(
                    "join-non-tid", "error",
                    f"{instr!r} joins r{instr.rs1} = {val!r}, which "
                    f"can never hold a spawned thread id",
                    block=label, uid=uid))
    return findings


# ---------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------
def lint_program(program: Program, cfg: Optional[CFG] = None,
                 _cacheable: bool = True) -> List[Finding]:
    """Run every lint check; returns findings (errors first).

    By default the result is memoized per program fingerprint (the
    fuzz campaign lints every rendered scenario, often twice for the
    reduced form); ``_cacheable=False`` is the cache's own entry point.
    """
    if _cacheable and cfg is None:
        from repro.staticanalysis.analysiscache import analysis_for

        return analysis_for(program).lint
    if cfg is None:
        cfg = CFG(program)
    live = cfg.reachable(0)
    findings: List[Finding] = []
    findings += _check_unreachable(cfg)
    findings += _check_never_written(cfg, live)
    findings += _check_direct_addresses(cfg, live)
    entries_states = {entry: _entry_states(cfg, entry)
                      for entry in _entry_contexts(cfg)}
    findings += _check_indirect_ro_stores(cfg, entries_states)
    for entry, states in entries_states.items():
        findings += _check_locks(cfg, entry, states)
    findings += _check_barriers(cfg, entries_states)
    findings += _check_joins(cfg, entries_states)
    # A uid shared by several contexts can trip the same check once per
    # context; report it once.
    seen: Set[Tuple[str, Optional[int], Optional[str]]] = set()
    unique = []
    for f in findings:
        key = (f.check, f.uid, f.block if f.uid is None else None)
        if key in seen:
            continue
        seen.add(key)
        unique.append(f)
    order = {"error": 0, "warning": 1}
    unique.sort(key=lambda f: (order.get(f.severity, 2), f.check,
                               f.uid if f.uid is not None else -1))
    return unique
