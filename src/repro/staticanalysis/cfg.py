"""Basic-block control-flow graph over a finalized Program.

Edges carry a kind so client analyses can select which control transfers
they follow:

* ``FALL`` — implicit fallthrough into the next block (no terminator, or
  the not-taken side of a conditional branch);
* ``BRANCH`` — an explicit JMP/BZ/BNZ/BLT/BGE target;
* ``CALL`` — entry into a callee (CALL is *not* a block terminator in
  this ISA: control returns to the same block, so the caller block keeps
  its own fallthrough/branch edges as well);
* ``SPAWN`` — a new thread starting at the spawn target.

Intra-thread analyses (constant propagation, locksets) follow
FALL/BRANCH/CALL; whole-program reachability follows everything.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.machine.isa import BLOCK_TERMINATORS, Instruction, Opcode
from repro.machine.program import Program

#: Conditional branches: taken edge plus fallthrough.
CONDITIONAL_BRANCHES = frozenset({
    Opcode.BZ, Opcode.BNZ, Opcode.BLT, Opcode.BGE,
})


class EdgeKind(enum.Enum):
    FALL = "fall"
    BRANCH = "branch"
    CALL = "call"
    SPAWN = "spawn"


#: The edge kinds a single thread's execution can follow without
#: creating a new thread.
THREAD_EDGES = frozenset({EdgeKind.FALL, EdgeKind.BRANCH, EdgeKind.CALL})
ALL_EDGES = frozenset(EdgeKind)


class CFG:
    """Control-flow graph: block indices as nodes, kind-tagged edges."""

    def __init__(self, program: Program):
        if not program.finalized:
            raise ValueError("CFG requires a finalized program")
        self.program = program
        n = len(program.blocks)
        #: block -> [(successor, kind)]
        self.succs: List[List[Tuple[int, EdgeKind]]] = [[] for _ in range(n)]
        #: block -> [(predecessor, kind)]
        self.preds: List[List[Tuple[int, EdgeKind]]] = [[] for _ in range(n)]
        #: blocks containing a SPAWN, with (block, position, target block).
        self.spawn_sites: List[Tuple[int, int, int]] = []
        #: blocks ending in RET (thread control returns to the caller).
        self.return_blocks: Set[int] = set()
        #: blocks ending in HALT (thread exit points).
        self.halt_blocks: Set[int] = set()
        self._build()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _add_edge(self, src: int, dst: int, kind: EdgeKind) -> None:
        self.succs[src].append((dst, kind))
        self.preds[dst].append((src, kind))

    def _build(self) -> None:
        program = self.program
        n = len(program.blocks)
        for bi, block in enumerate(program.blocks):
            for pos, instr in enumerate(block.instructions):
                if instr.op is Opcode.CALL:
                    self._add_edge(bi, program.label_index(instr.label),
                                   EdgeKind.CALL)
                elif instr.op is Opcode.SPAWN:
                    target = program.label_index(instr.label)
                    self._add_edge(bi, target, EdgeKind.SPAWN)
                    self.spawn_sites.append((bi, pos, target))
            last = block.instructions[-1] if block.instructions else None
            if last is None or last.op not in BLOCK_TERMINATORS:
                if bi + 1 < n:
                    self._add_edge(bi, bi + 1, EdgeKind.FALL)
                continue
            op = last.op
            if op is Opcode.JMP:
                self._add_edge(bi, program.label_index(last.label),
                               EdgeKind.BRANCH)
            elif op in CONDITIONAL_BRANCHES:
                self._add_edge(bi, program.label_index(last.label),
                               EdgeKind.BRANCH)
                if bi + 1 < n:
                    self._add_edge(bi, bi + 1, EdgeKind.FALL)
            elif op is Opcode.RET:
                self.return_blocks.add(bi)
            elif op is Opcode.HALT:
                self.halt_blocks.add(bi)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def successors(self, block: int,
                   kinds: FrozenSet[EdgeKind] = ALL_EDGES
                   ) -> Iterable[int]:
        for dst, kind in self.succs[block]:
            if kind in kinds:
                yield dst

    def reachable(self, entry: int = 0,
                  kinds: FrozenSet[EdgeKind] = ALL_EDGES) -> Set[int]:
        """Blocks reachable from ``entry`` following the given edge kinds."""
        seen = {entry}
        stack = [entry]
        while stack:
            block = stack.pop()
            for dst, kind in self.succs[block]:
                if kind in kinds and dst not in seen:
                    seen.add(dst)
                    stack.append(dst)
        return seen

    def unreachable_blocks(self) -> List[int]:
        """Blocks no thread can ever execute (dead code)."""
        live = self.reachable(0, ALL_EDGES)
        return [bi for bi in range(len(self.program.blocks))
                if bi not in live]

    def dominators(self, entry: int = 0,
                   kinds: FrozenSet[EdgeKind] = THREAD_EDGES
                   ) -> Dict[int, Set[int]]:
        """Classic iterative dominator sets over the chosen subgraph.

        ``dom[b]`` is the set of blocks on every path from ``entry`` to
        ``b`` (including ``b``). Blocks unreachable from ``entry`` are
        absent from the result.
        """
        live = self.reachable(entry, kinds)
        dom: Dict[int, Set[int]] = {b: set(live) for b in live}
        dom[entry] = {entry}
        changed = True
        while changed:
            changed = False
            for block in sorted(live):
                if block == entry:
                    continue
                preds = [p for p, kind in self.preds[block]
                         if kind in kinds and p in live]
                if preds:
                    new = set.intersection(*(dom[p] for p in preds))
                else:
                    new = set()
                new.add(block)
                if new != dom[block]:
                    dom[block] = new
                    changed = True
        return dom

    def blocks_in_cycles(self, kinds: FrozenSet[EdgeKind] = THREAD_EDGES
                         ) -> Set[int]:
        """Blocks that sit on some cycle (may execute more than once).

        Used by the sharing classifier to detect spawn sites inside
        loops: such a site can create several threads, so everything its
        thread context touches must be treated as multi-instance.
        """
        in_cycle: Set[int] = set()
        n = len(self.program.blocks)
        for start in range(n):
            if start in in_cycle:
                continue
            # DFS from each successor of `start`, looking for a way back.
            stack = [dst for dst, kind in self.succs[start]
                     if kind in kinds]
            seen: Set[int] = set()
            while stack:
                block = stack.pop()
                if block == start:
                    in_cycle.add(start)
                    break
                if block in seen:
                    continue
                seen.add(block)
                stack.extend(dst for dst, kind in self.succs[block]
                             if kind in kinds)
        return in_cycle

    def instruction_block(self, uid: int) -> int:
        return self.program.instruction_locations[uid][0]

    def iter_block_instructions(self, block: int
                                ) -> Iterable[Tuple[int, Instruction]]:
        for pos, instr in enumerate(self.program.blocks[block].instructions):
            yield pos, instr

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        edges = sum(len(s) for s in self.succs)
        return (f"<CFG blocks={len(self.program.blocks)} edges={edges} "
                f"spawns={len(self.spawn_sites)}>")


def build_cfg(program: Program) -> CFG:
    """Convenience constructor (mirrors the other layers' factories)."""
    return CFG(program)
