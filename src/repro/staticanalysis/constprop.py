"""Per-register constant / interval propagation.

The abstract value :class:`AVal` tracks what a 64-bit register may hold:

* ``BOT`` — unreachable / no value yet;
* a small set of known constants (at most :data:`MAX_CONSTS`);
* an unsigned interval ``[lo, hi]``;
* a *strided multi-interval*: a small set of base constants plus a
  bounded offset, ``{c + d : c in consts, 0 <= d <= width}`` — the
  shape of "partition base (ring generation x owner) + random index"
  address arithmetic that pipeline workloads use. Without it, adding a
  bounded random offset to a set of partition bases collapses to one
  interval spanning every partition, and per-thread privacy is lost;
* ``TOP`` — anything.

Each value also carries a ``maybe_tid`` taint: set on SPAWN results (and
anything they flow into), it lets the linter flag ``JOIN`` of a register
that provably never saw a thread id.

Transfer functions mirror :meth:`repro.machine.cpu.CPU.execute` exactly:
64-bit wrapping arithmetic (a potentially wrapping interval degrades to
TOP rather than modelling the wrap), unsigned comparisons, shift counts
masked to 6 bits, ``x % m`` in ``[0, m-1]``. The analysis is
intra-thread (FALL/BRANCH edges); CALL targets are seeded with all-TOP
entry states and registers are clobbered to TOP after a CALL returns,
which is sound for arbitrary callees. Conditional branches refine the
tested registers along their taken/fall-through edges, which is what
lets loop-strided address registers stay bounded.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from repro.machine.isa import REGISTER_COUNT, Instruction, Opcode
from repro.staticanalysis.cfg import CFG, EdgeKind
from repro.staticanalysis.dataflow import ForwardProblem, solve_forward

_MASK64 = 0xFFFFFFFFFFFFFFFF
_UMAX = _MASK64

#: Constant sets larger than this degrade to an interval.
MAX_CONSTS = 16

#: Widening ladder: ascending bound landmarks (see :meth:`AVal.widen`).
_WIDEN_THRESHOLDS = tuple(
    [0] + [1 << k for k in (8, 12, 16, 20, 24, 28, 29, 30, 31, 32,
                            36, 40, 48, 56)] + [_UMAX])

_BOT, _CONST, _RANGE, _SETOFF, _TOP = \
    "bot", "const", "range", "setoff", "top"


class AVal:
    """Abstract 64-bit register value (immutable).

    For the ``setoff`` kind, ``consts`` holds the base constants and
    ``hi`` the inclusive offset width (``lo`` is unused and stays 0):
    the concrete values are ``{c + d : c in consts, 0 <= d <= hi}``.
    """

    __slots__ = ("kind", "consts", "lo", "hi", "maybe_tid")

    def __init__(self, kind: str, consts: FrozenSet[int] = frozenset(),
                 lo: int = 0, hi: int = 0, maybe_tid: bool = False):
        self.kind = kind
        self.consts = consts
        self.lo = lo
        self.hi = hi
        self.maybe_tid = maybe_tid

    # -- constructors ---------------------------------------------------
    @staticmethod
    def bot() -> "AVal":
        return _BOT_VAL

    @staticmethod
    def top(maybe_tid: bool = False) -> "AVal":
        return _TID_TOP_VAL if maybe_tid else _TOP_VAL

    @staticmethod
    def const(value: int, maybe_tid: bool = False) -> "AVal":
        return AVal(_CONST, frozenset((value & _MASK64,)),
                    maybe_tid=maybe_tid)

    @staticmethod
    def const_set(values: Iterable[int],
                  maybe_tid: bool = False) -> "AVal":
        vals = frozenset(v & _MASK64 for v in values)
        if not vals:
            return _BOT_VAL
        if len(vals) > MAX_CONSTS:
            return AVal.range(min(vals), max(vals), maybe_tid)
        return AVal(_CONST, vals, maybe_tid=maybe_tid)

    @staticmethod
    def range(lo: int, hi: int, maybe_tid: bool = False) -> "AVal":
        if lo > hi:
            return _BOT_VAL
        if lo < 0 or hi > _UMAX:
            return AVal.top(maybe_tid)
        if lo == hi:
            return AVal.const(lo, maybe_tid)
        if hi - lo + 1 <= MAX_CONSTS:
            return AVal(_CONST, frozenset(range(lo, hi + 1)),
                        maybe_tid=maybe_tid)
        return AVal(_RANGE, lo=lo, hi=hi, maybe_tid=maybe_tid)

    @staticmethod
    def setoff(consts: Iterable[int], width: int,
               maybe_tid: bool = False) -> "AVal":
        """Base constants plus a bounded offset ``[0, width]``.

        Normalizes aggressively: zero width is a constant set, a single
        base (or bases whose windows all touch) is a plain interval, and
        more than :data:`MAX_CONSTS` bases degrade to the covering
        interval.
        """
        vals = frozenset(c & _MASK64 for c in consts)
        if not vals:
            return _BOT_VAL
        if width <= 0:
            return AVal.const_set(vals, maybe_tid)
        top = max(vals) + width
        if top > _UMAX:
            return AVal.top(maybe_tid)
        if len(vals) == 1 or len(vals) > MAX_CONSTS:
            return AVal.range(min(vals), top, maybe_tid)
        ordered = sorted(vals)
        if all(b - a <= width + 1
               for a, b in zip(ordered, ordered[1:])):
            return AVal.range(ordered[0], top, maybe_tid)
        return AVal(_SETOFF, vals, hi=width, maybe_tid=maybe_tid)

    # -- predicates -----------------------------------------------------
    @property
    def is_bot(self) -> bool:
        return self.kind == _BOT

    @property
    def is_top(self) -> bool:
        return self.kind == _TOP

    def bounds(self) -> Optional[Tuple[int, int]]:
        """(lo, hi) for bounded values, None for TOP/BOT."""
        if self.kind == _CONST:
            return (min(self.consts), max(self.consts))
        if self.kind == _RANGE:
            return (self.lo, self.hi)
        if self.kind == _SETOFF:
            return (min(self.consts), max(self.consts) + self.hi)
        return None

    def intervals(self) -> Optional[Tuple[Tuple[int, int], ...]]:
        """Disjoint concrete-value intervals, sorted ascending.

        ``None`` for TOP (unbounded), ``()`` for BOT. This is the
        footprint computation's entry point: a ``setoff`` value yields
        one interval per base constant instead of a single covering
        interval.
        """
        if self.kind == _CONST:
            raw = [(c, c) for c in sorted(self.consts)]
        elif self.kind == _RANGE:
            return ((self.lo, self.hi),)
        elif self.kind == _SETOFF:
            raw = [(c, c + self.hi) for c in sorted(self.consts)]
        elif self.kind == _BOT:
            return ()
        else:
            return None
        merged = [raw[0]]
        for lo, hi in raw[1:]:
            if lo <= merged[-1][1] + 1:
                merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
            else:
                merged.append((lo, hi))
        return tuple(merged)

    def as_constant(self) -> Optional[int]:
        """The single concrete value, if there is exactly one."""
        if self.kind == _CONST and len(self.consts) == 1:
            return next(iter(self.consts))
        return None

    def may_contain(self, value: int) -> bool:
        """Could this value concretely be ``value``?"""
        if self.kind == _TOP:
            return True
        if self.kind == _CONST:
            return value in self.consts
        if self.kind == _RANGE:
            return self.lo <= value <= self.hi
        if self.kind == _SETOFF:
            return any(c <= value <= c + self.hi for c in self.consts)
        return False

    # -- lattice --------------------------------------------------------
    def join(self, other: "AVal") -> "AVal":
        if self.is_bot:
            return other.with_tid(self.maybe_tid or other.maybe_tid) \
                if self.maybe_tid else other
        if other.is_bot:
            return self.with_tid(self.maybe_tid or other.maybe_tid) \
                if other.maybe_tid else self
        tid = self.maybe_tid or other.maybe_tid
        if self.is_top or other.is_top:
            return AVal.top(tid)
        if self.kind == _CONST and other.kind == _CONST:
            return AVal.const_set(self.consts | other.consts, tid)
        if _SETOFF in (self.kind, other.kind):
            a, b = ((self, other) if self.kind == _SETOFF
                    else (other, self))
            if b.kind == _CONST:
                return AVal.setoff(a.consts | b.consts, a.hi, tid)
            if b.kind == _SETOFF:
                return AVal.setoff(a.consts | b.consts,
                                   max(a.hi, b.hi), tid)
            # b is a range: fold it in as one more base window.
            return AVal.setoff(a.consts | {b.lo},
                               max(a.hi, b.hi - b.lo), tid)
        a, b = self.bounds(), other.bounds()
        return AVal.range(min(a[0], b[0]), max(a[1], b[1]), tid)

    def widen(self, other: "AVal") -> "AVal":
        """Widening: unstable bounds jump to the next threshold.

        Thresholds are powers of two, which are also exactly the
        address-space region bases (static 2^28, heap 2^29, mmap 2^30,
        mirror 2^31) — so an address register that grows once settles at
        its region boundary instead of blowing up to 2^64. The ladder is
        finite, so repeated widening still terminates at TOP.
        """
        joined = self.join(other)
        if joined == self:
            return self
        if joined.kind == _SETOFF:
            # Base sets only grow under join (capped at MAX_CONSTS,
            # beyond which setoff normalizes to a range), so the only
            # unstable dimension left is the offset width: jump it to
            # the next threshold like an interval bound.
            if self.kind == _SETOFF and joined.consts == self.consts \
                    and joined.hi > self.hi:
                w = next((t for t in _WIDEN_THRESHOLDS
                          if t >= joined.hi), _UMAX)
                return AVal.setoff(joined.consts, w, joined.maybe_tid)
            return joined
        mine, theirs = self.bounds(), joined.bounds()
        if mine is None or theirs is None:
            return joined
        lo, hi = theirs
        if hi > mine[1]:
            hi = next((t for t in _WIDEN_THRESHOLDS if t >= hi), _UMAX)
        if lo < mine[0]:
            lo = next((t for t in reversed(_WIDEN_THRESHOLDS)
                       if t <= lo), 0)
        if lo == 0 and hi == _UMAX:
            return AVal.top(joined.maybe_tid)
        return AVal.range(lo, hi, joined.maybe_tid)

    def with_tid(self, maybe_tid: bool) -> "AVal":
        if maybe_tid == self.maybe_tid:
            return self
        return AVal(self.kind, self.consts, self.lo, self.hi, maybe_tid)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, AVal)
                and self.kind == other.kind
                and self.consts == other.consts
                and self.lo == other.lo and self.hi == other.hi
                and self.maybe_tid == other.maybe_tid)

    def __hash__(self) -> int:
        return hash((self.kind, self.consts, self.lo, self.hi,
                     self.maybe_tid))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tid = "~tid" if self.maybe_tid else ""
        if self.kind == _CONST:
            vals = ",".join(f"{v:#x}" for v in sorted(self.consts))
            return f"{{{vals}}}{tid}"
        if self.kind == _RANGE:
            return f"[{self.lo:#x},{self.hi:#x}]{tid}"
        if self.kind == _SETOFF:
            vals = ",".join(f"{v:#x}" for v in sorted(self.consts))
            return f"{{{vals}}}+[0,{self.hi:#x}]{tid}"
        return self.kind.upper() + tid


_BOT_VAL = AVal(_BOT)
_TOP_VAL = AVal(_TOP)
_TID_TOP_VAL = AVal(_TOP, maybe_tid=True)


def _pairwise(a: AVal, b: AVal, fn) -> Optional[AVal]:
    """Exact const-set x const-set arithmetic when small enough."""
    if (a.kind == _CONST and b.kind == _CONST
            and len(a.consts) * len(b.consts) <= MAX_CONSTS * MAX_CONSTS):
        tid = a.maybe_tid or b.maybe_tid
        return AVal.const_set(
            (fn(x, y) for x in a.consts for y in b.consts), tid)
    return None


def _decompose(v: AVal) -> Optional[Tuple[FrozenSet[int], int]]:
    """(base constants, offset width) normal form, or None.

    Every bounded value is ``{c + d : c in bases, 0 <= d <= width}``:
    a constant set has width 0, a range is one base plus its span, and
    setoff carries both. TOP/BOT have no decomposition.
    """
    if v.kind == _CONST:
        return v.consts, 0
    if v.kind == _RANGE:
        return frozenset((v.lo,)), v.hi - v.lo
    if v.kind == _SETOFF:
        return v.consts, v.hi
    return None


def av_add(a: AVal, b: AVal) -> AVal:
    if a.is_bot or b.is_bot:
        return AVal.bot()
    exact = _pairwise(a, b, lambda x, y: x + y)
    if exact is not None:
        return exact
    tid = a.maybe_tid or b.maybe_tid
    da, db = _decompose(a), _decompose(b)
    if da is not None and db is not None \
            and len(da[0]) * len(db[0]) <= MAX_CONSTS * MAX_CONSTS:
        bases = {x + y for x in da[0] for y in db[0]}
        if max(bases) + da[1] + db[1] <= _UMAX:
            return AVal.setoff(bases, da[1] + db[1], tid)
    ab, bb = a.bounds(), b.bounds()
    if ab is None or bb is None:
        return AVal.top(tid)
    lo, hi = ab[0] + bb[0], ab[1] + bb[1]
    if hi > _UMAX:  # may wrap
        return AVal.top(tid)
    return AVal.range(lo, hi, tid)


def av_sub(a: AVal, b: AVal) -> AVal:
    if a.is_bot or b.is_bot:
        return AVal.bot()
    exact = _pairwise(a, b, lambda x, y: x - y)
    if exact is not None:
        return exact
    tid = a.maybe_tid or b.maybe_tid
    da, db = _decompose(a), _decompose(b)
    if da is not None and db is not None \
            and len(da[0]) * len(db[0]) <= MAX_CONSTS * MAX_CONSTS:
        # (ca + da) - (cb + db) = (ca - cb - wb) + (da + (wb - db)),
        # so shift the bases down by wb and widen by wa + wb.
        bases = {x - y - db[1] for x in da[0] for y in db[0]}
        if min(bases) >= 0:
            return AVal.setoff(bases, da[1] + db[1], tid)
    ab, bb = a.bounds(), b.bounds()
    if ab is None or bb is None:
        return AVal.top(tid)
    lo, hi = ab[0] - bb[1], ab[1] - bb[0]
    if lo < 0:  # may wrap below zero
        return AVal.top(tid)
    return AVal.range(lo, hi, tid)


def av_mul(a: AVal, b: AVal) -> AVal:
    if a.is_bot or b.is_bot:
        return AVal.bot()
    exact = _pairwise(a, b, lambda x, y: x * y)
    if exact is not None:
        return exact
    tid = a.maybe_tid or b.maybe_tid
    ab, bb = a.bounds(), b.bounds()
    if ab is None or bb is None:
        return AVal.top(tid)
    hi = ab[1] * bb[1]
    if hi > _UMAX:
        return AVal.top(tid)
    return AVal.range(ab[0] * bb[0], hi, tid)


def av_and(a: AVal, b: AVal) -> AVal:
    if a.is_bot or b.is_bot:
        return AVal.bot()
    exact = _pairwise(a, b, lambda x, y: x & y)
    if exact is not None:
        return exact
    tid = a.maybe_tid or b.maybe_tid
    ab, bb = a.bounds(), b.bounds()
    # x & y <= min(x, y): either bounded operand bounds the result.
    if ab is None and bb is None:
        return AVal.top(tid)
    hi = min(b[1] for b in (ab, bb) if b is not None)
    return AVal.range(0, hi, tid)


def av_or(a: AVal, b: AVal) -> AVal:
    if a.is_bot or b.is_bot:
        return AVal.bot()
    exact = _pairwise(a, b, lambda x, y: x | y)
    if exact is not None:
        return exact
    tid = a.maybe_tid or b.maybe_tid
    ab, bb = a.bounds(), b.bounds()
    if ab is None or bb is None:
        return AVal.top(tid)
    # x | y never exceeds the next power of two above max(x, y).
    bits = max(ab[1].bit_length(), bb[1].bit_length())
    return AVal.range(max(ab[0], bb[0]), (1 << bits) - 1, tid)


def av_xor(a: AVal, b: AVal) -> AVal:
    if a.is_bot or b.is_bot:
        return AVal.bot()
    exact = _pairwise(a, b, lambda x, y: x ^ y)
    if exact is not None:
        return exact
    tid = a.maybe_tid or b.maybe_tid
    ab, bb = a.bounds(), b.bounds()
    if ab is None or bb is None:
        return AVal.top(tid)
    bits = max(ab[1].bit_length(), bb[1].bit_length())
    return AVal.range(0, (1 << bits) - 1, tid)


def av_shl(a: AVal, b: AVal) -> AVal:
    if a.is_bot or b.is_bot:
        return AVal.bot()
    exact = _pairwise(a, b, lambda x, y: x << (y & 63))
    if exact is not None:
        return exact
    tid = a.maybe_tid or b.maybe_tid
    ab = a.bounds()
    k = b.as_constant()
    if ab is None or k is None:
        return AVal.top(tid)
    k &= 63
    hi = ab[1] << k
    if hi > _UMAX:
        return AVal.top(tid)
    return AVal.range(ab[0] << k, hi, tid)


def av_shr(a: AVal, b: AVal) -> AVal:
    if a.is_bot or b.is_bot:
        return AVal.bot()
    exact = _pairwise(a, b, lambda x, y: x >> (y & 63))
    if exact is not None:
        return exact
    tid = a.maybe_tid or b.maybe_tid
    k = b.as_constant()
    if k is None:
        return AVal.top(tid)
    k &= 63
    ab = a.bounds()
    if ab is None:
        # Even TOP >> k is bounded: at most (2^64 - 1) >> k.
        return AVal.range(0, _UMAX >> k, tid)
    return AVal.range(ab[0] >> k, ab[1] >> k, tid)


def av_mod(a: AVal, b: AVal) -> AVal:
    if a.is_bot or b.is_bot:
        return AVal.bot()
    exact = _pairwise(a, b,
                      lambda x, y: x % y if y else 0) \
        if (b.kind == _CONST and 0 not in b.consts) else None
    if exact is not None and a.kind == _CONST:
        return exact
    tid = a.maybe_tid or b.maybe_tid
    bb = b.bounds()
    if bb is None:
        return AVal.top(tid)
    if bb[1] == 0:
        return AVal.bot()  # guaranteed modulo-by-zero trap
    ab = a.bounds()
    if ab is not None and ab[1] < bb[0] and bb[0] > 0:
        return a  # x % m == x when x < m for every possible m
    return AVal.range(0, bb[1] - 1, tid)


_ALU_FNS = {
    Opcode.ADD: av_add,
    Opcode.SUB: av_sub,
    Opcode.MUL: av_mul,
    Opcode.AND: av_and,
    Opcode.OR: av_or,
    Opcode.XOR: av_xor,
    Opcode.SHL: av_shl,
    Opcode.SHR: av_shr,
    Opcode.MOD: av_mod,
}

#: A register-file abstract state: one AVal per register.
RegState = Tuple[AVal, ...]


def initial_regs(arg: AVal = None) -> RegState:
    """Register file at thread start: all zero, ``r1`` = spawn arg."""
    regs = [AVal.const(0)] * REGISTER_COUNT
    if arg is not None:
        regs[1] = arg
    return tuple(regs)


def top_regs() -> RegState:
    """Fully unknown register file (CALL-target entry state)."""
    return (AVal.top(maybe_tid=True),) * REGISTER_COUNT


def instruction_address(instr: Instruction, regs: RegState) -> AVal:
    """Abstract effective address of a memory instruction."""
    mem = instr.mem
    if mem.base is None:
        return AVal.const(mem.disp)
    return av_add(regs[mem.base], AVal.const(mem.disp))


def instruction_address_bounds(instr: Instruction, regs: RegState
                               ) -> Optional[Tuple[int, int]]:
    """(lo, hi) bounds of the effective address, or None if unbounded."""
    return instruction_address(instr, regs).bounds()


class ConstProp(ForwardProblem):
    """Forward constant/interval propagation over one thread context.

    ``entry_regs`` is the register file at the context's entry block
    (main starts all-zero; a spawned thread starts all-zero with ``r1``
    set to the spawn argument's abstract value).
    """

    edge_kinds = frozenset({EdgeKind.FALL, EdgeKind.BRANCH})

    def __init__(self, cfg: CFG, entry_regs: Optional[RegState] = None):
        self.cfg = cfg
        self.entry_regs = entry_regs if entry_regs is not None \
            else initial_regs()
        #: Instruction states captured during the *final* pass; see
        #: :meth:`states_at_instructions`.
        self._capture: Optional[Dict[int, RegState]] = None

    # -- ForwardProblem interface --------------------------------------
    def initial(self) -> RegState:
        return (AVal.bot(),) * REGISTER_COUNT

    def entry_state(self) -> RegState:
        return self.entry_regs

    def join(self, a: RegState, b: RegState) -> RegState:
        return tuple(x.join(y) for x, y in zip(a, b))

    def widen(self, old: RegState, new: RegState) -> RegState:
        return tuple(x.widen(y) for x, y in zip(old, new))

    def transfer(self, block: int, state: RegState) -> RegState:
        regs = list(state)
        for pos, instr in self.cfg.iter_block_instructions(block):
            if self._capture is not None and instr.uid >= 0:
                self._capture[instr.uid] = tuple(regs)
            self._step(instr, regs)
        return tuple(regs)

    def edge_transfer(self, block: int, out: RegState, succ: int,
                      kind: EdgeKind) -> RegState:
        instrs = self.cfg.program.blocks[block].instructions
        if not instrs:
            return out
        last = instrs[-1]
        taken = kind is EdgeKind.BRANCH
        return _refine_branch(last, out, taken)

    # -- semantics ------------------------------------------------------
    def _step(self, instr: Instruction, regs) -> None:
        op = instr.op
        if op is Opcode.LI:
            regs[instr.rd] = AVal.const(instr.imm)
        elif op is Opcode.MOV:
            regs[instr.rd] = regs[instr.rs1]
        elif op in _ALU_FNS:
            rhs = (regs[instr.rs2] if instr.rs2 is not None
                   else AVal.const(instr.imm))
            regs[instr.rd] = _ALU_FNS[op](regs[instr.rs1], rhs)
        elif op is Opcode.LOAD:
            # Loaded data is unknown, and a stored tid could round-trip
            # through memory, so keep the taint conservative.
            regs[instr.rd] = AVal.top(maybe_tid=True)
        elif op is Opcode.ATOMIC_ADD:
            if instr.rd is not None:
                regs[instr.rd] = AVal.top(maybe_tid=True)
        elif op is Opcode.SPAWN:
            regs[instr.rd] = AVal.top(maybe_tid=True)
        elif op is Opcode.SYSCALL or op is Opcode.HYPERCALL:
            # Result in r0 (SYS_GETTID returns a thread id there).
            regs[0] = AVal.top(maybe_tid=True)
        elif op is Opcode.CALL:
            # Arbitrary callee: every register may have changed by the
            # time control returns here.
            for i in range(REGISTER_COUNT):
                regs[i] = AVal.top(maybe_tid=True)
        # STORE/branches/sync ops write no register.

    # -- driving --------------------------------------------------------
    def solve(self, entry: int = 0) -> Dict[int, RegState]:
        """Fixed point from ``entry``; CALL targets seeded with TOP."""
        call_entries = {
            dst: top_regs()
            for src in range(len(self.cfg.succs))
            for dst, kind in self.cfg.succs[src]
            if kind is EdgeKind.CALL
        }
        return solve_forward(self.cfg, self, entry=entry,
                             entry_state=self.entry_regs,
                             extra_entries=call_entries)

    def states_at_instructions(self, entry: int = 0) -> Dict[int, RegState]:
        """Register state immediately *before* each instruction.

        Runs the fixed point, then one capture pass over the final block
        entry states. Keyed by instruction uid; instructions in blocks
        this context never reaches are absent.
        """
        block_in = self.solve(entry)
        self._capture = {}
        try:
            for block, state in block_in.items():
                self.transfer(block, state)
            return self._capture
        finally:
            self._capture = None


def _refine_branch(last: Instruction, state: RegState,
                   taken: bool) -> RegState:
    """Apply a conditional branch's predicate to the tested registers."""
    op = last.op
    if op not in (Opcode.BZ, Opcode.BNZ, Opcode.BLT, Opcode.BGE):
        return state
    regs = list(state)

    def nonzero(v: AVal) -> AVal:
        b = v.bounds()
        if v.kind == _CONST:
            return AVal.const_set(v.consts - {0}, v.maybe_tid)
        if b is not None:
            return AVal.range(max(b[0], 1), b[1], v.maybe_tid)
        return v

    if op is Opcode.BZ or op is Opcode.BNZ:
        is_zero = (op is Opcode.BZ) == taken
        r = last.rs1
        if is_zero:
            if regs[r].may_contain(0):
                regs[r] = AVal.const(0, regs[r].maybe_tid)
            else:
                regs[r] = AVal.bot()  # edge is infeasible
        else:
            regs[r] = nonzero(regs[r])
        return tuple(regs)

    # BLT / BGE (unsigned): taken BLT and fallthrough BGE mean r1 < r2.
    less = (op is Opcode.BLT) == taken
    r1, r2 = last.rs1, last.rs2
    a, b = regs[r1], regs[r2]
    ab, bb = a.bounds(), b.bounds()
    if less:
        if bb is not None:
            hi = bb[1] - 1
            lo = ab[0] if ab is not None else 0
            regs[r1] = AVal.range(lo, min(ab[1], hi) if ab else hi,
                                  a.maybe_tid)
        if ab is not None:
            lo = ab[0] + 1
            hi = bb[1] if bb is not None else _UMAX
            regs[r2] = AVal.range(max(bb[0], lo) if bb else lo, hi,
                                  b.maybe_tid)
    else:  # r1 >= r2
        if bb is not None:
            lo = max(ab[0], bb[0]) if ab is not None else bb[0]
            hi = ab[1] if ab is not None else _UMAX
            regs[r1] = AVal.range(lo, hi, a.maybe_tid)
        if ab is not None:
            lo = bb[0] if bb is not None else 0
            hi = min(bb[1], ab[1]) if bb is not None else ab[1]
            regs[r2] = AVal.range(lo, hi, b.maybe_tid)
    return tuple(regs)
