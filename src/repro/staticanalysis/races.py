"""Static race detector over thread contexts, footprints and locksets.

Pairs every two memory-access *sites* (context, instruction uid) that
can overlap in memory and run in concurrent threads, and classifies each
(uid, uid) pair with a :class:`RaceVerdict`:

* ``STATICALLY_RACE_FREE`` — every site pair for these uids is proved
  ordered or mutually excluded: disjoint footprints (implicitly — such
  pairs are never even enumerated), same single-instance context
  (program order), fork ordering (the main-thread access provably
  executes once, before every spawn site), or a common must-held lock;
* ``POTENTIAL_RACE`` — some concrete site pair conflicts (bounded
  overlapping footprints, at least one write, disjoint must-locksets);
* ``UNKNOWN`` — the analysis could not bound the pair (unbounded
  footprint, unresolved lock operations, context-enumeration bailout).

Soundness contract (checked dynamically by the scengen oracle's
``static_race_superset``): if FastTrack ever reports a dynamic race
between two instructions, their pair must NOT be
``STATICALLY_RACE_FREE``. The proofs used here map onto FastTrack's
happens-before exactly:

* program order within a single-instance context ⇒ same thread;
* fork ordering: the access's block dominates every spawn site (over
  ``THREAD_EDGES``) and is not multi-executed, and *every* spawn site
  program-wide belongs to the main context, so the access happens-before
  each child's first instruction (FastTrack's fork edge);
* a common must-held lock ⇒ the two critical sections are mutually
  exclusive and the kernel emits the Release/Acquire pair FastTrack
  turns into a happens-before edge (WAIT parks release and re-acquire
  the mutex through the same events).

Everything the proofs cannot cover degrades toward POTENTIAL_RACE /
UNKNOWN, never toward race-free.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.machine.isa import MEMORY_OPCODES, Opcode
from repro.machine.program import Program
from repro.staticanalysis.cfg import CFG, THREAD_EDGES
from repro.staticanalysis.lockset import (
    LocksetResult,
    compute_locksets,
    lock_touching_entries,
)
from repro.staticanalysis.sharing import (
    Context,
    _compute_footprints,
    _multi_executed_blocks,
    discover_contexts,
)

#: Stop enumerating beyond this many overlapping site pairs; the report
#: degrades to incomplete (everything UNKNOWN) instead of stalling.
MAX_SITE_PAIRS = 250_000


class RaceVerdict(enum.Enum):
    STATICALLY_RACE_FREE = "race-free"
    POTENTIAL_RACE = "potential-race"
    UNKNOWN = "unknown"


#: Join order when several site pairs map onto one (uid, uid) pair.
_SEVERITY = {
    RaceVerdict.STATICALLY_RACE_FREE: 0,
    RaceVerdict.UNKNOWN: 1,
    RaceVerdict.POTENTIAL_RACE: 2,
}


@dataclass
class RacePair:
    """One classified (uid, uid) access pair (uid_a <= uid_b)."""

    uid_a: int
    uid_b: int
    verdict: RaceVerdict
    reason: str
    #: Human-readable witness path per side (entry-to-access blocks).
    witness: Tuple[str, str]

    def as_dict(self) -> Dict:
        return {"uid_a": self.uid_a, "uid_b": self.uid_b,
                "verdict": self.verdict.value, "reason": self.reason,
                "witness": list(self.witness)}


@dataclass
class StaticRaceReport:
    """Race verdicts for every enumerable access pair of one program."""

    program_name: str
    #: (uid_a, uid_b) -> worst RacePair over all its site pairs.
    pairs: Dict[Tuple[int, int], RacePair] = field(default_factory=dict)
    memory_uids: FrozenSet[int] = frozenset()
    n_contexts: int = 0
    incomplete: bool = False
    incomplete_reason: str = ""

    def pair_verdict(self, uid_a: int, uid_b: int) -> RaceVerdict:
        """The verdict for an unordered uid pair.

        Pairs never enumerated are race-free *by construction* (their
        footprints cannot overlap, or no two concurrent threads reach
        them) — unless the analysis is incomplete, in which case nothing
        is claimed about anything.
        """
        if self.incomplete:
            return RaceVerdict.UNKNOWN
        key = (uid_a, uid_b) if uid_a <= uid_b else (uid_b, uid_a)
        pair = self.pairs.get(key)
        if pair is None:
            return RaceVerdict.STATICALLY_RACE_FREE
        return pair.verdict

    def uid_verdict(self, uid: int) -> RaceVerdict:
        """Worst verdict over every pair the uid participates in."""
        if self.incomplete:
            return RaceVerdict.UNKNOWN
        worst = RaceVerdict.STATICALLY_RACE_FREE
        for (a, b), pair in self.pairs.items():
            if uid in (a, b) and _SEVERITY[pair.verdict] > _SEVERITY[worst]:
                worst = pair.verdict
        return worst

    def race_free_uids(self) -> Set[int]:
        """Memory uids with no non-race-free pair (∅ when incomplete)."""
        if self.incomplete:
            return set()
        tainted: Set[int] = set()
        for (a, b), pair in self.pairs.items():
            if pair.verdict is not RaceVerdict.STATICALLY_RACE_FREE:
                tainted.add(a)
                tainted.add(b)
        return set(self.memory_uids) - tainted

    def counts(self) -> Dict[str, int]:
        out = {v.value: 0 for v in RaceVerdict}
        for pair in self.pairs.values():
            out[pair.verdict.value] += 1
        return out

    def potential(self) -> List[RacePair]:
        ranked = [p for p in self.pairs.values()
                  if p.verdict is not RaceVerdict.STATICALLY_RACE_FREE]
        ranked.sort(key=lambda p: (-_SEVERITY[p.verdict], p.uid_a, p.uid_b))
        return ranked

    def as_dict(self) -> Dict:
        counts = self.counts()
        return {
            "program": self.program_name,
            "memory_instructions": len(self.memory_uids),
            "contexts": self.n_contexts,
            "pairs_classified": len(self.pairs),
            "race_free_pairs": counts[
                RaceVerdict.STATICALLY_RACE_FREE.value],
            "potential_race_pairs": counts[
                RaceVerdict.POTENTIAL_RACE.value],
            "unknown_pairs": counts[RaceVerdict.UNKNOWN.value],
            "race_free_uids": len(self.race_free_uids()),
            "incomplete": self.incomplete,
            "incomplete_reason": self.incomplete_reason,
        }

    def render(self, limit: int = 10) -> str:
        d = self.as_dict()
        lines = [f"static race analysis: {self.program_name}"]
        if self.incomplete:
            lines.append(f"  INCOMPLETE: {self.incomplete_reason} "
                         f"(every pair is UNKNOWN)")
            return "\n".join(lines)
        lines.append(
            f"  contexts: {d['contexts']}; memory instructions: "
            f"{d['memory_instructions']} ({d['race_free_uids']} race-free)")
        lines.append(
            f"  pairs: {d['pairs_classified']} classified — "
            f"{d['race_free_pairs']} race-free, "
            f"{d['potential_race_pairs']} potential, "
            f"{d['unknown_pairs']} unknown")
        shown = self.potential()[:limit]
        for pair in shown:
            lines.append(f"  {pair.verdict.value}: uid {pair.uid_a} x "
                         f"uid {pair.uid_b} — {pair.reason}")
            lines.append(f"    A: {pair.witness[0]}")
            lines.append(f"    B: {pair.witness[1]}")
        hidden = len(self.potential()) - len(shown)
        if hidden > 0:
            lines.append(f"  ... {hidden} more non-race-free pair(s)")
        return "\n".join(lines)


@dataclass(frozen=True)
class _Site:
    """One (context, uid) access site covering one page interval of
    its footprint (multi-interval footprints emit several sites)."""

    ctx: int
    uid: int
    lo: int
    hi: int            # inclusive; unbounded sites use _UNBOUNDED_HI
    write: bool
    bounded: bool


_UNBOUNDED_HI = 1 << 62


def _witness(cfg: CFG, ctx: Context, uid: int,
             cache: Dict[Tuple[int, int], str]) -> str:
    """Entry-to-access block path plus the access description."""
    program = cfg.program
    block = cfg.instruction_block(uid)
    key = (ctx.key.entry, block)
    path = cache.get(key)
    if path is None:
        # BFS over thread edges for the shortest entry->block path.
        parents: Dict[int, int] = {ctx.key.entry: -1}
        frontier = [ctx.key.entry]
        while frontier and block not in parents:
            nxt: List[int] = []
            for b in frontier:
                for dst in cfg.successors(b, THREAD_EDGES):
                    if dst not in parents:
                        parents[dst] = b
                        nxt.append(dst)
            frontier = nxt
        if block in parents:
            chain: List[int] = []
            b = block
            while b != -1:
                chain.append(b)
                b = parents[b]
            path = " -> ".join(program.blocks[b].label
                               for b in reversed(chain))
        else:
            path = f"(unreachable from {program.blocks[ctx.key.entry].label})"
        cache[key] = path
    instr = program.instruction_at(uid)
    return f"{ctx.key.describe(program)} via {path}: {instr!r}"


def analyze_races(program: Program, *,
                  cfg: Optional[CFG] = None,
                  contexts: Optional[List[Context]] = None,
                  discovery_reason: str = "",
                  locksets: Optional[List[LocksetResult]] = None
                  ) -> StaticRaceReport:
    """Classify every overlapping concurrent access pair of ``program``.

    ``contexts`` (with footprints already computed) and ``locksets`` may
    be supplied by :mod:`repro.staticanalysis.analysiscache` so one
    discovery pass serves the classifier, the race analyzer and the
    elision planner alike.
    """
    if cfg is None:
        cfg = CFG(program)
    memory_uids = frozenset(
        instr.uid
        for block in program.blocks
        for instr in block.instructions
        if instr.op in MEMORY_OPCODES)
    if contexts is None:
        contexts, discovery_reason = discover_contexts(cfg)
        for ctx in contexts:
            _compute_footprints(cfg, ctx)
    if discovery_reason:
        return StaticRaceReport(
            program.name, memory_uids=memory_uids,
            incomplete=True, incomplete_reason=discovery_reason)
    if locksets is None:
        touching = lock_touching_entries(cfg)
        locksets = [compute_locksets(cfg, ctx.states,
                                     entry=ctx.key.entry,
                                     touching=touching)
                    for ctx in contexts]

    report = StaticRaceReport(program.name, memory_uids=memory_uids,
                              n_contexts=len(contexts))

    # Fork-ordering refinement: only sound when every spawn site
    # program-wide executes in the main context (children never spawn),
    # so "parent" is always main and its vector clock flows to every
    # child's start.
    main_idx = 0
    assert contexts[main_idx].key.entry == 0
    spawn_uids = {instr.uid for block in program.blocks
                  for instr in block.instructions
                  if instr.op is Opcode.SPAWN}
    fork_refinement = all(
        not (spawn_uids & set(ctx.states))
        for i, ctx in enumerate(contexts) if i != main_idx)
    dom = cfg.dominators(0, THREAD_EDGES) if fork_refinement else {}
    multi = _multi_executed_blocks(cfg) if fork_refinement else set()

    def main_precedes_all_spawns(uid: int) -> bool:
        block, pos = program.instruction_locations[uid]
        if block in multi:
            return False
        for sblock, spos, _ in cfg.spawn_sites:
            if sblock == block:
                if pos >= spos:
                    return False
            elif sblock in dom and block not in dom[sblock]:
                return False
            elif sblock not in dom:
                # Spawn site unreachable over thread edges from main's
                # entry: it can still run (e.g. via paths the subgraph
                # misses) as far as this proof cares — refuse to order.
                return False
        return True

    # ------------------------------------------------------------------
    # access sites and the overlap sweep
    # ------------------------------------------------------------------
    sites: List[_Site] = []
    for i, ctx in enumerate(contexts):
        for uid, fp in ctx.footprints.items():
            instr = program.instruction_at(uid)
            write = instr.is_write
            if fp is None:
                sites.append(_Site(i, uid, 0, _UNBOUNDED_HI, write, False))
            else:
                # One site per disjoint footprint interval: sub-
                # intervals of the same access never overlap each
                # other, so they only meet *other* sites in the sweep.
                for lo, hi in fp:
                    sites.append(_Site(i, uid, lo, hi, write, True))
    sites.sort(key=lambda s: (s.lo, s.hi, s.ctx, s.uid))

    witness_cache: Dict[Tuple[int, int], str] = {}

    def classify(sa: _Site, sb: _Site) -> Optional[Tuple[RaceVerdict, str]]:
        """Verdict for one site pair, or None when no pair exists."""
        if not (sa.write or sb.write):
            return None
        same_site = sa.ctx == sb.ctx and sa.uid == sb.uid
        if sa.ctx == sb.ctx:
            if contexts[sa.ctx].instances < 2:
                return None  # one thread, program order
            # Two instances of the same context run the same code
            # concurrently; fall through to the lock/footprint logic.
        elif fork_refinement and main_idx in (sa.ctx, sb.ctx):
            main_site = sa if sa.ctx == main_idx else sb
            if main_precedes_all_spawns(main_site.uid):
                return (RaceVerdict.STATICALLY_RACE_FREE,
                        "fork-ordered: main access precedes every spawn")
        la, lb = locksets[sa.ctx], locksets[sb.ctx]
        common = la.must_held(sa.uid) & lb.must_held(sb.uid)
        if common:
            locks = ", ".join(str(x) for x in sorted(common))
            return (RaceVerdict.STATICALLY_RACE_FREE,
                    f"consistently locked (common lock {locks})")
        if not sa.bounded or not sb.bounded:
            return (RaceVerdict.UNKNOWN, "unbounded footprint")
        if la.poisoned_at.get(sa.uid) or lb.poisoned_at.get(sb.uid):
            return (RaceVerdict.UNKNOWN, "unresolved lock operations")
        kind = ("write-write" if sa.write and sb.write
                else "read-write")
        where = ("same instruction, multiple thread instances"
                 if same_site else "concurrent contexts")
        return (RaceVerdict.POTENTIAL_RACE,
                f"{kind} overlap, no common lock ({where})")

    def record(sa: _Site, sb: _Site) -> None:
        outcome = classify(sa, sb)
        if outcome is None:
            return
        verdict, reason = outcome
        key = ((sa.uid, sb.uid) if sa.uid <= sb.uid
               else (sb.uid, sa.uid))
        existing = report.pairs.get(key)
        if existing is not None \
                and _SEVERITY[existing.verdict] >= _SEVERITY[verdict]:
            return
        first, second = (sa, sb) if sa.uid <= sb.uid else (sb, sa)
        report.pairs[key] = RacePair(
            key[0], key[1], verdict, reason,
            (_witness(cfg, contexts[first.ctx], first.uid, witness_cache),
             _witness(cfg, contexts[second.ctx], second.uid,
                      witness_cache)))

    examined = 0
    active: List[_Site] = []
    for site in sites:
        active = [a for a in active if a.hi >= site.lo]
        for other in active:
            # Identical (ctx, uid) sites pair with themselves exactly
            # once: a site races itself only via a second instance,
            # which `classify` checks through ctx.instances.
            examined += 1
            if examined > MAX_SITE_PAIRS:
                return StaticRaceReport(
                    program.name, memory_uids=memory_uids,
                    n_contexts=len(contexts), incomplete=True,
                    incomplete_reason=(
                        f"site-pair explosion (> {MAX_SITE_PAIRS})"))
            record(other, site)
        if contexts[site.ctx].instances >= 2:
            # Self pair: the same site in two instances of its context.
            record(site, site)
        active.append(site)
    return report
