"""Static analysis over finalized mini-ISA programs.

This package is the first layer of the stack that reasons about programs
*without running them*. It provides:

* :mod:`repro.staticanalysis.cfg` — a basic-block control-flow graph
  with branch/fallthrough/CALL/SPAWN edges, reachability and dominators;
* :mod:`repro.staticanalysis.dataflow` — a generic forward worklist
  framework the concrete analyses are instances of;
* :mod:`repro.staticanalysis.constprop` — per-register constant/interval
  propagation, so register-indirect :class:`~repro.machine.isa.MemOperand`
  effective addresses resolve to bounded address sets where possible;
* :mod:`repro.staticanalysis.sharing` — an escape-style classifier
  mapping every static memory instruction to PROVABLY_PRIVATE /
  PROVABLY_SHARED / UNKNOWN, which the runtime's ``--static-prepass``
  option feeds into AikidoSD (seed the instrumentation set up front: no
  discovery fault, no re-JIT, no cache flush);
* :mod:`repro.staticanalysis.lint` — structural and concurrency checks
  over workload programs (``aikido-repro lint``).
"""

from repro.staticanalysis.cfg import CFG, EdgeKind
from repro.staticanalysis.constprop import AVal, ConstProp
from repro.staticanalysis.dataflow import ForwardProblem, solve_forward
from repro.staticanalysis.lint import Finding, lint_program
from repro.staticanalysis.sharing import (
    SharingClass,
    SharingReport,
    classify_sharing,
)

__all__ = [
    "AVal",
    "CFG",
    "ConstProp",
    "EdgeKind",
    "Finding",
    "ForwardProblem",
    "SharingClass",
    "SharingReport",
    "classify_sharing",
    "lint_program",
    "solve_forward",
]
