"""Static analysis over finalized mini-ISA programs.

This package is the first layer of the stack that reasons about programs
*without running them*. It provides:

* :mod:`repro.staticanalysis.cfg` — a basic-block control-flow graph
  with branch/fallthrough/CALL/SPAWN edges, reachability and dominators;
* :mod:`repro.staticanalysis.dataflow` — a generic forward worklist
  framework the concrete analyses are instances of;
* :mod:`repro.staticanalysis.constprop` — per-register constant/interval
  propagation, so register-indirect :class:`~repro.machine.isa.MemOperand`
  effective addresses resolve to bounded address sets where possible;
* :mod:`repro.staticanalysis.sharing` — an escape-style classifier
  mapping every static memory instruction to PROVABLY_PRIVATE /
  PROVABLY_SHARED / UNKNOWN, which the runtime's ``--static-prepass``
  option feeds into AikidoSD (seed the instrumentation set up front: no
  discovery fault, no re-JIT, no cache flush);
* :mod:`repro.staticanalysis.lockset` — sound must-hold-lockset forward
  dataflow per thread context (LOCK/UNLOCK/CALL effects, lock ids
  resolved through constprop);
* :mod:`repro.staticanalysis.races` — a static race detector pairing
  overlapping accesses of concurrent contexts into
  STATICALLY_RACE_FREE / POTENTIAL_RACE / UNKNOWN verdicts with witness
  paths (``aikido-repro races-static``);
* :mod:`repro.staticanalysis.elision` — turns classifier + race
  verdicts into a per-instruction shared-check elision plan consumed by
  the block compiler (``--static-elide``);
* :mod:`repro.staticanalysis.analysiscache` — one memoized analysis
  pass (CFG, contexts, classifier, locksets, races, elision, lint) per
  program fingerprint, shared by the prepass, linter, race analyzer and
  elision planner;
* :mod:`repro.staticanalysis.lint` — structural and concurrency checks
  over workload programs (``aikido-repro lint``).
"""

from repro.staticanalysis.analysiscache import (
    ProgramAnalysis,
    analysis_for,
    program_fingerprint,
)
from repro.staticanalysis.cfg import CFG, EdgeKind
from repro.staticanalysis.constprop import AVal, ConstProp
from repro.staticanalysis.dataflow import ForwardProblem, solve_forward
from repro.staticanalysis.elision import ElisionPlan, build_elision_plan
from repro.staticanalysis.lint import Finding, lint_program
from repro.staticanalysis.lockset import (
    LockState,
    LocksetResult,
    compute_locksets,
)
from repro.staticanalysis.races import (
    RaceVerdict,
    StaticRaceReport,
    analyze_races,
)
from repro.staticanalysis.sharing import (
    SharingClass,
    SharingReport,
    classify_sharing,
)

__all__ = [
    "AVal",
    "CFG",
    "ConstProp",
    "EdgeKind",
    "ElisionPlan",
    "Finding",
    "ForwardProblem",
    "LockState",
    "LocksetResult",
    "ProgramAnalysis",
    "RaceVerdict",
    "SharingClass",
    "SharingReport",
    "StaticRaceReport",
    "analysis_for",
    "analyze_races",
    "build_elision_plan",
    "classify_sharing",
    "compute_locksets",
    "lint_program",
    "program_fingerprint",
    "solve_forward",
]
