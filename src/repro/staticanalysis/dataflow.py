"""Generic forward dataflow over a :class:`~repro.staticanalysis.cfg.CFG`.

A concrete analysis subclasses :class:`ForwardProblem` and supplies the
lattice operations (``initial``/``entry_state``/``join``/``transfer``);
:func:`solve_forward` runs the classic worklist algorithm to a fixed
point and returns the state *at entry to* every block.

States are treated as opaque values compared with ``==``; ``transfer``
must not mutate its input. ``widen`` is consulted after a block has been
re-queued more than ``widen_after`` times, letting infinite-height
domains (intervals) force convergence.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Generic, Optional, TypeVar

from repro.staticanalysis.cfg import CFG, THREAD_EDGES, EdgeKind

S = TypeVar("S")


class ForwardProblem(Generic[S]):
    """Lattice + transfer functions for one forward analysis."""

    #: Which CFG edges propagate state. Intra-thread analyses keep the
    #: default; whole-program ones may add SPAWN edges.
    edge_kinds: FrozenSet[EdgeKind] = THREAD_EDGES

    #: Block revisit count after which :meth:`widen` replaces plain join.
    widen_after: int = 8

    def initial(self) -> S:
        """State for blocks not yet reached (bottom)."""
        raise NotImplementedError

    def entry_state(self) -> S:
        """State at entry to the analysis' entry block."""
        raise NotImplementedError

    def join(self, a: S, b: S) -> S:
        """Least upper bound of two states."""
        raise NotImplementedError

    def transfer(self, block: int, state: S) -> S:
        """State after executing ``block`` given ``state`` at its entry."""
        raise NotImplementedError

    def widen(self, old: S, new: S) -> S:
        """Accelerate convergence; defaults to plain join."""
        return self.join(old, new)

    def edge_transfer(self, block: int, out: S, succ: int,
                      kind: EdgeKind) -> S:
        """Refine the out-state for one specific edge.

        Lets an analysis exploit branch conditions: the BRANCH edge of a
        ``BLT r1, r2`` carries the fact ``r1 < r2``, the FALL edge the
        negation. Defaults to no refinement.
        """
        return out


def solve_forward(cfg: CFG, problem: ForwardProblem[S],
                  entry: int = 0,
                  entry_state: Optional[S] = None,
                  extra_entries: Optional[Dict[int, S]] = None
                  ) -> Dict[int, S]:
    """Run ``problem`` to a fixed point; return entry states per block.

    ``entry_state`` overrides ``problem.entry_state()`` so one problem
    instance can be solved from several entry points (e.g. once per
    spawn target with that context's register file). ``extra_entries``
    seeds additional blocks with fixed states before iteration — used to
    give every CALL target a conservative entry state instead of
    unsoundly flowing the caller's *post-block* state into it.
    """
    in_states: Dict[int, S] = {
        entry: problem.entry_state() if entry_state is None else entry_state
    }
    work = deque([entry])
    queued = {entry}
    if extra_entries:
        for block, state in extra_entries.items():
            if block == entry:
                continue
            in_states[block] = state
            if block not in queued:
                queued.add(block)
                work.append(block)
    visits: Dict[int, int] = {}
    while work:
        block = work.popleft()
        queued.discard(block)
        visits[block] = visits.get(block, 0) + 1
        out = problem.transfer(block, in_states[block])
        for succ, kind in cfg.succs[block]:
            if kind not in problem.edge_kinds:
                continue
            eout = problem.edge_transfer(block, out, succ, kind)
            if succ not in in_states:
                merged = eout
            else:
                old = in_states[succ]
                if visits.get(succ, 0) >= problem.widen_after:
                    merged = problem.widen(old, eout)
                else:
                    merged = problem.join(old, eout)
                if merged == old:
                    continue
            in_states[succ] = merged
            if succ not in queued:
                queued.add(succ)
                work.append(succ)
    return in_states
