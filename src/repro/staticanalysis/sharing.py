"""Static sharing pre-classifier (escape-style analysis).

Maps every static memory instruction uid of a finalized program to one of

* ``PROVABLY_PRIVATE`` — on every feasible execution, no page this
  instruction touches is ever touched by a different thread;
* ``PROVABLY_SHARED`` — every page its (bounded) footprint can touch is
  also in the footprint of at least one *other* thread context, so the
  dynamic detector would discover it the moment the page is shared;
* ``UNKNOWN`` — anything the analysis cannot bound or decide.

The analysis enumerates *thread contexts*: the main thread, plus one
context per (spawn target, abstract spawn argument) pair, discovered to
a fixed point (spawned threads may spawn further threads). Each context
is solved with :class:`~repro.staticanalysis.constprop.ConstProp` from
its entry block with ``r1`` bound to the spawn argument's abstract
value; the per-instruction register states then give every memory
instruction a per-context *footprint* (disjoint page intervals, or
unbounded).

Soundness argument for PRIVATE (the only classification the runtime
relies on): footprints over-approximate the pages a context's threads
may touch; contexts over-approximate the threads that may exist
(spawn sites inside loops / multiply-executed code count as "many", and
two instances of the same context count as two accessors); an
unbounded footprint counts as touching *every* page. Therefore if no
other context's footprint overlaps an instruction's footprint — and its
own context is single-instance — no second thread can ever touch those
pages with a user-mode access, which is the only way a page becomes
SHARED in the detector's page state machine. Kernel-mode syscall buffer
accesses bypass page protection entirely and cannot cause transitions,
so they are irrelevant here. When the context enumeration cannot
complete (cap exceeded, or HYPERCALLs that could rewrite protections),
everything degrades to UNKNOWN.

PROVABLY_SHARED feeds the ``--static-prepass`` seeding and is *allowed*
to be heuristic: a seeded instruction gets a runtime-checked hook that
only reports when its page is dynamically shared, so mis-seeding costs
a check per execution but never changes analysis results.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.machine.isa import MEMORY_OPCODES, Opcode
from repro.machine.paging import PAGE_SHIFT
from repro.machine.program import Program
from repro.staticanalysis.cfg import CFG, THREAD_EDGES, EdgeKind
from repro.staticanalysis.constprop import (
    AVal,
    ConstProp,
    RegState,
    initial_regs,
    instruction_address,
)

#: Give up on context enumeration beyond this many distinct contexts.
MAX_CONTEXTS = 64
#: A bounded footprint wider than this many pages is treated as
#: unbounded (enumerating it would not be useful anyway).
MAX_FOOTPRINT_PAGES = 1 << 20


class SharingClass(enum.Enum):
    PROVABLY_PRIVATE = "private"
    PROVABLY_SHARED = "shared"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class ContextKey:
    """Identity of a thread context: entry block + abstract argument."""

    entry: int
    arg: AVal

    def describe(self, program: Program) -> str:
        label = program.blocks[self.entry].label
        return f"{label}(r1={self.arg!r})"


@dataclass
class Context:
    """One discovered thread context and its analysis results."""

    key: ContextKey
    #: 1 = exactly one thread instance; 2 = two or more ("many").
    instances: int = 1
    #: Register state just before each reachable instruction (by uid).
    states: Dict[int, RegState] = field(default_factory=dict)
    #: uid -> disjoint sorted (first_page, last_page) intervals, or
    #: None for unbounded. Multi-interval footprints arise from setoff
    #: address values (partition base sets plus bounded offsets).
    footprints: Dict[int, Optional[Tuple[Tuple[int, int], ...]]] = \
        field(default_factory=dict)
    #: True when some reachable access has an unbounded footprint.
    unbounded: bool = False


@dataclass
class SharingReport:
    """Classification of every memory instruction of one program."""

    program_name: str
    classes: Dict[int, SharingClass]
    contexts: List[Context]
    #: True when the analysis bailed out (every class is UNKNOWN).
    incomplete: bool = False
    incomplete_reason: str = ""

    @property
    def n_memory_instructions(self) -> int:
        return len(self.classes)

    def count(self, cls: SharingClass) -> int:
        return sum(1 for c in self.classes.values() if c is cls)

    @property
    def coverage(self) -> float:
        """Fraction of memory instructions decided (not UNKNOWN)."""
        total = self.n_memory_instructions
        if not total:
            return 0.0
        return 1.0 - self.count(SharingClass.UNKNOWN) / total

    def uids(self, cls: SharingClass) -> Set[int]:
        return {uid for uid, c in self.classes.items() if c is cls}

    def as_dict(self) -> Dict:
        return {
            "program": self.program_name,
            "memory_instructions": self.n_memory_instructions,
            "provably_private": self.count(SharingClass.PROVABLY_PRIVATE),
            "provably_shared": self.count(SharingClass.PROVABLY_SHARED),
            "unknown": self.count(SharingClass.UNKNOWN),
            "coverage": round(self.coverage, 4),
            "contexts": len(self.contexts),
            "incomplete": self.incomplete,
        }


# ---------------------------------------------------------------------
# context discovery
# ---------------------------------------------------------------------
def _multi_executed_blocks(cfg: CFG) -> Set[int]:
    """Blocks that one thread may execute more than once.

    Loops (cycles over thread edges, which includes recursion through
    CALL edges), plus every block of a callee that is invoked from two
    or more call sites or from a multi-executed block.
    """
    multi = set(cfg.blocks_in_cycles(THREAD_EDGES))
    changed = True
    while changed:
        changed = False
        for target in range(len(cfg.preds)):
            sites = [src for src, kind in cfg.preds[target]
                     if kind is EdgeKind.CALL]
            if not sites:
                continue
            if len(sites) >= 2 or any(s in multi for s in sites):
                body = cfg.reachable(target, THREAD_EDGES)
                if not body <= multi:
                    multi |= body
                    changed = True
    return multi


def discover_contexts(cfg: CFG) -> Tuple[List[Context], str]:
    """Enumerate thread contexts to a fixed point.

    Returns (contexts, reason): ``reason`` is non-empty when the
    enumeration was abandoned and the result must not be trusted.
    """
    program = cfg.program
    for block in program.blocks:
        for instr in block.instructions:
            if instr.op is Opcode.HYPERCALL:
                return [], "program issues hypercalls"
    multi_blocks = _multi_executed_blocks(cfg)
    main = Context(ContextKey(0, AVal.const(0)))
    contexts: Dict[ContextKey, Context] = {main.key: main}
    state_cache: Dict[ContextKey, Dict[int, RegState]] = {}

    def analyze(ctx: Context) -> Dict[int, RegState]:
        if ctx.key not in state_cache:
            cp = ConstProp(cfg, initial_regs(ctx.key.arg))
            state_cache[ctx.key] = \
                cp.states_at_instructions(entry=ctx.key.entry)
        return state_cache[ctx.key]

    changed = True
    while changed:
        changed = False
        for ctx in list(contexts.values()):
            states = analyze(ctx)
            for uid, regs in states.items():
                instr = program.instruction_at(uid)
                if instr.op is not Opcode.SPAWN:
                    continue
                block = cfg.instruction_block(uid)
                count = 2 if (block in multi_blocks
                              or ctx.instances >= 2) else 1
                key = ContextKey(program.label_index(instr.label),
                                 regs[instr.rs1])
                child = contexts.get(key)
                if child is None:
                    if len(contexts) >= MAX_CONTEXTS:
                        return [], "context cap exceeded"
                    contexts[key] = Context(key, instances=count)
                    changed = True
                elif count > child.instances:
                    child.instances = count
                    changed = True
    for ctx in contexts.values():
        ctx.states = analyze(ctx)
    return list(contexts.values()), ""


# ---------------------------------------------------------------------
# footprints
# ---------------------------------------------------------------------
def _compute_footprints(cfg: CFG, ctx: Context) -> None:
    program = cfg.program
    for uid, regs in ctx.states.items():
        instr = program.instruction_at(uid)
        if instr.op not in MEMORY_OPCODES:
            continue
        addr = instruction_address(instr, regs)
        if addr.is_bot:
            continue  # no feasible execution reaches it in this context
        spans = addr.intervals()
        if spans is None:
            ctx.footprints[uid] = None
            ctx.unbounded = True
            continue
        # A word access spans [ea, ea+7] but is translated (and page-
        # classified) through ea alone, so pages are taken from ea.
        pages = _merge_intervals(
            [(lo >> PAGE_SHIFT, hi >> PAGE_SHIFT) for lo, hi in spans])
        if sum(hi - lo for lo, hi in pages) > MAX_FOOTPRINT_PAGES:
            ctx.footprints[uid] = None
            ctx.unbounded = True
        else:
            ctx.footprints[uid] = tuple(pages)


def _merge_intervals(intervals: List[Tuple[int, int]]
                     ) -> List[Tuple[int, int]]:
    if not intervals:
        return []
    intervals = sorted(intervals)
    merged = [intervals[0]]
    for lo, hi in intervals[1:]:
        if lo <= merged[-1][1] + 1:
            merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
        else:
            merged.append((lo, hi))
    return merged


def _overlaps(merged: List[Tuple[int, int]], lo: int, hi: int) -> bool:
    import bisect

    i = bisect.bisect_right(merged, (lo, 1 << 62)) - 1
    if i >= 0 and merged[i][1] >= lo:
        return True
    if i + 1 < len(merged) and merged[i + 1][0] <= hi:
        return True
    return False


def _covers(merged: List[Tuple[int, int]], lo: int, hi: int) -> bool:
    """True when [lo, hi] is fully inside the merged interval list."""
    import bisect

    i = bisect.bisect_right(merged, (lo, 1 << 62)) - 1
    return i >= 0 and merged[i][0] <= lo and hi <= merged[i][1]


# ---------------------------------------------------------------------
# classification
# ---------------------------------------------------------------------
def classify_sharing(program: Program,
                     cfg: Optional[CFG] = None,
                     contexts: Optional[List[Context]] = None,
                     discovery_reason: str = "") -> SharingReport:
    """Classify every memory instruction of ``program``.

    ``contexts`` (with footprints already computed) and the matching
    ``discovery_reason`` may come from a previous
    :func:`discover_contexts` pass — the analysis cache uses this to
    share one discovery across classifier, linter, race analyzer and
    elision planner.
    """
    if cfg is None:
        cfg = CFG(program)
    memory_uids = [
        instr.uid
        for block in program.blocks
        for instr in block.instructions
        if instr.op in MEMORY_OPCODES
    ]
    if contexts is None:
        contexts, discovery_reason = discover_contexts(cfg)
        if not discovery_reason:
            for ctx in contexts:
                _compute_footprints(cfg, ctx)
    if discovery_reason:
        return SharingReport(
            program.name,
            {uid: SharingClass.UNKNOWN for uid in memory_uids},
            [], incomplete=True, incomplete_reason=discovery_reason)

    # Per-context merged footprints (for the "does anyone else touch
    # this page" query) and the multi-coverage region (pages touched by
    # two or more thread instances, for the PROVABLY_SHARED side).
    per_ctx_merged: List[List[Tuple[int, int]]] = []
    for ctx in contexts:
        per_ctx_merged.append(_merge_intervals(
            [span for fp in ctx.footprints.values() if fp is not None
             for span in fp]))
    any_unbounded = [ctx.unbounded for ctx in contexts]

    events: List[Tuple[int, int]] = []
    wildcard_weight = 0
    for ctx, merged in zip(contexts, per_ctx_merged):
        weight = min(ctx.instances, 2)
        if ctx.unbounded:
            wildcard_weight += weight
            continue
        for lo, hi in merged:
            events.append((lo, weight))
            events.append((hi + 1, -weight))
    events.sort()
    multi_region: List[Tuple[int, int]] = []
    depth, start = 0, None
    idx = 0
    while idx < len(events):
        pos = events[idx][0]
        while idx < len(events) and events[idx][0] == pos:
            depth += events[idx][1]
            idx += 1
        if depth + wildcard_weight >= 2 and start is None:
            start = pos
        elif depth + wildcard_weight < 2 and start is not None:
            multi_region.append((start, pos - 1))
            start = None
    if start is not None:
        multi_region.append((start, (1 << 52)))
    if wildcard_weight >= 2:
        multi_region = [(0, 1 << 52)]
    multi_region = _merge_intervals(multi_region)

    classes: Dict[int, SharingClass] = {}
    for uid in memory_uids:
        reaching = [(i, ctx) for i, ctx in enumerate(contexts)
                    if uid in ctx.footprints]
        if not reaching:
            # Dead code (or infeasible in every context): never
            # executes, so leave it to the dynamic machinery.
            classes[uid] = SharingClass.UNKNOWN
            continue
        private = True
        shared = True
        for i, ctx in reaching:
            fp = ctx.footprints[uid]
            if fp is None:
                private = shared = False
                break
            if ctx.instances >= 2:
                private = False
            else:
                for j, other in enumerate(contexts):
                    if j == i:
                        continue
                    if any_unbounded[j] or any(
                            _overlaps(per_ctx_merged[j], lo, hi)
                            for lo, hi in fp):
                        private = False
                        break
            if not all(_covers(multi_region, lo, hi) for lo, hi in fp):
                shared = False
            if not private and not shared:
                break
        if private:
            classes[uid] = SharingClass.PROVABLY_PRIVATE
        elif shared:
            classes[uid] = SharingClass.PROVABLY_SHARED
        else:
            classes[uid] = SharingClass.UNKNOWN
    return SharingReport(program.name, classes, contexts)
