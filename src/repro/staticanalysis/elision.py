"""Compile-time shared-check elision plans.

Turns the sharing classifier's and the static race analyzer's verdicts
into a per-instruction *elision plan*: the set of memory instructions
whose shared-check machinery the block compiler may fuse into
straight-line fast paths (``AikidoConfig(static_elide=True)``), because
the static analysis proves the dynamic tool can never need them:

* **private tier** — PROVABLY_PRIVATE accesses: no other thread context
  ever touches their (bounded) footprint, so their pages can never
  legitimately become SHARED. If one ever does, the classifier was
  wrong and the engine raises ``ToolError`` (the dynamic tripwire).
* **locked tier** — accesses whose every pairing is
  ``STATICALLY_RACE_FREE`` (common must-held lock or fork ordering) but
  that are not provably private. Their pages *may* become shared; when
  one does the engine retires the uid from the plan and drops the
  affected compiled closures, so the block recompiles without the
  fusion at its next natural entry.

Both tiers additionally require a bounded footprint in every reaching
context, so the engine can index "which elided uids touch page P"
exactly. The plan is a pure function of the program and is cached on
:class:`~repro.staticanalysis.analysiscache.ProgramAnalysis`.

Parity contract: elision never changes a simulated statistic — the
compiled fast path replays the exact per-instruction charges, TLB
counters and memory effects of the steps it fuses, and bails to the
unfused steps whenever a translation guard fails. The plan only decides
*which* accesses are eligible for fusing and when the tripwire fires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.staticanalysis.sharing import SharingClass, _merge_intervals

TIER_PRIVATE = "private"
TIER_LOCKED = "locked"


@dataclass
class ElisionPlan:
    """Which memory uids the block compiler may fuse, and why."""

    program_name: str
    #: uid -> TIER_PRIVATE | TIER_LOCKED
    tiers: Dict[int, str] = field(default_factory=dict)
    #: uid -> merged page intervals over every reaching context.
    footprints: Dict[int, Tuple[Tuple[int, int], ...]] = \
        field(default_factory=dict)
    #: Total memory instructions considered (for coverage reporting).
    memory_instructions: int = 0
    #: Nonempty when the underlying analyses bailed out (empty plan).
    incomplete_reason: str = ""

    def tier(self, uid: int) -> Optional[str]:
        return self.tiers.get(uid)

    def __contains__(self, uid: int) -> bool:
        return uid in self.tiers

    def __len__(self) -> int:
        return len(self.tiers)

    def uids_touching_page(self, vpn: int) -> List[Tuple[int, str]]:
        """Elided (uid, tier) pairs whose footprint contains page ``vpn``.

        Linear in the number of elided uids; called only on
        PRIVATE->SHARED page transitions, which are rare by Aikido's own
        premise.
        """
        hits = []
        for uid, intervals in self.footprints.items():
            for lo, hi in intervals:
                if lo <= vpn <= hi:
                    hits.append((uid, self.tiers[uid]))
                    break
        return hits

    def counts(self) -> Dict[str, int]:
        return {
            "private": sum(1 for t in self.tiers.values()
                           if t == TIER_PRIVATE),
            "locked": sum(1 for t in self.tiers.values()
                          if t == TIER_LOCKED),
        }

    @property
    def coverage(self) -> float:
        if not self.memory_instructions:
            return 0.0
        return len(self.tiers) / self.memory_instructions

    def as_dict(self) -> Dict:
        c = self.counts()
        return {
            "program": self.program_name,
            "memory_instructions": self.memory_instructions,
            "elidable": len(self.tiers),
            "private_tier": c["private"],
            "locked_tier": c["locked"],
            "coverage": round(self.coverage, 4),
            "incomplete_reason": self.incomplete_reason,
        }

    def render(self) -> str:
        d = self.as_dict()
        if self.incomplete_reason:
            return (f"elision plan: {self.program_name}: EMPTY "
                    f"({self.incomplete_reason})")
        return (f"elision plan: {self.program_name}: "
                f"{d['elidable']}/{d['memory_instructions']} accesses "
                f"elidable ({d['private_tier']} private, "
                f"{d['locked_tier']} locked, "
                f"coverage {d['coverage']:.1%})")


def build_elision_plan(analysis) -> ElisionPlan:
    """Build the elision plan from a cached :class:`ProgramAnalysis`."""
    program = analysis.program
    sharing = analysis.sharing
    races = analysis.races
    plan = ElisionPlan(program.name,
                       memory_instructions=len(sharing.classes))
    if sharing.incomplete:
        plan.incomplete_reason = \
            f"sharing analysis incomplete: {sharing.incomplete_reason}"
        return plan
    if races.incomplete:
        plan.incomplete_reason = \
            f"race analysis incomplete: {races.incomplete_reason}"
        return plan

    race_free = races.race_free_uids()
    for uid, cls in sharing.classes.items():
        reaching = [ctx.footprints[uid] for ctx in analysis.contexts
                    if uid in ctx.footprints]
        if not reaching or any(fp is None for fp in reaching):
            # Dead code, or a footprint the tripwire could not index.
            continue
        if cls is SharingClass.PROVABLY_PRIVATE:
            tier = TIER_PRIVATE
        elif uid in race_free:
            tier = TIER_LOCKED
        else:
            continue
        plan.tiers[uid] = tier
        plan.footprints[uid] = tuple(_merge_intervals(
            [span for fp in reaching for span in fp]))
    return plan
