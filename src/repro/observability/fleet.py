"""Fleet-side observability: wall-clock tracing and campaign counters.

The simulator's :class:`~repro.observability.tracer.Tracer` stamps
events from anything exposing ``.total`` — inside a run that is the
simulated cycle counter; the fleet coordinator runs on wall-clock time,
so :class:`WallClock` adapts ``time.monotonic`` to the same interface
(microseconds, which Chrome's trace viewer renders natively). One
coordinator therefore gets the exact trace pipeline the simulator has:
instants for registrations, assignments, completions, deaths, requeues
and quarantines, written via the existing
:class:`~repro.observability.sink.TraceSink`.

:class:`FleetCounters` is the numeric side: campaign-wide totals plus
per-worker and per-shard breakdowns, JSON-safe for the campaign report
footer and asserted on by the survivability tests (e.g. "a killed
worker shows up as exactly one dead worker and at least one requeue").
"""

from __future__ import annotations

import time
from typing import Dict, Optional

#: Campaign-wide counter names, all starting at zero.
COUNTER_NAMES = (
    "shards_total", "shards_completed", "shards_requeued",
    "shards_quarantined", "shards_inline", "shards_resumed",
    "units_completed", "unit_failures",
    "workers_registered", "workers_dead", "workers_spawned",
    "heartbeats", "frames_garbled", "duplicate_results",
    "redeliveries", "lease_expiries", "deadline_expiries",
)


class WallClock:
    """``time.monotonic`` exposed as a cycle-counter-shaped ``.total``.

    Microseconds since construction — what the fleet tracer stamps its
    events with, making coordinator traces load in Perfetto with real
    durations.
    """

    def __init__(self):
        self._t0 = time.monotonic()

    @property
    def total(self) -> int:
        return int((time.monotonic() - self._t0) * 1_000_000)


class FleetCounters:
    """Per-campaign, per-worker, and per-shard fleet counters."""

    def __init__(self):
        self.totals: Dict[str, int] = {name: 0 for name in COUNTER_NAMES}
        self.per_worker: Dict[str, Dict[str, int]] = {}
        self.per_shard: Dict[str, Dict[str, int]] = {}

    def bump(self, name: str, n: int = 1) -> None:
        if name not in self.totals:
            raise KeyError(f"unknown fleet counter {name!r}")
        self.totals[name] += n

    def worker_bump(self, worker_id: str, name: str, n: int = 1) -> None:
        bucket = self.per_worker.setdefault(
            worker_id, {"assigned": 0, "completed": 0, "heartbeats": 0,
                        "dead": 0})
        bucket[name] = bucket.get(name, 0) + n

    def shard_bump(self, shard_id: str, name: str, n: int = 1) -> None:
        bucket = self.per_shard.setdefault(
            shard_id, {"deliveries": 0, "requeues": 0})
        bucket[name] = bucket.get(name, 0) + n

    def as_dict(self) -> Dict:
        """JSON-safe export (report footers, test assertions)."""
        return {"totals": dict(self.totals),
                "per_worker": {w: dict(b)
                               for w, b in self.per_worker.items()},
                "per_shard": {s: dict(b)
                              for s, b in self.per_shard.items()}}

    def stats_line(self) -> str:
        """One-line traffic summary, ParallelRunner.stats_line style."""
        t = self.totals
        line = (f"{t['shards_completed']}/{t['shards_total']} shards "
                f"({t['units_completed']} units, "
                f"{t['workers_registered']} workers)")
        extras = []
        if t["shards_resumed"]:
            extras.append(f"{t['shards_resumed']} resumed from WAL")
        if t["workers_dead"]:
            extras.append(f"{t['workers_dead']} workers died")
        if t["shards_requeued"]:
            extras.append(f"{t['shards_requeued']} requeues")
        if t["shards_quarantined"]:
            extras.append(f"{t['shards_quarantined']} quarantined")
        if t["shards_inline"]:
            extras.append(f"{t['shards_inline']} inline")
        if t["frames_garbled"]:
            extras.append(f"{t['frames_garbled']} garbled frames")
        if t["duplicate_results"]:
            extras.append(f"{t['duplicate_results']} duplicates dropped")
        if extras:
            line += " (" + ", ".join(extras) + ")"
        return line

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FleetCounters {self.stats_line()}>"


def fleet_instant(tracer, name: str, **args) -> None:
    """Emit one fleet lifecycle instant if tracing is on (else free)."""
    if tracer is not None:
        tracer.instant(name, "fleet", 0, **args)
