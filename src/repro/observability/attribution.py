"""Cycle attribution: decompose a run's simulated cycles into buckets.

The simulated performance model already charges every cycle to a named
category on the :class:`~repro.machine.cpu.CycleCounter` (``instr`` for
plain execution plus one category per subsystem). Attribution is then a
*partition* of those categories into the five buckets the paper's
overhead argument is framed around:

``app``
    Plain instruction execution — what a native, uninstrumented run
    would pay.
``discovery_fault``
    The Aikido sharing-discovery machinery: vmexits, fake-fault
    delivery and forwarding, shadow-table hypercalls, TLB maintenance.
``rejit``
    DBR work — block builds, re-instrumentation, code-cache flushes.
``tool_hook``
    Analysis-tool payloads: Umbra shadow lookups, inline shared-checks,
    FastTrack/DJIT/Eraser/... hook bodies.
``kernel_emulation``
    Guest-kernel services a native run would also pay: context
    switches, syscalls, synchronization.

Because the buckets partition the counter's categories (with ``other``
catching any category added later and not yet mapped), the per-bucket
sums reproduce ``counter.total`` **exactly** — no sampling error, no
double counting. :func:`attribute_cycles` asserts that identity and
raises :class:`~repro.errors.TraceError` if it ever breaks.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.errors import TraceError

#: Report ordering for the buckets (``other`` last, usually 0).
BUCKETS = ("app", "discovery_fault", "rejit", "tool_hook",
           "kernel_emulation", "other")

#: CycleCounter category -> attribution bucket. Categories missing from
#: this map fall into "other" (kept visible, never silently dropped).
CATEGORY_BUCKETS: Dict[str, str] = {
    # plain execution
    "instr": "app",
    # sharing discovery: hypervisor round trips + fault plumbing
    "vmexit": "discovery_fault",
    "hypervisor": "discovery_fault",
    "hypercall": "discovery_fault",
    "fault_injection": "discovery_fault",
    "tlb": "discovery_fault",
    "aikido_sd": "discovery_fault",
    "kernel_fault": "discovery_fault",
    "signal_delivery": "discovery_fault",
    # dynamic binary rewriting (trace = hot-block promotion / superblock
    # construction work, the same re-JIT machinery)
    "dbr": "rejit",
    "trace": "rejit",
    # analysis payloads
    "umbra": "tool_hook",
    "aikido_inline": "tool_hook",
    "fasttrack": "tool_hook",
    "djit": "tool_hook",
    "eraser": "tool_hook",
    "sampler": "tool_hook",
    "avio": "tool_hook",
    # guest-kernel services paid natively too
    "context_switch": "kernel_emulation",
    "syscall": "kernel_emulation",
    "sync": "kernel_emulation",
}


def attribute_cycles(snapshot: Mapping[str, int],
                     total: int = None) -> Dict[str, int]:
    """Fold a ``CycleCounter.snapshot()`` into the attribution buckets.

    Returns ``{bucket: cycles}`` over all of :data:`BUCKETS` (zeros
    included) plus ``"total"``. When ``total`` is given (the counter's
    ``total`` property), the exact-sum invariant is enforced.
    """
    buckets = {bucket: 0 for bucket in BUCKETS}
    for category, cycles in snapshot.items():
        buckets[CATEGORY_BUCKETS.get(category, "other")] += cycles
    summed = sum(buckets.values())
    if total is not None and summed != total:
        raise TraceError(
            f"cycle attribution lost cycles: buckets sum to {summed} "
            f"but the counter reports {total}")
    buckets["total"] = summed
    return buckets


def attribution_fractions(buckets: Mapping[str, int]) -> Dict[str, float]:
    """Per-bucket fractions of total (0.0s when the run had no cycles)."""
    total = buckets.get("total", 0)
    if total <= 0:
        return {bucket: 0.0 for bucket in BUCKETS}
    return {bucket: buckets[bucket] / total for bucket in BUCKETS}


def overhead_cycles(buckets: Mapping[str, int]) -> int:
    """Cycles beyond what an uninstrumented run pays (non-app, non-kernel)."""
    return (buckets.get("discovery_fault", 0) + buckets.get("rejit", 0)
            + buckets.get("tool_hook", 0) + buckets.get("other", 0))
