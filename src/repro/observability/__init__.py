"""Observability: tracing, metrics timelines, and cycle attribution.

The measurement substrate for the repro's overhead argument. See
``tracer`` (structured spans/instants/counters on the simulated cycle
clock), ``sink`` (JSONL + Chrome ``trace_event`` serialization),
``metrics`` (quantum-cadence counter timelines and run-end snapshots),
and ``attribution`` (the app / discovery-fault / re-JIT / tool-hook /
kernel-emulation cycle decomposition with an exact-sum guarantee).
"""

from repro.observability.attribution import (BUCKETS, CATEGORY_BUCKETS,
                                             attribute_cycles,
                                             attribution_fractions,
                                             overhead_cycles)
from repro.observability.eventlog import EventLogCounters
from repro.observability.fleet import (FleetCounters, WallClock,
                                       fleet_instant)
from repro.observability.metrics import (MetricsRecorder, TIMELINE_FIELDS,
                                         metrics_snapshot)
from repro.observability.sink import TraceSink, load_chrome, validate_chrome
from repro.observability.tracer import TraceEvent, Tracer

__all__ = [
    "BUCKETS", "CATEGORY_BUCKETS", "attribute_cycles",
    "attribution_fractions", "overhead_cycles",
    "EventLogCounters",
    "FleetCounters", "WallClock", "fleet_instant",
    "MetricsRecorder", "TIMELINE_FIELDS", "metrics_snapshot",
    "TraceSink", "load_chrome", "validate_chrome",
    "TraceEvent", "Tracer",
]
