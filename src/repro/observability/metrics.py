"""Metrics timelines and run-end snapshots.

A :class:`MetricsRecorder` rides the kernel's ``tick_hooks`` (host-side
callbacks after every scheduler quantum — the same mechanism the
invariant monitor uses) and, every ``cadence`` quanta, samples the hot
sharing-detector counters against the simulated cycle clock. Sampling
mutates no simulated state and charges no cycles, so a recorded run is
deterministically identical to an unrecorded one.

:func:`metrics_snapshot` is the run-end form: the complete
:class:`~repro.core.stats.AikidoStats` dict, the raw per-category cycle
breakdown, and the bucket attribution — the payload folded into suite
JSON and the result cache.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.observability.attribution import attribute_cycles

#: AikidoStats fields sampled into the timeline (the counters whose
#: *shape over time* matters for the overhead argument; everything else
#: is in the run-end snapshot).
TIMELINE_FIELDS = ("faults_handled", "instructions_instrumented",
                   "shared_accesses", "private_fastpath", "rejit_flushes")

DEFAULT_CADENCE = 25


class MetricsRecorder:
    """Samples detector counters on a quantum cadence.

    ``cadence`` is in scheduler quanta; 0 disables periodic sampling
    (only the final run-end sample is taken). When a tracer is attached
    the samples are mirrored as Chrome counter ("C") events, so the
    timeline renders as stacked counter tracks in Perfetto.
    """

    def __init__(self, counter, stats, *, cadence: int = DEFAULT_CADENCE,
                 tracer=None):
        self.counter = counter
        self.stats = stats
        self.cadence = cadence
        self.tracer = tracer
        self.samples: List[Dict] = []
        self._quanta = 0

    # ------------------------------------------------------------------
    # installation / sampling
    # ------------------------------------------------------------------
    def install(self, kernel) -> None:
        """Hook the kernel's per-quantum callback list."""
        if self.cadence <= 0:
            return

        def _tick():
            self._quanta += 1
            if self._quanta % self.cadence == 0:
                self.sample()

        kernel.tick_hooks.append(_tick)

    def sample(self) -> Dict:
        """Take one timeline sample now; returns (and stores) it."""
        record: Dict = {"cycle": self.counter.total,
                        "quantum": self._quanta}
        for field in TIMELINE_FIELDS:
            record[field] = getattr(self.stats, field)
        self.samples.append(record)
        if self.tracer is not None:
            self.tracer.counter_sample(
                "sd_counters",
                {field: record[field] for field in TIMELINE_FIELDS})
        return record

    def finalize(self) -> None:
        """Take the run-end sample (even when cadence sampling is off)."""
        self.sample()

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def timeline(self) -> List[Dict]:
        """JSON-safe copy of the recorded samples."""
        return [dict(sample) for sample in self.samples]


def metrics_snapshot(stats, counter) -> Dict:
    """The run-end metrics payload (suite JSON / cache material).

    Every :class:`~repro.core.stats.AikidoStats` field appears under
    ``aikido_stats`` with its canonical name; ``cycle_attribution`` is
    the exact-sum bucket decomposition of ``cycle_breakdown``.
    """
    breakdown = counter.snapshot()
    return {
        "aikido_stats": stats.as_dict(),
        "cycle_breakdown": breakdown,
        "cycle_attribution": attribute_cycles(breakdown, counter.total),
        "total_cycles": counter.total,
    }
