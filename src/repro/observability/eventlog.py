"""Event-log observability: record/replay pipeline counters.

The record/replay economics argument — simulate once, analyze N times —
is only checkable if both sides of the ledger are counted. One
:class:`EventLogCounters` instance threads through
:class:`~repro.eventlog.log.EventLogWriter` (recording side) and
:class:`~repro.eventlog.replay.ReplayFanout` (consuming side), so the
CLI can print, and the smoke test can assert, that a fan-out replayed
millions of events with **zero** simulations.
"""

from __future__ import annotations

from typing import Dict

#: Pipeline-wide counter names, all starting at zero.
COUNTER_NAMES = (
    # Recording side (bumped by EventLogWriter).
    "events_recorded", "chunks_written", "bytes_written", "logs_finalized",
    # Replay side (bumped by ReplayFanout / replay_log).
    "events_replayed", "chunks_replayed", "replays_completed",
    "analyses_run", "simulations", "disagreements",
)


class EventLogCounters:
    """Record/replay pipeline totals (FleetCounters-shaped)."""

    def __init__(self):
        self.totals: Dict[str, int] = {name: 0 for name in COUNTER_NAMES}

    def bump(self, name: str, n: int = 1) -> None:
        if name not in self.totals:
            raise KeyError(f"unknown eventlog counter {name!r}")
        self.totals[name] += n

    def as_dict(self) -> Dict[str, int]:
        """JSON-safe export (CLI payload footers, test assertions)."""
        return dict(self.totals)

    def stats_line(self) -> str:
        """One-line pipeline summary, ParallelRunner.stats_line style."""
        t = self.totals
        line = (f"{t['events_replayed']} events replayed through "
                f"{t['analyses_run']} analyses "
                f"({t['simulations']} simulations)")
        extras = []
        if t["events_recorded"]:
            extras.append(f"{t['events_recorded']} recorded in "
                          f"{t['chunks_written']} chunks")
        if t["disagreements"]:
            extras.append(f"{t['disagreements']} disagreements")
        if extras:
            line += " (" + ", ".join(extras) + ")"
        return line

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<EventLogCounters {self.stats_line()}>"
