"""Trace serialization: JSONL and Chrome ``trace_event`` output.

A :class:`TraceSink` turns a recorded :class:`~repro.observability.tracer.Tracer`
buffer into artifacts: one JSON object per line (easy to grep / stream)
or the Chrome ``trace_event`` JSON-object format with a ``traceEvents``
array, which loads directly in ``chrome://tracing`` and Perfetto.

:func:`validate_chrome` is the round-trip check used by tests and the
smoke script: it re-parses an emitted payload and enforces the schema
plus the per-tid B/E LIFO nesting discipline, raising
:class:`~repro.errors.TraceError` on any violation.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from repro.errors import TraceError

_REQUIRED_KEYS = ("name", "cat", "ph", "ts", "pid", "tid")
_KNOWN_PHASES = ("B", "E", "i", "C", "M")


class TraceSink:
    """Writes one tracer's event buffer to disk in both formats."""

    def __init__(self, tracer):
        self.tracer = tracer

    # ------------------------------------------------------------------
    # payloads
    # ------------------------------------------------------------------
    def chrome_payload(self, label: str = "aikido-repro") -> Dict:
        """The Chrome ``trace_event`` JSON-object form of the buffer.

        ``displayTimeUnit`` is nanoseconds purely for viewer cosmetics —
        the ``ts`` values are simulated cycles, not wall time.
        """
        events = [
            {"name": "process_name", "cat": "__metadata", "ph": "M",
             "ts": 0, "pid": 1, "tid": 0,
             "args": {"name": label}},
        ]
        events.extend(e.to_chrome() for e in self.tracer.events)
        return {
            "traceEvents": events,
            "displayTimeUnit": "ns",
            "otherData": {
                "clock": "simulated-cycles",
                "dropped_events": self.tracer.dropped,
            },
        }

    # ------------------------------------------------------------------
    # writers
    # ------------------------------------------------------------------
    def write_chrome(self, path: Union[str, Path],
                     label: str = "aikido-repro") -> Path:
        """Write the Chrome trace; returns the path written."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.chrome_payload(label), indent=1)
                        + "\n")
        return path

    def write_jsonl(self, path: Union[str, Path]) -> Path:
        """Write one JSON object per event; returns the path written."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as fh:
            for event in self.tracer.events:
                fh.write(json.dumps(event.to_dict(), sort_keys=True))
                fh.write("\n")
        return path


# ----------------------------------------------------------------------
# loading / validation
# ----------------------------------------------------------------------
def load_chrome(path: Union[str, Path]) -> Dict:
    """Parse a Chrome trace file, raising TraceError on malformed JSON."""
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise TraceError(f"cannot load Chrome trace {path}: {exc}")
    return validate_chrome(payload)


def validate_chrome(payload: Dict) -> Dict:
    """Validate a Chrome ``trace_event`` payload; returns it unchanged.

    Checks the object form, the per-event schema, monotonically sane
    timestamps, and — the property Perfetto actually needs — that every
    ``E`` closes the innermost open ``B`` of its tid (LIFO nesting) and
    no span is left open at end of stream.
    """
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise TraceError("Chrome trace must be an object with a "
                         "'traceEvents' array")
    events = payload["traceEvents"]
    if not isinstance(events, list):
        raise TraceError("'traceEvents' must be an array")
    open_spans: Dict[int, List[str]] = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise TraceError(f"event #{i} is not an object")
        for key in _REQUIRED_KEYS:
            if key not in event:
                raise TraceError(f"event #{i} ({event.get('name')!r}) "
                                 f"is missing required key {key!r}")
        ph = event["ph"]
        if ph not in _KNOWN_PHASES:
            raise TraceError(f"event #{i} has unknown phase {ph!r}")
        if not isinstance(event["ts"], int) or event["ts"] < 0:
            raise TraceError(f"event #{i} has a non-integer or negative "
                             f"ts {event['ts']!r}")
        if ph == "B":
            open_spans.setdefault(event["tid"], []).append(event["name"])
        elif ph == "E":
            stack = open_spans.get(event["tid"])
            if not stack:
                raise TraceError(
                    f"event #{i}: 'E' for {event['name']!r} on tid "
                    f"{event['tid']} with no open span")
            if stack[-1] != event["name"]:
                raise TraceError(
                    f"event #{i}: 'E' for {event['name']!r} does not "
                    f"close the innermost span {stack[-1]!r} on tid "
                    f"{event['tid']}")
            stack.pop()
    for tid, stack in open_spans.items():
        if stack:
            raise TraceError(f"tid {tid} has unclosed spans at end of "
                             f"trace: {stack}")
    return payload
