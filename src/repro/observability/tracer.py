"""Structured tracing on the simulated cycle clock.

A :class:`Tracer` records *spans* (begin/end pairs), *instant events* and
*counter samples*, each stamped with the run's simulated cycle count and
the acting thread id. Layers of the stack hold a ``tracer`` attribute
that is ``None`` when tracing is off — the only cost of a disabled build
is one attribute load and an ``is None`` test at each (already rare)
event site, and a tracer never charges simulated cycles or touches any
statistic, so traced and untraced runs produce bit-identical metrics.

The event vocabulary deliberately matches the Chrome ``trace_event``
format (``ph`` of ``B``/``E``/``i``/``C``) so a recorded stream converts
losslessly via :class:`repro.observability.sink.TraceSink` and loads in
``chrome://tracing`` / Perfetto with no post-processing.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, List, Optional

from repro.errors import TraceError

#: Default event-buffer cap. A pathological workload could emit one event
#: per fault/build/flush for hundreds of thousands of cycles; the cap
#: bounds host memory while ``dropped`` keeps the loss observable.
DEFAULT_MAX_EVENTS = 250_000


class TraceEvent:
    """One trace record (span edge, instant, or counter sample)."""

    __slots__ = ("name", "cat", "ph", "ts", "tid", "args")

    def __init__(self, name: str, cat: str, ph: str, ts: int, tid: int,
                 args: Optional[Dict] = None):
        self.name = name
        self.cat = cat
        self.ph = ph          # B / E / i / C, as in trace_event
        self.ts = ts          # simulated cycles (rendered as microseconds)
        self.tid = tid
        self.args = args

    def to_chrome(self) -> Dict:
        """The Chrome ``trace_event`` dict for this record."""
        event = {"name": self.name, "cat": self.cat, "ph": self.ph,
                 "ts": self.ts, "pid": 1, "tid": self.tid}
        if self.ph == "i":
            event["s"] = "t"  # thread-scoped instant
        if self.args:
            event["args"] = self.args
        return event

    def to_dict(self) -> Dict:
        """The JSONL form (identical keys, no Chrome-specific extras)."""
        return {"name": self.name, "cat": self.cat, "ph": self.ph,
                "ts": self.ts, "tid": self.tid,
                "args": self.args if self.args else {}}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<TraceEvent {self.ph} {self.cat}:{self.name} "
                f"@{self.ts} t{self.tid}>")


class Tracer:
    """Collects trace events against a simulated cycle counter.

    All emission helpers are cheap host-side appends; none of them
    charges simulated cycles. ``max_events`` bounds the buffer: once
    full, new begin/instant/counter records are counted in ``dropped``
    instead of stored, while ``E`` records for *already-recorded* spans
    always land so the stream stays balanced (a half-open span would
    make the Chrome trace unloadable).
    """

    def __init__(self, counter, *, max_events: int = DEFAULT_MAX_EVENTS):
        self.counter = counter
        self.max_events = max_events
        self.events: List[TraceEvent] = []
        self.dropped = 0
        #: tid -> stack of open span names (nesting discipline).
        self._open: Dict[int, List[str]] = {}

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------
    def _now(self) -> int:
        return self.counter.total if self.counter is not None else 0

    def _emit(self, ph: str, name: str, cat: str, tid: int,
              args: Optional[Dict], force: bool = False) -> bool:
        if not force and len(self.events) >= self.max_events:
            self.dropped += 1
            return False
        self.events.append(TraceEvent(name, cat, ph, self._now(), tid,
                                      args))
        return True

    def instant(self, name: str, cat: str, tid: int = 0,
                **args) -> None:
        """Record a zero-duration event."""
        self._emit("i", name, cat, tid, args or None)

    def counter_sample(self, name: str, values: Dict[str, float],
                       tid: int = 0) -> None:
        """Record a Chrome counter ("C") sample — a named timeline."""
        self._emit("C", name, "metrics", tid, dict(values))

    def begin(self, name: str, cat: str, tid: int = 0, **args) -> bool:
        """Open a span; returns False when the buffer dropped it."""
        recorded = self._emit("B", name, cat, tid, args or None)
        if recorded:
            self._open.setdefault(tid, []).append(name)
        return recorded

    def end(self, name: str, cat: str, tid: int = 0) -> None:
        """Close the innermost open span, which must be ``name``."""
        stack = self._open.get(tid)
        if not stack or stack[-1] != name:
            raise TraceError(
                f"span end {name!r} does not match the innermost open "
                f"span {stack[-1] if stack else None!r} on tid {tid}")
        stack.pop()
        # Balanced by construction: a recorded B always gets its E.
        self._emit("E", name, cat, tid, None, force=True)

    @contextmanager
    def span(self, name: str, cat: str, tid: int = 0, **args):
        """Context manager recording a B/E pair around the block.

        If the begin record was dropped (buffer full), the end is
        skipped too, so the stream never holds an orphan ``E``.
        """
        recorded = self.begin(name, cat, tid, **args)
        try:
            yield
        finally:
            if recorded:
                self.end(name, cat, tid)
            # A dropped B still pushed nothing; nothing to unwind.

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def open_spans(self) -> int:
        """Spans currently open across all tids (0 once a run settles)."""
        return sum(len(stack) for stack in self._open.values())

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Tracer events={len(self.events)} "
                f"dropped={self.dropped} open={self.open_spans}>")
