"""Happens-before graphs: explain *why* something is (or isn't) a race.

Built from a recorded trace (:mod:`repro.analyses.record`), the graph has
one node per trace event, program-order edges within each thread, and
synchronization edges (release->acquire per lock, fork/join, barrier
all-to-all). Two conflicting accesses race iff neither reaches the other.

``explain_pair`` turns that into a human answer: either the chain of
synchronization that orders the accesses (useful to see which lock is
doing the work) or the verdict "unordered — this is a race".

Uses :mod:`networkx` for reachability and path queries.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import networkx as nx


class HBGraph:
    """A happens-before DAG over a recorded trace."""

    def __init__(self, trace):
        self.trace = list(trace)
        self.graph = nx.DiGraph()
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        last_of_thread = {}
        last_release = {}          # lock id -> node of latest release
        graph = self.graph

        def node_for(index, entry):
            graph.add_node(index, entry=entry)
            return index

        def program_order(tid, node):
            prev = last_of_thread.get(tid)
            if prev is not None:
                graph.add_edge(prev, node, kind="program-order")
            last_of_thread[tid] = node

        for index, entry in enumerate(self.trace):
            kind = entry[0]
            node = node_for(index, entry)
            if kind == "access":
                program_order(entry[1], node)
            elif kind == "acquire":
                _, tid, lock = entry
                program_order(tid, node)
                release = last_release.get(lock)
                if release is not None:
                    graph.add_edge(release, node, kind=f"lock-{lock}")
            elif kind == "release":
                _, tid, lock = entry
                program_order(tid, node)
                last_release[lock] = node
            elif kind == "fork":
                _, parent, child = entry
                program_order(parent, node)
                # The child's first event hangs off the fork node: every
                # later child event happens-after the fork.
                last_of_thread[child] = node
            elif kind == "join":
                _, parent, child = entry
                child_last = last_of_thread.get(child)
                program_order(parent, node)
                if child_last is not None and child_last != node:
                    graph.add_edge(child_last, node, kind="join")
            elif kind == "barrier":
                _, barrier_id, tids = entry
                # All-to-all: everyone's prior work precedes the barrier
                # node; everyone's later work follows it.
                for tid in tids:
                    prev = last_of_thread.get(tid)
                    if prev is not None:
                        graph.add_edge(prev, node,
                                       kind=f"barrier-{barrier_id}")
                    last_of_thread[tid] = node

    # ------------------------------------------------------------------
    def accesses_to_block(self, block: int,
                          block_size: int = 8) -> List[int]:
        """Node indices of accesses touching the 8-byte block."""
        return [i for i, entry in enumerate(self.trace)
                if entry[0] == "access"
                and entry[2] // block_size == block]

    def ordered(self, a: int, b: int) -> bool:
        """Does node ``a`` happen-before node ``b`` (or vice versa)?"""
        return (nx.has_path(self.graph, a, b)
                or nx.has_path(self.graph, b, a))

    def sync_chain(self, a: int, b: int) -> Optional[List[str]]:
        """The edge kinds of a shortest ordering path, if one exists."""
        for src, dst in ((a, b), (b, a)):
            if nx.has_path(self.graph, src, dst):
                path = nx.shortest_path(self.graph, src, dst)
                return [self.graph.edges[u, v]["kind"]
                        for u, v in zip(path, path[1:])]
        return None

    def racing_pairs(self, block: int,
                     block_size: int = 8) -> List[Tuple[int, int]]:
        """All conflicting, unordered access pairs on a block."""
        nodes = self.accesses_to_block(block, block_size)
        pairs = []
        for i, a in enumerate(nodes):
            for b in nodes[i + 1:]:
                ea, eb = self.trace[a], self.trace[b]
                if ea[1] == eb[1]:
                    continue            # same thread
                if not (ea[3] or eb[3]):
                    continue            # two reads
                if not self.ordered(a, b):
                    pairs.append((a, b))
        return pairs


def explain_pair(graph: HBGraph, a: int, b: int) -> str:
    """Human-readable verdict for two access nodes."""
    ea, eb = graph.trace[a], graph.trace[b]

    def fmt(entry):
        return (f"t{entry[1]} {'write' if entry[3] else 'read'} "
                f"@{entry[2]:#x}")

    chain = graph.sync_chain(a, b)
    if chain is None:
        return (f"RACE: {fmt(ea)} and {fmt(eb)} are unordered "
                "(no synchronization chain connects them)")
    interesting = [k for k in chain if k != "program-order"]
    via = ", ".join(interesting) if interesting else "program order"
    return f"ordered: {fmt(ea)} -> {fmt(eb)} via {via}"
