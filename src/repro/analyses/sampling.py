"""A LiteRace-style sampling wrapper (related work, paper §7.3).

LiteRace (Marino et al., PLDI'09) samples cold code at a high rate and
hot code at a low rate, trading *false negatives* for speed — the very
trade-off the paper argues is unacceptable for verification use cases
(§1: a sampled detector "offers few benefits to developers that need
assistance with debugging a specific bug"). The ablation benchmarks
measure how the detection probability decays with the sampling rate,
which is the quantitative form of that argument.

The wrapper decorates any detector exposing ``on_access``: each *static
instruction* has an execution counter; an access is forwarded while its
instruction is cold (bursty cold-region sampling) or on a deterministic
1-in-N sample afterwards.
"""

from __future__ import annotations

from typing import Dict

from repro import costs


class SamplingDetector:
    """Forward a deterministic sample of accesses to a real detector."""

    def __init__(self, inner, counter=None, *, cold_threshold: int = 10,
                 hot_rate: int = 100):
        if cold_threshold < 0 or hot_rate < 1:
            raise ValueError("bad sampling parameters")
        self.inner = inner
        self.counter = counter
        #: Every execution of an instruction's first ``cold_threshold``
        #: dynamic occurrences is analyzed (the cold burst).
        self.cold_threshold = cold_threshold
        #: Afterwards, 1 in ``hot_rate`` executions is analyzed.
        self.hot_rate = hot_rate
        self._exec_counts: Dict[int, int] = {}
        self.sampled = 0
        self.skipped = 0

    def on_access(self, tid: int, addr: int, is_write: bool,
                  instr_uid: int = -1) -> None:
        if self.counter is not None:
            self.counter.charge("sampler", costs.SAMPLER_CHECK)
        count = self._exec_counts.get(instr_uid, 0)
        self._exec_counts[instr_uid] = count + 1
        if count < self.cold_threshold or count % self.hot_rate == 0:
            self.sampled += 1
            self.inner.on_access(tid, addr, is_write, instr_uid)
        else:
            self.skipped += 1

    # Synchronization must never be sampled away (LiteRace keeps it too,
    # or the happens-before graph would be wrong).
    def __getattr__(self, name):
        return getattr(self.inner, name)

    @property
    def sampling_fraction(self) -> float:
        total = self.sampled + self.skipped
        return self.sampled / total if total else 1.0
