"""A memory-tagging-style lock checker (HMTRace-inspired, PAPERS.md).

HMTRace piggybacks race detection on ARM MTE: each lock hashes to a
small hardware tag, memory blocks remember which tags guarded them, and
a tag mismatch on access flags a locking-discipline violation. This
module reproduces that scheme in software as the *fourth* consumer of a
recorded event log — the proof that the replay fan-out generalizes
beyond vector clocks.

The state machine per block is exactly Eraser's
(VIRGIN → EXCLUSIVE → SHARED / SHARED_MODIFIED), but the candidate set
is a **tag bitmask**, not a lockset: every lock id hashes into one of
``(1 << TAG_BITS) - 1`` nonzero tags, and refinement is a mask AND.
Distinct locks can collide into one tag, and a collision makes the
intersection *larger* than the true lockset's — so tag checking can
only *suppress* reports Eraser would make, never add new ones. That
containment (``memtag report blocks ⊆ eraser report blocks``) is the
cross-analysis agreement invariant the replay pipeline checks.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro import costs
from repro.analyses.eraser import VarMode

#: Tag width in bits (ARM MTE uses 4). Tag 0 is reserved for "untagged"
#: so lock ids map onto the 15 nonzero tags.
TAG_BITS = 4
TAG_COUNT = (1 << TAG_BITS) - 1


def lock_tag(lock_id: int) -> int:
    """Hash a lock id onto a nonzero tag (1..TAG_COUNT)."""
    return (lock_id % TAG_COUNT) + 1


class MemTagReport:
    """A tag-lock violation (no common tag guards a shared block)."""

    __slots__ = ("block", "address", "tid", "is_write")

    def __init__(self, block: int, address: int, tid: int, is_write: bool):
        self.block = block
        self.address = address
        self.tid = tid
        self.is_write = is_write

    @property
    def key(self):
        return self.block

    def describe(self) -> str:
        kind = "write" if self.is_write else "read"
        return (f"tag-lock violation on block {self.block:#x} "
                f"({kind} by t{self.tid}, tag mask empty)")


class _BlockState:
    __slots__ = ("mode", "owner", "tag_mask")

    def __init__(self):
        self.mode = VarMode.VIRGIN
        self.owner = -1
        self.tag_mask = 0


class MemTagDetector:
    """Tag-mask locking-discipline checking over 8-byte blocks.

    Implements the standard detector protocol (``on_access`` plus
    ``on_acquire``/``on_release``); like Eraser it has no fork/join or
    barrier notion — tag checking inherits LockSet's imprecision, just
    cheaper.
    """

    def __init__(self, counter=None, block_size: int = 8,
                 max_reports: int = 10_000):
        self.counter = counter
        self.block_size = block_size
        self.max_reports = max_reports
        self._held_masks: Dict[int, int] = {}
        self._held_counts: Dict[int, Dict[int, int]] = {}
        self._blocks: Dict[int, _BlockState] = {}
        self.reports: List[MemTagReport] = []
        self._reported: Set[int] = set()
        self.accesses = 0
        self.tag_collisions = 0

    # ------------------------------------------------------------------
    def on_acquire(self, tid: int, lock_id: int) -> None:
        tag = lock_tag(lock_id)
        counts = self._held_counts.setdefault(tid, {})
        before = counts.get(tag, 0)
        counts[tag] = before + 1
        if before:
            # Two held locks share a tag — the source of suppression.
            self.tag_collisions += 1
        self._held_masks[tid] = self._held_masks.get(tid, 0) | (1 << tag)

    def on_release(self, tid: int, lock_id: int) -> None:
        tag = lock_tag(lock_id)
        counts = self._held_counts.setdefault(tid, {})
        remaining = counts.get(tag, 0) - 1
        if remaining > 0:
            counts[tag] = remaining
        else:
            counts.pop(tag, None)
            self._held_masks[tid] = (
                self._held_masks.get(tid, 0) & ~(1 << tag))

    # ------------------------------------------------------------------
    def on_access(self, tid: int, addr: int, is_write: bool,
                  instr_uid: int = -1) -> None:
        self.accesses += 1
        if self.counter is not None:
            self.counter.charge("memtag", costs.MEMTAG_ACCESS)
        block = addr // self.block_size
        state = self._blocks.get(block)
        if state is None:
            state = self._blocks[block] = _BlockState()
        mode = state.mode
        if mode is VarMode.VIRGIN:
            state.mode = VarMode.EXCLUSIVE
            state.owner = tid
            return
        if mode is VarMode.EXCLUSIVE:
            if tid == state.owner:
                return
            state.tag_mask = self._held_masks.get(tid, 0)
            state.mode = (VarMode.SHARED_MODIFIED if is_write
                          else VarMode.SHARED)
            if state.mode is VarMode.SHARED_MODIFIED and not state.tag_mask:
                self._report(block, addr, tid, is_write)
            return
        state.tag_mask &= self._held_masks.get(tid, 0)
        if is_write and mode is VarMode.SHARED:
            state.mode = VarMode.SHARED_MODIFIED
        if state.mode is VarMode.SHARED_MODIFIED and not state.tag_mask:
            self._report(block, addr, tid, is_write)

    # ------------------------------------------------------------------
    def _report(self, block: int, addr: int, tid: int,
                is_write: bool) -> None:
        if block in self._reported or len(self.reports) >= self.max_reports:
            return
        self._reported.add(block)
        self.reports.append(MemTagReport(block, addr, tid, is_write))
