"""Run *any* detector under full instrumentation or under Aikido.

The paper's framework claim is that AikidoSD accelerates the whole class
of shared-data analyses. This module provides the two generic adapters
that make that concrete for any detector exposing ``on_access(tid, addr,
is_write, instr_uid)`` plus optional ``on_acquire/on_release/on_fork/
on_join/on_barrier`` handlers (FastTrack, Eraser and AVIO all qualify):

* :class:`FullInstrumentationTool` — a DBR tool that instruments every
  memory access (the conservative baseline for that detector);
* :class:`GenericAnalysis` — a :class:`SharedDataAnalysis` feeding the
  detector only shared-page accesses under Aikido.

Both dispatch synchronization events the same way, so a detector's
results differ between the two modes only by the access subset — which
is exactly the property the equivalence tests check.
"""

from __future__ import annotations

import inspect

from repro.core.analysis import SharedDataAnalysis
from repro.dbr.codecache import CachedBlock
from repro.dbr.tool import Tool
from repro.errors import ToolError
from repro.events import (
    AcquireEvent,
    BarrierEvent,
    ForkEvent,
    JoinEvent,
    ReleaseEvent,
    ThreadExitEvent,
)
from repro.umbra.shadow import ShadowMemory


def call_barrier_handler(handler, tids, barrier_id: int) -> None:
    """Invoke ``on_barrier``, passing the barrier id only if accepted.

    The protocol grew ``barrier_id`` late; detectors that predate it (or
    third-party ones) still take just ``tids``. Signature inspection —
    not ``try/except TypeError``, which would mask arity errors *inside*
    the handler — decides which form to use, so the id is never silently
    dropped for a handler that can take it.
    """
    try:
        params = list(inspect.signature(handler).parameters.values())
    except (TypeError, ValueError):
        handler(tids, barrier_id)
        return
    if any(p.name == "barrier_id" for p in params):
        handler(tids, barrier_id=barrier_id)
    elif any(p.kind is p.VAR_POSITIONAL for p in params) or len(
            [p for p in params
             if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)]) >= 2:
        handler(tids, barrier_id)
    else:
        handler(tids)


def dispatch_sync(detector, event) -> None:
    """Forward a kernel sync event to whichever handler the detector has."""
    cls = event.__class__
    if cls is AcquireEvent:
        handler = getattr(detector, "on_acquire", None)
        if handler:
            handler(event.tid, event.lock_id)
    elif cls is ReleaseEvent:
        handler = getattr(detector, "on_release", None)
        if handler:
            handler(event.tid, event.lock_id)
    elif cls is ForkEvent:
        handler = getattr(detector, "on_fork", None)
        if handler:
            handler(event.parent_tid, event.child_tid)
    elif cls is JoinEvent:
        handler = getattr(detector, "on_join", None)
        if handler:
            handler(event.parent_tid, event.child_tid)
    elif cls is BarrierEvent:
        handler = getattr(detector, "on_barrier", None)
        if handler:
            call_barrier_handler(handler, event.tids, event.barrier_id)
    elif cls is ThreadExitEvent:
        pass  # join carries the happens-before edge
    else:
        raise ToolError(
            f"dispatch_sync: unrecognized sync event {cls.__name__}; "
            f"dropping it would silently desynchronize the detector")


class FullInstrumentationTool(Tool):
    """Instrument every memory access and feed the wrapped detector."""

    name = "full-generic"

    def __init__(self, kernel, detector):
        super().__init__()
        self.kernel = kernel
        self.detector = detector
        self.shadow = ShadowMemory(kernel.counter)
        vm = kernel.process.vm
        for region in vm.user_regions():
            self.shadow.add_region(region.start, region.length)
        vm.post_map_hooks.append(self._on_new_region)

    def instrument_block(self, cached: CachedBlock) -> None:
        hook = self._access_hook
        for pos, instr in enumerate(cached.instrs):
            if instr.mem is not None:
                cached.set_hook(pos, hook)

    def on_sync_event(self, event) -> None:
        dispatch_sync(self.detector, event)

    def _access_hook(self, thread, instr, ea):
        self.shadow.translate(thread.tid, ea)
        self.detector.on_access(thread.tid, ea, instr.is_write, instr.uid)
        return None

    def _on_new_region(self, region) -> None:
        if region.kind in ("static", "heap", "mmap"):
            self.shadow.add_region(region.start, region.length)


class GenericAnalysis(SharedDataAnalysis):
    """Feed the wrapped detector shared-page accesses only (Aikido mode)."""

    name = "aikido-generic"

    def __init__(self, detector):
        self.detector = detector

    def on_shared_access(self, thread, instr, addr: int,
                         is_write: bool) -> None:
        self.detector.on_access(thread.tid, addr, is_write, instr.uid)

    def on_sync_event(self, event) -> None:
        dispatch_sync(self.detector, event)
