"""DJIT+ : precise vector-clock race detection *without* epochs.

FastTrack's contribution (and the reason the paper picked it, §4.1) is
that most of DJIT+'s O(threads) vector-clock operations collapse to O(1)
epoch compares. This module implements plain DJIT+ (Pozniansky & Schuster
style: a full read VC and write VC per variable) so the repository can
measure the epoch optimization itself:

* correctness: DJIT+ and FastTrack report races on exactly the same
  variables (property-tested);
* cost: per-access work is a vector operation whose cycle cost scales
  with thread count, giving the bench
  ``bench_ablations.py::test_djit_vs_fasttrack`` its signal.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro import costs
from repro.analyses.fasttrack.metadata import ThreadState
from repro.analyses.fasttrack.reports import RaceReport
from repro.analyses.fasttrack.vectorclock import VectorClock
from repro.analyses.fasttrack.epoch import make_epoch


class _DjitVar:
    __slots__ = ("read_vc", "write_vc")

    def __init__(self):
        self.read_vc = VectorClock()
        self.write_vc = VectorClock()


class DjitDetector:
    """Full-vector-clock happens-before race detection (no fast paths)."""

    def __init__(self, counter=None, block_size: int = 8,
                 max_reports: int = 10_000):
        self.counter = counter
        self.block_size = block_size
        self.max_reports = max_reports
        self.threads: Dict[int, ThreadState] = {}
        self.vars: Dict[int, _DjitVar] = {}
        self.locks: Dict[int, VectorClock] = {}
        self.races: List[RaceReport] = []
        self._reported: Set[Tuple[int, str]] = set()
        self.reads = 0
        self.writes = 0
        self.sync_ops = 0

    # ------------------------------------------------------------------
    def _thread(self, tid: int) -> ThreadState:
        state = self.threads.get(tid)
        if state is None:
            state = self.threads[tid] = ThreadState(tid)
        return state

    def _var(self, block: int) -> _DjitVar:
        var = self.vars.get(block)
        if var is None:
            var = self.vars[block] = _DjitVar()
        return var

    def _charge_vc_op(self, width: int) -> None:
        if self.counter is not None:
            self.counter.charge(
                "djit", costs.CLEAN_CALL + costs.FT_VC_BASE
                + costs.FT_VC_PER_THREAD * max(1, width))

    # ------------------------------------------------------------------
    def on_access(self, tid: int, addr: int, is_write: bool,
                  instr_uid: int = -1) -> None:
        if is_write:
            self.on_write(tid, addr, instr_uid)
        else:
            self.on_read(tid, addr, instr_uid)

    def on_read(self, tid: int, addr: int, instr_uid: int = -1) -> None:
        self.reads += 1
        thread = self._thread(tid)
        var = self._var(addr // self.block_size)
        self._charge_vc_op(len(var.write_vc) + len(thread.vc))
        # Race iff some write is not ordered before us.
        if not var.write_vc.leq(thread.vc):
            self._report("write-read", addr, var.write_vc, thread,
                         instr_uid)
        var.read_vc.set(tid, thread.vc.get(tid))

    def on_write(self, tid: int, addr: int, instr_uid: int = -1) -> None:
        self.writes += 1
        thread = self._thread(tid)
        var = self._var(addr // self.block_size)
        self._charge_vc_op(len(var.write_vc) + len(var.read_vc)
                           + len(thread.vc))
        if not var.write_vc.leq(thread.vc):
            self._report("write-write", addr, var.write_vc, thread,
                         instr_uid)
        if not var.read_vc.leq(thread.vc):
            self._report("read-write", addr, var.read_vc, thread,
                         instr_uid)
        var.write_vc.set(tid, thread.vc.get(tid))

    # ------------------------------------------------------------------
    # synchronization (identical semantics to FastTrack's)
    # ------------------------------------------------------------------
    def on_acquire(self, tid: int, lock_id: int) -> None:
        self.sync_ops += 1
        thread = self._thread(tid)
        thread.vc.join(self.locks.get(lock_id, VectorClock()))
        thread.refresh_epoch()
        self._charge_vc_op(len(thread.vc))

    def on_release(self, tid: int, lock_id: int) -> None:
        self.sync_ops += 1
        thread = self._thread(tid)
        self.locks[lock_id] = thread.vc.copy()
        thread.increment()
        self._charge_vc_op(len(thread.vc))

    def on_fork(self, parent_tid: int, child_tid: int) -> None:
        self.sync_ops += 1
        parent = self._thread(parent_tid)
        child = self._thread(child_tid)
        child.vc.join(parent.vc)
        child.refresh_epoch()
        parent.increment()
        self._charge_vc_op(len(parent.vc))

    def on_join(self, parent_tid: int, child_tid: int) -> None:
        self.sync_ops += 1
        parent = self._thread(parent_tid)
        child = self._thread(child_tid)
        parent.vc.join(child.vc)
        parent.refresh_epoch()
        self._charge_vc_op(len(child.vc))

    def on_barrier(self, tids, barrier_id: int = 0) -> None:
        self.sync_ops += 1
        merged = VectorClock()
        members = [self._thread(t) for t in tids]
        for thread in members:
            merged.join(thread.vc)
        for thread in members:
            thread.vc = merged.copy()
            thread.increment()
        self._charge_vc_op(len(merged) * max(1, len(members)))

    # ------------------------------------------------------------------
    def _report(self, kind: str, addr: int, prior_vc: VectorClock,
                thread, instr_uid: int) -> None:
        block = addr // self.block_size
        if (block, kind) in self._reported \
                or len(self.races) >= self.max_reports:
            return
        self._reported.add((block, kind))
        prior = 0
        for tid, clock in prior_vc.items():
            if clock > thread.vc.get(tid):
                prior = make_epoch(tid, clock)
                break
        self.races.append(RaceReport(kind, block, addr, prior,
                                     thread.tid,
                                     thread.vc.get(thread.tid), instr_uid))
