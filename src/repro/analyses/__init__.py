"""Dynamic analyses (DBR tools) usable standalone or under Aikido.

* :mod:`repro.analyses.fasttrack` — the FastTrack happens-before race
  detector, in both the conservative full-instrumentation form (the
  paper's baseline) and the Aikido-accelerated form.
* :mod:`repro.analyses.djit` — plain DJIT+ vector-clock detection (the
  baseline FastTrack's epoch optimization is measured against).
* :mod:`repro.analyses.eraser` — an Eraser-style LockSet detector
  (related-work comparison; may report false positives).
* :mod:`repro.analyses.atomicity` — an AVIO-style atomicity checker
  (the paper's second motivating analysis class).
* :mod:`repro.analyses.sampling` — a LiteRace-style sampling wrapper
  (related-work comparison; trades false negatives for speed).
* :mod:`repro.analyses.generic_tool` — run any detector under full
  instrumentation or under Aikido.
* :mod:`repro.analyses.record` — trace recording and offline replay.
"""

from repro.analyses.atomicity import AikidoAtomicity, AVIOChecker
from repro.analyses.djit import DjitDetector
from repro.analyses.eraser import EraserAnalysis, EraserDetector
from repro.analyses.fasttrack.aikido_tool import AikidoFastTrack
from repro.analyses.fasttrack.detector import FastTrackDetector
from repro.analyses.fasttrack.tool import FastTrackTool
from repro.analyses.generic_tool import (
    FullInstrumentationTool,
    GenericAnalysis,
)
from repro.analyses.record import TraceRecorder, replay, replay_into
from repro.analyses.sampling import SamplingDetector

__all__ = [
    "AVIOChecker",
    "AikidoAtomicity",
    "AikidoFastTrack",
    "DjitDetector",
    "EraserAnalysis",
    "EraserDetector",
    "FastTrackDetector",
    "FastTrackTool",
    "FullInstrumentationTool",
    "GenericAnalysis",
    "SamplingDetector",
    "TraceRecorder",
    "replay",
    "replay_into",
]
