"""Sparse vector clocks.

Entries absent from the mapping are implicitly zero, so clocks scale with
the number of threads that actually synchronized rather than the process's
thread count.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple


class VectorClock:
    """A mapping tid -> logical clock with join/compare operations."""

    __slots__ = ("_clocks",)

    def __init__(self, clocks: Dict[int, int] | None = None):
        self._clocks: Dict[int, int] = dict(clocks) if clocks else {}

    def get(self, tid: int) -> int:
        return self._clocks.get(tid, 0)

    def set(self, tid: int, value: int) -> None:
        self._clocks[tid] = value

    def increment(self, tid: int) -> None:
        self._clocks[tid] = self._clocks.get(tid, 0) + 1

    def join(self, other: "VectorClock") -> None:
        """Pointwise maximum, in place: ``self ⊔= other``."""
        mine = self._clocks
        for tid, clock in other._clocks.items():
            if clock > mine.get(tid, 0):
                mine[tid] = clock

    def copy(self) -> "VectorClock":
        return VectorClock(self._clocks)

    def leq(self, other: "VectorClock") -> bool:
        """Pointwise ``self ⊑ other`` (happens-before or equal)."""
        get = other._clocks.get
        for tid, clock in self._clocks.items():
            if clock > get(tid, 0):
                return False
        return True

    def items(self) -> Iterator[Tuple[int, int]]:
        return iter(self._clocks.items())

    def __len__(self) -> int:
        return len(self._clocks)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        # Compare modulo implicit zeros.
        keys = set(self._clocks) | set(other._clocks)
        return all(self.get(k) == other.get(k) for k in keys)

    def __hash__(self):  # pragma: no cover - clocks are mutable
        raise TypeError("VectorClock is unhashable")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"t{t}:{c}"
                          for t, c in sorted(self._clocks.items()))
        return f"<VC {inner}>"
