"""The FastTrack algorithm proper.

Implements the read/write/synchronization rules of Flanagan & Freund
(PLDI'09) over 8-byte variable blocks, with the epoch fast paths:

* same-epoch reads/writes are O(1) one-word compares;
* ordered (exclusive) accesses update a single epoch;
* only genuinely concurrent reads inflate to a read vector clock.

Races are recorded (deduplicated per variable × kind) and the analysis
continues, updating metadata as if the access were ordered — FastTrack's
standard behavior to avoid cascading reports.

Every operation charges the cycle cost of its path, so the harness's
slowdown figures reflect the *mix* of fast and slow paths each workload
produces, just as the real tool's overhead does.
"""

from __future__ import annotations

from typing import List, Optional

from repro import costs
from repro.analyses.fasttrack.epoch import (
    EPOCH_NONE,
    epoch_clock,
    epoch_leq_vc,
    epoch_tid,
)
from repro.analyses.fasttrack.metadata import MetadataStore
from repro.analyses.fasttrack.reports import RaceReport
from repro.analyses.fasttrack.vectorclock import VectorClock
from repro.events import (
    AcquireEvent,
    BarrierEvent,
    ForkEvent,
    JoinEvent,
    ReleaseEvent,
    ThreadExitEvent,
)


class FastTrackDetector:
    """Happens-before race detection with the epoch optimization."""

    def __init__(self, counter=None, block_size: int = 8,
                 max_reports: int = 10_000):
        self.counter = counter
        self.meta = MetadataStore(block_size)
        self.max_reports = max_reports
        self.races: List[RaceReport] = []
        self._reported_keys = set()
        # Path statistics (useful for calibrating the cost model).
        self.reads = 0
        self.writes = 0
        self.same_epoch_hits = 0
        self.read_shared_transitions = 0
        self.sync_ops = 0
        self.metadata_pings = 0

    # ------------------------------------------------------------------
    # memory accesses
    # ------------------------------------------------------------------
    def on_access(self, tid: int, addr: int, is_write: bool,
                  instr_uid: int = -1) -> None:
        if is_write:
            self.on_write(tid, addr, instr_uid)
        else:
            self.on_read(tid, addr, instr_uid)

    def on_read(self, tid: int, addr: int, instr_uid: int = -1) -> None:
        self.reads += 1
        thread = self.meta.thread(tid)
        block = addr // self.meta.block_size
        # Same-epoch early exit (epoch mode and read-shared mode): the
        # hot repeat-read needs one metadata peek and no writes, so the
        # path's charges are folded into a single counter update — same
        # category, same sum, and no observation point in between, so
        # every cycle snapshot is bit-identical to the long-hand path.
        var = self.meta.vars.get(block)
        if var is not None:
            read_vc = var.read_vc
            if (read_vc.get(tid) == thread.vc.get(tid)
                    if read_vc is not None
                    else var.read_epoch == thread.epoch):
                self.same_epoch_hits += 1
                charge = costs.CLEAN_CALL + costs.FT_SAME_EPOCH
                last = var.write_epoch or var.read_epoch
                if last and last & 0xFF != tid:
                    self.metadata_pings += 1
                    charge += costs.FT_METADATA_PING
                self._charge(charge)
                return
        self._charge(costs.CLEAN_CALL)
        if var is None:
            var = self._var(block)
        self._charge_ping(var, tid)
        # Write-read race check.
        if not epoch_leq_vc(var.write_epoch, thread.vc):
            self._report("write-read", block, addr, var.write_epoch,
                         thread, instr_uid)
        if var.read_vc is not None:
            # Read shared: O(1) slot update.
            var.read_vc.set(tid, thread.vc.get(tid))
            self._charge(costs.FT_READ_SHARED_BASE)
            return
        if epoch_leq_vc(var.read_epoch, thread.vc):
            # Exclusive: the previous read happens-before this one.
            var.read_epoch = thread.epoch
            self._charge(costs.FT_EPOCH_UPDATE)
            return
        # Share transition: inflate to a read vector clock.
        self.read_shared_transitions += 1
        prev = var.read_epoch
        var.read_vc = VectorClock({epoch_tid(prev): epoch_clock(prev),
                                   tid: thread.vc.get(tid)})
        var.read_epoch = EPOCH_NONE
        self._charge(costs.FT_VC_BASE + 2 * costs.FT_VC_PER_THREAD)

    def on_write(self, tid: int, addr: int, instr_uid: int = -1) -> None:
        self.writes += 1
        thread = self.meta.thread(tid)
        block = addr // self.meta.block_size
        # Same-epoch early exit: a repeat write means the last accessor
        # was this thread at this epoch, so the metadata ping can never
        # fire — one combined charge covers the whole path.
        var = self.meta.vars.get(block)
        if var is not None and var.write_epoch == thread.epoch:
            self.same_epoch_hits += 1
            self._charge(costs.CLEAN_CALL + costs.FT_SAME_EPOCH)
            return
        self._charge(costs.CLEAN_CALL)
        if var is None:
            var = self._var(block)
        self._charge_ping(var, tid)
        if not epoch_leq_vc(var.write_epoch, thread.vc):
            self._report("write-write", block, addr, var.write_epoch,
                         thread, instr_uid)
        if var.read_vc is None:
            if not epoch_leq_vc(var.read_epoch, thread.vc):
                self._report("read-write", block, addr, var.read_epoch,
                             thread, instr_uid)
            self._charge(costs.FT_EPOCH_UPDATE)
        else:
            # Write after read-shared: full vector comparison, then the
            # read state deflates back to epoch mode.
            if not var.read_vc.leq(thread.vc):
                racing = self._max_entry_epoch(var.read_vc)
                self._report("read-write", block, addr, racing,
                             thread, instr_uid)
            self._charge(costs.FT_VC_BASE
                         + costs.FT_VC_PER_THREAD * len(var.read_vc))
            var.read_vc = None
            var.read_epoch = EPOCH_NONE
        var.write_epoch = thread.epoch

    # ------------------------------------------------------------------
    # synchronization
    # ------------------------------------------------------------------
    def on_acquire(self, tid: int, lock_id: int) -> None:
        self.sync_ops += 1
        thread = self.meta.thread(tid)
        lock_vc = self.meta.lock(lock_id)
        thread.vc.join(lock_vc)
        thread.refresh_epoch()
        self._charge(costs.FT_SYNC_BASE
                     + costs.FT_VC_PER_THREAD * len(lock_vc))

    def on_release(self, tid: int, lock_id: int) -> None:
        self.sync_ops += 1
        thread = self.meta.thread(tid)
        self.meta.locks[lock_id] = thread.vc.copy()
        thread.increment()
        self._charge(costs.FT_SYNC_BASE
                     + costs.FT_VC_PER_THREAD * len(thread.vc))

    def on_fork(self, parent_tid: int, child_tid: int) -> None:
        self.sync_ops += 1
        parent = self.meta.thread(parent_tid)
        child = self.meta.thread(child_tid)
        child.vc.join(parent.vc)
        child.refresh_epoch()
        parent.increment()
        self._charge(costs.FT_SYNC_BASE
                     + costs.FT_VC_PER_THREAD * len(parent.vc))

    def on_join(self, parent_tid: int, child_tid: int) -> None:
        self.sync_ops += 1
        parent = self.meta.thread(parent_tid)
        child = self.meta.thread(child_tid)
        parent.vc.join(child.vc)
        parent.refresh_epoch()
        self._charge(costs.FT_SYNC_BASE
                     + costs.FT_VC_PER_THREAD * len(child.vc))

    def on_barrier(self, tids, barrier_id: int = 0) -> None:
        """All-to-all ordering across the barrier's participants.

        ``barrier_id`` identifies which barrier fired; the vector-clock
        math is the same for all of them, but accepting it keeps the
        detector protocol faithful for recorders that must round-trip
        the id (see ``FullTraceRecorder``).
        """
        self.sync_ops += 1
        merged = VectorClock()
        participants = [self.meta.thread(t) for t in tids]
        for thread in participants:
            merged.join(thread.vc)
        for thread in participants:
            thread.vc = merged.copy()
            thread.increment()
        self._charge(costs.FT_SYNC_BASE
                     + costs.FT_VC_PER_THREAD * len(merged)
                     * max(1, len(participants)))

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _charge_ping(self, var, tid: int) -> None:
        """Shadow-metadata cache-line transfer when the last accessor of
        this variable was a different thread (see FT_METADATA_PING)."""
        last = var.write_epoch or var.read_epoch
        if last and last & 0xFF != tid:
            self.metadata_pings += 1
            self._charge(costs.FT_METADATA_PING)

    def _var(self, block: int):
        var = self.meta.vars.get(block)
        if var is None:
            var = self.meta.var(block)
            self._charge(costs.FT_METADATA_INIT)
        return var

    def _report(self, kind: str, block: int, addr: int, prior_epoch: int,
                thread, instr_uid: int) -> None:
        if len(self.races) >= self.max_reports:
            return
        report = RaceReport(kind, block, addr, prior_epoch, thread.tid,
                            thread.vc.get(thread.tid), instr_uid)
        if report.key in self._reported_keys:
            return
        self._reported_keys.add(report.key)
        self.races.append(report)

    @staticmethod
    def _max_entry_epoch(vc: VectorClock) -> int:
        from repro.analyses.fasttrack.epoch import make_epoch
        best = EPOCH_NONE
        for tid, clock in vc.items():
            if clock > 0:
                best = make_epoch(tid, clock)
        return best

    def _charge(self, cycles: int) -> None:
        if self.counter is not None:
            self.counter.charge("fasttrack", cycles)


def apply_sync_event(detector: FastTrackDetector, event) -> None:
    """Dispatch a kernel synchronization event to the detector."""
    cls = event.__class__
    if cls is AcquireEvent:
        detector.on_acquire(event.tid, event.lock_id)
    elif cls is ReleaseEvent:
        detector.on_release(event.tid, event.lock_id)
    elif cls is ForkEvent:
        detector.on_fork(event.parent_tid, event.child_tid)
    elif cls is JoinEvent:
        detector.on_join(event.parent_tid, event.child_tid)
    elif cls is BarrierEvent:
        detector.on_barrier(event.tids, event.barrier_id)
    elif cls is ThreadExitEvent:
        pass  # join handles the happens-before edge
