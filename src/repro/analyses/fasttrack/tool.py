"""The conservative FastTrack DBR tool — the paper's baseline.

Instruments **every** memory-referencing instruction (since "for most
programming languages, it is impossible to statically determine which
operations access shared memory"), paying a clean call plus shadow-memory
translation per access. This is the configuration Figure 5 labels
"FastTrack".
"""

from __future__ import annotations

from typing import Optional

from repro.analyses.fasttrack.detector import (
    FastTrackDetector,
    apply_sync_event,
)
from repro.dbr.codecache import CachedBlock
from repro.dbr.tool import Tool
from repro.umbra.shadow import ShadowMemory


class FastTrackTool(Tool):
    """Full-instrumentation FastTrack over the DBR engine."""

    name = "fasttrack"

    def __init__(self, kernel, detector: Optional[FastTrackDetector] = None,
                 block_size: int = 8):
        super().__init__()
        self.kernel = kernel
        self.detector = (detector if detector is not None
                         else FastTrackDetector(kernel.counter, block_size))
        self.shadow = ShadowMemory(kernel.counter, block_size)
        vm = kernel.process.vm
        for region in vm.user_regions():
            self.shadow.add_region(region.start, region.length)
        vm.post_map_hooks.append(self._on_new_region)

    # ------------------------------------------------------------------
    def instrument_block(self, cached: CachedBlock) -> None:
        hook = self._access_hook
        for pos, instr in enumerate(cached.instrs):
            if instr.mem is not None:
                cached.set_hook(pos, hook)

    def on_sync_event(self, event) -> None:
        apply_sync_event(self.detector, event)

    @property
    def races(self):
        return self.detector.races

    # ------------------------------------------------------------------
    def _access_hook(self, thread, instr, ea: int) -> None:
        self.shadow.translate(thread.tid, ea)
        self.engine.stats.tool_invocations += 1
        self.detector.on_access(thread.tid, ea, instr.is_write, instr.uid)
        return None

    def _on_new_region(self, region) -> None:
        if region.kind in ("static", "heap", "mmap"):
            self.shadow.add_region(region.start, region.length)
