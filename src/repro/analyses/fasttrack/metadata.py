"""FastTrack metadata: per-variable, per-lock and per-thread state.

Following the paper's Aikido port (§4.2), "variables" are fixed-size
8-byte blocks of the address space; per-variable metadata lives in shadow
memory, per-lock metadata in a hash table, and per-thread metadata in
thread-local storage. Here those storage classes are host dictionaries,
with the lookup costs charged by the callers through the Umbra model.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analyses.fasttrack.epoch import EPOCH_NONE
from repro.analyses.fasttrack.vectorclock import VectorClock


class VarState:
    """One variable's access history: a write epoch plus read state.

    ``read_vc`` is None while reads are totally ordered (epoch mode); it
    is materialized only on concurrent reads (the read-shared transition).
    """

    __slots__ = ("write_epoch", "read_epoch", "read_vc")

    def __init__(self):
        self.write_epoch = EPOCH_NONE
        self.read_epoch = EPOCH_NONE
        self.read_vc: Optional[VectorClock] = None

    @property
    def read_shared(self) -> bool:
        return self.read_vc is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from repro.analyses.fasttrack.epoch import format_epoch
        read = (repr(self.read_vc) if self.read_vc is not None
                else format_epoch(self.read_epoch))
        return f"<VarState W={format_epoch(self.write_epoch)} R={read}>"


class ThreadState:
    """One thread's vector clock and cached epoch."""

    __slots__ = ("tid", "vc", "epoch")

    def __init__(self, tid: int):
        from repro.analyses.fasttrack.epoch import make_epoch
        self.tid = tid
        self.vc = VectorClock({tid: 1})
        self.epoch = make_epoch(tid, 1)

    def refresh_epoch(self) -> None:
        from repro.analyses.fasttrack.epoch import make_epoch
        self.epoch = make_epoch(self.tid, self.vc.get(self.tid))

    def increment(self) -> None:
        self.vc.increment(self.tid)
        self.refresh_epoch()


class MetadataStore:
    """All detector state: variables, locks, threads, barriers."""

    def __init__(self, block_size: int = 8):
        self.block_size = block_size
        self.vars: Dict[int, VarState] = {}
        self.locks: Dict[int, VectorClock] = {}
        self.threads: Dict[int, ThreadState] = {}
        #: barrier id -> accumulated clock (for all-to-all ordering).
        self.barrier_clocks: Dict[int, VectorClock] = {}
        #: Variables whose metadata had to be initialized (cost model).
        self.var_inits = 0

    def thread(self, tid: int) -> ThreadState:
        state = self.threads.get(tid)
        if state is None:
            state = self.threads[tid] = ThreadState(tid)
        return state

    def var(self, block: int) -> VarState:
        state = self.vars.get(block)
        if state is None:
            state = self.vars[block] = VarState()
            self.var_inits += 1
        return state

    def lock(self, lock_id: int) -> VectorClock:
        vc = self.locks.get(lock_id)
        if vc is None:
            vc = self.locks[lock_id] = VectorClock()
        return vc

    def block_of(self, addr: int) -> int:
        return addr // self.block_size

    def drop_var(self, block: int) -> None:
        self.vars.pop(block, None)
