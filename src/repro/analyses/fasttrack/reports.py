"""Race reports."""

from __future__ import annotations

from repro.analyses.fasttrack.epoch import format_epoch


class RaceReport:
    """One detected data race on a variable block.

    ``kind`` is one of ``"write-write"``, ``"write-read"``,
    ``"read-write"``: the first word is the *prior* access, the second the
    current one. ``block`` identifies the 8-byte variable; ``address`` is
    the concrete faulting address of the current access.
    """

    __slots__ = ("kind", "block", "address", "prior_epoch", "current_tid",
                 "current_clock", "instr_uid")

    def __init__(self, kind: str, block: int, address: int,
                 prior_epoch: int, current_tid: int, current_clock: int,
                 instr_uid: int = -1):
        self.kind = kind
        self.block = block
        self.address = address
        self.prior_epoch = prior_epoch
        self.current_tid = current_tid
        self.current_clock = current_clock
        self.instr_uid = instr_uid

    @property
    def key(self):
        """Deduplication key: one report per (variable, kind)."""
        return (self.block, self.kind)

    def describe(self) -> str:
        return (f"{self.kind} race on block {self.block:#x} "
                f"(addr {self.address:#x}): prior "
                f"{format_epoch(self.prior_epoch)} vs "
                f"t{self.current_tid}@{self.current_clock}")

    def describe_with_program(self, program) -> str:
        """Like :meth:`describe`, plus the current access's disassembly
        (ThreadSanitizer-style attribution). ``program`` must be the
        program the run executed (uids are stable per build)."""
        base = self.describe()
        if self.instr_uid < 0:
            return base
        try:
            instr = program.instruction_at(self.instr_uid)
        except KeyError:
            return base
        from repro.machine.disasm import format_instruction
        block_index, _ = program.instruction_locations[self.instr_uid]
        label = program.blocks[block_index].label
        return (f"{base}\n    at {label}: "
                f"{format_instruction(instr).strip()}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RaceReport {self.describe()}>"
