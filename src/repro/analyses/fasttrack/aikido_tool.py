"""Aikido-FastTrack: the accelerated race detector of paper §4.2.

Under Aikido, FastTrack "only instruments instructions that access shared
data and only maintains the epoch metadata for shared data": AikidoSD
feeds this adapter just the shared-page accesses, so private data costs
nothing and its metadata is never allocated.

When the §6 first-access ordering workaround is enabled
(:attr:`repro.core.config.AikidoConfig.order_first_accesses`), the page
lifecycle callbacks add a happens-before edge from a page's private phase
to its sharing access, closing the first-two-access false-negative window
(the deterministic substrate is assumed to make that ordering stable).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analyses.fasttrack.detector import (
    FastTrackDetector,
    apply_sync_event,
)
from repro.analyses.fasttrack.vectorclock import VectorClock
from repro.core.analysis import SharedDataAnalysis


class AikidoFastTrack(SharedDataAnalysis):
    """FastTrack as a shared-data analysis driven by AikidoSD."""

    name = "aikido-fasttrack"

    def __init__(self, kernel, detector: Optional[FastTrackDetector] = None,
                 block_size: int = 8):
        self.detector = (detector if detector is not None
                         else FastTrackDetector(kernel.counter, block_size))
        #: vpn -> owner's clock snapshot, kept while the §6 ordering
        #: workaround is active.
        self._page_clocks: Dict[int, VectorClock] = {}

    # ------------------------------------------------------------------
    def on_shared_access(self, thread, instr, addr: int,
                         is_write: bool) -> None:
        self.detector.on_access(thread.tid, addr, is_write, instr.uid)

    def on_sync_event(self, event) -> None:
        apply_sync_event(self.detector, event)

    # ------------------------------------------------------------------
    # §6 ordering workaround
    # ------------------------------------------------------------------
    def on_page_first_touch(self, vpn: int, thread) -> None:
        owner = self.detector.meta.thread(thread.tid)
        self._page_clocks[vpn] = owner.vc.copy()
        owner.increment()

    def on_page_shared(self, vpn: int, thread) -> None:
        snapshot = self._page_clocks.pop(vpn, None)
        if snapshot is None:
            return
        sharer = self.detector.meta.thread(thread.tid)
        sharer.vc.join(snapshot)
        sharer.refresh_epoch()

    # ------------------------------------------------------------------
    @property
    def races(self):
        return self.detector.races
