"""Epochs: FastTrack's one-word access summaries.

An epoch ``c@t`` packs a thread id and that thread's clock into a single
integer (``clock << TID_BITS | tid``), exactly the trick that lets
FastTrack's fast paths be O(1) instead of O(threads).
"""

from __future__ import annotations

#: Bits reserved for the thread id; supports up to 255 threads.
TID_BITS = 8
_TID_MASK = (1 << TID_BITS) - 1

#: The "never accessed" epoch (clock 0 of the impossible tid 0).
EPOCH_NONE = 0


def make_epoch(tid: int, clock: int) -> int:
    """Pack ``clock @ tid`` into one integer."""
    if not 0 < tid <= _TID_MASK:
        raise ValueError(f"tid {tid} out of epoch range")
    return (clock << TID_BITS) | tid


def epoch_tid(epoch: int) -> int:
    return epoch & _TID_MASK


def epoch_clock(epoch: int) -> int:
    return epoch >> TID_BITS


def epoch_leq_vc(epoch: int, vc) -> bool:
    """Does the epoch happen-before-or-equal the vector clock?"""
    if epoch == EPOCH_NONE:
        return True
    return (epoch >> TID_BITS) <= vc.get(epoch & _TID_MASK)


def format_epoch(epoch: int) -> str:
    """Human-readable ``c@t`` form for reports."""
    if epoch == EPOCH_NONE:
        return "⊥"
    return f"{epoch >> TID_BITS}@t{epoch & _TID_MASK}"
