"""The FastTrack race detection algorithm (Flanagan & Freund, PLDI'09).

FastTrack computes a happens-before relation with vector clocks, using the
*epoch* optimization: while a variable's accesses are totally ordered,
only the last access (one word: clock ⊗ tid) is tracked; the full vector
clock is materialized only for read-shared variables.

This package contains the algorithm (:mod:`detector`), its metadata
(:mod:`vectorclock`, :mod:`epoch`, :mod:`metadata`), race records
(:mod:`reports`), and the two integrations the paper evaluates: the
conservative instrument-everything DBR tool (:mod:`tool`) and the
Aikido-accelerated analysis (:mod:`aikido_tool`).
"""

from repro.analyses.fasttrack.vectorclock import VectorClock
from repro.analyses.fasttrack.epoch import (
    EPOCH_NONE,
    epoch_clock,
    epoch_tid,
    make_epoch,
)
from repro.analyses.fasttrack.detector import FastTrackDetector
from repro.analyses.fasttrack.reports import RaceReport
from repro.analyses.fasttrack.tool import FastTrackTool
from repro.analyses.fasttrack.aikido_tool import AikidoFastTrack

__all__ = [
    "AikidoFastTrack",
    "EPOCH_NONE",
    "FastTrackDetector",
    "FastTrackTool",
    "RaceReport",
    "VectorClock",
    "epoch_clock",
    "epoch_tid",
    "make_epoch",
]
