"""An AVIO-style atomicity checker (shared-data analysis #2).

The paper's introduction motivates Aikido with *both* race detectors and
atomicity checkers [18, 32, 26, 20]; this module implements the
access-interleaving-invariant checker of AVIO (Lu et al., ASPLOS'06,
the paper's citation [26]) as a second
:class:`~repro.core.analysis.SharedDataAnalysis`, demonstrating that
AikidoSD accelerates the whole analysis class, not just FastTrack.

AVIO's insight: for two consecutive accesses by one thread to the same
variable inside an atomic region, exactly four interleavings by a remote
access are unserializable:

====  =======  ======  ===========================================
# 1   read     write   read    (the two local reads see different data)
# 2   write    write   read    (local read sees the remote write)
# 3   read     write   write   (local write is based on a stale read)
# 4   write    read    write   (remote read sees an intermediate value)
====  =======  ======  ===========================================

Atomic regions are lock-delimited critical sections (the analysis only
checks invariants *inside* them; code outside critical sections makes no
atomicity promise to violate).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro import costs
from repro.core.analysis import SharedDataAnalysis
from repro.events import AcquireEvent, ReleaseEvent

#: The four unserializable (local, remote, local) interleavings, as
#: (prev_local_is_write, remote_is_write, current_local_is_write).
UNSERIALIZABLE = frozenset({
    (False, True, False),   # case 1
    (True, True, False),    # case 2
    (False, True, True),    # case 3
    (True, False, True),    # case 4
})


class AtomicityViolation:
    """One broken access-interleaving invariant."""

    __slots__ = ("block", "address", "tid", "remote_tid", "pattern")

    def __init__(self, block: int, address: int, tid: int,
                 remote_tid: int, pattern: Tuple[bool, bool, bool]):
        self.block = block
        self.address = address
        self.tid = tid
        self.remote_tid = remote_tid
        self.pattern = pattern

    @property
    def key(self):
        return (self.block, self.pattern)

    def describe(self) -> str:
        def kind(w):
            return "W" if w else "R"
        p = self.pattern
        return (f"atomicity violation on block {self.block:#x}: "
                f"t{self.tid} {kind(p[0])}..{kind(p[2])} interleaved by "
                f"t{self.remote_tid} {kind(p[1])} inside a critical "
                "section")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<AtomicityViolation {self.describe()}>"


class _LocalMark:
    """A thread's previous access to a variable inside its current region."""

    __slots__ = ("region_serial", "is_write", "remote")

    def __init__(self, region_serial: int, is_write: bool):
        self.region_serial = region_serial
        self.is_write = is_write
        #: The most conflicting remote access since this mark, if any:
        #: (tid, is_write). Writes dominate reads.
        self.remote: Optional[Tuple[int, bool]] = None


class AVIOChecker:
    """The access-interleaving-invariant checker."""

    def __init__(self, counter=None, block_size: int = 8,
                 max_reports: int = 10_000):
        self.counter = counter
        self.block_size = block_size
        self.max_reports = max_reports
        self.violations: List[AtomicityViolation] = []
        self._reported: Set = set()
        #: tid -> serial of the critical-section region it is inside, or
        #: None outside any region. Serials never repeat.
        self._region: Dict[int, Optional[int]] = {}
        self._next_region = 1
        #: tid -> nesting depth (region survives until the outermost
        #: release).
        self._depth: Dict[int, int] = {}
        # block -> tid -> _LocalMark
        self._marks: Dict[int, Dict[int, _LocalMark]] = {}
        self.checked = 0

    # ------------------------------------------------------------------
    # region management
    # ------------------------------------------------------------------
    def on_acquire(self, tid: int, lock_id: int) -> None:
        depth = self._depth.get(tid, 0)
        if depth == 0:
            self._region[tid] = self._next_region
            self._next_region += 1
        self._depth[tid] = depth + 1

    def on_release(self, tid: int, lock_id: int) -> None:
        depth = self._depth.get(tid, 0)
        if depth <= 1:
            self._depth[tid] = 0
            self._region[tid] = None
        else:
            self._depth[tid] = depth - 1

    def region_of(self, tid: int) -> Optional[int]:
        return self._region.get(tid)

    # ------------------------------------------------------------------
    def on_access(self, tid: int, addr: int, is_write: bool,
                  instr_uid: int = -1) -> None:
        self.checked += 1
        if self.counter is not None:
            self.counter.charge("avio", costs.AVIO_ACCESS)
        block = addr // self.block_size
        marks = self._marks.get(block)
        if marks is None:
            marks = self._marks[block] = {}
        # 1. This access is "remote" for every other thread's mark.
        for other_tid, mark in marks.items():
            if other_tid == tid:
                continue
            if mark.remote is None or (is_write and not mark.remote[1]):
                mark.remote = (tid, is_write)
        # 2. Check the invariant against our own previous access.
        region = self._region.get(tid)
        mine = marks.get(tid)
        if (mine is not None and region is not None
                and mine.region_serial == region
                and mine.remote is not None):
            remote_tid, remote_write = mine.remote
            pattern = (mine.is_write, remote_write, is_write)
            if pattern in UNSERIALIZABLE:
                self._report(block, addr, tid, remote_tid, pattern)
        # 3. Become the new local mark (only meaningful inside a region).
        if region is not None:
            marks[tid] = _LocalMark(region, is_write)
        else:
            marks.pop(tid, None)

    # ------------------------------------------------------------------
    def _report(self, block: int, addr: int, tid: int, remote_tid: int,
                pattern) -> None:
        violation = AtomicityViolation(block, addr, tid, remote_tid,
                                       pattern)
        if violation.key in self._reported \
                or len(self.violations) >= self.max_reports:
            return
        self._reported.add(violation.key)
        self.violations.append(violation)


class AikidoAtomicity(SharedDataAnalysis):
    """AVIO as an Aikido-accelerated shared-data analysis."""

    name = "aikido-avio"

    def __init__(self, kernel, block_size: int = 8):
        self.checker = AVIOChecker(kernel.counter, block_size)

    def on_shared_access(self, thread, instr, addr: int,
                         is_write: bool) -> None:
        self.checker.on_access(thread.tid, addr, is_write, instr.uid)

    def on_sync_event(self, event) -> None:
        cls = event.__class__
        if cls is AcquireEvent:
            self.checker.on_acquire(event.tid, event.lock_id)
        elif cls is ReleaseEvent:
            self.checker.on_release(event.tid, event.lock_id)

    @property
    def violations(self):
        return self.checker.violations
