"""An Eraser-style LockSet race detector (related work, paper §7.3).

Eraser (Savage et al., TOCS'97) checks the *locking discipline*: every
shared variable must be consistently protected by at least one lock. It
is cheaper than happens-before detection but **can report false
positives** — e.g. fork/join- or barrier-ordered accesses with no common
lock are flagged even though no race is possible. The paper cites exactly
this trade-off when motivating FastTrack-style precision; the ablation
benchmark ``bench_ablations.py::test_eraser_vs_fasttrack`` measures both
sides (cost and false positives) on the same workloads.

State machine per variable (classic Eraser):

    VIRGIN -> EXCLUSIVE (first thread) -> SHARED (read by another thread)
           -> SHARED_MODIFIED (written by another thread)

Lockset refinement starts at the first second-thread access; an empty
candidate set in SHARED_MODIFIED is a report.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, List, Set

from repro import costs
from repro.core.analysis import SharedDataAnalysis
from repro.events import (
    AcquireEvent,
    BarrierEvent,
    ForkEvent,
    JoinEvent,
    ReleaseEvent,
)


class VarMode(enum.Enum):
    VIRGIN = "virgin"
    EXCLUSIVE = "exclusive"
    SHARED = "shared"
    SHARED_MODIFIED = "shared-modified"


class LockSetReport:
    """A locking-discipline violation."""

    __slots__ = ("block", "address", "tid", "is_write")

    def __init__(self, block: int, address: int, tid: int, is_write: bool):
        self.block = block
        self.address = address
        self.tid = tid
        self.is_write = is_write

    @property
    def key(self):
        return self.block

    def describe(self) -> str:
        kind = "write" if self.is_write else "read"
        return (f"lockset violation on block {self.block:#x} "
                f"({kind} by t{self.tid}, candidate set empty)")


class _VarState:
    __slots__ = ("mode", "owner", "candidates")

    def __init__(self):
        self.mode = VarMode.VIRGIN
        self.owner = -1
        self.candidates: FrozenSet[int] = frozenset()


class EraserDetector:
    """The LockSet algorithm over 8-byte blocks."""

    def __init__(self, counter=None, block_size: int = 8,
                 max_reports: int = 10_000):
        self.counter = counter
        self.block_size = block_size
        self.max_reports = max_reports
        self._held: Dict[int, Set[int]] = {}
        self._vars: Dict[int, _VarState] = {}
        self.reports: List[LockSetReport] = []
        self._reported: Set[int] = set()
        self.accesses = 0

    # ------------------------------------------------------------------
    def locks_held(self, tid: int) -> Set[int]:
        held = self._held.get(tid)
        if held is None:
            held = self._held[tid] = set()
        return held

    def on_acquire(self, tid: int, lock_id: int) -> None:
        self.locks_held(tid).add(lock_id)

    def on_release(self, tid: int, lock_id: int) -> None:
        self.locks_held(tid).discard(lock_id)

    # ------------------------------------------------------------------
    def on_access(self, tid: int, addr: int, is_write: bool,
                  instr_uid: int = -1) -> None:
        self.accesses += 1
        if self.counter is not None:
            self.counter.charge("eraser", costs.ERASER_ACCESS)
        block = addr // self.block_size
        var = self._vars.get(block)
        if var is None:
            var = self._vars[block] = _VarState()
        mode = var.mode
        if mode is VarMode.VIRGIN:
            var.mode = VarMode.EXCLUSIVE
            var.owner = tid
            return
        if mode is VarMode.EXCLUSIVE:
            if tid == var.owner:
                return
            # Second thread: start lockset refinement.
            var.candidates = frozenset(self.locks_held(tid))
            var.mode = (VarMode.SHARED_MODIFIED if is_write
                        else VarMode.SHARED)
            if var.mode is VarMode.SHARED_MODIFIED and not var.candidates:
                self._report(block, addr, tid, is_write)
            return
        var.candidates = var.candidates & frozenset(self.locks_held(tid))
        if is_write and mode is VarMode.SHARED:
            var.mode = VarMode.SHARED_MODIFIED
        if var.mode is VarMode.SHARED_MODIFIED and not var.candidates:
            self._report(block, addr, tid, is_write)

    # ------------------------------------------------------------------
    def _report(self, block: int, addr: int, tid: int,
                is_write: bool) -> None:
        if block in self._reported or len(self.reports) >= self.max_reports:
            return
        self._reported.add(block)
        self.reports.append(LockSetReport(block, addr, tid, is_write))


class EraserAnalysis(SharedDataAnalysis):
    """Eraser as an Aikido shared-data analysis.

    LockSet famously ignores fork/join and barrier ordering — the source
    of its false positives — so only acquire/release events matter here.
    """

    name = "aikido-eraser"

    def __init__(self, kernel, block_size: int = 8):
        self.detector = EraserDetector(kernel.counter, block_size)

    def on_shared_access(self, thread, instr, addr, is_write) -> None:
        self.detector.on_access(thread.tid, addr, is_write, instr.uid)

    def on_sync_event(self, event) -> None:
        cls = event.__class__
        if cls is AcquireEvent:
            self.detector.on_acquire(event.tid, event.lock_id)
        elif cls is ReleaseEvent:
            self.detector.on_release(event.tid, event.lock_id)
        # Fork/Join/Barrier deliberately ignored: Eraser's imprecision.

    @property
    def reports(self):
        return self.detector.reports
