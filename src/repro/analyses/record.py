"""Trace recording and offline replay.

Record mode is a classic use of shared-data instrumentation: capture the
(shared) access stream plus all synchronization once, then replay it
through any number of detectors offline — FastTrack, Eraser and AVIO can
all be run from one recorded execution without re-running the program.
Under Aikido the recorded stream contains only shared-page accesses, so
the trace is both cheap to collect and exactly what those analyses need.

Trace entries are tuples (kept pickle-friendly):

* ``("access", tid, addr, is_write, instr_uid)``
* ``("acquire"|"release", tid, lock_id)``
* ``("fork"|"join", parent_tid, child_tid)``
* ``("barrier", barrier_id, tids)``
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from repro.core.analysis import SharedDataAnalysis
from repro.errors import ToolError
from repro.events import (
    AcquireEvent,
    BarrierEvent,
    ForkEvent,
    JoinEvent,
    ReleaseEvent,
    ThreadExitEvent,
)

TraceEntry = Tuple


class TraceRecorder(SharedDataAnalysis):
    """Records the shared-access + synchronization stream."""

    name = "trace-recorder"

    def __init__(self):
        self.trace: List[TraceEntry] = []

    def on_shared_access(self, thread, instr, addr: int,
                         is_write: bool) -> None:
        self.trace.append(("access", thread.tid, addr, is_write,
                           instr.uid))

    def on_sync_event(self, event) -> None:
        cls = event.__class__
        if cls is AcquireEvent:
            self.trace.append(("acquire", event.tid, event.lock_id))
        elif cls is ReleaseEvent:
            self.trace.append(("release", event.tid, event.lock_id))
        elif cls is ForkEvent:
            self.trace.append(("fork", event.parent_tid, event.child_tid))
        elif cls is JoinEvent:
            self.trace.append(("join", event.parent_tid, event.child_tid))
        elif cls is BarrierEvent:
            self.trace.append(("barrier", event.barrier_id,
                               tuple(event.tids)))
        elif cls is ThreadExitEvent:
            # Deliberately not recorded: JOIN carries the happens-before
            # edge, so replay needs no exit entry (the live detectors
            # make the same call).
            pass
        else:
            raise ToolError(
                f"trace-recorder: unrecognized sync event "
                f"{cls.__name__}; dropping it would make the recorded "
                f"trace silently diverge from the live run")

    # ------------------------------------------------------------------
    @property
    def access_count(self) -> int:
        return sum(1 for e in self.trace if e[0] == "access")

    @property
    def sync_count(self) -> int:
        return len(self.trace) - self.access_count


class FullTraceRecorder:
    """Detector-protocol recorder for *full-instrumentation* tracing.

    Use with :class:`repro.analyses.generic_tool.FullInstrumentationTool`
    when the trace must include every access (an Aikido-collected trace
    inherits Aikido's first-touch blind spot — fine for shared-data
    analyses, wrong for ground-truth happens-before graphs).
    """

    def __init__(self):
        self.trace: List[TraceEntry] = []

    def on_access(self, tid: int, addr: int, is_write: bool,
                  instr_uid: int = -1) -> None:
        self.trace.append(("access", tid, addr, is_write, instr_uid))

    def on_acquire(self, tid: int, lock_id: int) -> None:
        self.trace.append(("acquire", tid, lock_id))

    def on_release(self, tid: int, lock_id: int) -> None:
        self.trace.append(("release", tid, lock_id))

    def on_fork(self, parent_tid: int, child_tid: int) -> None:
        self.trace.append(("fork", parent_tid, child_tid))

    def on_join(self, parent_tid: int, child_tid: int) -> None:
        self.trace.append(("join", parent_tid, child_tid))

    def on_barrier(self, tids, barrier_id: int = 0) -> None:
        self.trace.append(("barrier", barrier_id, tuple(tids)))


#: Sync handlers the replay contract documents as *optional*: a detector
#: without one of these simply does not track that relation (Eraser has
#: no fork/join notion). Anything outside this set is an unknown entry
#: kind and replaying past it would desynchronize the detector.
_OPTIONAL_SYNC = frozenset({"acquire", "release", "fork", "join", "barrier"})


def replay(trace: List[TraceEntry], detector) -> None:
    """Feed a recorded trace into a detector.

    The detector needs ``on_access`` and whichever of
    ``on_acquire/on_release/on_fork/on_join/on_barrier`` the trace's
    synchronization requires (those handlers are optional — Eraser, for
    instance, has no fork/join notion). An entry kind outside that set
    raises :class:`ToolError` — the same contract ``TraceRecorder``
    applies to unrecognized live sync events — instead of being silently
    skipped. Barrier entries dispatch with their recorded barrier id, so
    a replay→re-record round trip is identity.
    """
    from repro.analyses.generic_tool import call_barrier_handler

    for entry in trace:
        kind = entry[0]
        if kind == "access":
            _, tid, addr, is_write, uid = entry
            detector.on_access(tid, addr, is_write, uid)
        elif kind in _OPTIONAL_SYNC:
            handler = getattr(detector, f"on_{kind}", None)
            if handler is None:
                continue
            if kind == "barrier":
                call_barrier_handler(handler, entry[2], entry[1])
            else:
                handler(entry[1], entry[2])
        else:
            raise ToolError(
                f"replay: unrecognized trace entry kind {kind!r}; "
                f"skipping it would silently desynchronize the "
                f"replayed detector from the live run")


def replay_into(trace: List[TraceEntry],
                detector_factory: Callable[[], object]):
    """Convenience: build a detector, replay, return it."""
    detector = detector_factory()
    replay(trace, detector)
    return detector
