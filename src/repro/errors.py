"""Exception hierarchy for the Aikido reproduction.

Every layer of the simulated stack raises a subclass of :class:`ReproError`
so callers can distinguish simulation bugs (plain Python exceptions) from
*simulated* error conditions (these classes).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all simulated-system errors."""


class MachineError(ReproError):
    """Errors raised by the simulated hardware."""


class InvalidInstructionError(MachineError):
    """The CPU decoded an instruction it cannot execute."""


class PhysicalMemoryError(MachineError):
    """Access to an unmapped or out-of-range physical address."""


class GuestOSError(ReproError):
    """Errors raised by the simulated guest operating system."""


class NoSuchSyscallError(GuestOSError):
    """A program invoked an unknown syscall number."""


class SegmentationFaultError(GuestOSError):
    """An unhandled fault killed the simulated process.

    Raised out of the simulation when a thread faults on an address the
    kernel cannot repair and the process has no applicable signal handler.
    """

    def __init__(self, message: str, *, address: int | None = None,
                 thread_id: int | None = None):
        super().__init__(message)
        self.address = address
        self.thread_id = thread_id


class DeadlockError(GuestOSError):
    """The scheduler found no runnable thread but threads remain."""


class HypervisorError(ReproError):
    """Errors raised by the AikidoVM hypervisor simulation."""


class BadHypercallError(HypervisorError):
    """A guest issued a malformed or unknown hypercall."""


class ToolError(ReproError):
    """Errors raised by DBR tools (analyses)."""


class WorkloadError(ReproError):
    """Errors raised while constructing synthetic workloads."""


class HarnessError(ReproError):
    """Errors raised by the experiment harness."""
