"""Exception hierarchy for the Aikido reproduction.

Every layer of the simulated stack raises a subclass of :class:`ReproError`
so callers can distinguish simulation bugs (plain Python exceptions) from
*simulated* error conditions (these classes).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all simulated-system errors."""


class MachineError(ReproError):
    """Errors raised by the simulated hardware."""


class InvalidInstructionError(MachineError):
    """The CPU decoded an instruction it cannot execute."""


class PhysicalMemoryError(MachineError):
    """Access to an unmapped or out-of-range physical address."""


class GuestOSError(ReproError):
    """Errors raised by the simulated guest operating system."""


class NoSuchSyscallError(GuestOSError):
    """A program invoked an unknown syscall number."""


class SegmentationFaultError(GuestOSError):
    """An unhandled fault killed the simulated process.

    Raised out of the simulation when a thread faults on an address the
    kernel cannot repair and the process has no applicable signal handler.
    """

    def __init__(self, message: str, *, address: int | None = None,
                 thread_id: int | None = None):
        super().__init__(message)
        self.address = address
        self.thread_id = thread_id


class DeadlockError(GuestOSError):
    """The scheduler found no runnable thread but threads remain."""


class HypervisorError(ReproError):
    """Errors raised by the AikidoVM hypervisor simulation."""


class BadHypercallError(HypervisorError):
    """A guest issued a malformed or unknown hypercall."""


class TransientHypercallError(HypervisorError):
    """A hypercall failed transiently (chaos-injected); retrying is legal.

    AikidoLib retries these with a bounded attempt budget; only when the
    budget is exhausted does the error escape to the caller.
    """


class ChaosError(ReproError):
    """A fault-injection plan is malformed (unknown point, bad rate)."""


class InvariantViolationError(ReproError):
    """A cross-layer invariant of the Aikido stack does not hold.

    Raised by :class:`repro.chaos.invariants.InvariantMonitor` with a
    structured diagnosis: ``invariant`` names the broken check and
    ``details`` carries the offending entities (tid, vpn, expected vs
    observed flags, ...) as JSON-safe primitives.
    """

    def __init__(self, invariant: str, message: str, **details):
        super().__init__(f"[{invariant}] {message}")
        self.invariant = invariant
        self.details = details

    def diagnosis(self) -> dict:
        """The structured form (what harness failure records archive)."""
        return {"invariant": self.invariant, "message": str(self),
                "details": dict(self.details)}


class ToolError(ReproError):
    """Errors raised by DBR tools (analyses)."""


class EventLogError(ToolError):
    """A recorded event log is malformed or corrupt.

    Raised by :mod:`repro.eventlog` for framing violations: bad magic,
    an unknown entry kind, a chunk whose CRC does not match its payload,
    or a torn file (truncated mid-chunk, or missing the finalize
    trailer). The reader *rejects* such logs instead of replaying a
    prefix — a silently shortened trace would desynchronize every
    detector fed from it.
    """


class TraceError(ReproError):
    """Errors raised by the observability layer.

    Covers malformed trace artifacts (a Chrome trace that does not
    validate), unbalanced span begin/end pairs, and attribution
    inconsistencies (a bucket decomposition that does not sum to the
    run's total cycles).
    """


class WorkloadError(ReproError):
    """Errors raised while constructing synthetic workloads."""


class HarnessError(ReproError):
    """Errors raised by the experiment harness."""


class JobTimeoutError(HarnessError):
    """A harness job exceeded its per-job wall-clock budget."""


class SuiteFailureError(HarnessError):
    """One or more jobs of a batch failed; the rest completed.

    ``failures`` is the list of per-job failure records (see
    :class:`repro.harness.parallel.JobFailure`); ``results`` is the full
    batch in submission order, mixing results and failure records, so a
    caller catching this still gets every completed run.
    """

    def __init__(self, message: str, failures=(), results=None):
        super().__init__(message)
        self.failures = list(failures)
        self.results = results
