"""Resumable fuzz campaigns over generated scenarios.

A campaign is a seed range: scenario ``i`` is ``generate(base_seed + i,
config)``, checked by the differential oracle, and its verdict is
journaled (``--journal``/``--resume``, the same
:class:`~repro.harness.journal.RunJournal` the suite harness uses) and
cached (:class:`~repro.harness.resultcache.ResultCache`). Keys fold in
the generator config, the oracle version and the harness fingerprint
(package version + cost model), so stale verdicts never satisfy a
lookup. A killed campaign resumed with ``--resume`` re-simulates
nothing that was already journaled.

Failing scenarios are automatically shrunk by the reducer and, when a
corpus directory is given, archived as one JSON file per seed::

    corpus/
      seed-000017.json     # {"seed", "ir", "verdict", "minimized": {
                           #   "ir", "instructions", "disassembly",
                           #   "attempts"}}
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.harness.journal import RunJournal
from repro.harness.parallel import fingerprint
from repro.harness.resultcache import ResultCache
from repro.scengen.generator import (
    DEFAULT_CONFIG,
    QUICK_CONFIG,
    GeneratorConfig,
    generate,
)
from repro.scengen.oracle import (
    TierRunner,
    check_scenario,
    failure_signature,
)
from repro.scengen.reducer import reduce_scenario
from repro.scengen.scenario import ScenarioIR, describe, render

#: Bumped whenever the oracle's checks change meaning, invalidating
#: journaled/cached verdicts from older code.
#: 2: added static_race_superset + lint_clean checks.
#: 3: added eventlog_roundtrip + cross_analysis_agreement checks.
#: 4: added superblock-tier parity checks (fasttrack + aikido).
ORACLE_VERSION = 4


def scenario_key(config: GeneratorConfig, seed: int, quick: bool) -> str:
    """Stable journal/cache key for one scenario's verdict."""
    basis = {
        "kind": "scengen-verdict",
        "oracle": ORACLE_VERSION,
        "config": config.canonical(),
        "seed": seed,
        "quick": quick,
        "fingerprint": fingerprint(),
    }
    blob = json.dumps(basis, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


@dataclass
class CampaignResult:
    """Everything one campaign invocation produced."""

    payloads: List[Dict] = field(default_factory=list)
    simulated: int = 0
    journal_hits: int = 0
    cache_hits: int = 0

    @property
    def disagreements(self) -> List[Dict]:
        return [p for p in self.payloads if not p["verdict"]["ok"]]

    def check_totals(self) -> Dict[str, Dict[str, int]]:
        totals: Dict[str, Dict[str, int]] = {}
        for payload in self.payloads:
            for name, check in payload["verdict"]["checks"].items():
                bucket = totals.setdefault(
                    name, {"pass": 0, "fail": 0, "skipped": 0})
                if check.get("skipped"):
                    bucket["skipped"] += 1
                elif check["ok"]:
                    bucket["pass"] += 1
                else:
                    bucket["fail"] += 1
        return totals

    def stats_line(self) -> str:
        return (f"{self.simulated} simulated, "
                f"{self.journal_hits} replayed from journal, "
                f"{self.cache_hits} cache hits, "
                f"{len(self.disagreements)} disagreement(s)")


def _minimize(ir: ScenarioIR, verdict: Dict, quick: bool,
              tier_runner: Optional[TierRunner]) -> Dict:
    target = set(failure_signature(verdict))

    def predicate(candidate: ScenarioIR) -> bool:
        seen = set(failure_signature(
            check_scenario(candidate, quick=quick,
                           tier_runner=tier_runner)))
        return target <= seen

    reduction = reduce_scenario(ir, predicate)
    _, info = render(reduction.minimized)
    return {
        "ir": reduction.minimized.to_dict(),
        "instructions": info.instruction_count,
        "disassembly": describe(reduction.minimized),
        "attempts": reduction.attempts,
    }


def scenario_payload(seed: int, config: GeneratorConfig, *,
                     quick: bool = True, reduce_failing: bool = True,
                     tier_runner: Optional[TierRunner] = None) -> Dict:
    """Generate + check one scenario, returning the journal payload.

    The single-scenario unit of work shared by :func:`run_campaign` and
    the fleet's fuzz shards (:mod:`repro.fleet.shards`): both paths
    produce byte-identical payloads for the same ``(seed, config,
    quick)``, which is what makes a distributed fuzz campaign's merged
    report bit-identical to the serial one.
    """
    ir = generate(seed, config)
    verdict = check_scenario(ir, quick=quick, tier_runner=tier_runner)
    payload = {"seed": seed, "ir": ir.to_dict(), "verdict": verdict}
    if not verdict["ok"] and reduce_failing:
        payload["minimized"] = _minimize(ir, verdict, quick, tier_runner)
    return payload


def run_campaign(base_seed: int, count: int, *,
                 config: Optional[GeneratorConfig] = None,
                 quick: bool = True,
                 journal: Optional[RunJournal] = None,
                 cache: Optional[ResultCache] = None,
                 corpus_dir: Optional[str] = None,
                 reduce_failing: bool = True,
                 tier_runner: Optional[TierRunner] = None,
                 progress: Optional[Callable[[str], None]] = None
                 ) -> CampaignResult:
    """Check ``count`` scenarios starting at ``base_seed``.

    ``tier_runner`` overrides the oracle's tier execution (tests plant
    divergence bugs there); journal and cache are bypassed in that case
    so a planted bug can never poison real verdicts.
    """
    config = config or (QUICK_CONFIG if quick else DEFAULT_CONFIG)
    use_store = tier_runner is None
    result = CampaignResult()
    corpus = Path(corpus_dir) if corpus_dir else None
    if corpus is not None:
        corpus.mkdir(parents=True, exist_ok=True)
    for seed in range(base_seed, base_seed + count):
        key = scenario_key(config, seed, quick)
        payload = None
        if use_store and journal is not None:
            payload = journal.get(key)
            if payload is not None:
                result.journal_hits += 1
        if payload is None and use_store and cache is not None:
            payload = cache.get(key)
            if payload is not None:
                result.cache_hits += 1
                if journal is not None:
                    journal.record(key, payload)
        if payload is None:
            payload = scenario_payload(seed, config, quick=quick,
                                       reduce_failing=reduce_failing,
                                       tier_runner=tier_runner)
            verdict = payload["verdict"]
            result.simulated += 1
            if use_store:
                if journal is not None:
                    journal.record(key, payload)
                if cache is not None:
                    cache.put(key, payload)
            if progress is not None:
                status = "ok" if verdict["ok"] else "DISAGREEMENT"
                progress(f"scenario {seed}: {status} "
                         f"[{verdict['outcome']}]")
        result.payloads.append(payload)
        if corpus is not None and not payload["verdict"]["ok"]:
            path = corpus / f"seed-{seed:06d}.json"
            path.write_text(json.dumps(payload, indent=2,
                                       sort_keys=True) + "\n")
    return result


def render_campaign(result: CampaignResult) -> str:
    """Human-readable campaign summary."""
    lines = [f"fuzz campaign: {len(result.payloads)} scenario(s), "
             f"{len(result.disagreements)} disagreement(s)"]
    lines.append(f"  {'check':<26s} {'pass':>6s} {'fail':>6s} "
                 f"{'skip':>6s}")
    for name, bucket in sorted(result.check_totals().items()):
        lines.append(f"  {name:<26s} {bucket['pass']:>6d} "
                     f"{bucket['fail']:>6d} {bucket['skipped']:>6d}")
    for payload in result.disagreements:
        verdict = payload["verdict"]
        failing = ", ".join(failure_signature(verdict)) or "(outcome)"
        lines.append(f"  DISAGREEMENT seed {payload['seed']}: {failing}")
        minimized = payload.get("minimized")
        if minimized:
            lines.append(f"    minimized to "
                         f"{minimized['instructions']} instructions "
                         f"({minimized['attempts']} reduction attempts)")
    return "\n".join(lines)
