"""Differential oracle: every layer must tell the same story.

One scenario is run through the full cross-section of the stack and the
results are compared pairwise; any disagreement is a structured verdict
entry, never an assertion — the campaign runner decides what to do with
it (report, journal, hand to the reducer).

Checks
======

``tier_parity_fasttrack``   interp vs block-compiled tier under full
                            FastTrack instrumentation: bit-identical
                            cycles, stats, breakdown and race reports.
``tier_parity_fasttrack_superblock``
                            interp vs the superblock tier (compiled
                            blocks plus trace-chained superblocks)
                            under FastTrack — same bit-identical
                            surface.
``tier_parity_aikido``      the same for the full Aikido stack (with
                            the scenario's chaos plan, if any).
``tier_parity_aikido_superblock``
                            interp vs superblock tier for the full
                            Aikido stack.
``schedule_replay``         re-running the interp tier from the same
                            ``(sched_seed,)`` replays bit-identically —
                            the scheduler-RNG unification guarantee.
``chaos_replay``            chaotic scenarios replay bit-identically
                            from ``(sched_seed, chaos_seed)`` alone.
``record_replay_fidelity``  a FastTrack detector replayed from the
                            recorded trace reports exactly the live
                            run's races.
``fasttrack_djit_agreement`` FastTrack and DJIT+ replayed from one
                            trace flag the same variable blocks.
``eraser_determinism``      Eraser replayed twice from one trace
                            produces identical reports (Eraser's
                            fork/join blindness makes its report *set*
                            incomparable, but it must be stable).
``eventlog_roundtrip``      the recorded trace encodes to the binary
                            event-log format and decodes back
                            entry-exact, with byte-stable re-encoding
                            (the ``repro.eventlog`` canonicality
                            contract).
``cross_analysis_agreement`` the replay fan-out invariant over all four
                            detectors replayed from one trace:
                            FastTrack and DJIT+ flag identical blocks,
                            and memtag's blocks are a subset of
                            Eraser's (tag collisions only suppress).
``classifier_soundness``    no statically PROVABLY_PRIVATE instruction
                            ever touched a dynamically shared page.
``static_race_superset``    every dynamic FastTrack race maps to a
                            static (uid, uid) pair that is NOT
                            ``STATICALLY_RACE_FREE`` — the static race
                            analyzer must over-approximate the dynamic
                            one (zero false negatives).
``lint_clean``              the rendered scenario has no error-severity
                            lint findings (the generator only emits
                            well-formed programs, and ``aikido-repro
                            fuzz`` lints what it runs).
``aikido_subset``           Aikido's live races are a subset of full
                            FastTrack's (the §6 first-touch blind spot
                            only removes reports). Skipped under chaos,
                            where the schedules legitimately diverge.

Self-modifying code is modeled at the DBR layer: the guest cannot write
code pages, so an SMC scenario periodically invalidates a worker's
entry instruction via ``engine.invalidate_instruction`` from a kernel
tick hook — the same cadence in both tiers, forcing re-JIT storms the
tiers must absorb identically.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.analyses.djit import DjitDetector
from repro.analyses.eraser import EraserDetector
from repro.analyses.fasttrack.detector import FastTrackDetector
from repro.analyses.fasttrack.tool import FastTrackTool
from repro.analyses.generic_tool import FullInstrumentationTool
from repro.analyses.memtag import MemTagDetector
from repro.analyses.record import FullTraceRecorder, replay_into
from repro.chaos.invariants import cross_analysis_disagreements
from repro.chaos.plan import ChaosPlan
from repro.eventlog.encoding import decode_entries, encode_entries
from repro.core.config import AikidoConfig
from repro.dbr.engine import DBREngine
from repro.errors import ReproError
from repro.guestos.kernel import Kernel
from repro.harness.runner import (
    _detector_profile,
    _engine_run_stats,
    build_aikido_system,
    system_result,
)
from repro.analyses.fasttrack.epoch import epoch_tid
from repro.machine.paging import PAGE_SHIFT
from repro.scengen.scenario import ScenarioIR, render
from repro.staticanalysis import RaceVerdict, SharingClass, lint_program
from repro.staticanalysis.analysiscache import analysis_for

#: Per-run instruction budgets; exceeding one raises HarnessError in
#: every tier identically, so runaway scenarios still agree.
QUICK_BUDGET = 300_000
FULL_BUDGET = 2_000_000

BLOCK_SIZE = 8

#: An outcome is ("ok", surface_dict) or ("raised", type_name, message).
Outcome = Tuple

TierRunner = Callable[..., Outcome]


def install_smc(kernel, engine, uids: Tuple[int, ...],
                period: int) -> None:
    """Invalidate one scenario instruction every ``period`` quanta.

    Host-side and purely cadence-driven, so both tiers (and a replay)
    see identical invalidation points.
    """
    if not period or not uids:
        return
    state = {"ticks": 0}

    def _tick():
        state["ticks"] += 1
        if state["ticks"] % period == 0:
            fired = state["ticks"] // period
            engine.invalidate_instruction(uids[(fired - 1) % len(uids)])

    kernel.tick_hooks.append(_tick)


def _race_payload(races) -> Dict:
    return {
        "races": sorted(r.describe() for r in races),
        "race_keys": sorted([r.block, r.kind] for r in races),
    }


#: Execution tiers the oracle crosses every mode with.  Each maps to
#: the (compile_blocks, superblocks) engine knobs; both are passed
#: explicitly because the engine defaults superblocks on.
TIERS = ("interp", "compiled", "superblock")


def _tier_flags(tier: str) -> Tuple[bool, bool]:
    if tier not in TIERS:
        raise ValueError(f"oracle tier {tier!r} unknown")
    return tier != "interp", tier == "superblock"


def default_tier_runner(ir: ScenarioIR, mode: str, tier: str,
                        budget: int) -> Outcome:
    """Run one tier of one mode; never raises a simulated error."""
    compile_blocks, superblocks = _tier_flags(tier)
    program, info = render(ir)
    try:
        if mode == "fasttrack":
            kernel = Kernel(seed=ir.sched_seed, quantum=ir.quantum,
                            jitter=ir.jitter)
            kernel.create_process(program)
            engine = DBREngine(kernel, compile_blocks=compile_blocks,
                               superblocks=superblocks)
            tool = FastTrackTool(kernel, block_size=BLOCK_SIZE)
            engine.attach_tool(tool)
            install_smc(kernel, engine, info.smc_uids, ir.smc_period)
            kernel.run(max_instructions=budget)
            surface = {
                "cycles": kernel.counter.total,
                "run_stats": _engine_run_stats(engine),
                "cycle_breakdown": kernel.counter.snapshot(),
                "detector_profile": _detector_profile(tool.detector),
            }
            surface.update(_race_payload(tool.races))
            return ("ok", surface)
        if mode == "aikido-fasttrack":
            chaos_plan = None
            if ir.chaos_seed is not None:
                chaos_plan = ChaosPlan.recovery(
                    seed=ir.chaos_seed, intensity=ir.chaos_intensity)
            config = AikidoConfig(compile_blocks=compile_blocks,
                                  superblocks=superblocks,
                                  chaos=chaos_plan)
            system = build_aikido_system(program, seed=ir.sched_seed,
                                         quantum=ir.quantum,
                                         jitter=ir.jitter, config=config)
            install_smc(system.kernel, system.engine, info.smc_uids,
                        ir.smc_period)
            system.run(max_instructions=budget)
            result = system_result(system)
            surface = {
                "cycles": result.cycles,
                "run_stats": result.run_stats,
                "cycle_breakdown": result.cycle_breakdown,
                "aikido_stats": result.aikido_stats,
                "hypervisor_stats": result.hypervisor_stats,
                "detector_profile": result.detector_profile,
                "chaos": result.chaos,
                "cycle_attribution": result.cycle_attribution,
            }
            surface.update(_race_payload(result.races))
            return ("ok", surface)
        raise ValueError(f"oracle mode {mode!r} unknown")
    except ReproError as exc:
        return ("raised", type(exc).__name__, str(exc))


def _record_trace(ir: ScenarioIR, budget: int):
    """Full-instrumentation record run; returns the recorder or None."""
    program, _ = render(ir)
    kernel = Kernel(seed=ir.sched_seed, quantum=ir.quantum,
                    jitter=ir.jitter)
    kernel.create_process(program)
    engine = DBREngine(kernel, compile_blocks=False)
    recorder = FullTraceRecorder()
    tool = FullInstrumentationTool(kernel, recorder)
    engine.attach_tool(tool)
    try:
        kernel.run(max_instructions=budget)
    except ReproError:
        return None
    return recorder


def _surface_diff(a: Outcome, b: Outcome) -> str:
    if a[0] != b[0]:
        return f"outcomes differ: {a[0]} vs {b[0]}"
    if a[0] == "raised":
        return (f"raised differently: {a[1]}: {a[2]!r} vs "
                f"{b[1]}: {b[2]!r}") if a[1:] != b[1:] else ""
    fields = sorted(set(a[1]) | set(b[1]))
    differing = [f for f in fields if a[1].get(f) != b[1].get(f)]
    return f"fields differ: {', '.join(differing)}" if differing else ""


def failure_signature(verdict: Dict) -> Tuple[str, ...]:
    """The failing check names — the predicate the reducer preserves."""
    return tuple(sorted(name for name, check in verdict["checks"].items()
                        if not check["ok"] and not check.get("skipped")))


def check_scenario(ir: ScenarioIR, *, quick: bool = True,
                   tier_runner: Optional[TierRunner] = None) -> Dict:
    """Run the full differential cross-section over one scenario.

    ``tier_runner`` is injectable so tests can plant a tier-divergence
    bug without touching the production engine.
    """
    runner = tier_runner or default_tier_runner
    budget = QUICK_BUDGET if quick else FULL_BUDGET
    checks: Dict[str, Dict] = {}

    def report(name: str, ok: bool, detail: str = "",
               skipped: bool = False) -> None:
        entry: Dict = {"ok": bool(ok)}
        if detail:
            entry["detail"] = detail
        if skipped:
            entry["skipped"] = True
        checks[name] = entry

    ft_interp = runner(ir, "fasttrack", "interp", budget)
    ft_compiled = runner(ir, "fasttrack", "compiled", budget)
    report("tier_parity_fasttrack", ft_interp == ft_compiled,
           _surface_diff(ft_interp, ft_compiled))

    ft_super = runner(ir, "fasttrack", "superblock", budget)
    report("tier_parity_fasttrack_superblock", ft_interp == ft_super,
           _surface_diff(ft_interp, ft_super))

    ft_again = runner(ir, "fasttrack", "interp", budget)
    report("schedule_replay", ft_interp == ft_again,
           _surface_diff(ft_interp, ft_again))

    aik_interp = runner(ir, "aikido-fasttrack", "interp", budget)
    aik_compiled = runner(ir, "aikido-fasttrack", "compiled", budget)
    report("tier_parity_aikido", aik_interp == aik_compiled,
           _surface_diff(aik_interp, aik_compiled))

    aik_super = runner(ir, "aikido-fasttrack", "superblock", budget)
    report("tier_parity_aikido_superblock", aik_interp == aik_super,
           _surface_diff(aik_interp, aik_super))

    if ir.chaos_seed is not None:
        aik_again = runner(ir, "aikido-fasttrack", "interp", budget)
        report("chaos_replay", aik_interp == aik_again,
               _surface_diff(aik_interp, aik_again))

    program, _ = render(ir)
    findings = lint_program(program)
    errors = [str(f) for f in findings if f.severity == "error"]
    report("lint_clean", not errors,
           "" if not errors else "; ".join(errors[:5]))

    completed = ft_interp[0] == "ok"
    recorder = _record_trace(ir, budget) if completed else None
    if recorder is None:
        for name in ("record_replay_fidelity", "fasttrack_djit_agreement",
                     "eraser_determinism", "eventlog_roundtrip",
                     "cross_analysis_agreement", "classifier_soundness",
                     "static_race_superset"):
            report(name, True, skipped=True,
                   detail="scenario did not complete cleanly")
    else:
        trace = recorder.trace
        ft_replay = replay_into(
            trace, lambda: FastTrackDetector(block_size=BLOCK_SIZE))
        replay_keys = sorted([r.block, r.kind] for r in ft_replay.races)
        live_keys = ft_interp[1]["race_keys"]
        report("record_replay_fidelity", replay_keys == live_keys,
               "" if replay_keys == live_keys else
               f"replayed {replay_keys} vs live {live_keys}")

        djit = replay_into(
            trace, lambda: DjitDetector(block_size=BLOCK_SIZE))
        ft_blocks = sorted({r.block for r in ft_replay.races})
        djit_blocks = sorted({r.block for r in djit.races})
        report("fasttrack_djit_agreement", ft_blocks == djit_blocks,
               "" if ft_blocks == djit_blocks else
               f"fasttrack blocks {ft_blocks} vs djit {djit_blocks}")

        def eraser_reports():
            detector = replay_into(
                trace, lambda: EraserDetector(block_size=BLOCK_SIZE))
            return [(r.block, r.address, r.tid, r.is_write)
                    for r in detector.reports]

        first, second = eraser_reports(), eraser_reports()
        report("eraser_determinism", first == second,
               "" if first == second else "eraser replay is unstable")

        buf = encode_entries(trace)
        decoded = decode_entries(buf)
        lossless = decoded == [tuple(e) for e in trace]
        stable = encode_entries(decoded) == buf
        report("eventlog_roundtrip", lossless and stable,
               "" if lossless and stable else
               ("decode is not entry-exact" if not lossless
                else "re-encoding is not byte-stable"))

        eraser_det = replay_into(
            trace, lambda: EraserDetector(block_size=BLOCK_SIZE))
        memtag = replay_into(
            trace, lambda: MemTagDetector(block_size=BLOCK_SIZE))
        disagreements = cross_analysis_disagreements({
            "fasttrack": set(ft_blocks),
            "djit": set(djit_blocks),
            "eraser": {r.block for r in eraser_det.reports},
            "memtag": {r.block for r in memtag.reports},
        })
        report("cross_analysis_agreement", not disagreements,
               "" if not disagreements else "; ".join(disagreements[:5]))

        analysis = analysis_for(program)
        sharing = analysis.sharing
        private = sharing.uids(SharingClass.PROVABLY_PRIVATE)
        uid_pages: Dict[int, set] = {}
        page_tids: Dict[int, set] = {}
        for entry in trace:
            if entry[0] != "access":
                continue
            _, tid, addr, _, uid = entry
            page = addr >> PAGE_SHIFT
            uid_pages.setdefault(uid, set()).add(page)
            page_tids.setdefault(page, set()).add(tid)
        shared_pages = {page for page, tids in page_tids.items()
                        if len(tids) >= 2}
        offenders = sorted(
            uid for uid in private
            if uid_pages.get(uid, set()) & shared_pages)
        report("classifier_soundness", not offenders,
               "" if not offenders else
               f"provably-private uids on shared pages: {offenders}")

        # Static race analyzer soundness: each dynamic race attributes
        # to at least one (prior uid, current uid) candidate pair, and
        # no dynamic race may be exclusively explained by pairs the
        # static analysis called STATICALLY_RACE_FREE.
        static_races = analysis.races
        by_site: Dict[Tuple[int, int, bool], set] = {}
        for entry in trace:
            if entry[0] != "access":
                continue
            _, tid, addr, is_write, uid = entry
            key = (addr // BLOCK_SIZE, tid, bool(is_write))
            by_site.setdefault(key, set()).add(uid)
        missed = []
        for race in ft_replay.races:
            prior_write = race.kind.startswith("write")
            curr_write = race.kind.endswith("write")
            priors = by_site.get(
                (race.block, epoch_tid(race.prior_epoch), prior_write),
                set())
            currents = (frozenset((race.instr_uid,))
                        if race.instr_uid >= 0 else
                        by_site.get((race.block, race.current_tid,
                                     curr_write), set()))
            if not priors or not currents:
                continue  # unattributable: claim nothing
            if all(static_races.pair_verdict(p, c)
                   is RaceVerdict.STATICALLY_RACE_FREE
                   for p in priors for c in currents):
                missed.append((race.block, race.kind))
        report("static_race_superset", not missed,
               "" if not missed else
               f"dynamic races statically proved race-free: "
               f"{sorted(set(missed))}")

    if (ir.chaos_seed is None and completed and aik_interp[0] == "ok"):
        aik_keys = {tuple(k) for k in aik_interp[1]["race_keys"]}
        ft_keys = {tuple(k) for k in ft_interp[1]["race_keys"]}
        extra = sorted(aik_keys - ft_keys)
        report("aikido_subset", not extra,
               "" if not extra else
               f"aikido-only races (must be subset): {extra}")
    else:
        report("aikido_subset", True, skipped=True,
               detail="chaos schedule diverges by design"
               if ir.chaos_seed is not None else "run did not complete")

    verdict = {
        "seed": ir.seed,
        "outcome": ("ok" if ft_interp[0] == "ok"
                    else f"raised:{ft_interp[1]}"),
        "checks": checks,
        "ok": all(c["ok"] for c in checks.values()),
    }
    return verdict
