"""Seeded scenario generation, differential oracle, and reducer.

The fuzzing stack of the repro: :func:`generate` composes workloads
from configurable distributions, :func:`check_scenario` cross-checks
them across execution tiers and analyses, :func:`reduce_scenario`
shrinks failures to minimal repros, and :func:`run_campaign` drives
resumable seed-range campaigns (``aikido-repro fuzz``).
"""

from repro.scengen.campaign import (
    ORACLE_VERSION,
    CampaignResult,
    render_campaign,
    run_campaign,
    scenario_key,
)
from repro.scengen.generator import (
    DEFAULT_CONFIG,
    QUICK_CONFIG,
    GeneratorConfig,
    generate,
)
from repro.scengen.oracle import (
    check_scenario,
    default_tier_runner,
    failure_signature,
    install_smc,
)
from repro.scengen.reducer import (
    ReductionResult,
    measure,
    reduce_scenario,
)
from repro.scengen.scenario import (
    MAX_THREADS,
    OP_KINDS,
    PLAIN_OP_KINDS,
    RenderInfo,
    ScenarioIR,
    WorkerSpec,
    describe,
    instruction_count,
    render,
)

__all__ = [
    "ORACLE_VERSION",
    "CampaignResult",
    "render_campaign",
    "run_campaign",
    "scenario_key",
    "DEFAULT_CONFIG",
    "QUICK_CONFIG",
    "GeneratorConfig",
    "generate",
    "check_scenario",
    "default_tier_runner",
    "failure_signature",
    "install_smc",
    "ReductionResult",
    "measure",
    "reduce_scenario",
    "MAX_THREADS",
    "OP_KINDS",
    "PLAIN_OP_KINDS",
    "RenderInfo",
    "ScenarioIR",
    "WorkerSpec",
    "describe",
    "instruction_count",
    "render",
]
