"""Greedy structural test-case reduction over scenario IR.

Delta-debugging in miniature: enumerate candidate simplifications of a
failing scenario in a fixed order, keep the first one that still trips
the failure predicate, restart from the smaller scenario, and stop when
no move is accepted. Every move strictly decreases a lexicographic size
measure, so the loop terminates; moves are derived from the IR alone
and the oracle is deterministic, so reduction of a fixed seed is fully
deterministic too.

Move classes (the ISSUE's instruction deletion / thread removal /
constant simplification, expressed at the IR level where candidates
stay well-formed by construction):

* drop a whole worker, or the producer/consumer pair;
* drop scenario-wide features (barrier, SMC cadence, chaos, jitter);
* collapse the loop (straight to 1, then by halving);
* drop one op, unwrap a critical section, drop one inner op;
* simplify constants (op args to 0, items to 1).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Iterator, Tuple

from repro.errors import ReproError
from repro.scengen.scenario import ScenarioIR, WorkerSpec


def _op_units(op) -> int:
    return 1 + (len(op[2]) if op[0] == "locked" else 0)


def _arg_sum(ir: ScenarioIR) -> int:
    total = 0
    for worker in ir.workers:
        for op in worker.ops:
            if op[0] == "locked":
                total += sum(inner[1] for inner in op[2])
            else:
                total += op[1]
    return total


def measure(ir: ScenarioIR) -> Tuple:
    """Strictly-decreasing size measure (lexicographic)."""
    units = sum(_op_units(op) for w in ir.workers for op in w.ops)
    flags = (int(ir.barrier) + int(ir.smc_period > 0)
             + int(ir.chaos_seed is not None) + int(ir.jitter > 0))
    return (ir.thread_count, units, flags,
            ir.loop_count + ir.pc_items, _arg_sum(ir))


def _with_worker(ir: ScenarioIR, index: int,
                 worker: WorkerSpec) -> ScenarioIR:
    workers = list(ir.workers)
    workers[index] = worker
    return replace(ir, workers=tuple(workers))


def _moves(ir: ScenarioIR) -> Iterator[ScenarioIR]:
    """Candidate simplifications, most aggressive first, fixed order."""
    for i in range(len(ir.workers)):
        yield replace(ir, workers=ir.workers[:i] + ir.workers[i + 1:])
    if ir.pc_pairs > 0:
        yield replace(ir, pc_pairs=ir.pc_pairs - 1,
                      pc_items=ir.pc_items if ir.pc_pairs > 1 else 0)
    if ir.barrier:
        yield replace(ir, barrier=False)
    if ir.smc_period:
        yield replace(ir, smc_period=0)
    if ir.chaos_seed is not None:
        yield replace(ir, chaos_seed=None, chaos_intensity=0.0)
    if ir.jitter > 0:
        yield replace(ir, jitter=0.0)
    if ir.loop_count > 1:
        yield replace(ir, loop_count=1)
        if ir.loop_count > 2:
            yield replace(ir, loop_count=ir.loop_count // 2)
    if ir.pc_pairs > 0 and ir.pc_items > 1:
        yield replace(ir, pc_items=1)
    for i, worker in enumerate(ir.workers):
        for j in range(len(worker.ops)):
            yield _with_worker(
                ir, i, WorkerSpec(worker.ops[:j] + worker.ops[j + 1:]))
    for i, worker in enumerate(ir.workers):
        for j, op in enumerate(worker.ops):
            if op[0] != "locked":
                continue
            # Unwrap the critical section (keeps the inner ops).
            yield _with_worker(ir, i, WorkerSpec(
                worker.ops[:j] + op[2] + worker.ops[j + 1:]))
            for k in range(len(op[2])):
                inner = op[2][:k] + op[2][k + 1:]
                if inner:
                    yield _with_worker(ir, i, WorkerSpec(
                        worker.ops[:j] + (("locked", op[1], inner),)
                        + worker.ops[j + 1:]))
    for i, worker in enumerate(ir.workers):
        for j, op in enumerate(worker.ops):
            if op[0] == "locked":
                for k, inner in enumerate(op[2]):
                    if inner[1] != 0:
                        simplified = (op[2][:k] + ((inner[0], 0),)
                                      + op[2][k + 1:])
                        yield _with_worker(ir, i, WorkerSpec(
                            worker.ops[:j]
                            + (("locked", op[1], simplified),)
                            + worker.ops[j + 1:]))
            elif op[1] != 0:
                yield _with_worker(ir, i, WorkerSpec(
                    worker.ops[:j] + ((op[0], 0),) + worker.ops[j + 1:]))


@dataclass
class ReductionResult:
    minimized: ScenarioIR
    attempts: int
    accepted: int


def reduce_scenario(ir: ScenarioIR,
                    predicate: Callable[[ScenarioIR], bool]
                    ) -> ReductionResult:
    """Shrink ``ir`` while ``predicate`` (the failure) keeps holding.

    ``predicate`` is evaluated on candidates only; ``ir`` itself is
    assumed failing. A candidate whose evaluation raises a simulated
    error counts as not-failing (reduction never trades one failure for
    a different crash).
    """
    current = ir
    attempts = accepted = 0
    improved = True
    while improved:
        improved = False
        for candidate in _moves(current):
            assert measure(candidate) < measure(current)
            attempts += 1
            try:
                still_failing = predicate(candidate)
            except ReproError:
                still_failing = False
            if still_failing:
                current = candidate
                accepted += 1
                improved = True
                break
    return ReductionResult(current, attempts, accepted)
