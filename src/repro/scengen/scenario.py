"""Scenario intermediate representation and its renderer.

A scenario is plain data — a tuple of per-worker op lists plus
scenario-wide knobs (loop count, producer/consumer pairs, barrier,
self-modifying-code cadence, chaos seed). Keeping the IR declarative
buys three things at once:

* the generator composes scenarios from distributions without touching
  the assembler;
* the reducer shrinks scenarios structurally (drop a worker, drop an
  op, simplify a constant) and re-renders, so every candidate is a
  well-formed program by construction — no unbalanced locks, no
  mismatched barrier parties;
* rendering is deterministic, so a scenario JSON round-trips through
  the campaign journal and replays bit-identically.

Op vocabulary (``(kind, arg)`` tuples, mirroring the retired inline
Hypothesis strategies of ``tests/dbr/test_compiled_parity.py``):

=================  ====================================================
``alu``            register arithmetic on the accumulator
``branchy``        data-dependent forward branch
``priv_load/store``   access into the worker's private page
``shared_load/store`` access into the page all workers share
``atomic``         lock-free fetch-and-add on a shared counter
``churn_load/store``  access into a region the worker ``mmap``s at
                   startup (allocation churn)
``locked``         ``("locked", lock_id, inner_ops)`` — a critical
                   section; inner ops use the same vocabulary minus
                   ``locked``
=================  ====================================================
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import WorkloadError
from repro.guestos import syscalls
from repro.machine.asm import ProgramBuilder
from repro.machine.disasm import disassemble
from repro.machine.paging import PAGE_SIZE
from repro.machine.program import Program

#: Barrier id used by the scenario-wide barrier idiom.
BARRIER_ID = 7

#: Upper bound on spawned threads (main's tid registers are r5..r10).
MAX_THREADS = 6

#: Op kinds legal inside a ``locked`` critical section.
PLAIN_OP_KINDS = ("alu", "branchy", "priv_load", "priv_store",
                  "shared_load", "shared_store", "atomic",
                  "churn_load", "churn_store")

OP_KINDS = PLAIN_OP_KINDS + ("locked",)


@dataclass(frozen=True)
class WorkerSpec:
    """One plain worker: a tuple of ops executed (maybe in a loop)."""

    ops: Tuple = ()

    def to_dict(self) -> Dict:
        return {"ops": [_op_to_list(op) for op in self.ops]}

    @staticmethod
    def from_dict(data: Dict) -> "WorkerSpec":
        return WorkerSpec(tuple(_op_from_list(op) for op in data["ops"]))


def _op_to_list(op) -> List:
    if op[0] == "locked":
        return ["locked", op[1], [list(o) for o in op[2]]]
    return list(op)


def _op_from_list(op) -> Tuple:
    if op[0] == "locked":
        return ("locked", op[1], tuple(tuple(o) for o in op[2]))
    return tuple(op)


@dataclass(frozen=True)
class ScenarioIR:
    """Declarative description of one generated workload."""

    seed: int
    workers: Tuple[WorkerSpec, ...] = ()
    loop_count: int = 1
    pc_pairs: int = 0
    pc_items: int = 0
    barrier: bool = False
    smc_period: int = 0
    sched_seed: int = 1
    chaos_seed: Optional[int] = None
    chaos_intensity: float = 0.0
    quantum: int = 120
    jitter: float = 0.1

    @property
    def thread_count(self) -> int:
        """Spawned threads (main not counted)."""
        return len(self.workers) + 2 * self.pc_pairs

    def to_dict(self) -> Dict:
        data = asdict(self)
        data["workers"] = [w.to_dict() for w in self.workers]
        return data

    @staticmethod
    def from_dict(data: Dict) -> "ScenarioIR":
        data = dict(data)
        data["workers"] = tuple(WorkerSpec.from_dict(w)
                                for w in data["workers"])
        return ScenarioIR(**data)


@dataclass
class RenderInfo:
    """Renderer byproducts the oracle needs."""

    #: First-emitted instruction uid per plain worker — the rejit
    #: targets of self-modifying-code scenarios.
    smc_uids: Tuple[int, ...] = ()
    instruction_count: int = 0
    segments: Dict[str, int] = field(default_factory=dict)


def _worker_uses_churn(worker: WorkerSpec) -> bool:
    for op in worker.ops:
        inner = op[2] if op[0] == "locked" else (op,)
        if any(o[0].startswith("churn") for o in inner):
            return True
    return False


def _emit_plain_op(b: ProgramBuilder, op) -> None:
    kind, arg = op[0], op[1]
    if kind == "alu":
        b.add(11, 11, imm=arg)
        b.xor(11, 11, imm=0x55)
    elif kind == "branchy":
        skip = b.fresh_label("skip")
        b.and_(9, 12, imm=max(1, arg))
        b.bz(9, skip)
        b.sub(11, 11, imm=1)
        b.label(skip)
    elif kind == "priv_load":
        b.load(7, base=2, disp=(arg % 64) * 8)
    elif kind == "priv_store":
        b.store(7, base=2, disp=(arg % 64) * 8)
    elif kind == "shared_load":
        b.load(8, base=6, disp=(arg % 64) * 8)
    elif kind == "shared_store":
        b.store(8, base=6, disp=(arg % 64) * 8)
    elif kind == "atomic":
        b.atomic_add(9, 8, base=6, disp=(arg % 8) * 8)
    elif kind == "churn_load":
        b.load(7, base=10, disp=(arg % 64) * 8)
    elif kind == "churn_store":
        b.store(7, base=10, disp=(arg % 64) * 8)
    else:
        raise WorkloadError(f"scenario op kind {kind!r} unknown")


def _emit_op(b: ProgramBuilder, op) -> None:
    if op[0] == "locked":
        b.lock(lock_id=op[1])
        for inner in op[2]:
            _emit_plain_op(b, inner)
        b.unlock(lock_id=op[1])
    else:
        _emit_plain_op(b, op)


def _emit_worker(b: ProgramBuilder, ir: ScenarioIR, index: int,
                 priv: int, shared: int, first_instrs: List) -> None:
    worker = ir.workers[index]
    b.label(f"worker{index}")
    # r2 = private page for this worker ordinal (r1 holds the arg).
    first_instrs.append(b.li(4, PAGE_SIZE))
    b.mul(2, 1, 4)
    b.add(2, 2, imm=priv)
    b.li(6, shared)
    if _worker_uses_churn(worker):
        b.li(1, PAGE_SIZE)                 # r1 = mmap length
        b.syscall(syscalls.SYS_MMAP)       # r0 = fresh region
        b.mov(10, 0)
    n_plain = len(ir.workers)

    def body():
        for op in worker.ops:
            _emit_op(b, op)
        if ir.barrier:
            b.barrier(BARRIER_ID, 13)

    if ir.barrier:
        b.li(13, n_plain)
    if ir.loop_count > 1:
        with b.loop(12, ir.loop_count):
            body()
    else:
        b.li(12, index + 1)                # branchy source without a loop
        body()
    b.halt()


def _emit_pc_pair(b: ProgramBuilder, pair: int, cell: int,
                  items: int) -> None:
    """Single-producer/single-consumer rendezvous over one cell.

    Strict alternation through a full-flag plus two condition variables
    (pthread_cond_wait semantics with a while-loop predicate re-check),
    so matched item counts can never deadlock. Cell layout: +0 full
    flag, +8 value, +16 consumer-side sum.
    """
    lock = 100 + pair
    cv_full = 200 + pair
    cv_empty = 300 + pair

    b.label(f"prod{pair}")
    b.li(4, cell)
    with b.loop(2, items):
        b.lock(lock_id=lock)
        not_empty = b.fresh_label("notempty")
        b.label(not_empty)
        b.load(6, base=4, disp=0)
        deposit = b.fresh_label("deposit")
        b.bz(6, deposit)
        b.wait(cv_empty, lock_id=lock)
        b.jmp(not_empty)
        b.label(deposit)
        b.add(7, 2, imm=100)               # value = 100 + iteration
        b.store(7, base=4, disp=8)
        b.li(6, 1)
        b.store(6, base=4, disp=0)         # full = 1
        b.notify(cv_full)
        b.unlock(lock_id=lock)
    b.halt()

    b.label(f"cons{pair}")
    b.li(4, cell)
    with b.loop(2, items):
        b.lock(lock_id=lock)
        not_full = b.fresh_label("notfull")
        b.label(not_full)
        b.load(6, base=4, disp=0)
        have = b.fresh_label("have")
        b.bnz(6, have)
        b.wait(cv_full, lock_id=lock)
        b.jmp(not_full)
        b.label(have)
        b.load(7, base=4, disp=8)          # value
        b.li(6, 0)
        b.store(6, base=4, disp=0)         # full = 0
        b.notify(cv_empty)
        b.load(8, base=4, disp=16)
        b.add(8, 8, 7)
        b.store(8, base=4, disp=16)        # sum += value
        b.unlock(lock_id=lock)
    b.halt()


def render(ir: ScenarioIR) -> Tuple[Program, RenderInfo]:
    """Assemble the scenario into a finalized program.

    Rendering is a pure function of the IR — two calls produce
    byte-identical programs with identical instruction uids, which is
    what lets the oracle target self-modifying-code invalidations at
    uids recorded from a *different* build of the same IR.
    """
    if ir.thread_count > MAX_THREADS:
        raise WorkloadError(
            f"scenario spawns {ir.thread_count} threads; "
            f"main tracks at most {MAX_THREADS}")
    if ir.pc_pairs > 0 and ir.pc_items < 1:
        raise WorkloadError("producer/consumer pairs need pc_items >= 1")
    b = ProgramBuilder(f"scen-{ir.seed}")
    priv = b.segment("priv", PAGE_SIZE * (MAX_THREADS + 2))
    shared = b.segment("shared", PAGE_SIZE)
    cells = [b.segment(f"cell{p}", 64) for p in range(ir.pc_pairs)]

    b.label("main")
    tid_slot = 0
    for i in range(len(ir.workers)):
        b.li(3, i + 1)
        b.spawn(5 + tid_slot, f"worker{i}", arg_reg=3)
        tid_slot += 1
    for p in range(ir.pc_pairs):
        for entry in (f"prod{p}", f"cons{p}"):
            b.li(3, len(ir.workers) + tid_slot + 1)
            b.spawn(5 + tid_slot, entry, arg_reg=3)
            tid_slot += 1
    for slot in range(tid_slot):
        b.join(5 + slot)
    b.halt()

    first_instrs: List = []
    for i in range(len(ir.workers)):
        _emit_worker(b, ir, i, priv, shared, first_instrs)
    for p in range(ir.pc_pairs):
        _emit_pc_pair(b, p, cells[p], ir.pc_items)

    program = b.build()
    info = RenderInfo(
        smc_uids=tuple(instr.uid for instr in first_instrs),
        instruction_count=sum(1 for _ in program.iter_instructions()),
        segments={"priv": priv, "shared": shared,
                  **{f"cell{p}": cells[p] for p in range(ir.pc_pairs)}})
    return program, info


def instruction_count(ir: ScenarioIR) -> int:
    """Rendered size of a scenario, in static instructions."""
    return render(ir)[1].instruction_count


def describe(ir: ScenarioIR) -> str:
    """Human-readable dump: the IR summary plus full disassembly."""
    program, info = render(ir)
    head = (f"scenario seed={ir.seed}: {len(ir.workers)} worker(s), "
            f"{ir.pc_pairs} producer/consumer pair(s), "
            f"loop={ir.loop_count}, barrier={ir.barrier}, "
            f"smc_period={ir.smc_period}, chaos_seed={ir.chaos_seed}, "
            f"{info.instruction_count} instructions")
    return head + "\n" + disassemble(program)
