"""Seeded scenario generation from configurable distributions.

``generate(seed, config)`` is a pure function: the same (seed, config)
pair always yields the same :class:`~repro.scengen.scenario.ScenarioIR`,
so a campaign is fully described by its base seed and count, and any
scenario can be regenerated from its seed alone — the property that
makes the fuzz corpus replayable.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass
from typing import Dict, Optional

from repro.scengen.scenario import MAX_THREADS, ScenarioIR, WorkerSpec


@dataclass(frozen=True)
class GeneratorConfig:
    """Distribution knobs for scenario composition.

    The weights are probabilities per draw, not exact fractions — a
    particular scenario may contain none or many of an idiom; the
    distribution only holds in aggregate across a campaign.
    """

    #: Plain workers per scenario (1..max); producer/consumer pairs ride
    #: on top, capped so the total stays within MAX_THREADS.
    max_workers: int = 3
    #: Ops per worker (1..max).
    max_ops: int = 8
    #: Scenario-wide loop count (1..max).
    max_loop: int = 6
    #: Probability an access op targets the shared page (vs private).
    sharing_ratio: float = 0.45
    #: Probability an op is a lock-guarded critical section.
    locked_weight: float = 0.2
    #: Probability a shared access is a lock-free atomic increment.
    atomic_weight: float = 0.25
    #: Probability the scenario barrier-syncs each loop iteration.
    barrier_rate: float = 0.25
    #: Probability the scenario carries a producer/consumer pair.
    prodcons_rate: float = 0.3
    #: Probability an access op targets a freshly-mmap'd region.
    churn_rate: float = 0.15
    #: Probability of a self-modifying-code cadence (periodic re-JIT).
    smc_rate: float = 0.2
    #: Probability the scenario runs under a recovery chaos plan
    #: (fault-proneness).
    chaos_rate: float = 0.25
    chaos_intensity: float = 0.2

    def canonical(self) -> Dict:
        """JSON-able form, folded into campaign cache keys."""
        return asdict(self)


DEFAULT_CONFIG = GeneratorConfig()

#: Smaller programs for --quick campaigns and Hypothesis strategies.
QUICK_CONFIG = GeneratorConfig(max_workers=3, max_ops=6, max_loop=4)


def _draw_plain_op(rng: random.Random, config: GeneratorConfig):
    roll = rng.random()
    if roll < 0.25:
        return ("alu", rng.randrange(0, 101))
    if roll < 0.4:
        return ("branchy", rng.randrange(1, 8))
    if rng.random() < config.churn_rate:
        kind = "churn_store" if rng.random() < 0.5 else "churn_load"
        return (kind, rng.randrange(0, 64))
    if rng.random() < config.sharing_ratio:
        if rng.random() < config.atomic_weight:
            return ("atomic", rng.randrange(0, 8))
        kind = "shared_store" if rng.random() < 0.5 else "shared_load"
        return (kind, rng.randrange(0, 64))
    kind = "priv_store" if rng.random() < 0.5 else "priv_load"
    return (kind, rng.randrange(0, 64))


def _draw_op(rng: random.Random, config: GeneratorConfig):
    if rng.random() < config.locked_weight:
        inner = tuple(_draw_plain_op(rng, config)
                      for _ in range(rng.randint(1, 3)))
        return ("locked", rng.randint(1, 3), inner)
    return _draw_plain_op(rng, config)


def generate(seed: int,
             config: Optional[GeneratorConfig] = None) -> ScenarioIR:
    """Compose one scenario from the configured distributions."""
    config = config or DEFAULT_CONFIG
    rng = random.Random(f"scengen:{seed}")
    n_workers = rng.randint(1, config.max_workers)
    workers = tuple(
        WorkerSpec(tuple(_draw_op(rng, config)
                         for _ in range(rng.randint(1, config.max_ops))))
        for _ in range(n_workers))
    loop_count = rng.randint(1, config.max_loop)
    barrier = n_workers >= 2 and rng.random() < config.barrier_rate
    pc_pairs = 0
    pc_items = 0
    if (n_workers + 2 <= MAX_THREADS
            and rng.random() < config.prodcons_rate):
        pc_pairs = 1
        pc_items = rng.randint(1, 4)
    smc_period = (rng.choice((2, 3, 5))
                  if rng.random() < config.smc_rate else 0)
    chaos_seed = None
    chaos_intensity = 0.0
    if rng.random() < config.chaos_rate:
        chaos_seed = rng.randrange(1, 1 << 16)
        chaos_intensity = config.chaos_intensity
    return ScenarioIR(
        seed=seed,
        workers=workers,
        loop_count=loop_count,
        pc_pairs=pc_pairs,
        pc_items=pc_items,
        barrier=barrier,
        smc_period=smc_period,
        sched_seed=rng.randrange(0, 10_000),
        chaos_seed=chaos_seed,
        chaos_intensity=chaos_intensity,
        quantum=rng.choice((40, 80, 120)),
        jitter=rng.choice((0.0, 0.1)))
