"""Hypothesis strategies backed by the scenario generator.

Property tests draw *seeds* and map them through :func:`generate`, so
every Hypothesis example is a scenario the campaign runner could also
have produced — one generator, two consumers. Hypothesis shrinks the
seed integer; structural shrinking of a failing scenario is the
reducer's job (`repro.scengen.reducer`), which the campaign runner
invokes automatically.
"""

from __future__ import annotations

from typing import Optional

from hypothesis import strategies as st

from repro.scengen.generator import (
    QUICK_CONFIG,
    GeneratorConfig,
    generate,
)
from repro.scengen.scenario import render

#: Seed space for property tests — wide enough for idiom diversity,
#: small enough that failures print a memorable seed.
SEED_SPACE = st.integers(min_value=0, max_value=2 ** 20)


def scenario_irs(config: Optional[GeneratorConfig] = None,
                 *, chaos: bool = True):
    """Strategy yielding generated :class:`ScenarioIR` instances.

    ``chaos=False`` filters to chaos-free scenarios for properties that
    need a stable schedule across modes.
    """
    cfg = config or QUICK_CONFIG
    strat = SEED_SPACE.map(lambda seed: generate(seed, cfg))
    if not chaos:
        strat = strat.filter(lambda ir: ir.chaos_seed is None)
    return strat


def scenario_programs(config: Optional[GeneratorConfig] = None):
    """Strategy yielding rendered ``(ir, program)`` pairs."""
    return scenario_irs(config).map(lambda ir: (ir, render(ir)[0]))
