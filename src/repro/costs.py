"""Cycle-cost constants for the deterministic performance model.

The paper's evaluation reports *relative* slowdowns measured on a Xeon
X7550 testbed. Our substrate is a simulator, so slowdowns are instead
computed from simulated cycle counts accumulated against the constants
below.

Two calibration rules shaped these values (full narrative in
EXPERIMENTS.md):

1. **Per-access analysis costs are hardware-plausible.** A DynamoRIO
   clean call (register spills, context switch into the tool) plus a
   shadow lookup plus a FastTrack check costs a few hundred cycles on
   real hardware; with ~35-45 % of instructions referencing memory this
   yields the paper's tens-to-hundreds-x slowdowns.
2. **Per-event (fault / VM-exit / re-JIT / context-switch) costs are
   scaled down by the workload compression factor.** The paper's runs
   execute ~10^9 memory accesses against ~10^4 Aikido faults; our
   synthetic workloads compress to ~10^5 accesses while keeping fault
   counts proportional to pages x threads, which makes faults ~10^2-10^3x
   denser per instruction. Keeping hardware-realistic event costs would
   let fault handling dominate everything, which the paper shows it does
   not; the event constants below are therefore divided by roughly that
   density ratio so that the *share* of time spent in the fault path
   matches the paper's regime.

Keep every constant here — not scattered through the stack — so ablation
benchmarks can override a copy via
:class:`repro.harness.costmodel.CostModel`.
"""

from __future__ import annotations

# ---------------------------------------------------------------------
# Guest kernel operations
# ---------------------------------------------------------------------
SYSCALL = 40
LOCK_FAST = 8            # uncontended acquire/release
LOCK_BLOCK = 30          # futex-style sleep on contention
BARRIER_WAIT = 15
SPAWN_THREAD = 150
JOIN_THREAD = 20
CONTEXT_SWITCH = 10      # bare kernel switch (event-scaled, rule 2)
SIGNAL_DELIVERY = 800    # kernel -> userspace SIGSEGV frame + return
KERNEL_FAULT_PATH = 120  # kernel page-fault entry/exit

# ---------------------------------------------------------------------
# Hypervisor (AikidoVM) — event-scaled (rule 2)
# ---------------------------------------------------------------------
VMEXIT = 400             # any exit: fault, CR3/GS write, hypercall entry
HYPERCALL = 320          # full hypercall round trip
SHADOW_PTE_SYNC = 6      # propagate one guest PTE write to one shadow PT
PROTECTION_UPDATE = 5    # apply one per-thread protection-table change
FAULT_INJECTION = 150    # build and inject the fake guest page fault
EMULATE_GUEST_ACCESS = 200   # emulate one guest-kernel access (§3.2.6)
CONTEXT_SWITCH_TRAP = 600    # extra exit for intercepting a ctx switch
TLB_FLUSH_FULL = 20
TLB_INVLPG = 4

# ---------------------------------------------------------------------
# DynamoRIO-like engine
# ---------------------------------------------------------------------
BLOCK_DISPATCH = 2       # per block entry (link stubs, lookup amortized)
BLOCK_BUILD = 150        # copy + mangle a block into the code cache
BLOCK_FLUSH = 200        # delete a cached block (re-JIT trigger)
TRACE_BUILD = 80
#: Per-instruction cost of running inside a plain DynamoRIO code cache
#: (vs native): mangled indirect branches, cache pressure.
DBR_BASE_PER_INSTR = 1
#: Per-instruction cost of the *Aikido-modified* stack being resident:
#: per-thread protection bookkeeping in DynamoRIO (§3.4 unprotect/
#: reprotect lists), dual-shadow Umbra maintenance, and the mirror
#: mappings' extra TLB/cache pressure. Calibrated so a no-sharing
#: workload (raytrace) lands near the paper's ~10x Aikido floor.
AIKIDO_RESIDENCY_PER_INSTR = 10

# ---------------------------------------------------------------------
# Umbra shadow translation & AikidoSD inline code
# ---------------------------------------------------------------------
UMBRA_TRANSLATE_INLINE = 8    # memoization-cache hit, inlined sequence
UMBRA_TRANSLATE_LEAN = 40     # thread-local cache, lean procedure
UMBRA_TRANSLATE_FULL = 300    # full context switch lookup
SHARED_STATUS_CHECK = 40      # Fig. 4 shared/private branch (indirect ops)
MIRROR_REDIRECT = 10          # address adjustment to the mirror page
#: Extra cost of an access that goes through the mirror mapping: the
#: alias occupies its own TLB entry and dilutes the cache-index locality
#: the original mapping had.
MIRROR_ACCESS_PENALTY = 50

# ---------------------------------------------------------------------
# FastTrack analysis (per event, on top of the clean-call overhead)
# ---------------------------------------------------------------------
CLEAN_CALL = 220              # spill/restore + call into the tool
FT_SAME_EPOCH = 20            # read/write hits the same-epoch fast path
FT_EPOCH_UPDATE = 40          # exclusive/ordered transition
FT_READ_SHARED_BASE = 120     # read-shared vector update
FT_VC_BASE = 250              # full vector-clock compare/join base
FT_VC_PER_THREAD = 25         # plus per vector entry
FT_SYNC_BASE = 400            # acquire/release/fork/join bookkeeping
FT_METADATA_INIT = 40         # first-touch shadow metadata initialization
#: Cache-coherence transfer of a variable's shadow metadata when the
#: previous accessor was a different thread: shadow words ping between
#: cores exactly as often as the application data they describe is
#: shared, which is why the paper's shared-heavy benchmarks pay the most
#: under full FastTrack.
FT_METADATA_PING = 250

# ---------------------------------------------------------------------
# LockSet / sampling extensions
# ---------------------------------------------------------------------
ERASER_ACCESS = 180
SAMPLER_CHECK = 12

# ---------------------------------------------------------------------
# AikidoSD (sharing detector) — event-scaled (rule 2)
# ---------------------------------------------------------------------
SD_FAULT_HANDLER = 300       # classify fault, update page state tables

# ---------------------------------------------------------------------
# AVIO atomicity checking (extension)
# ---------------------------------------------------------------------
AVIO_ACCESS = 140

# ---------------------------------------------------------------------
# Memory-tagging lock checker (HMTRace-style, extension)
# ---------------------------------------------------------------------
#: Cheaper than a full lockset intersection: the candidate set is a
#: small tag bitmask, so the per-access work is a mask AND plus a state
#: check — the point of tag-based checking in hardware proposals.
MEMTAG_ACCESS = 60
