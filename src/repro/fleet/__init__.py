"""Fault-tolerant sharded campaign service.

The single-host :class:`~repro.harness.parallel.ParallelRunner` caps a
campaign at one machine and one process tree: a crashed host loses
everything not yet journaled, and a million-run chaos x seed sweep does
not fit in one ``ProcessPoolExecutor``. This package refactors the
runner/journal/cache trio into a small distributed service:

* :mod:`repro.fleet.protocol` — newline-delimited JSON frames over a
  socket (local TCP now, multi-host later), with strict size and shape
  validation so a garbled peer can never wedge the coordinator;
* :mod:`repro.fleet.shards` — campaign descriptions (workloads x seeds
  x configs x chaos plans, or scengen fuzz seed ranges) partitioned
  into content-addressed shards keyed by
  ``sha256(shard spec + cost-model fingerprint)``;
* :mod:`repro.fleet.wal` — journal-first coordinator state (JSONL WAL +
  atomic snapshots) so ``--resume`` re-simulates zero completed shards
  even after SIGKILL;
* :mod:`repro.fleet.coordinator` — worker registration with leases and
  heartbeats, per-shard deadlines, dead-worker detection with requeue,
  exponential backoff + jitter, poison-shard quarantine, graceful
  degradation to inline execution, and deterministic report merging;
* :mod:`repro.fleet.worker` — the worker process body, including the
  seeded chaos-on-the-harness test mode (kills / stalls / garbled
  frames) that the survivability tests drive.

The merged report is purely a function of the campaign spec and the
cost-model fingerprint — the distributed path is bit-identical to a
serial single-host run of the same campaign, kills and all.
"""

from repro.fleet.coordinator import FleetCoordinator, run_fleet_campaign
from repro.fleet.protocol import (FrameError, FrameStream, MAX_FRAME_BYTES,
                                  decode_frame, encode_frame)
from repro.fleet.shards import (CampaignSpec, ShardSpec, execute_shard,
                                merge_report, partition, serial_report)
from repro.fleet.wal import CoordinatorWAL
from repro.fleet.worker import FleetChaosPlan, worker_main

__all__ = [
    "FleetCoordinator", "run_fleet_campaign",
    "FrameError", "FrameStream", "MAX_FRAME_BYTES",
    "decode_frame", "encode_frame",
    "CampaignSpec", "ShardSpec", "execute_shard", "merge_report",
    "partition", "serial_report",
    "CoordinatorWAL",
    "FleetChaosPlan", "worker_main",
]
