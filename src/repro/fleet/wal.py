"""Journal-first coordinator state: JSONL WAL + atomic snapshots.

The coordinator's durable state is tiny but precious: which shards have
completed (with their aggregates), how many times each shard has been
delivered, and which shards are quarantined as poison. It is persisted
with the same idioms :class:`~repro.harness.journal.RunJournal` proved
out, extended with snapshot compaction:

* **journal-first**: every state change is appended to ``wal.jsonl``
  (flush + optional fsync) *before* the in-memory state mutates — a
  SIGKILL at any instruction loses at most the event being written,
  never an acknowledged one;
* **tolerant replay**: a truncated or corrupt trailing line (crash
  mid-append) is skipped with a warning, exactly like the run journal;
* **atomic snapshots**: every ``snapshot_every`` completions the full
  state is written via tempfile + ``os.replace`` and the WAL is
  truncated — resume cost stays bounded no matter how long the
  campaign. A crash between snapshot and truncation only makes WAL
  replay idempotently re-apply events the snapshot already holds.

Ownership: the state directory records the campaign key. Resuming with
a different campaign (or a changed cost model, which changes every
shard id and therefore the key) raises instead of silently merging two
incompatible campaigns.
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings
from pathlib import Path
from typing import Dict, Optional

from repro.fleet.protocol import FleetError

#: WAL record types (one JSON object per line, ``{"type": ...}``).
_RECORD_TYPES = ("campaign", "done", "delivery", "quarantine")


class CoordinatorWAL:
    """Durable coordinator state for one campaign.

    ``resume=True`` rebuilds state from ``snapshot.json`` + the WAL
    suffix; ``resume=False`` starts fresh (existing state for the same
    directory is truncated). ``fsync=True`` (default) makes every append
    survive power loss, not just process death; turn it off for
    throughput when the state directory is on tmpfs anyway.
    """

    def __init__(self, state_dir: os.PathLike, campaign_key: str, *,
                 resume: bool = False, fsync: bool = True,
                 snapshot_every: int = 16):
        self.state_dir = Path(state_dir)
        self.campaign_key = campaign_key
        self.fsync = fsync
        self.snapshot_every = max(1, snapshot_every)
        self.wal_path = self.state_dir / "wal.jsonl"
        self.snapshot_path = self.state_dir / "snapshot.json"
        #: shard_id -> aggregate payload (completed shards).
        self.completed: Dict[str, Dict] = {}
        #: shard_id -> delivery count (assignments so far).
        self.deliveries: Dict[str, int] = {}
        #: shard_id -> human-readable quarantine reason.
        self.quarantined: Dict[str, str] = {}
        self.dropped_lines = 0
        self.replayed = 0
        self._since_snapshot = 0
        self.state_dir.mkdir(parents=True, exist_ok=True)
        if resume:
            self._load()
        else:
            self._reset()

    # ------------------------------------------------------------------
    # load / reset
    # ------------------------------------------------------------------
    def _reset(self) -> None:
        for path in (self.wal_path, self.snapshot_path):
            try:
                path.unlink()
            except FileNotFoundError:
                pass
        self._append({"type": "campaign", "key": self.campaign_key})

    def _check_key(self, key: str, source: str) -> None:
        if key != self.campaign_key:
            raise FleetError(
                f"{source} belongs to campaign {key[:12]}..., not "
                f"{self.campaign_key[:12]}... — refusing to resume "
                "across campaigns (use a fresh --state-dir)")

    def _load(self) -> None:
        if self.snapshot_path.exists():
            try:
                with open(self.snapshot_path) as handle:
                    snap = json.load(handle)
            except (OSError, json.JSONDecodeError) as exc:
                # A snapshot write is atomic, so corruption here means
                # manual damage; the WAL still holds the campaign.
                warnings.warn(
                    f"fleet snapshot {self.snapshot_path} unreadable "
                    f"({exc}); relying on the WAL alone",
                    RuntimeWarning, stacklevel=2)
            else:
                self._check_key(snap.get("campaign_key", ""), "snapshot")
                self.completed = dict(snap.get("completed", {}))
                self.deliveries = {k: int(v) for k, v in
                                   snap.get("deliveries", {}).items()}
                self.quarantined = dict(snap.get("quarantined", {}))
        if self.wal_path.exists():
            with open(self.wal_path) as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                        kind = record["type"]
                    except (json.JSONDecodeError, KeyError, TypeError):
                        self.dropped_lines += 1
                        continue
                    self._apply(kind, record)
        else:
            self._append({"type": "campaign", "key": self.campaign_key})
        self.replayed = len(self.completed)
        if self.dropped_lines:
            warnings.warn(
                f"fleet WAL {self.wal_path}: skipped "
                f"{self.dropped_lines} undecodable line(s) — expected "
                "after a crash mid-append, state is intact",
                RuntimeWarning, stacklevel=2)

    def _apply(self, kind: str, record: Dict) -> None:
        """Replay one WAL record into memory (idempotent)."""
        if kind == "campaign":
            self._check_key(record.get("key", ""), "WAL")
        elif kind == "done":
            self.completed[record["shard"]] = record["aggregate"]
        elif kind == "delivery":
            self.deliveries[record["shard"]] = int(record["count"])
        elif kind == "quarantine":
            self.quarantined[record["shard"]] = record.get("reason", "")
        # Unknown-but-decodable types are future records: ignore.

    # ------------------------------------------------------------------
    # journal-first mutation
    # ------------------------------------------------------------------
    def _append(self, record: Dict) -> None:
        with open(self.wal_path, "a") as handle:
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())

    def record_done(self, shard_id: str, aggregate: Dict) -> None:
        """Persist one completed shard (WAL first, then memory)."""
        self._append({"type": "done", "shard": shard_id,
                      "aggregate": aggregate})
        self.completed[shard_id] = aggregate
        self._since_snapshot += 1
        if self._since_snapshot >= self.snapshot_every:
            self.write_snapshot()

    def record_delivery(self, shard_id: str, count: int) -> None:
        """Persist a shard's delivery count (redelivery accounting)."""
        self._append({"type": "delivery", "shard": shard_id,
                      "count": count})
        self.deliveries[shard_id] = count

    def record_quarantine(self, shard_id: str, reason: str) -> None:
        """Persist a poison-shard quarantine decision."""
        self._append({"type": "quarantine", "shard": shard_id,
                      "reason": reason})
        self.quarantined[shard_id] = reason

    # ------------------------------------------------------------------
    # compaction
    # ------------------------------------------------------------------
    def write_snapshot(self) -> None:
        """Atomically snapshot full state, then truncate the WAL."""
        state = {
            "campaign_key": self.campaign_key,
            "completed": self.completed,
            "deliveries": self.deliveries,
            "quarantined": self.quarantined,
        }
        fd, tmp = tempfile.mkstemp(dir=self.state_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(state, handle, sort_keys=True)
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())
            os.replace(tmp, self.snapshot_path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        # Snapshot is durable; the WAL can restart from empty. A crash
        # right here leaves the old WAL whose replay is idempotent.
        with open(self.wal_path, "w") as handle:
            handle.write(json.dumps({"type": "campaign",
                                     "key": self.campaign_key},
                                    sort_keys=True) + "\n")
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        self._since_snapshot = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<CoordinatorWAL {self.state_dir} "
                f"completed={len(self.completed)} "
                f"quarantined={len(self.quarantined)}>")
