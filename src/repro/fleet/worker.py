"""Fleet worker: execute assigned shards, heartbeat, survive chaos.

A worker is a plain process that dials the coordinator, registers with
``hello``, and then loops: receive an ``assign`` frame, execute the
shard via the shared :func:`~repro.fleet.shards.execute_shard` path
(consulting the multi-writer-safe result cache), stream ``heartbeat``
frames from a side thread while the shard runs, and ship the aggregate
back as one ``result`` frame. Workers are stateless by design — all
durable state lives in the coordinator's WAL and the result cache — so
killing one at any instruction loses nothing but in-flight work.

**Chaos-on-the-harness.** :class:`FleetChaosPlan` follows the simulator
chaos discipline (:mod:`repro.chaos.plan`): plain data, a seed, and
per-point rates, with one dedicated RNG stream per (worker, point) so a
campaign's failure schedule replays exactly from its seed. Three points:

``kill``
    ``os.kill(getpid(), SIGKILL)`` before a unit — the hard death the
    lease/requeue machinery exists for.
``stall``
    Sleep past the lease before a unit — the "live but wedged" worker
    that heartbeat timeouts must evict.
``garble``
    Ship raw non-JSON bytes instead of the result frame — the corrupted
    peer the frame validator must reject without wedging.

The plan travels to spawned workers via the ``AIKIDO_FLEET_CHAOS``
environment variable (JSON), keeping the worker command line identical
with and without chaos.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import signal
import socket
import sys
import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.fleet.protocol import FrameError, FrameStream
from repro.fleet.shards import CampaignSpec, ShardSpec, execute_shard
from repro.harness.resultcache import ResultCache

#: Environment variables the coordinator sets for spawned workers.
CHAOS_ENV = "AIKIDO_FLEET_CHAOS"
WORKER_INDEX_ENV = "AIKIDO_FLEET_WORKER_INDEX"


def _stream_rng(seed: int, worker_index: int, point: str) -> random.Random:
    """Dedicated, replayable RNG stream per (worker, injection point)."""
    basis = f"fleet-chaos:{seed}:{worker_index}:{point}".encode()
    return random.Random(int.from_bytes(
        hashlib.sha256(basis).digest()[:8], "big"))


@dataclass(frozen=True)
class FleetChaosPlan:
    """Seeded, serializable harness-chaos description.

    Rates are per-unit (``kill``/``stall``) or per-result (``garble``)
    firing probabilities in ``[0, 1]``; ``stall_s`` is how long a stall
    sleeps (choose it above the coordinator's lease to force eviction).
    """

    seed: int = 0
    kill_rate: float = 0.0
    stall_rate: float = 0.0
    stall_s: float = 0.0
    garble_rate: float = 0.0

    def active(self) -> bool:
        return any(r > 0 for r in (self.kill_rate, self.stall_rate,
                                   self.garble_rate))

    def to_json(self) -> str:
        return json.dumps({"seed": self.seed, "kill_rate": self.kill_rate,
                           "stall_rate": self.stall_rate,
                           "stall_s": self.stall_s,
                           "garble_rate": self.garble_rate},
                          sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FleetChaosPlan":
        payload = json.loads(text)
        return cls(seed=payload.get("seed", 0),
                   kill_rate=payload.get("kill_rate", 0.0),
                   stall_rate=payload.get("stall_rate", 0.0),
                   stall_s=payload.get("stall_s", 0.0),
                   garble_rate=payload.get("garble_rate", 0.0))

    @classmethod
    def from_env(cls) -> Optional["FleetChaosPlan"]:
        text = os.environ.get(CHAOS_ENV)
        return cls.from_json(text) if text else None


class _ChaosStreams:
    """The per-worker instantiation of a :class:`FleetChaosPlan`."""

    def __init__(self, plan: FleetChaosPlan, worker_index: int):
        self.plan = plan
        self._kill = _stream_rng(plan.seed, worker_index, "kill")
        self._stall = _stream_rng(plan.seed, worker_index, "stall")
        self._garble = _stream_rng(plan.seed, worker_index, "garble")

    def unit_hook(self, _unit_index: int) -> None:
        """Fired before every unit: maybe die, maybe wedge."""
        if (self.plan.kill_rate > 0
                and self._kill.random() < self.plan.kill_rate):
            # A real SIGKILL: no atexit, no finally, no flush — the
            # worker vanishes exactly like an OOM-killed host process.
            os.kill(os.getpid(), signal.SIGKILL)
        if (self.plan.stall_rate > 0
                and self._stall.random() < self.plan.stall_rate):
            time.sleep(self.plan.stall_s)

    def garble_result(self) -> bool:
        return (self.plan.garble_rate > 0
                and self._garble.random() < self.plan.garble_rate)


class _Heartbeat(threading.Thread):
    """Streams heartbeat frames while a shard executes."""

    def __init__(self, stream: FrameStream, worker_id: str,
                 shard_id: str, interval_s: float):
        super().__init__(daemon=True)
        self.stream = stream
        self.worker_id = worker_id
        self.shard_id = shard_id
        self.interval_s = interval_s
        self._stop = threading.Event()

    def run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.stream.send({"type": "heartbeat",
                                  "worker_id": self.worker_id,
                                  "shard_id": self.shard_id})
            except OSError:
                return  # coordinator gone; the main loop will notice

    def stop(self) -> None:
        self._stop.set()


def parse_address(text: str) -> Tuple[str, int]:
    """``host:port`` -> tuple, with a usable error message."""
    host, sep, port = text.rpartition(":")
    if not sep or not port.isdigit():
        raise FrameError(f"bad address {text!r}; expected HOST:PORT")
    return host or "127.0.0.1", int(port)


def worker_main(address: Tuple[str, int], *,
                cache: Optional[ResultCache] = None,
                chaos: Optional[FleetChaosPlan] = None,
                worker_index: int = 0,
                connect_timeout: float = 10.0) -> int:
    """Run one worker until the coordinator says ``shutdown``.

    Returns an exit status: 0 after a clean shutdown, 1 when the
    coordinator disappeared (the respawn-friendly outcome), 2 on a
    protocol violation from the coordinator.
    """
    if chaos is None:
        chaos = FleetChaosPlan.from_env()
    streams = (_ChaosStreams(chaos, worker_index)
               if chaos is not None and chaos.active() else None)
    try:
        sock = socket.create_connection(address, timeout=connect_timeout)
    except OSError as exc:
        print(f"fleet worker: cannot reach coordinator at "
              f"{address[0]}:{address[1]}: {exc}", file=sys.stderr)
        return 1
    stream = FrameStream(sock)
    worker_id = None
    try:
        stream.send({"type": "hello", "pid": os.getpid(),
                     "worker_index": worker_index})
        welcome = stream.recv(timeout=connect_timeout)
        if welcome is None or welcome["type"] != "welcome":
            return 2
        worker_id = welcome["worker_id"]
        heartbeat_s = welcome["heartbeat_s"]
        while True:
            frame = stream.recv(timeout=None)
            if frame is None:
                return 1
            if frame["type"] == "shutdown":
                stream.send({"type": "bye", "worker_id": worker_id})
                return 0
            if frame["type"] != "assign":
                return 2
            shard = ShardSpec.from_dict(frame["shard"])
            spec = CampaignSpec.from_dict(frame["campaign"])
            fp = frame["fingerprint"]
            beat = _Heartbeat(stream, worker_id, shard.shard_id,
                              heartbeat_s)
            beat.start()
            try:
                aggregate = execute_shard(
                    shard, spec, cache=cache, fp=fp,
                    unit_hook=(streams.unit_hook if streams else None))
            except Exception as exc:  # noqa: BLE001 - report, don't die
                beat.stop()
                stream.send({"type": "shard_error",
                             "worker_id": worker_id,
                             "shard_id": shard.shard_id,
                             "message": f"{type(exc).__name__}: {exc}"})
                continue
            beat.stop()
            if streams is not None and streams.garble_result():
                # Chaos: ship bytes that can never parse, then die the
                # way a corrupted peer would.
                stream.send_raw(b'{"type": <<garbled result frame\n')
                return 1
            stream.send({"type": "result", "worker_id": worker_id,
                         "shard_id": shard.shard_id,
                         "aggregate": aggregate})
    except FrameError:
        return 2
    except OSError:
        return 1
    finally:
        stream.close()
