"""``aikido-repro fleet`` — the campaign service's command line.

Two verbs, dispatched from :mod:`repro.harness.cli`::

    aikido-repro fleet run --workers 2 --benchmarks blackscholes,canneal \\
        --seeds 1,2,3 --chaos-seeds 11,23 --state-dir state/ --json out.json
    aikido-repro fleet run --kind fuzz --seed 1 --count 1000 --workers 4 \\
        --state-dir state/ --resume
    aikido-repro fleet run --serial ...      # single-host reference path
    aikido-repro fleet worker --connect 127.0.0.1:41731

``fleet run`` prints a deterministic summary and exits with the
established contract: 0 on success, 2 on usage/harness errors, 3 when
any unit failed or any shard was quarantined (per-shard problems never
abort the campaign — they are reported, like per-job failures in suite
runs). ``--json`` dumps the full merged report, which is bit-identical
between ``--serial`` and any fleet execution of the same campaign.

The chaos flags (``--fleet-kill-rate`` etc.) arm the *harness* chaos
mode — seeded worker kills/stalls/garbled frames — used by the
survivability smoke and tests; they never touch simulated results.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional

from repro.errors import HarnessError
from repro.fleet.coordinator import FleetCoordinator
from repro.fleet.shards import CampaignSpec, serial_report
from repro.fleet.worker import (FleetChaosPlan, WORKER_INDEX_ENV,
                                parse_address, worker_main)
from repro.harness.resultcache import ResultCache


def _int_list(text: str) -> List[int]:
    try:
        return [int(piece) for piece in text.split(",") if piece]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"expected a comma-separated integer list, got {text!r}"
        ) from exc


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="aikido-repro fleet",
        description="Fault-tolerant sharded campaign service")
    sub = parser.add_subparsers(dest="verb", required=True)

    run = sub.add_parser("run", help="coordinate a campaign")
    run.add_argument("--kind", choices=("suite", "fuzz"), default="suite")
    run.add_argument("--benchmarks", default="blackscholes",
                     help="comma-separated benchmark names (suite)")
    run.add_argument("--mode", default="aikido-fasttrack")
    run.add_argument("--threads", type=int, default=2)
    run.add_argument("--scale", type=float, default=0.05)
    run.add_argument("--quantum", type=int, default=100)
    run.add_argument("--seeds", type=_int_list, default=[1],
                     help="comma-separated simulation seeds (suite)")
    run.add_argument("--chaos-seeds", type=_int_list, default=[],
                     help="comma-separated chaos-plan seeds; each adds "
                          "a chaos config column to the campaign")
    run.add_argument("--chaos-intensity", type=float, default=0.05)
    run.add_argument("--seed", type=int, default=1,
                     help="base scenario seed (fuzz)")
    run.add_argument("--count", type=int, default=100,
                     help="scenario count (fuzz)")
    run.add_argument("--full", action="store_true",
                     help="fuzz with the full (non-quick) generator "
                          "config")
    run.add_argument("--shard-size", type=int, default=25)
    run.add_argument("--workers", type=int, default=2, metavar="N",
                     help="local worker processes to spawn (0 = none; "
                          "external workers may still connect)")
    run.add_argument("--serial", action="store_true",
                     help="single-host reference: execute every shard "
                          "inline, no sockets (the bit-identical "
                          "baseline for fleet runs)")
    run.add_argument("--host", default="127.0.0.1")
    run.add_argument("--port", type=int, default=0,
                     help="listening port (0 = ephemeral)")
    run.add_argument("--state-dir", metavar="DIR", default=None,
                     help="WAL + snapshot directory (crash-safe resume)")
    run.add_argument("--resume", action="store_true",
                     help="resume from --state-dir; completed shards "
                          "are never re-simulated")
    run.add_argument("--no-fsync", action="store_true",
                     help="skip fsync on WAL appends (faster, less "
                          "durable)")
    run.add_argument("--lease", type=float, default=5.0, metavar="S",
                     help="worker lease; a silent worker past it is "
                          "declared dead and its shard requeued")
    run.add_argument("--heartbeat", type=float, default=1.0, metavar="S")
    run.add_argument("--shard-deadline", type=float, default=300.0,
                     metavar="S", help="wall-clock budget per shard "
                                       "delivery")
    run.add_argument("--max-deliveries", type=int, default=3,
                     help="deliveries before a shard is quarantined as "
                          "poison")
    run.add_argument("--backoff", type=float, default=0.1, metavar="S",
                     help="base requeue backoff (exponential, jittered)")
    run.add_argument("--backoff-max", type=float, default=2.0,
                     metavar="S")
    run.add_argument("--no-inline", action="store_true",
                     help="never degrade to inline execution when the "
                          "fleet dies (hang-proof campaigns leave this "
                          "off)")
    run.add_argument("--no-cache", action="store_true")
    run.add_argument("--json", metavar="PATH",
                     help="dump the full merged report as JSON")
    run.add_argument("--trace-out", metavar="PATH", default=None,
                     help="write coordinator lifecycle events as a "
                          "Chrome trace")
    run.add_argument("--fleet-chaos-seed", type=int, default=0)
    run.add_argument("--fleet-kill-rate", type=float, default=0.0,
                     help="per-unit probability a worker SIGKILLs "
                          "itself (harness chaos test mode)")
    run.add_argument("--fleet-stall-rate", type=float, default=0.0)
    run.add_argument("--fleet-stall-s", type=float, default=0.0)
    run.add_argument("--fleet-garble-rate", type=float, default=0.0,
                     help="per-result probability a worker ships a "
                          "garbled frame instead of its result")

    worker = sub.add_parser("worker", help="serve shards to a "
                                           "coordinator")
    worker.add_argument("--connect", required=True, metavar="HOST:PORT")
    worker.add_argument("--no-cache", action="store_true")
    return parser


def _spec_from_args(args) -> CampaignSpec:
    benchmarks = tuple(b for b in args.benchmarks.split(",") if b)
    chaos_seeds: List[Optional[int]] = [None]
    chaos_seeds.extend(args.chaos_seeds)
    return CampaignSpec(
        kind=args.kind,
        benchmarks=benchmarks,
        mode=args.mode,
        threads=args.threads,
        scale=args.scale,
        quantum=args.quantum,
        seeds=tuple(args.seeds),
        chaos_seeds=tuple(chaos_seeds),
        chaos_intensity=args.chaos_intensity,
        base_seed=args.seed,
        count=args.count,
        quick=not args.full,
        shard_size=args.shard_size,
    )


def render_report(report: Dict) -> str:
    """Deterministic human-readable campaign summary."""
    lines = [f"fleet campaign: {report['completed_units']}/"
             f"{report['units']} units over {report['shards']} "
             f"shard(s), {report['failures']} unit failure(s)"]
    if report.get("disagreements"):
        seeds = ", ".join(str(s) for s in report["disagreements"])
        lines.append(f"  oracle disagreements at seed(s): {seeds}")
    for entry in report["missing_shards"]:
        reason = report["quarantined"].get(entry["shard_id"],
                                           "not executed")
        lines.append(f"  MISSING shard {entry['index']} "
                     f"({entry['units']} units): {reason}")
    return "\n".join(lines)


def _run_verb(args) -> int:
    started = time.monotonic()
    spec = _spec_from_args(args)
    cache = None if args.no_cache else ResultCache()
    if args.serial:
        report = serial_report(spec, cache=cache)
        counters = None
    else:
        tracer = None
        if args.trace_out:
            from repro.observability import Tracer, WallClock
            tracer = Tracer(WallClock())
        coordinator = FleetCoordinator(
            spec, host=args.host, port=args.port, cache=cache,
            state_dir=args.state_dir, resume=args.resume,
            fsync=not args.no_fsync, lease_s=args.lease,
            heartbeat_s=args.heartbeat,
            shard_deadline_s=args.shard_deadline,
            max_deliveries=args.max_deliveries,
            backoff_base_s=args.backoff, backoff_max_s=args.backoff_max,
            backoff_seed=args.fleet_chaos_seed,
            allow_inline=not args.no_inline, tracer=tracer)
        chaos = FleetChaosPlan(seed=args.fleet_chaos_seed,
                               kill_rate=args.fleet_kill_rate,
                               stall_rate=args.fleet_stall_rate,
                               stall_s=args.fleet_stall_s,
                               garble_rate=args.fleet_garble_rate)
        report = coordinator.run(spawn_workers=args.workers,
                                 chaos=chaos if chaos.active() else None)
        counters = coordinator.counters
        if args.trace_out:
            from repro.observability import TraceSink
            path = TraceSink(tracer).write_chrome(
                args.trace_out, label="aikido-repro fleet")
            print(f"(fleet trace written to {path})", file=sys.stderr)
    print(render_report(report))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, sort_keys=True)
        print(f"(json written to {args.json})")
    footer = f"[{time.monotonic() - started:.1f}s"
    if counters is not None:
        footer += f"; {counters.stats_line()}"
    print(footer + "]", file=sys.stderr)
    if report["failures"] or report["missing_shards"]:
        return 3
    return 0


def _worker_verb(args) -> int:
    import os

    cache = None if args.no_cache else ResultCache()
    index = int(os.environ.get(WORKER_INDEX_ENV, "0"))
    return worker_main(parse_address(args.connect), cache=cache,
                       worker_index=index)


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.verb == "run":
            return _run_verb(args)
        return _worker_verb(args)
    except HarnessError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
