"""The campaign coordinator: leases, heartbeats, requeue, resume, merge.

One :class:`FleetCoordinator` owns one campaign. It partitions the
campaign into content-addressed shards, listens on a TCP socket for
workers (spawning a local pool itself when asked), and drives a single
event loop over four sources: worker frames, worker deaths, lease and
deadline clocks, and the backoff queue. All state mutation happens on
the loop thread; socket reader threads only enqueue events, so there is
no lock hierarchy to get wrong.

Robustness model, in order of line of defense:

1. **Leases + heartbeats.** A worker's lease is refreshed by any frame
   (heartbeats flow while a shard executes). A silent worker past its
   lease is evicted and its shard requeued — this catches SIGKILL,
   wedged hosts, and network partitions identically.
2. **Per-shard deadlines.** A worker that heartbeats forever without
   finishing (stalled, livelocked) is evicted when the shard's deadline
   passes; requeue with the same machinery.
3. **Bounded redelivery + backoff + jitter.** Each requeue delays the
   shard by ``backoff_base * 2^(delivery-1)`` scaled by seeded jitter
   (so replays of a chaotic campaign are reproducible), and after
   ``max_deliveries`` total deliveries the shard is *quarantined* as
   poison — recorded durably, reported loudly, never allowed to starve
   the rest of the campaign.
4. **Inline degradation.** When every worker is gone and none can be
   respawned, the coordinator executes remaining shards in-process via
   the identical :func:`~repro.fleet.shards.execute_shard` path: a
   campaign never hangs waiting for a fleet that no longer exists.
5. **Journal-first WAL.** Completions, deliveries and quarantines hit
   the :class:`~repro.fleet.wal.CoordinatorWAL` before memory, so a
   SIGKILLed coordinator resumed with ``resume=True`` re-simulates
   zero completed shards.

Results are deduplicated by shard id against the completed set — a
result arriving from an evicted worker (it was alive after all) is
either accepted (first) or dropped (duplicate), never double-merged.
"""

from __future__ import annotations

import heapq
import os
import queue
import random
import socket
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.fleet.protocol import FleetError, FrameError, FrameStream
from repro.fleet.shards import (CampaignSpec, ShardSpec, campaign_key,
                                execute_shard, merge_report, partition)
from repro.fleet.wal import CoordinatorWAL
from repro.fleet.worker import CHAOS_ENV, WORKER_INDEX_ENV, FleetChaosPlan
from repro.harness.parallel import fingerprint
from repro.harness.resultcache import ResultCache
from repro.observability.fleet import FleetCounters, fleet_instant


class _MemoryWAL:
    """In-memory stand-in when no state directory was given."""

    def __init__(self):
        self.completed: Dict[str, Dict] = {}
        self.deliveries: Dict[str, int] = {}
        self.quarantined: Dict[str, str] = {}

    def record_done(self, shard_id, aggregate):
        self.completed[shard_id] = aggregate

    def record_delivery(self, shard_id, count):
        self.deliveries[shard_id] = count

    def record_quarantine(self, shard_id, reason):
        self.quarantined[shard_id] = reason

    def write_snapshot(self):
        pass


@dataclass
class _WorkerState:
    """Loop-thread view of one registered worker connection."""

    conn_id: int
    stream: FrameStream
    worker_id: str
    lease_expiry: float
    shard: Optional[ShardSpec] = None
    deadline: float = 0.0
    frames: int = field(default=0)


class FleetCoordinator:
    """Coordinate one campaign across a worker fleet (or none)."""

    def __init__(self, spec: CampaignSpec, *,
                 host: str = "127.0.0.1", port: int = 0,
                 cache: Optional[ResultCache] = None,
                 state_dir: Optional[os.PathLike] = None,
                 resume: bool = False, fsync: bool = True,
                 snapshot_every: int = 16,
                 lease_s: float = 5.0, heartbeat_s: float = 1.0,
                 shard_deadline_s: float = 300.0,
                 max_deliveries: int = 3,
                 backoff_base_s: float = 0.1,
                 backoff_max_s: float = 2.0, backoff_seed: int = 0,
                 allow_inline: bool = True, tracer=None):
        if max_deliveries < 1:
            raise FleetError(
                f"max_deliveries must be >= 1, got {max_deliveries}")
        if lease_s <= 0 or heartbeat_s <= 0 or shard_deadline_s <= 0:
            raise FleetError("lease_s, heartbeat_s and shard_deadline_s "
                             "must all be > 0")
        self.spec = spec
        self.fp = fingerprint()
        self.key = campaign_key(spec, self.fp)
        self.shards = partition(spec, self.fp)
        self.cache = cache
        self.lease_s = lease_s
        self.heartbeat_s = heartbeat_s
        self.shard_deadline_s = shard_deadline_s
        self.max_deliveries = max_deliveries
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        self._jitter = random.Random(backoff_seed)
        self.allow_inline = allow_inline
        self.counters = FleetCounters()
        self.tracer = tracer
        self.wal = (CoordinatorWAL(state_dir, self.key, resume=resume,
                                   fsync=fsync,
                                   snapshot_every=snapshot_every)
                    if state_dir is not None else _MemoryWAL())
        self.counters.bump("shards_total", len(self.shards))
        resumed = sum(1 for s in self.shards
                      if s.shard_id in self.wal.completed)
        self.counters.bump("shards_resumed", resumed)

        self._listener = socket.create_server((host, port))
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]
        self._events: "queue.Queue[Tuple]" = queue.Queue()
        self._stop = threading.Event()
        self._conn_seq = 0
        self._worker_seq = 0
        #: conn_id -> _WorkerState, live registered workers only.
        self._workers: Dict[int, _WorkerState] = {}
        #: (ready_time, tiebreak, shard) min-heap of unassigned shards.
        self._ready: List[Tuple[float, int, ShardSpec]] = []
        self._tiebreak = 0
        #: shard_id -> ShardSpec currently assigned to some worker.
        self._in_flight: Dict[str, ShardSpec] = {}
        self.worker_procs: List[subprocess.Popen] = []

    # ------------------------------------------------------------------
    # socket plumbing (accept + per-connection reader threads)
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        try:
            self._listener.settimeout(0.2)
        except OSError:
            return  # listener already closed: campaign finished first
        while not self._stop.is_set():
            try:
                sock, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            self._conn_seq += 1
            conn_id = self._conn_seq
            stream = FrameStream(sock)
            threading.Thread(target=self._reader_loop,
                             args=(conn_id, stream), daemon=True).start()

    def _reader_loop(self, conn_id: int, stream: FrameStream) -> None:
        while not self._stop.is_set():
            try:
                frame = stream.recv(timeout=1.0)
            except socket.timeout:
                continue
            except FrameError as exc:
                self._events.put(("garbled", conn_id, stream, str(exc)))
                return
            except OSError:
                self._events.put(("gone", conn_id, stream, "io-error"))
                return
            if frame is None:
                self._events.put(("gone", conn_id, stream, "eof"))
                return
            self._events.put(("frame", conn_id, stream, frame))

    # ------------------------------------------------------------------
    # worker pool spawning
    # ------------------------------------------------------------------
    def spawn_worker(self, index: int,
                     chaos: Optional[FleetChaosPlan] = None
                     ) -> subprocess.Popen:
        """Start one local worker process dialed back at us."""
        env = dict(os.environ)
        env[WORKER_INDEX_ENV] = str(index)
        if chaos is not None and chaos.active():
            env[CHAOS_ENV] = chaos.to_json()
        else:
            env.pop(CHAOS_ENV, None)
        cmd = [sys.executable, "-m", "repro.harness.cli", "fleet",
               "worker", "--connect",
               f"{self.address[0]}:{self.address[1]}"]
        if self.cache is None:
            cmd.append("--no-cache")
        proc = subprocess.Popen(cmd, env=env)
        self.worker_procs.append(proc)
        self.counters.bump("workers_spawned")
        return proc

    # ------------------------------------------------------------------
    # the event loop
    # ------------------------------------------------------------------
    def run(self, *, spawn_workers: int = 0,
            chaos: Optional[FleetChaosPlan] = None) -> Dict:
        """Drive the campaign to completion; return the merged report."""
        accept = threading.Thread(target=self._accept_loop, daemon=True)
        accept.start()
        try:
            for index in range(spawn_workers):
                self.spawn_worker(index, chaos)
            for shard in self.shards:
                if (shard.shard_id not in self.wal.completed
                        and shard.shard_id not in self.wal.quarantined):
                    self._push_ready(shard, time.monotonic())
            self._loop()
        finally:
            self._shutdown()
            accept.join(timeout=2.0)
        report = merge_report(self.spec, self.shards,
                              self.wal.completed, self.fp)
        report["quarantined"].update(self.wal.quarantined)
        return report

    def _push_ready(self, shard: ShardSpec, when: float) -> None:
        self._tiebreak += 1
        heapq.heappush(self._ready, (when, self._tiebreak, shard))

    def _unfinished(self) -> bool:
        return any(s.shard_id not in self.wal.completed
                   and s.shard_id not in self.wal.quarantined
                   for s in self.shards)

    def _loop(self) -> None:
        while self._unfinished():
            try:
                event = self._events.get(timeout=0.05)
            except queue.Empty:
                event = None
            if event is not None:
                self._dispatch(event)
                # Drain whatever else is queued before clock work.
                while True:
                    try:
                        self._dispatch(self._events.get_nowait())
                    except queue.Empty:
                        break
            now = time.monotonic()
            self._check_clocks(now)
            self._assign_ready(now)
            self._maybe_run_inline(now)

    # ------------------------------------------------------------------
    # event handling
    # ------------------------------------------------------------------
    def _dispatch(self, event: Tuple) -> None:
        kind, conn_id, stream, payload = event
        if kind == "frame":
            self._on_frame(conn_id, stream, payload)
        elif kind == "garbled":
            self.counters.bump("frames_garbled")
            fleet_instant(self.tracer, "frame_garbled", conn=conn_id,
                          error=payload)
            self._on_worker_gone(conn_id, stream, "garbled frame")
        elif kind == "gone":
            self._on_worker_gone(conn_id, stream, payload)

    def _on_frame(self, conn_id: int, stream: FrameStream,
                  frame: Dict) -> None:
        now = time.monotonic()
        worker = self._workers.get(conn_id)
        if worker is not None:
            worker.lease_expiry = now + self.lease_s
            worker.frames += 1
        kind = frame["type"]
        if kind == "hello":
            self._worker_seq += 1
            worker_id = f"w{self._worker_seq}"
            state = _WorkerState(conn_id=conn_id, stream=stream,
                                 worker_id=worker_id,
                                 lease_expiry=now + self.lease_s)
            self._workers[conn_id] = state
            self.counters.bump("workers_registered")
            self.counters.worker_bump(worker_id, "registered")
            fleet_instant(self.tracer, "worker_registered",
                          worker=worker_id, pid=frame.get("pid"))
            try:
                stream.send({"type": "welcome", "worker_id": worker_id,
                             "lease_s": self.lease_s,
                             "heartbeat_s": self.heartbeat_s})
            except OSError:
                self._on_worker_gone(conn_id, stream, "welcome failed")
        elif kind == "heartbeat":
            self.counters.bump("heartbeats")
            if worker is not None:
                self.counters.worker_bump(worker.worker_id, "heartbeats")
        elif kind == "result":
            self._on_result(worker, frame)
        elif kind == "shard_error":
            fleet_instant(self.tracer, "shard_error",
                          shard=frame.get("shard_id", "")[:12],
                          message=frame.get("message"))
            if worker is not None and worker.shard is not None:
                shard = worker.shard
                worker.shard = None
                self._in_flight.pop(shard.shard_id, None)
                self._requeue(shard, f"worker reported: "
                                     f"{frame.get('message', '')}")
        elif kind == "bye":
            self._workers.pop(conn_id, None)
        # welcome/assign/shutdown from a worker are protocol abuse; a
        # worker sending them is treated like any garbled peer.
        elif kind in ("welcome", "assign", "shutdown"):
            self.counters.bump("frames_garbled")
            self._on_worker_gone(conn_id, stream, f"illegal {kind}")

    def _on_result(self, worker: Optional[_WorkerState],
                   frame: Dict) -> None:
        shard_id = frame.get("shard_id")
        aggregate = frame.get("aggregate")
        known = {s.shard_id: s for s in self.shards}
        if shard_id not in known or not isinstance(aggregate, dict):
            return  # a result for a shard we never issued: drop
        if shard_id in self.wal.completed:
            # Redelivered shard finishing twice (e.g. the original
            # worker was evicted but alive): drop, never double-merge.
            self.counters.bump("duplicate_results")
            return
        self._record_done(known[shard_id], aggregate)
        if worker is not None:
            self.counters.worker_bump(worker.worker_id, "completed")
            if (worker.shard is not None
                    and worker.shard.shard_id == shard_id):
                worker.shard = None

    def _record_done(self, shard: ShardSpec, aggregate: Dict) -> None:
        self.wal.record_done(shard.shard_id, aggregate)
        self._in_flight.pop(shard.shard_id, None)
        self.counters.bump("shards_completed")
        self.counters.bump("units_completed", aggregate.get("units", 0))
        self.counters.bump("unit_failures", aggregate.get("failures", 0))
        fleet_instant(self.tracer, "shard_done",
                      shard=shard.shard_id[:12], index=shard.index)

    def _on_worker_gone(self, conn_id: int, stream: FrameStream,
                        reason: str) -> None:
        stream.close()
        worker = self._workers.pop(conn_id, None)
        if worker is None:
            return  # never registered, or already evicted
        self.counters.bump("workers_dead")
        self.counters.worker_bump(worker.worker_id, "dead")
        fleet_instant(self.tracer, "worker_dead",
                      worker=worker.worker_id, reason=reason)
        if worker.shard is not None:
            shard = worker.shard
            self._in_flight.pop(shard.shard_id, None)
            self._requeue(shard, f"worker {worker.worker_id} died "
                                 f"({reason})")

    # ------------------------------------------------------------------
    # clocks: leases, deadlines
    # ------------------------------------------------------------------
    def _check_clocks(self, now: float) -> None:
        for conn_id, worker in list(self._workers.items()):
            if now >= worker.lease_expiry:
                self.counters.bump("lease_expiries")
                fleet_instant(self.tracer, "lease_expired",
                              worker=worker.worker_id)
                self._on_worker_gone(conn_id, worker.stream,
                                     "lease expired")
            elif worker.shard is not None and now >= worker.deadline:
                self.counters.bump("deadline_expiries")
                fleet_instant(self.tracer, "deadline_expired",
                              worker=worker.worker_id,
                              shard=worker.shard.shard_id[:12])
                self._on_worker_gone(conn_id, worker.stream,
                                     "shard deadline expired")

    # ------------------------------------------------------------------
    # requeue / quarantine / assignment
    # ------------------------------------------------------------------
    def _requeue(self, shard: ShardSpec, reason: str) -> None:
        if shard.shard_id in self.wal.completed:
            return  # result landed before the eviction was processed
        delivered = self.wal.deliveries.get(shard.shard_id, 0)
        if delivered >= self.max_deliveries:
            self.wal.record_quarantine(shard.shard_id, reason)
            self.counters.bump("shards_quarantined")
            fleet_instant(self.tracer, "shard_quarantined",
                          shard=shard.shard_id[:12], reason=reason)
            return
        self.counters.bump("shards_requeued")
        self.counters.shard_bump(shard.shard_id, "requeues")
        backoff = min(self.backoff_max_s,
                      self.backoff_base_s * (2 ** max(0, delivered - 1)))
        backoff *= 1.0 + self._jitter.random()
        fleet_instant(self.tracer, "shard_requeued",
                      shard=shard.shard_id[:12], backoff_s=round(backoff, 4),
                      reason=reason)
        self._push_ready(shard, time.monotonic() + backoff)

    def _assign_ready(self, now: float) -> None:
        idle = [w for w in self._workers.values() if w.shard is None]
        while idle and self._ready and self._ready[0][0] <= now:
            _, _, shard = heapq.heappop(self._ready)
            if (shard.shard_id in self.wal.completed
                    or shard.shard_id in self.wal.quarantined
                    or shard.shard_id in self._in_flight):
                continue
            worker = idle.pop()
            delivery = self.wal.deliveries.get(shard.shard_id, 0) + 1
            self.wal.record_delivery(shard.shard_id, delivery)
            if delivery > 1:
                self.counters.bump("redeliveries")
            self.counters.shard_bump(shard.shard_id, "deliveries")
            self.counters.worker_bump(worker.worker_id, "assigned")
            try:
                worker.stream.send({
                    "type": "assign", "shard": shard.to_dict(),
                    "campaign": self.spec.canonical(),
                    "fingerprint": self.fp, "delivery": delivery})
            except (OSError, FrameError):
                self._on_worker_gone(worker.conn_id, worker.stream,
                                     "assign failed")
                continue
            worker.shard = shard
            worker.deadline = now + self.shard_deadline_s
            self._in_flight[shard.shard_id] = shard
            fleet_instant(self.tracer, "shard_assigned",
                          shard=shard.shard_id[:12], index=shard.index,
                          worker=worker.worker_id, delivery=delivery)

    # ------------------------------------------------------------------
    # graceful degradation
    # ------------------------------------------------------------------
    def _fleet_can_recover(self) -> bool:
        """Any registered worker, or a spawned process still alive?"""
        if self._workers:
            return True
        return any(proc.poll() is None for proc in self.worker_procs)

    def _maybe_run_inline(self, now: float) -> None:
        if not self.allow_inline or self._fleet_can_recover():
            return
        # No fleet left. Execute the next ready shard here — one per
        # loop iteration so late-connecting workers can still register.
        while self._ready and self._ready[0][0] > now and not self._workers:
            time.sleep(min(0.05, self._ready[0][0] - now))
            now = time.monotonic()
        if not self._ready or self._ready[0][0] > now:
            return
        _, _, shard = heapq.heappop(self._ready)
        if (shard.shard_id in self.wal.completed
                or shard.shard_id in self.wal.quarantined
                or shard.shard_id in self._in_flight):
            return
        delivery = self.wal.deliveries.get(shard.shard_id, 0) + 1
        self.wal.record_delivery(shard.shard_id, delivery)
        self.counters.bump("shards_inline")
        fleet_instant(self.tracer, "inline_fallback",
                      shard=shard.shard_id[:12], index=shard.index)
        aggregate = execute_shard(shard, self.spec, cache=self.cache,
                                  fp=self.fp)
        self._record_done(shard, aggregate)

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------
    def _shutdown(self) -> None:
        self._stop.set()
        for worker in list(self._workers.values()):
            try:
                worker.stream.send({"type": "shutdown"})
            except (OSError, FrameError):
                pass
        try:
            self._listener.close()
        except OSError:
            pass
        deadline = time.monotonic() + 3.0
        for proc in self.worker_procs:
            remaining = max(0.05, deadline - time.monotonic())
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        for worker in self._workers.values():
            worker.stream.close()
        self._workers.clear()
        self.wal.write_snapshot()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<FleetCoordinator {self.key[:12]} "
                f"shards={len(self.shards)} "
                f"completed={len(self.wal.completed)}>")


def run_fleet_campaign(spec: CampaignSpec, *, workers: int = 2,
                       cache: Optional[ResultCache] = None,
                       state_dir: Optional[os.PathLike] = None,
                       resume: bool = False,
                       chaos: Optional[FleetChaosPlan] = None,
                       **kwargs) -> Tuple[Dict, FleetCounters]:
    """Convenience wrapper: coordinator + local worker pool, one call."""
    coordinator = FleetCoordinator(spec, cache=cache, state_dir=state_dir,
                                   resume=resume, **kwargs)
    report = coordinator.run(spawn_workers=workers, chaos=chaos)
    return report, coordinator.counters
