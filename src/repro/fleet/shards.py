"""Campaign partitioning into content-addressed shards.

A :class:`CampaignSpec` is plain data describing either a *suite*
campaign (benchmarks x seeds x chaos plans, each cell one harness
:class:`~repro.harness.parallel.Job`) or a *fuzz* campaign (a scengen
seed range checked by the differential oracle). :func:`partition` chunks
the campaign's unit list into :class:`ShardSpec`\\ s whose ids are
``sha256(campaign spec + unit slice + cost-model fingerprint)`` — the
same content-addressing discipline as the result cache, so a shard id
names *exactly one* deterministic computation: two coordinators (or one
coordinator before and after a crash) partitioning the same campaign
under the same cost model produce identical shard ids, which is what
makes WAL replay and cross-run dedup sound.

:func:`execute_shard` is the one execution path — workers call it over
the wire, the coordinator calls it for inline degradation, and
:func:`serial_report` calls it for the single-host reference — so the
merged report is bit-identical no matter which path ran each shard.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.chaos.plan import ChaosPlan
from repro.core.config import AikidoConfig
from repro.fleet.protocol import FleetError
from repro.harness.parallel import (Job, _guarded_outcome, fingerprint,
                                    job_key)
from repro.harness.resultcache import ResultCache

#: Default units per shard. Small enough that a lost worker forfeits
#: little work, large enough that framing overhead stays negligible.
DEFAULT_SHARD_SIZE = 25


@dataclass(frozen=True)
class CampaignSpec:
    """Plain-data description of a whole campaign.

    ``kind`` selects the unit family:

    ``"suite"``
        One :class:`Job` per ``benchmark x seed x chaos plan`` cell in
        ``mode``; ``chaos_seeds`` of ``None`` means a chaos-free cell,
        any integer becomes ``ChaosPlan.recovery(seed=n,
        intensity=chaos_intensity)``.
    ``"fuzz"``
        Scenario seeds ``base_seed .. base_seed+count-1`` checked by the
        scengen differential oracle (``quick`` selects the generator
        config exactly as ``aikido-repro fuzz`` does).
    """

    kind: str = "suite"
    benchmarks: Tuple[str, ...] = ("blackscholes",)
    mode: str = "aikido-fasttrack"
    threads: int = 2
    scale: float = 0.05
    quantum: int = 100
    seeds: Tuple[int, ...] = (1,)
    chaos_seeds: Tuple[Optional[int], ...] = (None,)
    chaos_intensity: float = 0.05
    base_seed: int = 1
    count: int = 0
    quick: bool = True
    shard_size: int = DEFAULT_SHARD_SIZE

    def __post_init__(self):
        if self.kind not in ("suite", "fuzz"):
            raise FleetError(
                f"unknown campaign kind {self.kind!r}; "
                "expected 'suite' or 'fuzz'")
        if self.shard_size < 1:
            raise FleetError(
                f"shard_size must be >= 1, got {self.shard_size}")
        if self.kind == "fuzz" and self.count < 1:
            raise FleetError(
                f"fuzz campaigns need count >= 1, got {self.count}")

    def canonical(self) -> Dict:
        """JSON-able description used for shard/campaign keying."""
        return {
            "kind": self.kind,
            "benchmarks": list(self.benchmarks),
            "mode": self.mode,
            "threads": self.threads,
            "scale": self.scale,
            "quantum": self.quantum,
            "seeds": list(self.seeds),
            "chaos_seeds": list(self.chaos_seeds),
            "chaos_intensity": self.chaos_intensity,
            "base_seed": self.base_seed,
            "count": self.count,
            "quick": self.quick,
            "shard_size": self.shard_size,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "CampaignSpec":
        return cls(
            kind=payload["kind"],
            benchmarks=tuple(payload["benchmarks"]),
            mode=payload["mode"],
            threads=payload["threads"],
            scale=payload["scale"],
            quantum=payload["quantum"],
            seeds=tuple(payload["seeds"]),
            chaos_seeds=tuple(payload["chaos_seeds"]),
            chaos_intensity=payload["chaos_intensity"],
            base_seed=payload["base_seed"],
            count=payload["count"],
            quick=payload["quick"],
            shard_size=payload["shard_size"],
        )

    # ------------------------------------------------------------------
    # unit enumeration
    # ------------------------------------------------------------------
    def units(self) -> List[Dict]:
        """The campaign's unit list, in canonical (serial) order."""
        if self.kind == "fuzz":
            return [{"seed": seed}
                    for seed in range(self.base_seed,
                                      self.base_seed + self.count)]
        units = []
        for benchmark in self.benchmarks:
            for seed in self.seeds:
                for chaos_seed in self.chaos_seeds:
                    config = None
                    if chaos_seed is not None:
                        config = AikidoConfig(chaos=ChaosPlan.recovery(
                            seed=chaos_seed,
                            intensity=self.chaos_intensity))
                    job = Job(benchmark, self.mode, threads=self.threads,
                              scale=self.scale, seed=seed,
                              quantum=self.quantum, config=config)
                    units.append({"job": job.canonical()})
        return units


def job_from_canonical(payload: Dict) -> Job:
    """Rebuild a :class:`Job` from ``Job.canonical()`` output."""
    config = payload.get("config")
    return Job(payload["workload"], payload["mode"],
               threads=payload["threads"], scale=payload["scale"],
               seed=payload["seed"], quantum=payload["quantum"],
               config=(AikidoConfig.from_dict(config)
                       if config is not None else None))


@dataclass(frozen=True)
class ShardSpec:
    """One content-addressed slice of a campaign.

    ``shard_id`` is ``sha256({campaign, index, units, fingerprint})`` —
    it changes when any unit, the campaign shape, or the cost model
    does, so a WAL entry or cache hit for a shard id can never replay a
    result the current configuration would not reproduce.
    """

    shard_id: str
    index: int
    kind: str
    units: Tuple[Dict, ...] = field(hash=False)

    def to_dict(self) -> Dict:
        return {"shard_id": self.shard_id, "index": self.index,
                "kind": self.kind, "units": list(self.units)}

    @classmethod
    def from_dict(cls, payload: Dict) -> "ShardSpec":
        return cls(shard_id=payload["shard_id"], index=payload["index"],
                   kind=payload["kind"],
                   units=tuple(payload["units"]))


def shard_id(campaign: Dict, index: int, units: Sequence[Dict],
             fp: str) -> str:
    """Content address of one shard under one cost-model fingerprint."""
    basis = {"campaign": campaign, "index": index, "units": list(units),
             "fingerprint": fp}
    blob = json.dumps(basis, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


def campaign_key(spec: CampaignSpec, fp: Optional[str] = None) -> str:
    """Stable identity of a whole campaign (WAL ownership check)."""
    basis = {"campaign": spec.canonical(),
             "fingerprint": fp if fp is not None else fingerprint()}
    blob = json.dumps(basis, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


def partition(spec: CampaignSpec,
              fp: Optional[str] = None) -> List[ShardSpec]:
    """Chunk the campaign's units into content-addressed shards."""
    fp = fp if fp is not None else fingerprint()
    canonical = spec.canonical()
    units = spec.units()
    shards = []
    for index in range(0, len(units), spec.shard_size):
        slice_ = units[index:index + spec.shard_size]
        shards.append(ShardSpec(
            shard_id=shard_id(canonical, index // spec.shard_size,
                              slice_, fp),
            index=index // spec.shard_size,
            kind=spec.kind,
            units=tuple(slice_)))
    return shards


# ---------------------------------------------------------------------
# execution (shared by workers, inline degradation, and the serial ref)
# ---------------------------------------------------------------------
def _suite_unit_outcome(unit: Dict, cache: Optional[ResultCache],
                        fp: str) -> Dict:
    job = job_from_canonical(unit["job"])
    key = job_key(job, fp)
    if cache is not None:
        payload = cache.get(key)
        if payload is not None:
            return {"status": "ok", "key": key, "cached": True,
                    "payload": payload}
    outcome = _guarded_outcome(job, timeout=None)
    outcome["key"] = key
    if outcome["status"] == "ok" and cache is not None:
        cache.put(key, outcome["payload"])
    return outcome


def _fuzz_unit_outcome(unit: Dict, cache: Optional[ResultCache],
                       quick: bool) -> Dict:
    from repro.scengen.campaign import scenario_key, scenario_payload
    from repro.scengen.generator import DEFAULT_CONFIG, QUICK_CONFIG

    config = QUICK_CONFIG if quick else DEFAULT_CONFIG
    seed = unit["seed"]
    key = scenario_key(config, seed, quick)
    if cache is not None:
        payload = cache.get(key)
        if payload is not None:
            return {"status": "ok", "key": key, "cached": True,
                    "payload": payload}
    payload = scenario_payload(seed, config, quick=quick)
    if cache is not None:
        cache.put(key, payload)
    return {"status": "ok", "key": key, "payload": payload}


def execute_shard(shard: ShardSpec, spec: CampaignSpec, *,
                  cache: Optional[ResultCache] = None,
                  fp: Optional[str] = None,
                  unit_hook: Optional[Callable[[int], None]] = None
                  ) -> Dict:
    """Run every unit of one shard; return its aggregate payload.

    ``unit_hook(i)`` fires before unit ``i`` — the seam the fleet chaos
    mode uses to kill or stall a worker mid-shard. The aggregate is a
    pure function of (shard, spec, cost model): the ``cached`` marker is
    stripped before aggregation so a cache-served unit is byte-identical
    to a freshly simulated one.
    """
    fp = fp if fp is not None else fingerprint()
    outcomes = []
    for i, unit in enumerate(shard.units):
        if unit_hook is not None:
            unit_hook(i)
        if shard.kind == "fuzz":
            outcome = _fuzz_unit_outcome(unit, cache, spec.quick)
        else:
            outcome = _suite_unit_outcome(unit, cache, fp)
        outcome.pop("cached", None)
        outcomes.append(outcome)
    failures = sum(1 for o in outcomes if o["status"] != "ok")
    return {"shard_id": shard.shard_id, "index": shard.index,
            "units": len(outcomes), "failures": failures,
            "outcomes": outcomes}


def merge_report(spec: CampaignSpec, shards: Sequence[ShardSpec],
                 aggregates: Dict[str, Dict],
                 fp: Optional[str] = None) -> Dict:
    """Merge per-shard aggregates into the campaign's single report.

    Deterministic by construction: shards are folded in index order and
    every field of the report derives from the aggregates alone —
    worker identities, timing, and delivery counts live in the
    coordinator's counters, never here. A shard with no aggregate
    (quarantined) contributes an explicit ``missing`` entry so the
    report never silently under-counts.
    """
    fp = fp if fp is not None else fingerprint()
    outcomes: List[Dict] = []
    missing: List[Dict] = []
    for shard in sorted(shards, key=lambda s: s.index):
        aggregate = aggregates.get(shard.shard_id)
        if aggregate is None:
            missing.append({"shard_id": shard.shard_id,
                            "index": shard.index,
                            "units": len(shard.units)})
            continue
        if aggregate["shard_id"] != shard.shard_id:
            raise FleetError(
                f"aggregate for shard {shard.shard_id[:12]} carries id "
                f"{aggregate['shard_id'][:12]}")
        outcomes.extend(aggregate["outcomes"])
    failures = sum(1 for o in outcomes if o["status"] != "ok")
    report = {
        "campaign": spec.canonical(),
        "fingerprint": fp,
        "shards": len(shards),
        "units": sum(len(s.units) for s in shards),
        "completed_units": len(outcomes),
        "failures": failures,
        "missing_shards": missing,
        "quarantined": {},
        "outcomes": outcomes,
    }
    if spec.kind == "fuzz":
        disagreements = [o["payload"]["seed"] for o in outcomes
                         if o["status"] == "ok"
                         and not o["payload"]["verdict"]["ok"]]
        report["disagreements"] = disagreements
    return report


def serial_report(spec: CampaignSpec, *,
                  cache: Optional[ResultCache] = None) -> Dict:
    """The single-host reference: every shard inline, in order.

    The distributed acceptance check is
    ``run_fleet_campaign(...) == serial_report(...)`` byte for byte.
    """
    fp = fingerprint()
    shards = partition(spec, fp)
    aggregates = {shard.shard_id: execute_shard(shard, spec, cache=cache,
                                                fp=fp)
                  for shard in shards}
    return merge_report(spec, shards, aggregates, fp)
