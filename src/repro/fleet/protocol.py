"""Newline-delimited JSON wire protocol between coordinator and workers.

One frame per line: a JSON object with a ``type`` field drawn from
:data:`FRAME_TYPES`, UTF-8 encoded, terminated by ``\\n``. The format is
deliberately boring — it debugs with ``nc`` and survives partial writes
(a torn line fails to parse and is handled as a dead peer, never as a
half-applied command).

Validation is strict on both ends:

* frames above :data:`MAX_FRAME_BYTES` are rejected *while being read*
  (the reader aborts as soon as the unterminated line exceeds the cap,
  so an attacker or a corrupted peer cannot balloon coordinator memory);
* anything that is not a JSON object with a known ``type`` raises
  :class:`FrameError`, which the coordinator treats as a dead worker
  (lease revoked, shard requeued) and a worker treats as a dead
  coordinator (exit and let the pool respawn it).

Frame vocabulary (``->`` = sender):

====================  =========  ========================================
type                  sender     payload
====================  =========  ========================================
``hello``             worker     ``pid``, ``campaign`` (key echo)
``welcome``           coord      ``worker_id``, ``lease_s``, ``heartbeat_s``
``assign``            coord      ``shard`` (ShardSpec dict), ``delivery``
``heartbeat``         worker     ``worker_id``, ``shard_id``, ``done``
``result``            worker     ``worker_id``, ``shard_id``, ``aggregate``
``shard_error``       worker     ``worker_id``, ``shard_id``, ``message``
``shutdown``          coord      (none) — drain and disconnect
``bye``               worker     ``worker_id`` — clean departure
====================  =========  ========================================
"""

from __future__ import annotations

import json
import socket
import threading
from typing import Dict, Optional

from repro.errors import HarnessError

#: Hard ceiling on one frame's encoded size. Shard aggregates are the
#: largest frames (hundreds of unit payloads); 32 MiB leaves an order of
#: magnitude of headroom while still bounding a hostile peer.
MAX_FRAME_BYTES = 32 * 1024 * 1024

#: Every frame type either side may legally send.
FRAME_TYPES = frozenset({
    "hello", "welcome", "assign", "heartbeat", "result", "shard_error",
    "shutdown", "bye",
})


class FleetError(HarnessError):
    """Errors raised by the fleet campaign service."""


class FrameError(FleetError):
    """A wire frame was malformed, oversized, or of unknown type."""


def encode_frame(frame: Dict) -> bytes:
    """Serialize one frame to its wire form (JSON object + newline)."""
    if not isinstance(frame, dict) or frame.get("type") not in FRAME_TYPES:
        raise FrameError(
            f"cannot encode frame with type {frame.get('type')!r}; "
            f"expected one of {sorted(FRAME_TYPES)}")
    try:
        blob = json.dumps(frame, sort_keys=True).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise FrameError(f"frame is not JSON-serializable: {exc}") from exc
    if len(blob) + 1 > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame of {len(blob)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte cap")
    return blob + b"\n"


def decode_frame(line: bytes) -> Dict:
    """Parse one wire line back into a frame dict, strictly."""
    if len(line) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame of {len(line)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte cap")
    try:
        frame = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"garbled frame: {exc}") from exc
    if not isinstance(frame, dict):
        raise FrameError(
            f"frame must be a JSON object, got {type(frame).__name__}")
    if frame.get("type") not in FRAME_TYPES:
        raise FrameError(
            f"unknown frame type {frame.get('type')!r}; expected one of "
            f"{sorted(FRAME_TYPES)}")
    return frame


class FrameStream:
    """Frame-oriented view of one connected socket.

    ``send`` is thread-safe (a worker's heartbeat thread and its shard
    executor share the stream); ``recv`` is single-reader by contract.
    ``recv`` enforces :data:`MAX_FRAME_BYTES` incrementally: the read
    aborts the moment the pending unterminated line crosses the cap.
    """

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self._buffer = bytearray()
        self._send_lock = threading.Lock()
        self.frames_sent = 0
        self.frames_received = 0

    def send(self, frame: Dict) -> None:
        """Encode and transmit one frame (atomic w.r.t. other senders)."""
        blob = encode_frame(frame)
        with self._send_lock:
            self.sock.sendall(blob)
        self.frames_sent += 1

    def send_raw(self, blob: bytes) -> None:
        """Transmit pre-encoded bytes — the chaos garbling escape hatch."""
        with self._send_lock:
            self.sock.sendall(blob)

    def recv(self, timeout: Optional[float] = None) -> Optional[Dict]:
        """Read one frame; None on clean EOF.

        Raises :class:`FrameError` on a garbled or oversized frame and
        :class:`socket.timeout` / :class:`OSError` on transport trouble.
        """
        self.sock.settimeout(timeout)
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                line = bytes(self._buffer[:newline])
                del self._buffer[:newline + 1]
                frame = decode_frame(line)
                self.frames_received += 1
                return frame
            if len(self._buffer) > MAX_FRAME_BYTES:
                raise FrameError(
                    f"peer sent {len(self._buffer)} bytes without a "
                    f"frame terminator (cap {MAX_FRAME_BYTES})")
            chunk = self.sock.recv(65536)
            if not chunk:
                if self._buffer:
                    # EOF mid-line: a torn frame, not a clean goodbye.
                    raise FrameError(
                        "connection closed mid-frame "
                        f"({len(self._buffer)} bytes pending)")
                return None
            self._buffer.extend(chunk)

    def close(self) -> None:
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<FrameStream sent={self.frames_sent} "
                f"received={self.frames_received}>")
