"""Block compiler: specialize cached blocks into Python closures.

The interpreter tier (``DBREngine._run_interp``) pays a dict-dispatched
``CPU.execute`` call, a ``BASE_COST`` lookup, a ``MEMORY_OPCODES`` set
test and a ``consume_yield`` call for *every* retired instruction. The
compiled tier pays those costs once, at compile time: when the engine
first enters a cached block it classifies every position into one of
three step kinds —

``SEG``
    a maximal run of pure-ALU, unhooked instructions (LI/MOV/ADD/SUB/
    MUL/AND/OR/XOR/SHL/SHR/NOP) fused into a tuple of micro-closures
    that only touch the register file. The run's cycle charges are
    pre-summed so the whole segment retires with one
    ``instr_cycles +=`` and one ``stats.instructions +=``. Segments can
    neither fault nor enter the kernel, so there is no observation
    point inside one: deferring the pc update and the charge to the
    segment end is bit-identical to the interpreter. MOD is *excluded*
    (it can raise ``InvalidInstructionError`` before charging, which
    would corrupt the pre-summed charge at exception time).

``MEM``
    an unhooked LOAD/STORE/ATOMIC_ADD bound into a closure with the
    operands pre-decoded. It probes the owning thread's TLB micro-cache
    (``fast_ro``/``fast_rw``) first and falls back to the platform's
    ``translate`` — counting TLB hits/misses exactly as the interpreter
    path would — and routes page faults through ``kernel.repair_fault``
    with the not-retired/refetch contract intact.

``CTL``
    an unhooked control transfer (JMP/BZ/BNZ/BLT/BGE/CALL/RET) or MOD,
    specialized into a ``fn(thread) -> bool`` closure (True = control
    transferred, the engine must re-fetch). Branch/call targets are
    resolved through ``program.label_index`` once, at compile time, and
    the CALL return site is a prebuilt constant tuple. MOD rides here
    because its divide-by-zero check must raise *before* charging,
    which bars it from a pre-summed segment. Like segments, these steps
    never enter the kernel, so the per-instruction yield check is
    provably dead and skipped.

``GEN``
    everything else (kernel actions, HALT, and *every* hooked
    position): the engine runs the interpreter body verbatim for that
    one instruction, reading ``hooks[ii]`` and ``instr.mem`` live so
    runtime hook swaps (AikidoSD's seeded direct-patching) need no
    recompile. Only the cycle charge is precomputed.

A :class:`CompiledBlock` stores the engine's ``overhead_per_instr`` it
was baked with; the engine recompiles when the installed stack changes
the residency overhead (AikidoSD raises it on install). The closure
dies with its :class:`~repro.dbr.codecache.CachedBlock` on any flush,
so every re-JIT path (sharing faults, ``invalidate_all``, chaos
flushes, protection-change rewrites) structurally invalidates it.

Correctness bar: bit-identical simulated stats — cycles, fault counts,
race reports, chaos replay logs, trace attribution — versus the
interpreter tier (see ``tests/dbr/test_compiled_parity.py``).
"""

from __future__ import annotations

from typing import Callable, FrozenSet, List, Optional, Tuple

from repro.errors import InvalidInstructionError
from repro.machine.cpu import BASE_COST
from repro.machine.isa import MEMORY_OPCODES, Opcode
from repro.machine.paging import PAGE_SHIFT, PAGE_SIZE, PageFault

_MASK64 = 0xFFFFFFFFFFFFFFFF
_PAGE_MASK = PAGE_SIZE - 1

#: Step kind tags (first element of every step tuple).
SEG = 0
MEM = 1
GEN = 2
CTL = 3
#: Statically-elided fused run (``--static-elide``): superimposed over a
#: maximal run of SEG positions and unhooked memory accesses the elision
#: plan proved race-free/private. ``(ELI, fast_fn, count, fallback)``
#: where ``fast_fn(thread) -> retired`` runs the whole run with inline
#: TLB-micro-cache guards and literal-baked effects, bailing (with exact
#: prefix accounting) to the base step at the failing position, and
#: ``fallback`` is the base step the position keeps for budget tails,
#: pending yields and guard misses at position 0.
ELI = 4

#: Opcodes eligible for segment fusion: register-file-only semantics,
#: cannot fault, cannot trap, cannot raise before charging.
SEG_OPCODES = frozenset((
    Opcode.NOP, Opcode.LI, Opcode.MOV, Opcode.ADD, Opcode.SUB,
    Opcode.MUL, Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SHL,
    Opcode.SHR,
))

#: Opcodes specialized as CTL steps when unhooked.
CTL_OPCODES = frozenset((
    Opcode.JMP, Opcode.BZ, Opcode.BNZ, Opcode.BLT, Opcode.BGE,
    Opcode.CALL, Opcode.RET, Opcode.MOD,
))

#: Opcodes a superblock (see :mod:`repro.dbr.superblock`) can inline at
#: any position of a chain member: pure ALU, unhooked memory accesses
#: (guarded on the TLB micro-cache) and MOD (guarded on its divisor).
STITCH_BODY_OPCODES = SEG_OPCODES | MEMORY_OPCODES | frozenset(
    (Opcode.MOD,))

#: Control opcodes legal only as a chain member's *final* instruction —
#: the block terminators (plus CALL, which the ISA allows mid-block:
#: a mid-block CALL makes the block unstitchable because the chain
#: would have to span the callee and the return site).
STITCH_TAIL_OPCODES = frozenset((
    Opcode.JMP, Opcode.BZ, Opcode.BNZ, Opcode.BLT, Opcode.BGE,
    Opcode.CALL, Opcode.RET,
))


def chain_stitchable(cached) -> bool:
    """Can this cached block serve as a superblock chain member?

    Every position must be unhooked (a hook is an observation point the
    straight-line body cannot host) and every opcode must be one the
    superblock compiler can inline: ALU/memory/MOD anywhere, a control
    transfer only at the final position. Kernel ops, HALT, hooked
    positions and mid-block CALLs all disqualify the block — they run
    through the ordinary step list instead. A MOD with a literal zero
    divisor also disqualifies (it unconditionally raises, so the block
    can never retire past it anyway), as does a memory access with a
    literal misaligned address (same argument — and the superblock
    compiler inlines word-store accesses on the premise that literal
    addresses it sees are aligned).

    The verdict is stable for the life of the CachedBlock for the same
    reason step classification is: hooks are only *added* through a
    flush-and-rebuild, and runtime hook swaps only touch already-hooked
    positions (which already made the block unstitchable).
    """
    instrs = cached.instrs
    last = len(instrs) - 1
    for i, instr in enumerate(instrs):
        if cached.hooks[i] is not None:
            return False
        op = instr.op
        if op in STITCH_BODY_OPCODES:
            if (op is Opcode.MOD and instr.rs2 is None
                    and instr.imm == 0):
                return False
            if (op in MEMORY_OPCODES and instr.mem.base is None
                    and instr.mem.disp & 7):
                # A literal misaligned address raises unconditionally;
                # the superblock compiler inlines word-store accesses
                # on the premise that literal addresses are aligned.
                return False
            continue
        if i == last and op in STITCH_TAIL_OPCODES:
            continue
        return False
    return True


class CompiledBlock:
    """The compiled form of one cached block.

    ``steps[ii]`` is the step covering instruction index ``ii`` (segment
    runs get a suffix step per interior position, so re-entry mid-block
    after a quantum boundary lands on a valid step). ``overhead`` is the
    per-instruction residency overhead the charges were summed with —
    the engine treats a mismatch as stale and recompiles.
    """

    __slots__ = ("steps", "overhead", "length", "elided_uids",
                 "elided_private", "stitchable")

    def __init__(self, steps: List[tuple], overhead: int,
                 elided_uids: FrozenSet[int] = frozenset(),
                 elided_private: FrozenSet[int] = frozenset(),
                 stitchable: bool = False):
        self.steps = steps
        self.overhead = overhead
        self.length = len(steps)
        #: Memory uids fused into ELI fast paths in this closure, and
        #: the private-tier subset (the InvariantMonitor asserts no
        #: private-tier uid's closure coexists with a SHARED footprint
        #: page — see ``elision_no_shared``).
        self.elided_uids = elided_uids
        self.elided_private = elided_private
        #: True when the source block qualifies as a superblock chain
        #: member (see :func:`chain_stitchable`); computed once here so
        #: the chain planner's hot path is one attribute read.
        self.stitchable = stitchable


def _alu_closure(instr) -> Callable:
    """Bind one pure-ALU instruction into a ``fn(regs)`` micro-closure.

    Each branch replicates the matching ``CPU.execute`` arm exactly
    (same masking, same shift clamping) with operands pre-decoded.
    """
    op = instr.op
    rd = instr.rd
    rs1 = instr.rs1
    rs2 = instr.rs2
    imm = instr.imm

    if op is Opcode.LI:
        value = imm & _MASK64

        def fn(regs, _v=value, _rd=rd):
            regs[_rd] = _v
        return fn
    if op is Opcode.MOV:
        def fn(regs, _rd=rd, _rs=rs1):
            regs[_rd] = regs[_rs]
        return fn
    if op is Opcode.NOP:
        def fn(regs):
            pass
        return fn

    if rs2 is not None:
        if op is Opcode.ADD:
            def fn(regs, _rd=rd, _a=rs1, _b=rs2):
                regs[_rd] = (regs[_a] + regs[_b]) & _MASK64
        elif op is Opcode.SUB:
            def fn(regs, _rd=rd, _a=rs1, _b=rs2):
                regs[_rd] = (regs[_a] - regs[_b]) & _MASK64
        elif op is Opcode.MUL:
            def fn(regs, _rd=rd, _a=rs1, _b=rs2):
                regs[_rd] = (regs[_a] * regs[_b]) & _MASK64
        elif op is Opcode.AND:
            def fn(regs, _rd=rd, _a=rs1, _b=rs2):
                regs[_rd] = regs[_a] & regs[_b]
        elif op is Opcode.OR:
            def fn(regs, _rd=rd, _a=rs1, _b=rs2):
                regs[_rd] = regs[_a] | regs[_b]
        elif op is Opcode.XOR:
            def fn(regs, _rd=rd, _a=rs1, _b=rs2):
                regs[_rd] = (regs[_a] ^ regs[_b]) & _MASK64
        elif op is Opcode.SHL:
            def fn(regs, _rd=rd, _a=rs1, _b=rs2):
                regs[_rd] = (regs[_a] << (regs[_b] & 63)) & _MASK64
        elif op is Opcode.SHR:
            def fn(regs, _rd=rd, _a=rs1, _b=rs2):
                regs[_rd] = regs[_a] >> (regs[_b] & 63)
        else:  # pragma: no cover - SEG_OPCODES guards this
            raise AssertionError(f"not a segment opcode: {op}")
        return fn

    if op is Opcode.ADD:
        def fn(regs, _rd=rd, _a=rs1, _i=imm):
            regs[_rd] = (regs[_a] + _i) & _MASK64
    elif op is Opcode.SUB:
        def fn(regs, _rd=rd, _a=rs1, _i=imm):
            regs[_rd] = (regs[_a] - _i) & _MASK64
    elif op is Opcode.MUL:
        def fn(regs, _rd=rd, _a=rs1, _i=imm):
            regs[_rd] = (regs[_a] * _i) & _MASK64
    elif op is Opcode.AND:
        def fn(regs, _rd=rd, _a=rs1, _i=imm):
            regs[_rd] = regs[_a] & _i
    elif op is Opcode.OR:
        def fn(regs, _rd=rd, _a=rs1, _i=imm):
            regs[_rd] = regs[_a] | _i
    elif op is Opcode.XOR:
        def fn(regs, _rd=rd, _a=rs1, _i=imm):
            regs[_rd] = (regs[_a] ^ _i) & _MASK64
    elif op is Opcode.SHL:
        shift = imm & 63

        def fn(regs, _rd=rd, _a=rs1, _s=shift):
            regs[_rd] = (regs[_a] << _s) & _MASK64
    elif op is Opcode.SHR:
        shift = imm & 63

        def fn(regs, _rd=rd, _a=rs1, _s=shift):
            regs[_rd] = regs[_a] >> _s
    else:  # pragma: no cover - SEG_OPCODES guards this
        raise AssertionError(f"not a segment opcode: {op}")
    return fn


def _seg_statement(instr) -> Optional[str]:
    """Render one pure-ALU instruction as a Python statement on ``regs``.

    Mirrors the matching ``CPU.execute`` arm exactly; operands are baked
    as literals. Returns None for NOP (no statement).
    """
    op = instr.op
    if op is Opcode.NOP:
        return None
    rd = instr.rd
    if op is Opcode.LI:
        return f"regs[{rd}] = {instr.imm & _MASK64}"
    rs1 = instr.rs1
    if op is Opcode.MOV:
        return f"regs[{rd}] = regs[{rs1}]"
    rs2 = instr.rs2
    rhs = f"regs[{rs2}]" if rs2 is not None else repr(instr.imm)
    if op is Opcode.ADD:
        return f"regs[{rd}] = (regs[{rs1}] + {rhs}) & {_MASK64}"
    if op is Opcode.SUB:
        return f"regs[{rd}] = (regs[{rs1}] - {rhs}) & {_MASK64}"
    if op is Opcode.MUL:
        return f"regs[{rd}] = (regs[{rs1}] * {rhs}) & {_MASK64}"
    if op is Opcode.AND:
        return f"regs[{rd}] = regs[{rs1}] & {rhs}"
    if op is Opcode.OR:
        return f"regs[{rd}] = regs[{rs1}] | {rhs}"
    if op is Opcode.XOR:
        return f"regs[{rd}] = (regs[{rs1}] ^ {rhs}) & {_MASK64}"
    if op is Opcode.SHL:
        shift = f"(regs[{rs2}] & 63)" if rs2 is not None else str(
            instr.imm & 63)
        return f"regs[{rd}] = (regs[{rs1}] << {shift}) & {_MASK64}"
    if op is Opcode.SHR:
        shift = f"(regs[{rs2}] & 63)" if rs2 is not None else str(
            instr.imm & 63)
        return f"regs[{rd}] = regs[{rs1}] >> {shift}"
    raise AssertionError(f"not a segment opcode: {op}")  # pragma: no cover


def _seg_run_fn(instrs) -> Optional[Callable]:
    """exec()-generate one straight-line function for a whole segment.

    Turns N micro-closure calls into a single call; returns None when
    the segment has no statements (all NOP) or a single statement would
    not beat the micro-closure.
    """
    statements = [s for s in (_seg_statement(i) for i in instrs)
                  if s is not None]
    if len(instrs) < 2:
        return None
    if not statements:
        statements = ["pass"]
    source = "def _seg(regs):\n    " + "\n    ".join(statements)
    namespace: dict = {}
    exec(compile(source, "<blockcompiler:seg>", "exec"), {}, namespace)
    return namespace["_seg"]


def _ctl_closure(instr, engine, charge: int, block_index: int,
                 next_ii: int) -> Callable:
    """Bind one control transfer (or MOD) into ``fn(thread) -> bool``.

    True means control transferred (the engine re-fetches, like the
    interpreter's ``cur_bi = -1`` after ``_apply_result``); False means
    fallthrough with pc already advanced. Charge ordering matches the
    interpreter arm for arm: transfers charge before applying the
    result (so a RET-on-empty-stack raises *after* charging, exactly
    like ``_apply_result``), while MOD's zero check raises *before* any
    charge, exactly like ``CPU.execute``.
    """
    op = instr.op
    counter = engine.counter
    stats = engine.stats
    program = engine.codecache.program

    if op is Opcode.MOD:
        rd = instr.rd
        rs1 = instr.rs1
        rs2 = instr.rs2
        imm = instr.imm

        def fn(thread):
            regs = thread.regs
            rhs = regs[rs2] if rs2 is not None else imm
            if rhs == 0:
                raise InvalidInstructionError("modulo by zero")
            regs[rd] = regs[rs1] % rhs
            counter.instr_cycles += charge
            stats.instructions += 1
            thread.pc[1] = next_ii
            return False
        return fn

    if op is Opcode.RET:
        def fn(thread):
            counter.instr_cycles += charge
            stats.instructions += 1
            stack = thread.call_stack
            if not stack:
                raise InvalidInstructionError(
                    f"RET with empty call stack in thread {thread.tid}")
            pc = thread.pc
            pc[0], pc[1] = stack.pop()
            return True
        return fn

    target = program.label_index(instr.label)

    if op is Opcode.JMP:
        def fn(thread):
            counter.instr_cycles += charge
            stats.instructions += 1
            pc = thread.pc
            pc[0] = target
            pc[1] = 0
            return True
        return fn

    if op is Opcode.CALL:
        return_site = (block_index, next_ii)

        def fn(thread):
            counter.instr_cycles += charge
            stats.instructions += 1
            thread.call_stack.append(return_site)
            pc = thread.pc
            pc[0] = target
            pc[1] = 0
            return True
        return fn

    rs1 = instr.rs1
    rs2 = instr.rs2

    if op is Opcode.BZ:
        def fn(thread):
            counter.instr_cycles += charge
            stats.instructions += 1
            pc = thread.pc
            if thread.regs[rs1] == 0:
                pc[0] = target
                pc[1] = 0
                return True
            pc[1] = next_ii
            return False
    elif op is Opcode.BNZ:
        def fn(thread):
            counter.instr_cycles += charge
            stats.instructions += 1
            pc = thread.pc
            if thread.regs[rs1] != 0:
                pc[0] = target
                pc[1] = 0
                return True
            pc[1] = next_ii
            return False
    elif op is Opcode.BLT:
        def fn(thread):
            counter.instr_cycles += charge
            stats.instructions += 1
            pc = thread.pc
            regs = thread.regs
            if regs[rs1] < regs[rs2]:
                pc[0] = target
                pc[1] = 0
                return True
            pc[1] = next_ii
            return False
    else:  # BGE — CTL_OPCODES guards this
        def fn(thread):
            counter.instr_cycles += charge
            stats.instructions += 1
            pc = thread.pc
            regs = thread.regs
            if regs[rs1] >= regs[rs2]:
                pc[0] = target
                pc[1] = 0
                return True
            pc[1] = next_ii
            return False
    return fn


def _mem_closure(instr, engine, charge: int, next_ii: int) -> Callable:
    """Bind one unhooked memory instruction into ``fn(thread) -> bool``.

    Returns True when the instruction retired (charge applied, stats and
    pc advanced, so the caller only counts it against the budget and
    checks the yield flag) and False when it page-faulted: the fault has
    been routed through ``kernel.repair_fault`` and the caller must
    refetch the block and retry, exactly like the interpreter's fault
    arm. The fast path resolves the translation from the thread's TLB
    micro-cache; a fast hit stands in for a successful ``lookup`` +
    permission check, so it books a regular TLB hit too.
    """
    op = instr.op
    mem = instr.mem
    base = mem.base
    disp = mem.disp
    rd = instr.rd
    rs1 = instr.rs1
    memory = engine.cpu.memory
    translate = engine.cpu.translate
    kernel = engine.kernel
    counter = engine.counter
    stats = engine.stats
    read_word = memory.read_word
    write_word = memory.write_word

    if op is Opcode.LOAD:
        def fn(thread):
            regs = thread.regs
            ea = disp if base is None else (regs[base] + disp) & _MASK64
            tlb = thread.tlb
            pb = tlb.fast_ro.get(ea >> PAGE_SHIFT)
            if pb is not None:
                tlb.hits += 1
                tlb.fast_hits += 1
                paddr = pb | (ea & _PAGE_MASK)
            else:
                tlb.fast_misses += 1
                try:
                    paddr = translate(thread, ea, False)
                except PageFault as fault:
                    kernel.repair_fault(thread, fault)
                    return False
            regs[rd] = read_word(paddr)
            counter.instr_cycles += charge
            stats.instructions += 1
            stats.memory_refs += 1
            thread.pc[1] = next_ii
            return True
        return fn

    if op is Opcode.STORE:
        def fn(thread):
            regs = thread.regs
            ea = disp if base is None else (regs[base] + disp) & _MASK64
            tlb = thread.tlb
            pb = tlb.fast_rw.get(ea >> PAGE_SHIFT)
            if pb is not None:
                tlb.hits += 1
                tlb.fast_hits += 1
                paddr = pb | (ea & _PAGE_MASK)
            else:
                tlb.fast_misses += 1
                try:
                    paddr = translate(thread, ea, True)
                except PageFault as fault:
                    kernel.repair_fault(thread, fault)
                    return False
            write_word(paddr, regs[rs1])
            counter.instr_cycles += charge
            stats.instructions += 1
            stats.memory_refs += 1
            thread.pc[1] = next_ii
            return True
        return fn

    # ATOMIC_ADD
    def fn(thread):
        regs = thread.regs
        ea = disp if base is None else (regs[base] + disp) & _MASK64
        tlb = thread.tlb
        pb = tlb.fast_rw.get(ea >> PAGE_SHIFT)
        if pb is not None:
            tlb.hits += 1
            tlb.fast_hits += 1
            paddr = pb | (ea & _PAGE_MASK)
        else:
            tlb.fast_misses += 1
            try:
                paddr = translate(thread, ea, True)
            except PageFault as fault:
                kernel.repair_fault(thread, fault)
                return False
        old = read_word(paddr)
        write_word(paddr, (old + regs[rs1]) & _MASK64)
        if rd is not None:
            regs[rd] = old
        counter.instr_cycles += charge
        stats.instructions += 1
        stats.memory_refs += 1
        thread.pc[1] = next_ii
        return True
    return fn


def _eli_fast_fn(instrs, start: int, engine, overhead: int) -> Callable:
    """exec()-generate the fast body for one statically-elided run.

    ``instrs`` is the run (SEG opcodes + elidable memory accesses),
    ``start`` its first instruction index in the block. The generated
    ``fn(thread) -> retired`` inlines every ALU statement and guards
    each memory access on the owning thread's TLB micro-cache
    (``fast_ro``/``fast_rw``). A guard miss at run position ``k``
    applies the *exact* accounting of the ``k`` already-retired prefix
    instructions (pre-summed cycle charges, instruction/memory-ref
    counts, per-access TLB hit bookkeeping — identical to what the base
    SEG/MEM steps would have booked, because nothing between two fast
    retires can observe intermediate state), parks ``pc`` on the failing
    position and returns ``k``; the engine then re-executes that
    position through its base step, which re-probes, counts the
    ``fast_misses`` and handles translate/fault — so a bail costs
    nothing extra and counts nothing twice. A miss at position 0 returns
    0 with no effects at all.

    The elision counters (``engine._elision_cell``) are host-side
    observability, never part of any simulated stat surface.
    """
    counter = engine.counter
    stats = engine.stats
    memory = engine.cpu.memory

    charges = [BASE_COST[i.op] + overhead for i in instrs]
    cyc_prefix = [0]
    for c in charges:
        cyc_prefix.append(cyc_prefix[-1] + c)
    n = len(instrs)

    lines: List[str] = ["def _eli(thread):",
                        "    regs = thread.regs",
                        "    tlb = thread.tlb"]
    uses_ro = any(i.op is Opcode.LOAD for i in instrs)
    uses_rw = any(i.op in (Opcode.STORE, Opcode.ATOMIC_ADD)
                  for i in instrs)
    if uses_ro:
        lines.append("    fr = tlb.fast_ro")
    if uses_rw:
        lines.append("    fw = tlb.fast_rw")

    def bail(k: int, mems: int) -> List[str]:
        if k == 0:
            return ["        return 0"]
        out = [f"        counter.instr_cycles += {cyc_prefix[k]}",
               f"        stats.instructions += {k}"]
        if mems:
            out += [f"        stats.memory_refs += {mems}",
                    f"        tlb.hits += {mems}",
                    f"        tlb.fast_hits += {mems}",
                    f"        _ec[0] += {mems}"]
        out += [f"        _ec[1] += {k}",
                f"        thread.pc[1] = {start + k}",
                f"        return {k}"]
        return out

    mems_so_far = 0
    for k, instr in enumerate(instrs):
        op = instr.op
        if op in SEG_OPCODES:
            stmt = _seg_statement(instr)
            if stmt is not None:
                lines.append(f"    {stmt}")
            continue
        # Memory access: compute the physical address behind a guard.
        mem = instr.mem
        fmap = "fr" if op is Opcode.LOAD else "fw"
        if mem.base is None:
            page = mem.disp >> PAGE_SHIFT
            off = mem.disp & _PAGE_MASK
            lines.append(f"    pb{k} = {fmap}.get({page})")
            lines.append(f"    if pb{k} is None:")
            lines.extend(bail(k, mems_so_far))
            paddr = f"(pb{k} | {off})" if off else f"pb{k}"
        else:
            lines.append(f"    ea{k} = (regs[{mem.base}] + {mem.disp})"
                         f" & {_MASK64}")
            lines.append(f"    pb{k} = {fmap}.get(ea{k} >> {PAGE_SHIFT})")
            lines.append(f"    if pb{k} is None:")
            lines.extend(bail(k, mems_so_far))
            paddr = f"(pb{k} | (ea{k} & {_PAGE_MASK}))"
        if op is Opcode.LOAD:
            lines.append(f"    regs[{instr.rd}] = read_word({paddr})")
        elif op is Opcode.STORE:
            lines.append(f"    write_word({paddr}, regs[{instr.rs1}])")
        else:  # ATOMIC_ADD
            lines.append(f"    pa{k} = {paddr}")
            lines.append(f"    old{k} = read_word(pa{k})")
            lines.append(f"    write_word(pa{k}, (old{k} + "
                         f"regs[{instr.rs1}]) & {_MASK64})")
            if instr.rd is not None:
                lines.append(f"    regs[{instr.rd}] = old{k}")
        mems_so_far += 1
    # Full completion: total accounting in one shot.
    lines += [f"    counter.instr_cycles += {cyc_prefix[n]}",
              f"    stats.instructions += {n}",
              f"    stats.memory_refs += {mems_so_far}",
              f"    tlb.hits += {mems_so_far}",
              f"    tlb.fast_hits += {mems_so_far}",
              f"    _ec[0] += {mems_so_far}",
              f"    _ec[1] += {n}",
              f"    thread.pc[1] = {start + n}",
              f"    return {n}"]
    namespace: dict = {}
    exec(compile("\n".join(lines), "<blockcompiler:eli>", "exec"),
         {"counter": counter, "stats": stats, "_ec": engine._elision_cell,
          "read_word": memory.read_word,
          "write_word": memory.write_word},
         namespace)
    return namespace["_eli"]


def compile_block(cached, engine) -> CompiledBlock:
    """Compile a cached block against ``engine``'s current overhead.

    Classification is stable for the life of the ``CachedBlock``: hooks
    are only *added* through a flush-and-rebuild (AikidoSD's re-JIT), and
    runtime hook swaps replace the callable at an already-hooked (GEN)
    position in place.
    """
    overhead = engine.overhead_per_instr
    instrs = cached.instrs
    hooks = cached.hooks
    n = len(instrs)
    steps: List[Optional[tuple]] = [None] * n
    i = 0
    while i < n:
        instr = instrs[i]
        if hooks[i] is None and instr.op in SEG_OPCODES:
            j = i
            fns: List[Callable] = []
            charges: List[int] = []
            while (j < n and hooks[j] is None
                   and instrs[j].op in SEG_OPCODES):
                fns.append(_alu_closure(instrs[j]))
                charges.append(BASE_COST[instrs[j].op] + overhead)
                j += 1
            # One suffix step per position so mid-run re-entry (quantum
            # boundary landed inside the segment) stays valid; only the
            # run head gets the exec()-generated fast body, interior
            # entries (rare: a quantum boundary parked mid-run) fall
            # back to the micro-closure loop.
            for start in range(i, j):
                sub = tuple(fns[start - i:])
                prefixes: List[int] = [0]
                acc = 0
                for c in charges[start - i:]:
                    acc += c
                    prefixes.append(acc)
                run_fn = _seg_run_fn(instrs[i:j]) if start == i else None
                steps[start] = (SEG, run_fn, sub, len(sub), acc,
                                tuple(prefixes), j)
            i = j
            continue
        if hooks[i] is None and instr.op in MEMORY_OPCODES:
            charge = BASE_COST[instr.op] + overhead
            steps[i] = (MEM, _mem_closure(instr, engine, charge, i + 1))
        elif hooks[i] is None and instr.op in CTL_OPCODES:
            charge = BASE_COST[instr.op] + overhead
            steps[i] = (CTL, _ctl_closure(instr, engine, charge,
                                          cached.block_index, i + 1))
        else:
            steps[i] = (GEN, BASE_COST[instr.op] + overhead,
                        instr.op in MEMORY_OPCODES)
        i += 1

    # ------------------------------------------------------------------
    # static-check elision: superimpose ELI fast paths (--static-elide)
    # ------------------------------------------------------------------
    stitchable = chain_stitchable(cached)
    plan = engine.elision_plan
    if plan is None:
        return CompiledBlock(steps, overhead, stitchable=stitchable)
    retired = engine._elision_retired
    elided_uids = set()
    elided_private = set()

    def _elidable(pos: int) -> bool:
        if steps[pos][0] != MEM:
            return False
        uid = instrs[pos].uid
        return uid in plan and uid not in retired

    i = 0
    while i < n:
        if steps[i][0] != SEG and not _elidable(i):
            i += 1
            continue
        j = i
        mem_positions: List[int] = []
        while j < n and (steps[j][0] == SEG or _elidable(j)):
            if steps[j][0] == MEM:
                mem_positions.append(j)
            j += 1
        # Fuse only when there is a check to elide and the run beats a
        # single base step. Interior positions keep their base steps
        # (mid-run re-entry after a quantum boundary or a bail).
        if mem_positions and j - i >= 2:
            fast_fn = _eli_fast_fn(instrs[i:j], i, engine, overhead)
            steps[i] = (ELI, fast_fn, j - i, steps[i])
            for p in mem_positions:
                uid = instrs[p].uid
                elided_uids.add(uid)
                if plan.tier(uid) == "private":
                    elided_private.add(uid)
        i = j
    return CompiledBlock(steps, overhead, frozenset(elided_uids),
                         frozenset(elided_private),
                         stitchable=stitchable)
