"""The DBR execution engine.

An :class:`~repro.guestos.driver.ExecutionDriver` that runs application
code out of the code cache, executing instrumentation hooks inline, and
hosting the master SIGSEGV handler that routes Aikido faults to the
sharing detector (paper §3.4).

Running under the engine costs: one block build per cold block, one
dispatch charge per block entry (link stubs / IBL lookups, amortized), and
whatever the attached hooks charge. This models DynamoRIO's "near native
once warm" profile — both the FastTrack baseline and Aikido pay it.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro import costs
from repro.dbr.blockcompiler import CTL, ELI, GEN, MEM, SEG, compile_block
from repro.dbr.codecache import CodeCache
from repro.dbr.superblock import (EXIT_COMPLETE, EXIT_RESUME, EXIT_STALE,
                                  MIN_INSTRUCTIONS, RETRY_EXECUTIONS,
                                  THRASH_MIN_ENTRIES, SuperBlockCache,
                                  compile_superblock, plan_chain)
from repro.dbr.tool import Tool
from repro.dbr.traceprofiler import TraceProfiler
from repro.guestos.driver import ExecutionDriver
from repro.guestos.signals import SIGSEGV, HandlerResult
from repro.machine.cpu import BASE_COST
from repro.machine.isa import MEMORY_OPCODES
from repro.machine.paging import PageFault

_MASK64 = 0xFFFFFFFFFFFFFFFF


class DBREngine(ExecutionDriver):
    """Code-cache execution with inline instrumentation hooks.

    Three execution tiers share the code cache. The *interpreter* tier
    (:meth:`_run_interp`) is the reference: one ``CPU.execute`` per
    instruction. The *compiled* tier (:meth:`_run_compiled`, default,
    ``compile_blocks=False`` to disable) runs each block through its
    specialized closure form (see :mod:`repro.dbr.blockcompiler`). The
    *superblock* tier (``superblocks=False`` to disable, on by default
    whenever the compiled tier is) additionally stitches hot block
    chains into single generated functions with guard-protected side
    exits (see :mod:`repro.dbr.superblock` /
    :mod:`repro.dbr.traceprofiler`), dispatched from the compiled
    tier's fetch path. All tiers must produce bit-identical simulated
    stats.
    """

    def __init__(self, kernel, *, trace_threshold: int = 50,
                 process=None, compile_blocks: bool = True,
                 superblocks: bool = True):
        super().__init__(kernel)
        self.process = process if process is not None else kernel.process
        if self.process is None:
            raise RuntimeError("create the process before the engine")
        self.codecache = CodeCache(self.process.program, kernel.counter,
                                   trace_threshold=trace_threshold)
        self.tool: Optional[Tool] = None
        #: Installed by AikidoSD: callable(thread, SignalInfo) ->
        #: HandlerResult or None (None = not an Aikido fault).
        self.fault_router: Optional[Callable] = None
        self._cache_dirty = False
        #: Execution-tier switch (AikidoConfig.compile_blocks).
        self.compile_blocks = compile_blocks
        #: Superblock-tier switch (AikidoConfig.superblocks) — a layer
        #: on top of the compiled tier, meaningless without it.
        self.superblocks = bool(compile_blocks and superblocks)
        if self.superblocks:
            self.traceprofiler = TraceProfiler()
            self.superblock_cache = SuperBlockCache()
            self.codecache.invalidation_listeners.append(
                self._superblock_invalidate)
        else:
            self.traceprofiler = None
            self.superblock_cache = None
        #: Per-instruction residency overhead of the installed stack;
        #: plain DynamoRIO by default, raised by AikidoSD on install.
        self.overhead_per_instr = costs.DBR_BASE_PER_INSTR
        #: Chaos injector, attached by ChaosInjector.attach (None = off).
        self.chaos = None
        #: Observability tracer, attached by AikidoSystem (None = off).
        self.tracer = None
        #: Static-check elision (``--static-elide``): the plan installed
        #: by AikidoSD (None = off), the uids dynamically retired from
        #: it by page-share tripwires, and the host-side elision
        #: counters ``[checks_elided, fast_path_instructions]`` the
        #: generated fast bodies bump (never part of simulated stats).
        self.elision_plan = None
        self._elision_retired: set = set()
        self._elision_cell = [0, 0]
        kernel.set_driver(self, self.process)

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    def attach_tool(self, tool: Tool) -> None:
        """Install the analysis tool (block callbacks + sync events)."""
        self.tool = tool
        tool.attach(self)
        self.codecache.build_callbacks.append(tool.instrument_block)
        self.kernel.add_sync_listener(tool.on_sync_event)

    def register_master_signal_handler(self) -> None:
        """Take over SIGSEGV for the process (DynamoRIO does this)."""
        self.process.signal_handlers[SIGSEGV] = self._master_signal_handler

    def set_elision_plan(self, plan) -> None:
        """Install the static elision plan (AikidoSD, static_elide=True).

        Must happen before the first block compiles against it; AikidoSD
        installs it at the same point it raises ``overhead_per_instr``,
        which already forces a recompile of anything built earlier.
        """
        self.elision_plan = plan

    def note_page_shared(self, vpn: int) -> list:
        """Dynamic elision tripwire: page ``vpn`` just became SHARED.

        Retires every elided uid whose static footprint contains the
        page and drops the affected compiled closures — host-side only
        (no simulated flush/build charges), so the cycle stream is
        identical to a run that never elided anything. The block
        recompiles, without the retired uids, at its next natural
        entry. Returns the newly retired ``(uid, tier)`` pairs; the
        caller (AikidoSD) escalates private-tier hits to ``ToolError``
        when per-thread protection makes the transition trustworthy.
        """
        plan = self.elision_plan
        if plan is None:
            return []
        retired = []
        for uid, tier in plan.uids_touching_page(vpn):
            if uid in self._elision_retired:
                continue
            self._elision_retired.add(uid)
            self.codecache.drop_closures_of_instruction(
                uid, "elision_retired")
            retired.append((uid, tier))
        if retired and self.tracer is not None:
            self.tracer.instant("elision_retired", "dbr", vpn=vpn,
                                uids=[u for u, _ in retired])
        return retired

    def elision_snapshot(self) -> Optional[dict]:
        """Host-side elision telemetry (None when elision is off)."""
        plan = self.elision_plan
        if plan is None:
            return None
        return {
            "plan": plan.as_dict(),
            "checks_elided": self._elision_cell[0],
            "fast_path_instructions": self._elision_cell[1],
            "retired_uids": sorted(self._elision_retired),
        }

    def invalidate_instruction(self, uid: int) -> int:
        """Flush cached blocks containing the instruction (re-JIT)."""
        flushed = self.codecache.invalidate_blocks_of_instruction(uid)
        if flushed:
            self._cache_dirty = True
        if self.tracer is not None:
            self.tracer.instant("rejit", "dbr", uid=uid, flushed=flushed)
        return flushed

    # ------------------------------------------------------------------
    # superblock tier
    # ------------------------------------------------------------------
    def _superblock_invalidate(self, block_index: int,
                               reason: str) -> None:
        """Code-cache invalidation listener: a member died, its
        superblocks die with it; a rebuilt block may also have become
        stitchable, so its build ban/backoff resets."""
        sb_cache = self.superblock_cache
        dropped = sb_cache.drop_blocks_of(block_index, reason)
        sb_cache.unban(block_index)
        if dropped and self.tracer is not None:
            self.tracer.instant("superblock_drop", "dbr",
                                block=block_index, reason=reason,
                                dropped=dropped)

    def _try_superblock(self, cached) -> None:
        """Attempt to grow and compile a superblock headed at ``cached``.

        Called from the compiled tier's fetch path when an in-trace
        block is entered at instruction 0 and no superblock covers it
        yet. Entirely host-side: no simulated charges beyond what the
        cost model already books for trace promotion.
        """
        sb_cache = self.superblock_cache
        head = cached.block_index
        if head in sb_cache.banned:
            return
        if cached.executions < sb_cache.attempt_after.get(head, 0):
            return
        members = plan_chain(head, self)
        if not members:
            # The head block itself is unstitchable (hooked, HALT,
            # literal-zero MOD, ...): no chain can ever start here until
            # an invalidation rebuilds the block differently.
            sb_cache.banned.add(head)
            return
        if (len(members) < 2
                or sum(len(m.instrs) for m in members)
                    < MIN_INSTRUCTIONS):
            # Too short to pay for its own entry sequence; the
            # successors may still be warming toward trace membership —
            # retry once the head has run hotter.
            sb_cache.attempt_after[head] = (cached.executions
                                            + RETRY_EXECUTIONS)
            return
        sb = compile_superblock(members, self)
        sb_cache.install(sb)
        if self.tracer is not None:
            self.tracer.instant(
                "superblock_build", "dbr", head=head,
                members=[m.block_index for m in sb.members],
                instructions=sb.count)

    def superblock_snapshot(self) -> Optional[dict]:
        """Host-side superblock telemetry (None when the tier is off)."""
        sb_cache = self.superblock_cache
        if sb_cache is None:
            return None
        return {
            "superblocks_built": sb_cache.built,
            "superblocks_dropped": sb_cache.dropped,
            "side_exits": sb_cache.side_exits,
            "entries": sb_cache.entries,
            "completions": sb_cache.completions,
            "instructions": sb_cache.instructions,
            "live": len(sb_cache.by_head),
        }

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, thread, budget: int) -> str:
        chaos = self.chaos
        if chaos is not None and chaos.fires("codecache_flush",
                                             tid=thread.tid):
            # Recoverable by construction: every block rebuilds from the
            # program text with the same instrumentation on next entry.
            if self.codecache.invalidate_all():
                self._cache_dirty = True
            chaos.note_recovered("codecache_flush")
        # A pending yield left over from a previous quantum (a thread
        # that blocked right after a chaos preempt) makes the very next
        # instruction yield; the interpreter tier *is* that reference
        # behavior, so delegate the quantum to it.
        if self.compile_blocks and not self.kernel._yield_requested:
            return self._run_compiled(thread, budget)
        return self._run_interp(thread, budget)

    def _run_interp(self, thread, budget: int) -> str:
        """Reference tier: dict-dispatched ``CPU.execute`` per instruction."""
        kernel = self.kernel
        execute = self.cpu.execute
        counter = self.counter
        stats = self.stats
        codecache = self.codecache
        pc = thread.pc
        executed = 0
        cur_bi = -1
        cached = None
        overhead = self.overhead_per_instr
        while executed < budget:
            if not thread.runnable:
                return "exited" if thread.exited else "blocked"
            bi = pc[0]
            if bi != cur_bi or cached is None or self._cache_dirty:
                self._cache_dirty = False
                cached = codecache.get(bi)
                cur_bi = bi
                counter.charge("dbr", costs.BLOCK_DISPATCH)
            ii = pc[1]
            if ii >= len(cached.instrs):
                pc[0] += 1
                pc[1] = 0
                cur_bi = -1
                continue
            instr = cached.instrs[ii]
            hook = cached.hooks[ii]
            try:
                if hook is not None:
                    mem = instr.mem
                    if mem is not None:
                        if mem.base is None:
                            ea = mem.disp
                        else:
                            ea = (thread.regs[mem.base] + mem.disp) & _MASK64
                    else:
                        ea = None
                    override = hook(thread, instr, ea)
                    res = execute(instr, thread, ea_override=override)
                    # Counted only on retire (a faulting attempt retries
                    # and must not be counted twice — Table 2 col 2 is a
                    # retired-execution count).
                    stats.instrumented_execs += 1
                else:
                    res = execute(instr, thread)
            except PageFault as fault:
                kernel.repair_fault(thread, fault)
                # The handler may have rebuilt this block: force re-fetch
                # so we execute the freshly instrumented copy.
                cur_bi = -1
                continue
            op = instr.op
            counter.instr_cycles += BASE_COST[op] + overhead
            executed += 1
            stats.instructions += 1
            if op in MEMORY_OPCODES:
                stats.memory_refs += 1
            if res is None:
                pc[1] = ii + 1
            else:
                if not self._apply_result(thread, pc, ii, res):
                    return "exited" if thread.exited else "blocked"
                cur_bi = -1  # control may have transferred
            if kernel.consume_yield():
                return "yield"
        return "quantum"

    def _compile_block(self, cached, overhead: int):
        """(Re)compile a cached block's closure; tracks traffic/tracing."""
        codecache = self.codecache
        if cached.compiled is not None:
            # Stale: baked with a different residency overhead (the
            # installed stack changed, e.g. AikidoSD install).
            codecache._note_closure_dropped(cached, "stale_overhead")
        compiled = compile_block(cached, self)
        assert compiled.overhead == overhead
        cached.compiled = compiled
        codecache.closures_compiled += 1
        if self.tracer is not None:
            self.tracer.instant("block_compile", "dbr",
                                block=cached.block_index,
                                steps=compiled.length)
        return compiled

    def _run_compiled(self, thread, budget: int) -> str:
        """Compiled tier: one specialized step per fused unit.

        Structurally a clone of :meth:`_run_interp` — same fetch
        condition, same dispatch charge, same fault/yield/blocked exits —
        with the per-instruction body replaced by the block's step list.
        """
        kernel = self.kernel
        execute = self.cpu.execute
        counter = self.counter
        stats = self.stats
        codecache = self.codecache
        pc = thread.pc
        executed = 0
        cur_bi = -1
        cached = None
        steps = None
        length = 0
        #: True only while a fault-repair for the instruction being
        #: retried may have left a chaos preempt pending.
        pending_yield = False
        #: The interpreter re-reads ``thread.runnable`` before every
        #: instruction, but only kernel entries can change it; the
        #: check is hoisted to the paths that entered the kernel
        #: (fault repairs — actions return the new state directly).
        check_runnable = True
        overhead = self.overhead_per_instr
        sb_cache = self.superblock_cache
        #: Hot-path locals for the superblock tier: one dict.get per
        #: fetch for dispatch, and the profiler's edge table accessed
        #: directly (TraceProfiler.note_edge semantics, inlined — a
        #: call per block transition is measurable at this loop's
        #: frequency).
        sb_get = sb_cache.by_head.get if sb_cache is not None else None
        by_head = sb_cache.by_head if sb_cache is not None else None
        sb_banned = sb_cache.banned if sb_cache is not None else None
        sb_retry_get = (sb_cache.attempt_after.get
                        if sb_cache is not None else None)
        edges = (self.traceprofiler._edges
                 if self.traceprofiler is not None else None)
        #: Previous *hot* block entered at instruction 0 within this
        #: quantum — the profiler's edge source. Reset to -1 on anything
        #: that breaks the straight execution stream (mid-block
        #: re-entry, superblock exit, quantum start) and on cold blocks:
        #: chains only ever link promoted blocks, so cold-source edges
        #: would be dead weight in the table.
        prev_bi = -1
        while executed < budget:
            if check_runnable:
                if not thread.runnable:
                    return "exited" if thread.exited else "blocked"
                check_runnable = False
            bi = pc[0]
            if bi != cur_bi or cached is None or self._cache_dirty:
                if sb_get is not None and pc[1] == 0 \
                        and not pending_yield:
                    sb = sb_get(bi)
                    if sb is not None:
                        if sb.overhead != overhead:
                            sb_cache.drop(sb, "stale_overhead")
                        elif sb.count <= budget - executed:
                            # The whole chain fits in the remaining
                            # budget and nothing can observe state
                            # mid-body — run it. All accounting is
                            # booked by the body at its exit site.
                            # The entry still records its profiler
                            # edge (the body replaces the fetch that
                            # would have) so chains through and past
                            # this superblock can keep maturing.
                            if prev_bi >= 0:
                                per_src = edges.get(prev_bi)
                                if per_src is None:
                                    per_src = edges[prev_bi] = {}
                                per_src[bi] = per_src.get(bi, 0) + 1
                            self._cache_dirty = False
                            retired = sb.fn(thread)
                            code = sb.exit[1]
                            if code != EXIT_STALE:
                                sb.entries += 1
                                sb_cache.entries += 1
                                sb_cache.instructions += retired
                                executed += retired
                                # A full-count EXIT_RESUME is a
                                # completion that fell off the chain
                                # end (fallthrough / not-taken
                                # terminal): pc parks past the block
                                # end exactly like the reference and
                                # the loop below advances it.
                                if (code == EXIT_COMPLETE
                                        or retired == sb.count):
                                    sb_cache.completions += 1
                                else:
                                    # Guard-protected side exit.
                                    sb.side_exits += 1
                                    sb_cache.side_exits += 1
                                    if self.tracer is not None:
                                        self.tracer.instant(
                                            "superblock_side_exit",
                                            "dbr", head=sb.head,
                                            member=sb.exit[0],
                                            code=code)
                                # The block the chain logically left
                                # from stays the profiler's edge
                                # source, so the stream reads as if
                                # the members had dispatched normally.
                                if code == EXIT_RESUME:
                                    # pc is parked inside (or just
                                    # past) a member; resume through
                                    # its ordinary step list. Its
                                    # dispatch is already charged — do
                                    # NOT re-fetch.
                                    member = sb.members[sb.exit[0]]
                                    cached = member
                                    cur_bi = member.block_index
                                    prev_bi = cur_bi
                                    compiled = member.compiled
                                    steps = compiled.steps
                                    length = compiled.length
                                elif code == EXIT_COMPLETE:
                                    cur_bi = -1
                                    prev_bi = (
                                        sb.members[-1].block_index)
                                else:  # REFETCH after a deviation
                                    cur_bi = -1
                                    prev_bi = (sb.members[sb.exit[0]]
                                               .block_index)
                                if (sb.entries >= THRASH_MIN_ENTRIES
                                        and sb.side_exits * 2
                                            >= sb.entries):
                                    # Mispredicting more than it
                                    # completes: evict and stop
                                    # rebuilding until the head block
                                    # is itself invalidated.
                                    sb_cache.drop(sb, "thrash")
                                    sb_cache.banned.add(sb.head)
                                continue
                            # EXIT_STALE: a member's closure changed
                            # under us; nothing was booked. Drop the
                            # superblock and dispatch normally.
                            sb_cache.drop(sb, "stale")
                self._cache_dirty = False
                cached = codecache.get(bi)
                cur_bi = bi
                counter.charge("dbr", costs.BLOCK_DISPATCH)
                compiled = cached.compiled
                if compiled is None or compiled.overhead != overhead:
                    compiled = self._compile_block(cached, overhead)
                steps = compiled.steps
                length = compiled.length
                if edges is not None:
                    if pc[1] == 0:
                        hot = cached.in_trace
                        if prev_bi >= 0:
                            per_src = edges.get(prev_bi)
                            if per_src is None:
                                per_src = edges[prev_bi] = {}
                            per_src[bi] = per_src.get(bi, 0) + 1
                            # Build gate, inlined: banned heads and
                            # heads inside their retry backoff are the
                            # steady state for chains that will never
                            # (or not yet) form — they must not pay a
                            # call per entry.
                            if (hot and bi not in by_head
                                    and bi not in sb_banned
                                    and cached.executions
                                        >= sb_retry_get(bi, 0)):
                                self._try_superblock(cached)
                        prev_bi = bi if hot else -1
                    else:
                        prev_bi = -1
            ii = pc[1]
            if ii >= length:
                pc[0] += 1
                pc[1] = 0
                cur_bi = -1
                continue
            step = steps[ii]
            kind = step[0]
            if kind == ELI:
                # Statically-elided fused run: the whole run (or an
                # exactly-accounted prefix, when a TLB guard misses)
                # retires in one call. Never entered with a pending
                # yield (the post-fault retry must go through the base
                # step's consume_yield check) or a budget too small for
                # the full run — both fall back to the base step.
                if not pending_yield and step[2] <= budget - executed:
                    retired = step[1](thread)
                    if retired:
                        executed += retired
                        continue
                    # Guard missed at position 0: nothing retired, run
                    # this position through its base step below.
                step = step[3]
                kind = step[0]
            if kind == SEG:
                # Fused pure-ALU run: no faults, no kernel entry, no
                # observation point inside — retire it in one go (or a
                # budget-bounded prefix of it).
                count = step[3]
                remaining = budget - executed
                if count <= remaining:
                    run_fn = step[1]
                    if run_fn is not None:
                        run_fn(thread.regs)
                    else:
                        regs = thread.regs
                        for fn in step[2]:
                            fn(regs)
                    counter.instr_cycles += step[4]
                    executed += count
                    stats.instructions += count
                    pc[1] = step[6]
                else:
                    regs = thread.regs
                    for fn in step[2][:remaining]:
                        fn(regs)
                    counter.instr_cycles += step[5][remaining]
                    executed += remaining
                    stats.instructions += remaining
                    pc[1] = ii + remaining
                continue
            if kind == MEM:
                if step[1](thread):
                    executed += 1
                    # The closure never enters the kernel on the retire
                    # path, so the yield flag can only be pending from a
                    # chaos preempt during this instruction's own fault
                    # repair — only then is the check live.
                    if pending_yield and kernel.consume_yield():
                        return "yield"
                    pending_yield = False
                else:
                    # Faulted (not retired): the handler may have rebuilt
                    # the block — force a re-fetch, like the interpreter.
                    pending_yield = True
                    check_runnable = True
                    cur_bi = -1
                continue
            if kind == CTL:
                # Control transfers and MOD never enter the kernel: no
                # fault, no yield, no runnable change — just count it
                # and re-fetch when control moved.
                if step[1](thread):
                    cur_bi = -1
                executed += 1
                continue
            # GEN: the interpreter body, verbatim, for one instruction.
            # hooks[ii] and instr.mem are read live — AikidoSD swaps the
            # hook and patches the displacement in place at runtime.
            instr = cached.instrs[ii]
            hook = cached.hooks[ii]
            try:
                if hook is not None:
                    mem = instr.mem
                    if mem is not None:
                        if mem.base is None:
                            ea = mem.disp
                        else:
                            ea = (thread.regs[mem.base] + mem.disp) & _MASK64
                    else:
                        ea = None
                    override = hook(thread, instr, ea)
                    res = execute(instr, thread, ea_override=override)
                    stats.instrumented_execs += 1
                else:
                    res = execute(instr, thread)
            except PageFault as fault:
                kernel.repair_fault(thread, fault)
                check_runnable = True
                cur_bi = -1
                continue
            counter.instr_cycles += step[1]
            executed += 1
            stats.instructions += 1
            if step[2]:
                stats.memory_refs += 1
            if res is None:
                pc[1] = ii + 1
            else:
                if not self._apply_result(thread, pc, ii, res):
                    return "exited" if thread.exited else "blocked"
                cur_bi = -1
            if kernel.consume_yield():
                return "yield"
            pending_yield = False
        return "quantum"

    # ------------------------------------------------------------------
    # master signal handler (paper §3.4)
    # ------------------------------------------------------------------
    def _master_signal_handler(self, thread, info) -> HandlerResult:
        if self.fault_router is not None:
            result = self.fault_router(thread, info)
            if result is not None:
                return result
        # Not an Aikido fault: the application really faulted. DynamoRIO
        # would deliver the app's own handler; our workloads register
        # none, so it is fatal.
        return HandlerResult.FATAL
