"""The DBR execution engine.

An :class:`~repro.guestos.driver.ExecutionDriver` that runs application
code out of the code cache, executing instrumentation hooks inline, and
hosting the master SIGSEGV handler that routes Aikido faults to the
sharing detector (paper §3.4).

Running under the engine costs: one block build per cold block, one
dispatch charge per block entry (link stubs / IBL lookups, amortized), and
whatever the attached hooks charge. This models DynamoRIO's "near native
once warm" profile — both the FastTrack baseline and Aikido pay it.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro import costs
from repro.dbr.codecache import CodeCache
from repro.dbr.tool import Tool
from repro.guestos.driver import ExecutionDriver
from repro.guestos.signals import SIGSEGV, HandlerResult
from repro.machine.cpu import BASE_COST
from repro.machine.isa import MEMORY_OPCODES
from repro.machine.paging import PageFault

_MASK64 = 0xFFFFFFFFFFFFFFFF


class DBREngine(ExecutionDriver):
    """Code-cache execution with inline instrumentation hooks."""

    def __init__(self, kernel, *, trace_threshold: int = 50,
                 process=None):
        super().__init__(kernel)
        self.process = process if process is not None else kernel.process
        if self.process is None:
            raise RuntimeError("create the process before the engine")
        self.codecache = CodeCache(self.process.program, kernel.counter,
                                   trace_threshold=trace_threshold)
        self.tool: Optional[Tool] = None
        #: Installed by AikidoSD: callable(thread, SignalInfo) ->
        #: HandlerResult or None (None = not an Aikido fault).
        self.fault_router: Optional[Callable] = None
        self._cache_dirty = False
        #: Per-instruction residency overhead of the installed stack;
        #: plain DynamoRIO by default, raised by AikidoSD on install.
        self.overhead_per_instr = costs.DBR_BASE_PER_INSTR
        #: Chaos injector, attached by ChaosInjector.attach (None = off).
        self.chaos = None
        #: Observability tracer, attached by AikidoSystem (None = off).
        self.tracer = None
        kernel.set_driver(self, self.process)

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    def attach_tool(self, tool: Tool) -> None:
        """Install the analysis tool (block callbacks + sync events)."""
        self.tool = tool
        tool.attach(self)
        self.codecache.build_callbacks.append(tool.instrument_block)
        self.kernel.add_sync_listener(tool.on_sync_event)

    def register_master_signal_handler(self) -> None:
        """Take over SIGSEGV for the process (DynamoRIO does this)."""
        self.process.signal_handlers[SIGSEGV] = self._master_signal_handler

    def invalidate_instruction(self, uid: int) -> int:
        """Flush cached blocks containing the instruction (re-JIT)."""
        flushed = self.codecache.invalidate_blocks_of_instruction(uid)
        if flushed:
            self._cache_dirty = True
        if self.tracer is not None:
            self.tracer.instant("rejit", "dbr", uid=uid, flushed=flushed)
        return flushed

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, thread, budget: int) -> str:
        kernel = self.kernel
        execute = self.cpu.execute
        counter = self.counter
        stats = self.stats
        codecache = self.codecache
        chaos = self.chaos
        if chaos is not None and chaos.fires("codecache_flush",
                                             tid=thread.tid):
            # Recoverable by construction: every block rebuilds from the
            # program text with the same instrumentation on next entry.
            if codecache.invalidate_all():
                self._cache_dirty = True
            chaos.note_recovered("codecache_flush")
        pc = thread.pc
        executed = 0
        cur_bi = -1
        cached = None
        overhead = self.overhead_per_instr
        while executed < budget:
            if not thread.runnable:
                return "exited" if thread.exited else "blocked"
            bi = pc[0]
            if bi != cur_bi or cached is None or self._cache_dirty:
                self._cache_dirty = False
                cached = codecache.get(bi)
                cur_bi = bi
                counter.charge("dbr", costs.BLOCK_DISPATCH)
            ii = pc[1]
            if ii >= len(cached.instrs):
                pc[0] += 1
                pc[1] = 0
                cur_bi = -1
                continue
            instr = cached.instrs[ii]
            hook = cached.hooks[ii]
            try:
                if hook is not None:
                    mem = instr.mem
                    if mem is not None:
                        if mem.base is None:
                            ea = mem.disp
                        else:
                            ea = (thread.regs[mem.base] + mem.disp) & _MASK64
                    else:
                        ea = None
                    override = hook(thread, instr, ea)
                    res = execute(instr, thread, ea_override=override)
                    # Counted only on retire (a faulting attempt retries
                    # and must not be counted twice — Table 2 col 2 is a
                    # retired-execution count).
                    stats.instrumented_execs += 1
                else:
                    res = execute(instr, thread)
            except PageFault as fault:
                kernel.repair_fault(thread, fault)
                # The handler may have rebuilt this block: force re-fetch
                # so we execute the freshly instrumented copy.
                cur_bi = -1
                continue
            op = instr.op
            counter.instr_cycles += BASE_COST[op] + overhead
            executed += 1
            stats.instructions += 1
            if op in MEMORY_OPCODES:
                stats.memory_refs += 1
            if res is None:
                pc[1] = ii + 1
            else:
                if not self._apply_result(thread, pc, ii, res):
                    return "exited" if thread.exited else "blocked"
                cur_bi = -1  # control may have transferred
            if kernel.consume_yield():
                return "yield"
        return "quantum"

    # ------------------------------------------------------------------
    # master signal handler (paper §3.4)
    # ------------------------------------------------------------------
    def _master_signal_handler(self, thread, info) -> HandlerResult:
        if self.fault_router is not None:
            result = self.fault_router(thread, info)
            if result is not None:
                return result
        # Not an Aikido fault: the application really faulted. DynamoRIO
        # would deliver the app's own handler; our workloads register
        # none, so it is fatal.
        return HandlerResult.FATAL
