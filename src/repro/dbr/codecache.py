"""The basic-block code cache.

Mirrors the DynamoRIO design the paper relies on (§2.1): application code
executes from per-block copies, which tools can instrument at copy time;
deleting a cached block forces a rebuild on next execution, re-running the
instrumentation callbacks — that is the re-JIT AikidoSD uses to attach
tool instrumentation to an instruction that faulted on a shared page.

Hot blocks are promoted to *traces*: the flag feeds the cost model
(trace building is real work the engine must redo after a flush) and
marks the block eligible for the superblock tier, which stitches chains
of in-trace blocks into single generated functions
(:mod:`repro.dbr.superblock`). Every invalidation path resets trace
state and notifies ``invalidation_listeners`` so dependent superblocks
die with their members.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro import costs
from repro.machine.program import BasicBlock, Program


class CachedBlock:
    """A code-cache copy of one basic block.

    ``instrs`` are copies of the static instructions (tools may patch
    their operands); ``hooks`` is a parallel list with an instrumentation
    callable or None per instruction.
    """

    __slots__ = ("block_index", "instrs", "hooks", "executions", "in_trace",
                 "compiled")

    def __init__(self, block_index: int, source: BasicBlock):
        self.block_index = block_index
        self.instrs = [i.copy() for i in source.instructions]
        self.hooks: List[Optional[Callable]] = [None] * len(self.instrs)
        self.executions = 0
        self.in_trace = False
        #: Lazily attached :class:`~repro.dbr.blockcompiler.CompiledBlock`
        #: (None until the engine's compiled tier first enters the block).
        #: It shares this object's lifetime: every invalidation path pops
        #: the CachedBlock, taking the closure with it.
        self.compiled = None

    def set_hook(self, position: int, hook: Callable) -> None:
        self.hooks[position] = hook

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        hooked = sum(1 for h in self.hooks if h is not None)
        return (f"<CachedBlock #{self.block_index} x{len(self.instrs)} "
                f"hooked={hooked}>")


class CodeCache:
    """block index -> CachedBlock, with build/flush accounting."""

    def __init__(self, program: Program, counter=None,
                 trace_threshold: int = 50):
        self.program = program
        self.counter = counter
        self.trace_threshold = trace_threshold
        self._blocks: Dict[int, CachedBlock] = {}
        #: Callbacks run (in order) on every newly built block.
        self.build_callbacks: List[Callable[[CachedBlock], None]] = []
        self.builds = 0
        self.flushes = 0
        self.traces_built = 0
        #: Compiled-tier traffic: closures built by the engine and
        #: closures dropped by invalidation (observability only — never
        #: part of the tier-parity stats surface).
        self.closures_compiled = 0
        self.closures_dropped = 0
        #: Observability tracer, attached by AikidoSystem (None = off).
        self.tracer = None
        #: Called as ``listener(block_index, reason)`` whenever a cached
        #: block's contents stop being trustworthy — a flush pops it, or
        #: an elision retirement drops its closure. The engine registers
        #: one to drop superblocks containing the block.
        self.invalidation_listeners: List[Callable[[int, str], None]] = []

    def _notify_invalidated(self, block_index: int, reason: str) -> None:
        for listener in self.invalidation_listeners:
            listener(block_index, reason)

    def _note_closure_dropped(self, cached: CachedBlock,
                              reason: str) -> None:
        if cached.compiled is None:
            return
        self.closures_dropped += 1
        if self.tracer is not None:
            self.tracer.instant("closure_invalidate", "dbr",
                                block=cached.block_index, reason=reason)

    def get(self, block_index: int) -> CachedBlock:
        """Fetch a cached block, building (and instrumenting) on miss."""
        cached = self._blocks.get(block_index)
        if cached is None:
            cached = self._build(block_index)
        cached.executions += 1
        if (not cached.in_trace
                and cached.executions >= self.trace_threshold):
            self._maybe_promote(cached)
        return cached

    def _maybe_promote(self, cached: CachedBlock) -> None:
        """Promote a hot block to trace membership.

        Charges the cost model's TRACE_BUILD (under the ``trace``
        attribution bucket) and emits a ``trace_build`` instant; the
        engine's superblock builder keys off ``in_trace`` to grow
        chains from promoted blocks.
        """
        cached.in_trace = True
        self.traces_built += 1
        if self.counter is not None:
            self.counter.charge("trace", costs.TRACE_BUILD)
        if self.tracer is not None:
            self.tracer.instant("trace_build", "dbr",
                                block=cached.block_index,
                                executions=cached.executions)

    def drop_closures_of_instruction(self, uid: int, reason: str) -> int:
        """Drop (only) the compiled closure of the block holding ``uid``.

        Host-side bookkeeping for the elision tripwire: unlike
        :meth:`invalidate`, the CachedBlock (and its hooks and trace
        state) survives, no simulated BLOCK_FLUSH is charged, and the
        engine recompiles at the block's next natural entry — so the
        simulated cost stream is identical whether or not a page-share
        ever retired an elided access. Returns closures dropped (0/1).
        """
        block_index, _ = self.program.instruction_locations[uid]
        cached = self._blocks.get(block_index)
        if cached is None or cached.compiled is None:
            return 0
        self._note_closure_dropped(cached, reason)
        cached.compiled = None
        # Trace state deliberately survives: no simulated flush happened,
        # so re-charging TRACE_BUILD here would fork the cost stream
        # between elided and non-elided runs. Superblocks over this
        # block still die (listener + identity guard see the closure
        # swap).
        self._notify_invalidated(block_index, reason)
        return 1

    def invalidate_blocks_of_instruction(self, uid: int) -> int:
        """Flush every cached block containing the static instruction.

        (In this program representation an instruction lives in exactly
        one block; DynamoRIO additionally flushes traces, modeled by the
        trace flag being rebuilt from scratch.) Returns the number of
        blocks flushed.
        """
        block_index, _ = self.program.instruction_locations[uid]
        return self.invalidate(block_index)

    def _reset_trace_state(self, cached: CachedBlock) -> None:
        # A flushed block's promotion is gone with it: the rebuild
        # starts cold and must re-earn (and re-charge) its trace
        # membership. Clearing the popped object's state also trips the
        # identity guards of any superblock still holding a reference.
        cached.compiled = None
        cached.in_trace = False
        cached.executions = 0

    def invalidate(self, block_index: int) -> int:
        cached = self._blocks.pop(block_index, None)
        if cached is None:
            return 0
        self._note_closure_dropped(cached, "flush")
        self._reset_trace_state(cached)
        self.flushes += 1
        if self.counter is not None:
            self.counter.charge("dbr", costs.BLOCK_FLUSH)
        if self.tracer is not None:
            self.tracer.instant("cache_flush", "dbr",
                                block=block_index, blocks=1)
        self._notify_invalidated(block_index, "flush")
        return 1

    def invalidate_all(self) -> int:
        """Flush the whole cache (chaos hook / full re-JIT).

        Every subsequent block entry rebuilds from program text through
        the same ``build_callbacks``, so instrumentation state is fully
        reconstructed. Returns the number of blocks flushed.
        """
        count = len(self._blocks)
        if count == 0:
            return 0
        dropped = list(self._blocks.values())
        for cached in dropped:
            self._note_closure_dropped(cached, "flush_all")
            self._reset_trace_state(cached)
        self._blocks.clear()
        self.flushes += count
        if self.counter is not None:
            self.counter.charge("dbr", costs.BLOCK_FLUSH * count)
        if self.tracer is not None:
            self.tracer.instant("cache_flush", "dbr", blocks=count)
        for cached in dropped:
            self._notify_invalidated(cached.block_index, "flush_all")
        return count

    def _build(self, block_index: int) -> CachedBlock:
        source = self.program.block_at(block_index)
        cached = CachedBlock(block_index, source)
        tracer = self.tracer
        if tracer is not None:
            with tracer.span("block_build", "dbr", block=block_index,
                             instrs=len(cached.instrs)):
                for callback in self.build_callbacks:
                    callback(cached)
        else:
            for callback in self.build_callbacks:
                callback(cached)
        self._blocks[block_index] = cached
        self.builds += 1
        if self.counter is not None:
            self.counter.charge("dbr", costs.BLOCK_BUILD)
        return cached

    def __contains__(self, block_index: int) -> bool:
        return block_index in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)
