"""The DBR tool API.

A tool is the analysis plugged into the engine — the paper's "user
specified instrumentation tool". Tools see two things:

* **block-build callbacks**: :meth:`Tool.instrument_block` runs whenever a
  basic block is (re)copied into the code cache; the tool may attach
  per-instruction hooks or patch instruction operands on the cached copy;
* **synchronization events** from the guest kernel
  (:meth:`Tool.on_sync_event`), the equivalent of wrapping pthread
  functions.

Instrumentation hooks have the signature ``hook(thread, instr, app_ea)``
and may return a replacement effective address (AikidoSD returns mirror
addresses) or None to run the access unchanged.
"""

from __future__ import annotations

from repro.dbr.codecache import CachedBlock


class Tool:
    """Base class for dynamic analyses run under the DBR engine."""

    name = "tool"

    def __init__(self):
        self.engine = None

    def attach(self, engine) -> None:
        """Called by the engine when the tool is installed."""
        self.engine = engine

    def instrument_block(self, cached: CachedBlock) -> None:
        """Attach hooks / patch operands on a freshly built block."""

    def on_sync_event(self, event) -> None:
        """Receive a kernel synchronization event."""

    def on_run_end(self) -> None:
        """Called after the workload finishes (flush reports, etc.)."""
