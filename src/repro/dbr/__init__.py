"""A DynamoRIO-like dynamic binary rewriting engine.

Executes guest programs through a basic-block **code cache**: blocks are
copied in on first execution, tools get a callback to attach
instrumentation (or patch operands — AikidoSD rewrites direct effective
addresses this way), and blocks can be flushed and re-JITed, which is how
AikidoSD upgrades an instruction to instrumented after its first fault on
a shared page.

The engine also owns the **master signal handler** (paper §3.4): it
registers itself for SIGSEGV, asks AikidoLib whether a delivered fault is
Aikido-initiated, and routes it to the sharing detector; non-Aikido faults
are fatal to the application, as they would be natively.
"""

from repro.dbr.codecache import CachedBlock, CodeCache
from repro.dbr.tool import Tool
from repro.dbr.engine import DBREngine

__all__ = ["CachedBlock", "CodeCache", "DBREngine", "Tool"]
