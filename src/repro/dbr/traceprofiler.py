"""Trace profiler: hot block-successor edges for superblock selection.

DynamoRIO-style trace selection (NET — next-executing-tail) watches
which block *actually* executes after each hot block and stitches the
dominant chain into a trace. This module is the watching half: the
engine's compiled dispatch loop records an edge whenever one block
entry (at instruction 0) follows a *hot* block within the same
thread's quantum (it inlines :meth:`TraceProfiler.note_edge` into the
fetch path — a Python call per block transition is measurable at that
frequency — and skips cold sources, which could never anchor a chain
link anyway), and :mod:`repro.dbr.superblock` asks
:meth:`hot_successor` for the dominant outgoing edge when it grows a
chain.

Edges are observed per thread-execution-stream — the engine tracks the
previous block per ``run()`` call, so a quantum boundary, a fault
repair, a mid-block re-entry or a superblock exit all reset the chain
(no cross-thread or cross-quantum edges are ever recorded). Counts are
aggregated across threads: a chain is hot if the threads actually
follow it.

Everything here is host-side bookkeeping: recording an edge charges no
simulated cycles and touches no statistic, so the profiler cannot
perturb tier parity.
"""

from __future__ import annotations

from typing import Dict, Optional

#: An edge must have been taken this many times before it can anchor a
#: chain link (the head block itself is already past the code cache's
#: ``trace_threshold`` when a build is attempted).
EDGE_MIN = 16

#: ... and it must carry at least this fraction of the block's total
#: outgoing traffic, or the successor is not predictable enough to be
#: worth a branch-direction guard (numerator/denominator of 3/4).
DOMINANCE_NUM = 3
DOMINANCE_DEN = 4


class TraceProfiler:
    """Counts (source block -> next-executing block) edges."""

    __slots__ = ("_edges",)

    def __init__(self):
        #: source block index -> {successor block index -> count}
        self._edges: Dict[int, Dict[int, int]] = {}

    def note_edge(self, src: int, dst: int) -> None:
        """Record that ``dst`` entered (at instruction 0) right after
        ``src`` in the same thread's quantum."""
        per_src = self._edges.get(src)
        if per_src is None:
            per_src = self._edges[src] = {}
        per_src[dst] = per_src.get(dst, 0) + 1

    def hot_successor(self, src: int) -> Optional[int]:
        """The dominant successor of ``src``, or None.

        Returns the most-taken outgoing edge iff it has been taken at
        least ``EDGE_MIN`` times *and* accounts for at least 3/4 of the
        block's recorded outgoing traffic. Deterministic: ties resolve
        to the first-recorded successor (dict insertion order, which is
        itself deterministic under the seeded scheduler).
        """
        per_src = self._edges.get(src)
        if not per_src:
            return None
        best_dst, best_count = None, -1
        total = 0
        for dst, count in per_src.items():
            total += count
            if count > best_count:
                best_dst, best_count = dst, count
        if best_count < EDGE_MIN:
            return None
        if best_count * DOMINANCE_DEN < total * DOMINANCE_NUM:
            return None
        return best_dst

    def edge_count(self, src: int, dst: int) -> int:
        return self._edges.get(src, {}).get(dst, 0)

    def __len__(self) -> int:
        return sum(len(per_src) for per_src in self._edges.values())
