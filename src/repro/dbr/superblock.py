"""Superblock tier: hot block chains compiled into one function.

The compiled tier (:mod:`repro.dbr.blockcompiler`) still dispatches
block by block: every block entry pays a cache probe, a dispatch
charge, and one Python-level step dispatch per fused unit. This module
is the trace half of the third execution tier — it stitches a *chain*
of already-compiled hot blocks (selected by
:class:`~repro.dbr.traceprofiler.TraceProfiler`) into one
exec()-generated straight-line function, the moral equivalent of a
DynamoRIO trace:

* **Straight-line body.** Every ALU instruction becomes one Python
  statement (same rendering as the block compiler's fused segments),
  every unhooked memory access an inline guarded load/store, every
  chain-internal control transfer disappears into fallthrough.
* **Guard-protected side exits.** The body is only valid while its
  assumptions hold, and each assumption is a guard: a *branch-direction
  guard* where the chain predicts a conditional branch, a *TLB guard*
  where a fast-map probe may miss, a *divisor guard* before MOD, an
  *empty-stack guard* before RET, and per-member *identity guards* in
  the prologue (``member.compiled is`` the baked closure) that
  subsume hook-set and elision-plan staleness — any hook addition or
  elision retirement drops or replaces the member's closure, changing
  identity. A failing guard books the *exact* accounting of the
  already-retired prefix and side-exits: either parked on the failing
  position for the engine to resume through the member's ordinary step
  list (``EXIT_RESUME``), or with the deviating branch retired and the
  pc pointing at the actual successor (``EXIT_REFETCH``).
* **Hoisted checks.** TLB fast-map probes are deduplicated across the
  body: a page probed once (a literal-address page, or the same
  base-register+displacement while the base register is unmodified) is
  reused by every later access to it, and a writable-map hit stands in
  for later read probes — so translation checks run once per superblock
  entry instead of once per instruction. ``--static-elide``-approved
  accesses keep their elision exactly as the block compiler granted it
  (the plan's uids, minus retirements, frozen at build time; a later
  retirement invalidates the superblock through the code cache's
  invalidation listeners).
* **Deferred exact accounting.** Nothing inside the body can observe
  simulated state mid-flight — members are hook-free and kernel-free,
  so there is no fault repair, no tick, no yield point between the
  entry and the exit. Every counter the reference tier bumps
  per-instruction (dispatch charges, instruction cycles, instruction
  and memory-ref counts, TLB hit bookkeeping) is therefore pre-summed
  at compile time and applied as constants at each exit site,
  bit-identical to the interpreter by the same argument that justifies
  the block compiler's fused segments.

The parity contract is the same as the compiled tier's: bit-identical
simulated statistics, race reports, chaos replay logs and cycle
attribution versus the interpreter, enforced by
``tests/dbr/test_compiled_parity.py``, the bench's three-way
instruction/cycle cross-check and the scengen oracle's
``tier_parity_*_superblock`` checks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro import costs
from repro.dbr.blockcompiler import (
    _MASK64,
    _PAGE_MASK,
    _seg_statement,
    SEG_OPCODES,
    STITCH_TAIL_OPCODES,
)
from repro.machine.cpu import BASE_COST
from repro.machine.isa import MEMORY_OPCODES, Opcode
from repro.machine.paging import PAGE_SHIFT

#: Exit protocol: ``fn(thread)`` returns the retired instruction count
#: and leaves ``(resume_member, code)`` in the superblock's exit cell.
EXIT_COMPLETE = 0   #: ran to the end; pc set to the successor
EXIT_RESUME = 1     #: guard miss: pc parked on the failing position,
#: exit[0] = member index — the engine resumes through that member's
#: step list without re-charging its dispatch
EXIT_REFETCH = 2    #: branch deviated: the branch retired, pc set to
#: the actual target — the engine re-fetches normally
EXIT_STALE = 3      #: a prologue identity guard failed: nothing was
#: booked; the engine drops the superblock and falls back

#: Chain limits: enough to swallow a hot inner loop body (unrolled a
#: few times over), small enough that a single guard miss does not
#: discard much straight-line work and that a whole chain still fits a
#: default scheduling quantum. The member cap is generous because
#: unrolled loop copies share their identity guards; the instruction
#: cap is what bounds the body.
MAX_MEMBERS = 16
MAX_INSTRUCTIONS = 96

#: ... and a floor: a chain below this many instructions cannot pay
#: for its own entry sequence (cache probe, prologue guards, call and
#: exit decode), so the build is deferred like a too-short chain —
#: the successors may still be warming toward trace membership.
MIN_INSTRUCTIONS = 12

#: A failed (soft) build attempt is retried after the head gains this
#: many further executions — successors may become hot in the meantime.
RETRY_EXECUTIONS = 64

#: Guard-thrash eviction: once a superblock has this many entries, if
#: half or more side-exited the prediction is wrong more than it is
#: right — drop it and ban the head until an invalidation resets it.
THRASH_MIN_ENTRIES = 32

_BRANCH_OPCODES = frozenset((Opcode.BZ, Opcode.BNZ, Opcode.BLT,
                             Opcode.BGE))

_CONTROL_TAIL = STITCH_TAIL_OPCODES


def _taken_cond(instr) -> str:
    op = instr.op
    if op is Opcode.BZ:
        return f"regs[{instr.rs1}] == 0"
    if op is Opcode.BNZ:
        return f"regs[{instr.rs1}] != 0"
    if op is Opcode.BLT:
        return f"regs[{instr.rs1}] < regs[{instr.rs2}]"
    return f"regs[{instr.rs1}] >= regs[{instr.rs2}]"  # BGE


def _not_taken_cond(instr) -> str:
    op = instr.op
    if op is Opcode.BZ:
        return f"regs[{instr.rs1}] != 0"
    if op is Opcode.BNZ:
        return f"regs[{instr.rs1}] == 0"
    if op is Opcode.BLT:
        return f"regs[{instr.rs1}] >= regs[{instr.rs2}]"
    return f"regs[{instr.rs1}] < regs[{instr.rs2}]"  # BGE


class SuperBlock:
    """One compiled trace: a chain of cached blocks and its body."""

    __slots__ = ("head", "members", "fn", "count", "overhead", "exit",
                 "entries", "side_exits", "elided_uids")

    def __init__(self, head: int, members: Tuple, fn, count: int,
                 overhead: int, exit_cell: List[int],
                 elided_uids: frozenset):
        self.head = head
        #: The chain's CachedBlocks, in order. The engine resumes
        #: ``members[exit[0]]`` on an EXIT_RESUME side exit.
        self.members = members
        self.fn = fn
        #: Total instructions when the body runs to completion — the
        #: engine only enters when the quantum budget covers all of it.
        self.count = count
        self.overhead = overhead
        self.exit = exit_cell
        self.entries = 0
        self.side_exits = 0
        self.elided_uids = elided_uids

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        chain = "->".join(str(m.block_index) for m in self.members)
        return f"<SuperBlock {chain} x{self.count}>"


class SuperBlockCache:
    """head block index -> SuperBlock, with a member reverse index.

    Every code-cache invalidation path notifies the engine (through
    ``CodeCache.invalidation_listeners``), which calls
    :meth:`drop_blocks_of` — a superblock dies when *any* of its
    members is flushed, re-JITted or loses its closure to an elision
    retirement.
    """

    def __init__(self):
        self.by_head: Dict[int, SuperBlock] = {}
        self._member_index: Dict[int, Set[int]] = {}
        self.built = 0
        self.dropped = 0
        self.entries = 0
        self.completions = 0
        self.side_exits = 0
        self.instructions = 0
        #: Heads proven unstitchable (or guard-thrashing): no further
        #: build attempts until the block itself is invalidated.
        self.banned: Set[int] = set()
        #: Soft backoff: head -> executions count before the next
        #: build attempt.
        self.attempt_after: Dict[int, int] = {}

    def install(self, sb: SuperBlock) -> None:
        self.by_head[sb.head] = sb
        for member in sb.members:
            self._member_index.setdefault(member.block_index,
                                          set()).add(sb.head)
        self.built += 1
        self.attempt_after.pop(sb.head, None)

    def drop(self, sb: SuperBlock, reason: str) -> int:
        if self.by_head.get(sb.head) is not sb:
            return 0
        del self.by_head[sb.head]
        for member in sb.members:
            heads = self._member_index.get(member.block_index)
            if heads is not None:
                heads.discard(sb.head)
                if not heads:
                    del self._member_index[member.block_index]
        self.dropped += 1
        return 1

    def drop_blocks_of(self, block_index: int, reason: str) -> int:
        """Drop every superblock whose chain contains ``block_index``."""
        heads = self._member_index.get(block_index)
        if not heads:
            return 0
        count = 0
        for head in sorted(heads):
            sb = self.by_head.get(head)
            if sb is not None:
                count += self.drop(sb, reason)
        return count

    def unban(self, block_index: int) -> None:
        """An invalidation resets the head's build eligibility (the
        rebuilt block may have different hooks, hence stitchability)."""
        self.banned.discard(block_index)
        self.attempt_after.pop(block_index, None)

    def __len__(self) -> int:
        return len(self.by_head)


def plan_chain(head_index: int, engine) -> List:
    """Select the chain of CachedBlocks a superblock at ``head`` covers.

    Follows static successors (fallthrough, JMP, CALL-into-callee) and
    the profiler's dominant direction at conditional branches, stopping
    at: a back-edge into the chain's interior, a block that is cold /
    unbuilt / unstitchable, a RET (dynamic target), an unpredictable
    branch, or the size caps. A back-edge to the *head* instead unrolls
    the loop: the whole body is replicated while it fits the caps, so
    each superblock entry retires several iterations and the completion
    lands back on the head for immediate re-entry. Members are
    (re)compiled here if their closure is missing or stale, so the
    build itself never runs inside the dispatch fast path.
    """
    codecache = engine.codecache
    profiler = engine.traceprofiler
    program = codecache.program
    overhead = engine.overhead_per_instr
    members: List = []
    seen: Set[int] = set()
    total = 0
    bi = head_index
    while len(members) < MAX_MEMBERS:
        if bi == head_index and members:
            # Whole-iteration unroll: replicate the loop body while it
            # fits. Copies reuse the originals' identity guards, so
            # only the instruction cap meaningfully bounds this.
            iteration = list(members)
            iteration_total = total
            while (len(members) + len(iteration) <= MAX_MEMBERS
                   and total + iteration_total <= MAX_INSTRUCTIONS):
                members.extend(iteration)
                total += iteration_total
            break
        if bi in seen:
            break  # back-edge into the chain's interior: close here
        cached = codecache._blocks.get(bi)
        if cached is None or not cached.in_trace:
            break  # cold (or unbuilt) successor: the chain ends
        compiled = cached.compiled
        if compiled is None or compiled.overhead != overhead:
            compiled = engine._compile_block(cached, overhead)
        if not compiled.stitchable:
            break
        if total + len(cached.instrs) > MAX_INSTRUCTIONS:
            break
        members.append(cached)
        seen.add(bi)
        total += len(cached.instrs)
        last = cached.instrs[-1]
        op = last.op
        if op is Opcode.RET:
            break  # dynamic successor — always a chain terminal
        if op is Opcode.JMP or op is Opcode.CALL:
            bi = program.label_index(last.label)
            continue
        if op in _BRANCH_OPCODES:
            taken = program.label_index(last.label)
            fall = cached.block_index + 1
            if taken == fall:
                bi = taken  # degenerate branch: both ways agree
                continue
            nxt = profiler.hot_successor(cached.block_index)
            if nxt is None or (nxt != taken and nxt != fall):
                # No dominant direction on record — but an arm that
                # closes the loop back to the head is NET's classic
                # trace shape, and the head being hot is itself the
                # evidence the back-edge is taken: predict it. (A bad
                # call costs side exits and the thrash eviction ban.)
                if taken == head_index:
                    nxt = taken
                elif fall == head_index:
                    nxt = fall
                else:
                    break
            bi = nxt
            continue
        bi = cached.block_index + 1  # plain fallthrough
    return members


def compile_superblock(members: List, engine) -> SuperBlock:
    """exec()-generate the straight-line body for one chain.

    See the module docstring for the semantics. The generated
    ``fn(thread) -> retired`` reports its exit through the superblock's
    shared exit cell ``[resume_member_index, exit_code]``.
    """
    program = engine.codecache.program
    overhead = engine.overhead_per_instr
    plan = engine.elision_plan
    retired_uids = engine._elision_retired

    def _is_elided(instr) -> bool:
        return (plan is not None and instr.op in MEMORY_OPCODES
                and instr.uid in plan
                and instr.uid not in retired_uids)

    has_elision = any(_is_elided(i) for m in members for i in m.instrs)
    elided_uids = frozenset(i.uid for m in members for i in m.instrs
                            if _is_elided(i))

    exit_cell = [0, EXIT_COMPLETE]
    # The body accesses physical memory through the word store
    # directly: a fast-map hit guarantees a mapped, backed page (the
    # TLB pops fast entries on every permission change and flush), and
    # alignment is either a compile-time fact (literal addresses) or
    # folded into the page guard (register-relative ones) — so the
    # checks ``read_word``/``write_word`` re-run per call are already
    # subsumed, and the per-access Python call frame disappears.
    words = engine.cpu.memory._words
    glb = {
        "counter": engine.counter,
        "stats": engine.stats,
        "_mw": words,
        "_mw_get": words.get,
        "_ec": engine._elision_cell,
        "_exit": exit_cell,
    }

    lines: List[str] = ["def _sb(thread):"]
    emit = lines.append

    # Prologue identity guards: the baked closure objects stand in for
    # "the member's hook set and elision plan are unchanged" — every
    # path that changes either replaces or drops the closure. Nothing
    # is booked on a stale exit; the engine drops this superblock and
    # re-dispatches through the ordinary path. Unrolled loop copies
    # share one guard (and one variable) per distinct block.
    member_var: Dict[int, str] = {}
    for member in members:
        key = id(member)
        if key in member_var:
            continue
        mvar = f"m{len(member_var)}"
        cvar = f"c{len(member_var)}"
        member_var[key] = mvar
        glb[mvar] = member
        glb[cvar] = member.compiled
        emit(f"    if {mvar}.compiled is not {cvar}:")
        emit(f"        _exit[1] = {EXIT_STALE}")
        emit("        return 0")
    emit("    regs = thread.regs")
    uses_ro = any(i.op is Opcode.LOAD for m in members for i in m.instrs)
    uses_rw = any(i.op in (Opcode.STORE, Opcode.ATOMIC_ADD)
                  for m in members for i in m.instrs)
    if uses_ro or uses_rw:
        emit("    tlb = thread.tlb")
        if uses_ro:
            emit("    fr = tlb.fast_ro")
        if uses_rw:
            emit("    fw = tlb.fast_rw")

    # --- generation-time accounting state -----------------------------
    # Everything the reference tier books per instruction is summed
    # here and emitted as constants at each exit site.
    cyc = 0       # retired instruction cycles so far
    icount = 0    # retired instructions so far
    mems = 0      # retired fast-path memory refs so far
    elided = 0    # retired --static-elide-approved accesses so far
    state = {"vno": 0}
    # TLB probe hoisting: page-base vars established earlier in the
    # body, reusable while their inputs are unchanged. Literal pages
    # key on the page number (never killed); register-relative pages
    # key on (base_reg, disp) and die when the base register is
    # rewritten. A fast_rw hit satisfies later fast_ro needs (the
    # writable map is a subset of the readable one), not vice versa.
    reuse_const: Dict[int, Dict[str, str]] = {}
    reuse_reg: Dict[Tuple[int, int], Tuple[str, Dict[str, str]]] = {}

    def fresh(prefix: str) -> str:
        state["vno"] += 1
        return f"{prefix}{state['vno']}"

    def kill(reg: Optional[int]) -> None:
        if reg is None:
            return
        for key in [k for k in reuse_reg if k[0] == reg]:
            del reuse_reg[key]

    def account(ind: str, dispatches: int, cyc_: int, icount_: int,
                mems_: int, elided_: int) -> None:
        emit(f"{ind}counter.charge('dbr', "
             f"{dispatches * costs.BLOCK_DISPATCH})")
        if cyc_:
            emit(f"{ind}counter.instr_cycles += {cyc_}")
        if icount_:
            emit(f"{ind}stats.instructions += {icount_}")
        if mems_:
            emit(f"{ind}stats.memory_refs += {mems_}")
            emit(f"{ind}tlb.hits += {mems_}")
            emit(f"{ind}tlb.fast_hits += {mems_}")
        if elided_:
            emit(f"{ind}_ec[0] += {elided_}")
        if has_elision and icount_:
            emit(f"{ind}_ec[1] += {icount_}")

    def park(ind: str, member_idx: int, bi: int, pos: int,
             dispatches: int, cyc_: int, icount_: int) -> None:
        """Exit with pc parked at (bi, pos) inside member ``member_idx``
        and the given accounting booked; the engine resumes through the
        member's ordinary step list without re-charging its dispatch."""
        account(ind, dispatches, cyc_, icount_, mems, elided)
        emit(f"{ind}thread.pc[0] = {bi}")
        emit(f"{ind}thread.pc[1] = {pos}")
        emit(f"{ind}_exit[0] = {member_idx}")
        emit(f"{ind}_exit[1] = {EXIT_RESUME}")
        emit(f"{ind}return {icount_}")

    def bail_resume(member_idx: int, bi: int, pos: int) -> None:
        """Side exit inside an ``if`` guard: book the retired prefix,
        park pc on the failing position, hand the member back."""
        park("        ", member_idx, bi, pos, member_idx + 1, cyc, icount)

    def bail_refetch(member_idx: int, target_bi: int, cyc_: int,
                     icount_: int) -> None:
        """Branch-deviation exit inside an ``if`` guard: the branch
        itself retired (charge included), pc points at the real
        successor, the engine re-fetches and re-charges there."""
        account("        ", member_idx + 1, cyc_, icount_, mems, elided)
        emit(f"        thread.pc[0] = {target_bi}")
        emit("        thread.pc[1] = 0")
        emit(f"        _exit[0] = {member_idx}")
        emit(f"        _exit[1] = {EXIT_REFETCH}")
        emit(f"        return {icount_}")

    def complete(ind: str, pc0, pc1) -> None:
        account(ind, len(members), cyc, icount, mems, elided)
        emit(f"{ind}thread.pc[0] = {pc0}")
        emit(f"{ind}thread.pc[1] = {pc1}")
        emit(f"{ind}_exit[1] = {EXIT_COMPLETE}")
        emit(f"{ind}return {icount}")

    def emit_mem(instr, member_idx: int, bi: int, pos: int) -> None:
        nonlocal cyc, icount, mems, elided
        op = instr.op
        mem = instr.mem
        need_rw = op is not Opcode.LOAD
        mode = "rw" if need_rw else "ro"
        fmap = "fw" if need_rw else "fr"
        if mem.base is None:
            # chain_stitchable rejected misaligned literal addresses,
            # so the inline word-store access below is exact.
            page = mem.disp >> PAGE_SHIFT
            off = mem.disp & _PAGE_MASK
            modes = reuse_const.setdefault(page, {})
            pb = modes.get("rw") or (None if need_rw
                                     else modes.get("ro"))
            if pb is None:
                pb = fresh("pb")
                emit(f"    {pb} = {fmap}.get({page})")
                emit(f"    if {pb} is None:")
                bail_resume(member_idx, bi, pos)
                modes[mode] = pb
            paddr = f"({pb} | {off})" if off else pb
        else:
            key = (mem.base, mem.disp)
            rec = reuse_reg.get(key)
            if rec is None:
                ea = fresh("ea")
                emit(f"    {ea} = (regs[{mem.base}] + {mem.disp})"
                     f" & {_MASK64}")
                rec = (ea, {})
                reuse_reg[key] = rec
            ea, modes = rec
            pb = modes.get("rw") or (None if need_rw
                                     else modes.get("ro"))
            if pb is None:
                pb = fresh("pb")
                emit(f"    {pb} = {fmap}.get({ea} >> {PAGE_SHIFT})")
                if not modes:
                    # First probe of this effective address also vets
                    # alignment: a misaligned access must reach the
                    # member's ordinary step, whose ``read_word`` call
                    # raises with exactly the reference's accounting.
                    emit(f"    if {pb} is None or {ea} & 7:")
                else:
                    emit(f"    if {pb} is None:")
                bail_resume(member_idx, bi, pos)
                modes[mode] = pb
            paddr = f"({pb} | ({ea} & {_PAGE_MASK}))"
        if op is Opcode.LOAD:
            emit(f"    regs[{instr.rd}] = _mw_get(({paddr}) >> 3, 0)")
            kill(instr.rd)
        elif op is Opcode.STORE:
            emit(f"    _mw[({paddr}) >> 3] = regs[{instr.rs1}]"
                 f" & {_MASK64}")
        else:  # ATOMIC_ADD
            wi = fresh("wi")
            old = fresh("old")
            emit(f"    {wi} = ({paddr}) >> 3")
            emit(f"    {old} = _mw_get({wi}, 0)")
            emit(f"    _mw[{wi}] = ({old} + regs[{instr.rs1}])"
                 f" & {_MASK64}")
            if instr.rd is not None:
                emit(f"    regs[{instr.rd}] = {old}")
                kill(instr.rd)
        cyc += BASE_COST[op] + overhead
        icount += 1
        mems += 1
        if _is_elided(instr):
            elided += 1

    total_members = len(members)
    for idx, member in enumerate(members):
        bi = member.block_index
        instrs = member.instrs
        n = len(instrs)
        # The member's fetch bookkeeping: the reference tier's
        # codecache.get() bumps the execution count on every entry
        # (dispatch cycles are summed into the exit constants; the
        # promotion check is provably dead here — every member is
        # already in_trace, a build precondition).
        emit(f"    {member_var[id(member)]}.executions += 1")
        for pos, instr in enumerate(instrs):
            op = instr.op
            if op in SEG_OPCODES:
                stmt = _seg_statement(instr)
                if stmt is not None:
                    emit(f"    {stmt}")
                    kill(instr.rd)
                cyc += BASE_COST[op] + overhead
                icount += 1
                continue
            if op is Opcode.MOD:
                rs2 = instr.rs2
                if rs2 is not None:
                    # The zero check raises *before* charging in the
                    # reference — bail with MOD unretired; the base
                    # CTL step re-checks and raises identically.
                    emit(f"    if regs[{rs2}] == 0:")
                    bail_resume(idx, bi, pos)
                    rhs = f"regs[{rs2}]"
                else:
                    rhs = repr(instr.imm)  # imm == 0 is unstitchable
                emit(f"    regs[{instr.rd}] = regs[{instr.rs1}] % {rhs}")
                kill(instr.rd)
                cyc += BASE_COST[op] + overhead
                icount += 1
                continue
            if op in MEMORY_OPCODES:
                emit_mem(instr, idx, bi, pos)
                continue
            # Control tail (stitchability guarantees pos == n - 1).
            is_terminal = idx == total_members - 1
            charge = BASE_COST[op] + overhead
            if op is Opcode.JMP:
                target = program.label_index(instr.label)
                cyc += charge
                icount += 1
                if is_terminal:
                    complete("    ", target, 0)
                continue
            if op is Opcode.CALL:
                target = program.label_index(instr.label)
                cyc += charge
                icount += 1
                emit(f"    thread.call_stack.append(({bi}, {n}))")
                if is_terminal:
                    complete("    ", target, 0)
                continue
            if op is Opcode.RET:
                # RET charges before raising on an empty stack; the
                # bail leaves it unretired so the base step books the
                # charge and raises exactly like the reference.
                emit("    if not thread.call_stack:")
                bail_resume(idx, bi, pos)
                cyc += charge
                icount += 1
                ra = fresh("ra")
                emit(f"    {ra} = thread.call_stack.pop()")
                complete("    ", f"{ra}[0]", f"{ra}[1]")
                continue
            # Conditional branch. A not-taken branch in the reference
            # does NOT transfer control: it parks pc just past the
            # block end and the engine advances on its next loop
            # iteration — an intermediate pc state a quantum boundary
            # can observe (the next quantum then re-fetches this block
            # before advancing, charging one extra dispatch). Every
            # not-taken outcome below therefore parks at (bi, n) with
            # the branch retired instead of jumping to (fall, 0).
            target = program.label_index(instr.label)
            fall = bi + 1
            if is_terminal:
                emit(f"    if {_taken_cond(instr)}:")
                cyc += charge
                icount += 1
                complete("        ", target, 0)
                park("    ", idx, bi, n, total_members, cyc, icount)
            else:
                next_bi = members[idx + 1].block_index
                if target == fall:
                    # Degenerate: both directions reach the next
                    # member, but taken and not-taken still park pc
                    # differently; the body predicts taken and lets a
                    # not-taken side-exit reproduce the fall-off state.
                    next_bi = target
                if next_bi == target:
                    emit(f"    if {_not_taken_cond(instr)}:")
                    park("        ", idx, bi, n, idx + 1,
                         cyc + charge, icount + 1)
                else:
                    emit(f"    if {_taken_cond(instr)}:")
                    bail_refetch(idx, target, cyc + charge, icount + 1)
                cyc += charge
                icount += 1
        last_op = instrs[-1].op
        if last_op not in _CONTROL_TAIL:
            # Plain fallthrough member: the reference parks pc past the
            # block end and advances on its next loop iteration — same
            # quantum-boundary-visible state as a not-taken branch, so
            # the terminal member parks rather than jumping to
            # (bi + 1, 0) directly.
            if idx == total_members - 1:
                park("    ", idx, bi, n, total_members, cyc, icount)
            # else: the next member is bi + 1; execution simply
            # continues into its statements.

    count = sum(len(m.instrs) for m in members)
    source = "\n".join(lines)
    namespace: dict = {}
    code = compile(source, f"<superblock:{members[0].block_index}>",
                   "exec")
    exec(code, glb, namespace)
    return SuperBlock(members[0].block_index, tuple(members),
                      namespace["_sb"], count, overhead, exit_cell,
                      elided_uids)
