"""blackscholes: embarrassingly parallel option pricing.

Character (matching the real benchmark): every thread reads a slice of a
shared read-only option-parameter array and writes results to its own
partition; no locks, no barriers, fork/join only. Sharing comes solely
from the read-only input pages being touched by every thread — low
(paper: ~6.9 % of accesses to shared pages).
"""

from __future__ import annotations

from repro.machine.asm import ProgramBuilder
from repro.machine.paging import PAGE_SIZE
from repro.machine.program import Program
from repro.workloads.base import (
    WORDS_PER_PAGE,
    alu_pad,
    partition_base,
    per_thread_iters,
    scaled,
    seed_lcg,
    spawn_workers,
    stride_accesses,
)

#: Pages of the shared read-only input (option parameters).
INPUT_PAGES = 4
#: Pages of per-thread output/scratch partition.
OUT_PAGES_PER_THREAD = 4


def build(threads: int = 8, scale: float = 1.0) -> Program:
    iters = per_thread_iters(880, threads, scale)
    b = ProgramBuilder("blackscholes")
    input_base = b.segment("options", INPUT_PAGES * PAGE_SIZE)
    out_base = b.segment("results",
                         threads * OUT_PAGES_PER_THREAD * PAGE_SIZE)
    b.label("main")
    # Main initializes a few option records (stays private until workers
    # read them, then the input pages become read-shared).
    b.li(4, input_base)
    b.li(5, 100)
    for i in range(4):
        b.store(5, base=4, disp=8 * i)
    spawn_workers(b, threads)
    b.halt()

    b.label("worker")
    seed_lcg(b)
    b.li(4, input_base)
    partition_base(b, 6, out_base, OUT_PAGES_PER_THREAD)
    with b.loop(counter=2, count=iters):
        # One read of shared option parameters...
        stride_accesses(b, 4, INPUT_PAGES * WORDS_PER_PAGE, "r")
        # ...then the Black-Scholes kernel: private compute and private
        # reads/writes of intermediate and final results.
        alu_pad(b, 6)
        stride_accesses(b, 6, OUT_PAGES_PER_THREAD * WORDS_PER_PAGE,
                        "rrwrrwrw" "rrwrrw")
    b.halt()
    return b.build()
