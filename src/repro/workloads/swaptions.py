"""swaptions: Monte-Carlo HJM swaption pricing.

Character: task-parallel like blackscholes but with a larger shared
read-only term-structure input consulted more often per simulation step,
putting its sharing around 12 % (paper: ~11.9 %). Heavy private RNG and
path-scratch traffic, no locks.
"""

from __future__ import annotations

from repro.machine.asm import ProgramBuilder
from repro.machine.paging import PAGE_SIZE
from repro.machine.program import Program
from repro.workloads.base import (
    WORDS_PER_PAGE,
    alu_pad,
    partition_base,
    per_thread_iters,
    scaled,
    seed_lcg,
    spawn_workers,
    stride_accesses,
)

CURVE_PAGES = 4
PATH_PAGES_PER_THREAD = 4


def build(threads: int = 8, scale: float = 1.0) -> Program:
    iters = per_thread_iters(880, threads, scale)
    b = ProgramBuilder("swaptions")
    curve_base = b.segment("term-structure", CURVE_PAGES * PAGE_SIZE)
    path_base = b.segment("paths",
                          threads * PATH_PAGES_PER_THREAD * PAGE_SIZE)
    b.label("main")
    b.li(4, curve_base)
    b.li(5, 42)
    for i in range(4):
        b.store(5, base=4, disp=8 * i)
    spawn_workers(b, threads)
    b.halt()

    b.label("worker")
    seed_lcg(b)
    b.li(4, curve_base)
    partition_base(b, 6, path_base, PATH_PAGES_PER_THREAD)
    with b.loop(counter=2, count=iters):
        # Forward-rate lookups in the shared term structure.
        stride_accesses(b, 4, CURVE_PAGES * WORDS_PER_PAGE, "rr")
        # HJM path evolution: private path scratch, Monte-Carlo draws.
        alu_pad(b, 8)
        stride_accesses(b, 6, PATH_PAGES_PER_THREAD * WORDS_PER_PAGE,
                        "rwrwrrwrrwrwrw")
    b.halt()
    return b.build()
