"""Static and dynamic workload profiling.

Used by the calibration workflow (and exposed as ``aikido-repro
profile``-style tooling through ``scripts/profile_workload.py``) to
answer "what does this benchmark actually look like?": instruction mix,
memory fraction, synchronization density, footprint — the quantities the
cost model's slowdowns are a function of.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.harness.runner import run_aikido_fasttrack, run_native
from repro.machine.isa import MEMORY_OPCODES, SYNC_OPCODES, Opcode
from repro.machine.paging import PAGE_SIZE
from repro.machine.program import Program


@dataclass
class StaticProfile:
    """Counts derived from the program text alone."""

    blocks: int
    instructions: int
    memory_instructions: int
    direct_memory_instructions: int
    sync_instructions: int
    segment_bytes: int

    @property
    def static_memory_fraction(self) -> float:
        return self.memory_instructions / max(1, self.instructions)

    @property
    def footprint_pages(self) -> int:
        return (self.segment_bytes + PAGE_SIZE - 1) // PAGE_SIZE


@dataclass
class DynamicProfile:
    """Counts measured by running the program."""

    instructions: int
    memory_refs: int
    shared_accesses: int
    instrumented_execs: int
    segfaults: int
    lock_acquisitions: int
    native_cycles: int

    @property
    def memory_fraction(self) -> float:
        return self.memory_refs / max(1, self.instructions)

    @property
    def shared_fraction(self) -> float:
        return self.shared_accesses / max(1, self.memory_refs)

    @property
    def lock_density(self) -> float:
        """Lock acquisitions per thousand instructions."""
        return 1000 * self.lock_acquisitions / max(1, self.instructions)


def static_profile(program: Program) -> StaticProfile:
    memory = direct = sync = total = 0
    for instr in program.iter_instructions():
        total += 1
        if instr.op in MEMORY_OPCODES:
            memory += 1
            if instr.mem is not None and instr.mem.base is None:
                direct += 1
        elif instr.op in SYNC_OPCODES:
            sync += 1
    return StaticProfile(
        blocks=len(program.blocks),
        instructions=total,
        memory_instructions=memory,
        direct_memory_instructions=direct,
        sync_instructions=sync,
        segment_bytes=sum(s.size for s in program.segments),
    )


def dynamic_profile(program_factory, *, seed: int = 1, quantum: int = 150
                    ) -> DynamicProfile:
    """Run natively and under Aikido; merge the interesting counters.

    ``program_factory`` must build a fresh program per call (programs are
    single-use once loaded).
    """
    native = run_native(program_factory(), seed=seed, quantum=quantum)
    aikido = run_aikido_fasttrack(program_factory(), seed=seed,
                                  quantum=quantum)
    return DynamicProfile(
        instructions=aikido.run_stats["instructions"],
        memory_refs=aikido.memory_refs,
        shared_accesses=aikido.shared_accesses,
        instrumented_execs=aikido.instrumented_execs,
        segfaults=aikido.segfaults,
        lock_acquisitions=aikido.detector_profile.get("sync_ops", 0),
        native_cycles=native.cycles,
    )


def render_profile(name: str, static: StaticProfile,
                   dynamic: DynamicProfile) -> str:
    return "\n".join([
        f"=== {name} ===",
        f"static:  {static.instructions} instrs in {static.blocks} blocks"
        f" ({static.memory_instructions} memory,"
        f" {static.direct_memory_instructions} direct,"
        f" {static.sync_instructions} sync)",
        f"         footprint {static.footprint_pages} pages"
        f" ({static.segment_bytes >> 10} KiB)",
        f"dynamic: {dynamic.instructions} instrs,"
        f" mem fraction {dynamic.memory_fraction:.0%},"
        f" shared {dynamic.shared_fraction:.1%}",
        f"         {dynamic.segfaults} Aikido faults,"
        f" {dynamic.lock_acquisitions} sync events"
        f" ({dynamic.lock_density:.1f}/kinstr)",
    ])
