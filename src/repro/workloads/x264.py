"""x264: H.264 video encoding.

Character: frame-level pipeline parallelism — a thread encoding frame N
motion-searches into reference rows of frame N-1, owned by another thread,
so cross-thread reads are frequent (~29 % sharing in the paper). Progress
is rate-limited with per-frame locks.
"""

from __future__ import annotations

from repro.machine.asm import ProgramBuilder
from repro.machine.paging import PAGE_SIZE
from repro.machine.program import Program
from repro.workloads.base import (
    WORDS_PER_PAGE,
    alu_pad,
    every_n,
    rotating_partition_base,
    per_thread_iters,
    scaled,
    seed_lcg,
    spawn_workers,
    stride_accesses,
)

FRAME_PAGES_PER_THREAD = 8
PROGRESS_LOCK_BASE = 30
#: Double-buffered frame ring: new frames are allocated continuously, so
#: x264's fault count per memory access is the paper's highest (Table 2).
FRAME_RING = 2
RING_SHIFT = 2


def build(threads: int = 8, scale: float = 1.0) -> Program:
    iters = per_thread_iters(880, threads, scale)
    b = ProgramBuilder("x264")
    frames_base = b.segment(
        "frames", FRAME_RING * threads * FRAME_PAGES_PER_THREAD * PAGE_SIZE)
    b.label("main")
    spawn_workers(b, threads)
    b.halt()

    b.label("worker")
    seed_lcg(b)
    with b.loop(counter=2, count=iters):
        rotating_partition_base(b, 6, frames_base, FRAME_PAGES_PER_THREAD,
                                threads, FRAME_RING, counter_reg=2,
                                shift=RING_SHIFT)
        rotating_partition_base(b, 7, frames_base, FRAME_PAGES_PER_THREAD,
                                threads, FRAME_RING, counter_reg=2,
                                shift=RING_SHIFT, neighbor=True)
        # Motion search in the reference frame (another thread's rows):
        # the boundary page is routinely consulted. x264's progress
        # handshake is coarse, so these reads are the classic benign
        # racy-read the paper's §5.3 mentions.
        b.load(12, base=7, disp=0)
        b.load(12, base=7, disp=8)
        # Publish this frame's reconstructed-row progress word (the
        # handshake is a flag word per frame, read without locking).
        b.store(12, base=6, disp=0)
        alu_pad(b, 4)
        # Encode macroblocks into the interior of this thread's frame.
        b.add(13, 6, imm=PAGE_SIZE)
        stride_accesses(b, 13,
                        (FRAME_PAGES_PER_THREAD - 1) * WORDS_PER_PAGE,
                        "rwrwrrw")
        # Per-row progress handshake with the upstream frame.
        with every_n(b, counter_reg=2, mask=0x3):
            b.mod(9, 1, imm=4)
            b.add(9, 9, imm=PROGRESS_LOCK_BASE)
            b.lock(reg=9)
            b.unlock(reg=9)
    b.halt()
    return b.build()
