"""vips: image-processing pipeline.

Character: threads form a pipeline over image buffers — each stage reads
the boundary of the previous stage's partition and writes its own, with a
work-queue lock. Sharing ~22 % (paper), concentrated on inter-stage
boundary pages. Table 1 shows vips benefits strongly from Aikido at low
thread counts (45 % faster at 2 threads).
"""

from __future__ import annotations

from repro.machine.asm import ProgramBuilder
from repro.machine.paging import PAGE_SIZE
from repro.machine.program import Program
from repro.workloads.base import (
    WORDS_PER_PAGE,
    alu_pad,
    every_n,
    rotating_partition_base,
    per_thread_iters,
    scaled,
    seed_lcg,
    spawn_workers,
    stride_accesses,
)

BUFFER_PAGES_PER_THREAD = 8
QUEUE_LOCK = 2
#: Ring of per-frame buffer generations: vips streams tiles through
#: freshly allocated buffers, so new pages (and new sharing transitions)
#: keep appearing for the whole run.
BUFFER_RING = 5
#: Frames per generation switch (counter >> shift).
RING_SHIFT = 1


def build(threads: int = 8, scale: float = 1.0) -> Program:
    iters = per_thread_iters(880, threads, scale)
    b = ProgramBuilder("vips")
    buffers_base = b.segment(
        "image-buffers",
        BUFFER_RING * threads * BUFFER_PAGES_PER_THREAD * PAGE_SIZE)
    queue_base = b.segment("work-queue", 64)
    b.label("main")
    b.li(4, queue_base)
    b.li(5, 0)
    b.store(5, base=4, disp=0)
    spawn_workers(b, threads)
    b.halt()

    b.label("worker")
    seed_lcg(b)
    b.li(9, queue_base)
    with b.loop(counter=2, count=iters):
        # Locate this frame generation's buffers (ring rotation).
        rotating_partition_base(b, 6, buffers_base,
                                BUFFER_PAGES_PER_THREAD, threads,
                                BUFFER_RING, counter_reg=2,
                                shift=RING_SHIFT)
        rotating_partition_base(b, 7, buffers_base,
                                BUFFER_PAGES_PER_THREAD, threads,
                                BUFFER_RING, counter_reg=2,
                                shift=RING_SHIFT, neighbor=True)
        # Read the upstream stage's boundary scanline.
        stride_accesses(b, 7, WORDS_PER_PAGE, "r")
        # Publish this stage's boundary scanline (read by the next
        # stage without synchronization — vips' pipeline handshake is a
        # benign racy-read pattern, cf. paper §5.3).
        stride_accesses(b, 6, WORDS_PER_PAGE, "w")
        # Convolve the interior: these instructions never touch a page
        # another stage reads.
        alu_pad(b, 4)
        b.add(13, 6, imm=PAGE_SIZE)
        stride_accesses(b, 13,
                        (BUFFER_PAGES_PER_THREAD - 1) * WORDS_PER_PAGE,
                        "rrwrwrr")
        # Occasionally grab the work queue for the next tile batch.
        with every_n(b, counter_reg=2, mask=0x7):
            b.lock(lock_id=QUEUE_LOCK)
            b.load(12, base=9, disp=0)
            b.add(12, 12, imm=1)
            b.store(12, base=9, disp=0)
            b.unlock(lock_id=QUEUE_LOCK)
    b.halt()
    return b.build()
