"""canneal: cache-aware simulated annealing for chip routing.

Character: threads swap random netlist elements inside one large shared
array using lock-free atomic operations, with substantial private
cost-evaluation scratch (~12 % sharing in the paper). Crucially, canneal
contains the paper's flagship detected race (§5.3): its Mersenne-Twister
random number generator is advanced by all threads without
synchronization — a "benign" race both FastTrack configurations report.
"""

from __future__ import annotations

from repro.machine.asm import ProgramBuilder
from repro.machine.paging import PAGE_SIZE
from repro.machine.program import Program
from repro.workloads.base import (
    WORDS_PER_PAGE,
    alu_pad,
    every_n,
    partition_base,
    per_thread_iters,
    scaled,
    seed_lcg,
    spawn_workers,
    stride_accesses,
)

NETLIST_PAGES = 120
SCRATCH_PAGES_PER_THREAD = 6


def build(threads: int = 8, scale: float = 1.0) -> Program:
    iters = per_thread_iters(880, threads, scale)
    b = ProgramBuilder("canneal")
    netlist_base = b.segment("netlist", NETLIST_PAGES * PAGE_SIZE)
    rng_base = b.segment("mt-rng", 64, initial={0: 0x1234})
    scratch_base = b.segment(
        "cost-scratch", threads * SCRATCH_PAGES_PER_THREAD * PAGE_SIZE)
    b.label("main")
    b.li(4, netlist_base)
    b.li(5, 3)
    for i in range(4):
        b.store(5, base=4, disp=8 * i)
    spawn_workers(b, threads)
    b.halt()

    b.label("worker")
    seed_lcg(b)
    b.li(4, netlist_base)
    b.li(8, rng_base)
    partition_base(b, 6, scratch_base, SCRATCH_PAGES_PER_THREAD)
    with b.loop(counter=2, count=iters):
        # The racy shared Mersenne-Twister step (every 4th move): read
        # the generator state, "twist", write it back — unsynchronized.
        with every_n(b, counter_reg=2, mask=0x3):
            b.load(12, base=8, disp=0)
            b.mul(12, 12, imm=6364136223846793005)
            b.add(12, 12, imm=1442695040888963407)
            b.store(12, base=8, disp=0)
        # Pick an element and swap atomically (lock-free exchange).
        b.lcg_offset(11, 10, NETLIST_PAGES * WORDS_PER_PAGE)
        b.add(11, 11, 4)
        b.li(12, 1)
        b.atomic_add(13, 12, base=11, disp=0)
        # Private routing-cost evaluation.
        alu_pad(b, 4)
        stride_accesses(b, 6, SCRATCH_PAGES_PER_THREAD * WORDS_PER_PAGE,
                        "rrwrrwrrw")
    b.halt()
    return b.build()
