"""Synthetic workloads.

:mod:`repro.workloads.micro` holds small targeted programs for tests and
examples; the ten PARSEC-like benchmarks live in their own modules and are
indexed by :mod:`repro.workloads.parsec`.
"""

from repro.workloads.base import WorkloadSpec
from repro.workloads.parsec import PARSEC_BENCHMARKS, build_benchmark

__all__ = ["PARSEC_BENCHMARKS", "WorkloadSpec", "build_benchmark"]
