"""fluidanimate: SPH fluid simulation on a partitioned grid.

Character: the paper's worst case for Aikido — heavy sharing (~48 % at 8
threads) that *grows with thread count*, because the fluid grid is
spatially partitioned and neighbouring partitions exchange halo cells:
more threads means proportionally more boundary. Per-partition locks
guard the boundary cells and a barrier separates timesteps. At 8 threads
the paper measures Aikido-FastTrack slightly *slower* than plain
FastTrack (184.3x vs 178.6x); at 2 and 4 threads Aikido still wins
(Table 1).
"""

from __future__ import annotations

from repro.machine.asm import ProgramBuilder
from repro.machine.paging import PAGE_SIZE
from repro.machine.program import Program
from repro.workloads.base import (
    WORDS_PER_PAGE,
    alu_pad,
    every_n,
    rotating_partition_base,
    per_thread_iters,
    scaled,
    seed_lcg,
    spawn_workers,
    stride_accesses,
)

#: Total grid pages, divided evenly among threads: partitions shrink (and
#: the boundary fraction grows) as the thread count rises.
GRID_PAGES_TOTAL = 32
CELL_LOCK_BASE = 20
BARRIER_ID = 1
#: Source/destination grids swapped each timestep (the real fluidanimate
#: double-buffers its cell arrays).
GRID_RING = 5


def build(threads: int = 8, scale: float = 1.0) -> Program:
    if GRID_PAGES_TOTAL % threads:
        pages_per_thread = max(1, GRID_PAGES_TOTAL // threads)
    else:
        pages_per_thread = GRID_PAGES_TOTAL // threads
    timesteps = scaled(22, scale)
    cells_per_step = per_thread_iters(40, threads, scale)
    b = ProgramBuilder("fluidanimate")
    grid_base = b.segment(
        "grid", GRID_RING * threads * pages_per_thread * PAGE_SIZE)
    b.label("main")
    spawn_workers(b, threads)
    b.halt()

    b.label("worker")
    seed_lcg(b)
    b.li(8, threads)                                        # barrier parties
    # The boundary fraction of the work grows with the thread count (a
    # fixed-size grid split into more partitions has more surface); with
    # few threads the halo exchange runs only every few cells.
    halo_mask = max(1, 8 // threads) - 1
    interior_pages = max(1, pages_per_thread - 1)
    with b.loop(counter=2, count=timesteps):
        # Double-buffered grid: source/destination swap every timestep,
        # continuously exposing fresh pages to the sharing detector.
        rotating_partition_base(b, 6, grid_base, pages_per_thread,
                                threads, GRID_RING, counter_reg=2, shift=0)
        rotating_partition_base(b, 7, grid_base, pages_per_thread,
                                threads, GRID_RING, counter_reg=2, shift=0,
                                neighbor=True)
        b.add(14, 6, imm=PAGE_SIZE)        # r14 = own interior base
        b.mod(9, 1, imm=threads)
        b.add(9, 9, imm=CELL_LOCK_BASE)    # r9 = my partition's lock id
        b.add(5, 1, imm=1)
        b.mod(5, 5, imm=threads)
        b.add(5, 5, imm=CELL_LOCK_BASE)    # r5 = neighbour's lock id
        with b.loop(counter=3, count=cells_per_step):
            # Density/force updates across the thread's own cells —
            # including its boundary page, so they run under its own
            # lock (the same lock a neighbour's halo update takes:
            # every boundary page is protected by its owner's lock).
            b.lock(reg=9)
            stride_accesses(b, 6, pages_per_thread * WORDS_PER_PAGE,
                            "rwrw")
            b.unlock(reg=9)
            # Interior-only relaxation: these instructions never touch a
            # shared page.
            stride_accesses(b, 14, interior_pages * WORDS_PER_PAGE,
                            "rrwr")
            alu_pad(b, 2, reg=12)
            # Halo exchange into the neighbour's boundary page, under
            # that partition's lock.
            with every_n(b, counter_reg=3, mask=halo_mask):
                b.lock(reg=5)
                stride_accesses(b, 7, WORDS_PER_PAGE, "rwrwrw")
                b.unlock(reg=5)
        # Timestep barrier.
        b.barrier(BARRIER_ID, parties_reg=8)
    b.halt()
    return b.build()
