"""raytrace: real-time ray tracing.

Character: by far the paper's best case for Aikido — 0.11 % of accesses
target shared pages. Each thread traces rays through a private tile with
an enormous amount of private intersection work; only very occasionally
does it consult the shared scene/BVH root or update the shared frame
statistics. Long-running (the paper's raytrace executes 13.2 B memory
accesses, an order of magnitude more than its peers).
"""

from __future__ import annotations

from repro.machine.asm import ProgramBuilder
from repro.machine.paging import PAGE_SIZE
from repro.machine.program import Program
from repro.workloads.base import (
    WORDS_PER_PAGE,
    alu_pad,
    every_n,
    partition_base,
    per_thread_iters,
    scaled,
    seed_lcg,
    spawn_workers,
    stride_accesses,
)

SCENE_PAGES = 2
TILE_PAGES_PER_THREAD = 8


def build(threads: int = 8, scale: float = 1.0) -> Program:
    iters = per_thread_iters(3360, threads, scale)
    b = ProgramBuilder("raytrace")
    scene_base = b.segment("scene", SCENE_PAGES * PAGE_SIZE)
    tiles_base = b.segment("tiles",
                           threads * TILE_PAGES_PER_THREAD * PAGE_SIZE)
    b.label("main")
    b.li(4, scene_base)
    b.li(5, 7)
    b.store(5, base=4, disp=0)
    spawn_workers(b, threads)
    b.halt()

    b.label("worker")
    seed_lcg(b)
    b.li(4, scene_base)
    partition_base(b, 6, tiles_base, TILE_PAGES_PER_THREAD)
    with b.loop(counter=2, count=iters):
        # Intersection tests against the thread's cached BVH sub-tree and
        # shading into its private tile: all private.
        stride_accesses(b, 6, TILE_PAGES_PER_THREAD * WORDS_PER_PAGE,
                        "rrrwrrrw" "rrwr")
        alu_pad(b, 14)
        # Every 256 rays, consult the shared scene root.
        with every_n(b, counter_reg=2, mask=0xFF):
            b.load(12, base=4, disp=0)
    b.halt()
    return b.build()
