"""Registry of the ten PARSEC 2.1 benchmarks the paper evaluates.

``PARSEC_BENCHMARKS`` preserves the paper's presentation order (Figure 5
left-to-right). Each :class:`~repro.workloads.base.WorkloadSpec` carries
the paper's published ratios so the harness can print measured-vs-paper
columns:

* ``shared_fraction`` = Table 2 col 3 / col 1 (what Figure 6 plots);
* ``instrumented_fraction`` = Table 2 col 2 / col 1;
* the Figure 5 slowdowns are read off the published bar chart (FastTrack
  / Aikido-FastTrack at 8 threads) and are approximate by nature.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import WorkloadError
from repro.machine.program import Program
from repro.workloads import (
    blackscholes,
    bodytrack,
    canneal,
    fluidanimate,
    freqmine,
    raytrace,
    streamcluster,
    swaptions,
    vips,
    x264,
)
from repro.workloads.base import PaperRow, WorkloadSpec

PARSEC_BENCHMARKS: List[WorkloadSpec] = [
    WorkloadSpec(
        "freqmine", freqmine.build,
        "FP-growth frequent itemset mining over one global locked FP-tree",
        PaperRow(shared_fraction=0.5575, instrumented_fraction=0.6356,
                 ft_slowdown_8t=88.0, aikido_slowdown_8t=78.0)),
    WorkloadSpec(
        "blackscholes", blackscholes.build,
        "embarrassingly parallel option pricing over a read-shared input",
        PaperRow(shared_fraction=0.0693, instrumented_fraction=0.0698,
                 ft_slowdown_8t=75.0, aikido_slowdown_8t=20.0)),
    WorkloadSpec(
        "bodytrack", bodytrack.build,
        "particle-filter tracking with a locked task queue",
        PaperRow(shared_fraction=0.2004, instrumented_fraction=0.2170,
                 ft_slowdown_8t=55.0, aikido_slowdown_8t=37.0)),
    WorkloadSpec(
        "raytrace", raytrace.build,
        "ray tracing: vast private tiles, almost no sharing",
        PaperRow(shared_fraction=0.0011, instrumented_fraction=0.0013,
                 ft_slowdown_8t=60.0, aikido_slowdown_8t=10.0)),
    WorkloadSpec(
        "swaptions", swaptions.build,
        "Monte-Carlo swaption pricing over a read-shared term structure",
        PaperRow(shared_fraction=0.1189, instrumented_fraction=0.1667,
                 ft_slowdown_8t=95.0, aikido_slowdown_8t=35.0)),
    WorkloadSpec(
        "fluidanimate", fluidanimate.build,
        "SPH fluid: partitioned grid, halo locks, per-step barriers",
        PaperRow(shared_fraction=0.4813, instrumented_fraction=0.6405,
                 ft_slowdown_8t=178.6, aikido_slowdown_8t=184.3)),
    WorkloadSpec(
        "vips", vips.build,
        "image pipeline: stage boundaries shared, work-queue lock",
        PaperRow(shared_fraction=0.2217, instrumented_fraction=0.2431,
                 ft_slowdown_8t=67.2, aikido_slowdown_8t=66.4)),
    WorkloadSpec(
        "x264", x264.build,
        "H.264: pipeline over reference frames, progress locks",
        PaperRow(shared_fraction=0.2933, instrumented_fraction=0.3419,
                 ft_slowdown_8t=45.0, aikido_slowdown_8t=36.0)),
    WorkloadSpec(
        "canneal", canneal.build,
        "simulated annealing: atomic element swaps + racy shared RNG",
        PaperRow(shared_fraction=0.1216, instrumented_fraction=0.1233,
                 ft_slowdown_8t=40.0, aikido_slowdown_8t=30.0)),
    WorkloadSpec(
        "streamcluster", streamcluster.build,
        "online clustering: read-shared scans, locked centers, barriers",
        PaperRow(shared_fraction=0.3713, instrumented_fraction=0.3785,
                 ft_slowdown_8t=150.0, aikido_slowdown_8t=140.0)),
]

_BY_NAME: Dict[str, WorkloadSpec] = {s.name: s for s in PARSEC_BENCHMARKS}

# Diagnostic workloads resolve by name (pool workers rebuild jobs from
# this registry) but never appear in the PARSEC list or benchmark_names,
# so experiment sweeps cannot pick them up.
from repro.workloads.faulty import DIAGNOSTIC_BENCHMARKS  # noqa: E402

_BY_NAME.update({s.name: s for s in DIAGNOSTIC_BENCHMARKS})


def benchmark_names() -> List[str]:
    return [s.name for s in PARSEC_BENCHMARKS]


def get_benchmark(name: str) -> WorkloadSpec:
    try:
        return _BY_NAME[name]
    except KeyError:
        import difflib

        close = difflib.get_close_matches(name, benchmark_names(), n=1)
        hint = f" (did you mean {close[0]!r}?)" if close else ""
        raise WorkloadError(
            f"unknown benchmark {name!r}{hint}; "
            f"valid names: {', '.join(benchmark_names())}"
        ) from None


def build_benchmark(name: str, threads: int = 8,
                    scale: float = 1.0) -> Program:
    """Build one benchmark's program by name."""
    return get_benchmark(name).build(threads=threads, scale=scale)
