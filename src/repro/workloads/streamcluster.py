"""streamcluster: online k-median clustering.

Character: all threads repeatedly scan the same shared point block
(read-shared pages), update shared cluster centers under a lock, and
synchronize with barriers between passes — high sharing (~37 % in the
paper) dominated by the read-shared scans.
"""

from __future__ import annotations

from repro.machine.asm import ProgramBuilder
from repro.machine.paging import PAGE_SIZE
from repro.machine.program import Program
from repro.workloads.base import (
    WORDS_PER_PAGE,
    alu_pad,
    every_n,
    partition_base,
    per_thread_iters,
    scaled,
    seed_lcg,
    spawn_workers,
    stride_accesses,
)

POINTS_PAGES = 8
CENTERS_PAGES = 1
LOCAL_PAGES_PER_THREAD = 2
CENTER_LOCK = 3
BARRIER_ID = 2
#: Streaming input: each pass processes a fresh chunk of points, so new
#: read-shared pages appear throughout the run.
CHUNK_RING = 9


def build(threads: int = 8, scale: float = 1.0) -> Program:
    passes = scaled(18, scale)
    points_per_pass = per_thread_iters(48, threads, scale)
    b = ProgramBuilder("streamcluster")
    points_base = b.segment("points",
                            CHUNK_RING * POINTS_PAGES * PAGE_SIZE)
    centers_base = b.segment("centers", CENTERS_PAGES * PAGE_SIZE)
    local_base = b.segment(
        "local-costs", threads * LOCAL_PAGES_PER_THREAD * PAGE_SIZE)
    b.label("main")
    b.li(4, centers_base)
    b.li(5, 5)
    b.store(5, base=4, disp=0)
    spawn_workers(b, threads)
    b.halt()

    b.label("worker")
    seed_lcg(b)
    b.li(7, centers_base)
    partition_base(b, 6, local_base, LOCAL_PAGES_PER_THREAD)
    b.li(8, threads)
    with b.loop(counter=2, count=passes):
        # This pass's chunk of streamed points.
        b.mod(4, 2, imm=CHUNK_RING)
        b.mul(4, 4, imm=POINTS_PAGES * PAGE_SIZE)
        b.add(4, 4, imm=points_base)
        with b.loop(counter=3, count=points_per_pass):
            # Distance evaluation: shared point scan, plus a direct
            # (absolute-address) read of the shared center count — the
            # instruction AikidoSD rewrites by patching its displacement.
            b.load(12, disp=centers_base + 8)
            stride_accesses(b, 4, POINTS_PAGES * WORDS_PER_PAGE, "rrr")
            alu_pad(b, 3)
            # Private cost accumulation.
            stride_accesses(b, 6, LOCAL_PAGES_PER_THREAD * WORDS_PER_PAGE,
                            "rwrwrw")
            # Occasionally open a new center (shared, lock-protected).
            with every_n(b, counter_reg=3, mask=0x3):
                b.lock(lock_id=CENTER_LOCK)
                b.load(12, base=7, disp=0)
                b.add(12, 12, imm=1)
                b.store(12, base=7, disp=0)
                b.unlock(lock_id=CENTER_LOCK)
        b.barrier(BARRIER_ID, parties_reg=8)
    b.halt()
    return b.build()
