"""Small targeted programs for tests and examples.

Each builder returns ``(program, info)`` where ``info`` maps names to the
addresses/parameters assertions need.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.machine.asm import ProgramBuilder
from repro.machine.paging import PAGE_SIZE
from repro.machine.program import Program


def racy_counter(n_threads: int = 2, iters: int = 20
                 ) -> Tuple[Program, Dict]:
    """Threads increment a shared counter with NO lock: write-write races."""
    b = ProgramBuilder("racy-counter")
    data = b.segment("counter", 64)
    b.label("main")
    b.li(4, data)
    b.li(5, 1)
    b.store(5, base=4, disp=8)     # main touches the page first
    b.li(3, 0)
    for i in range(n_threads):
        b.spawn(6 + i, "worker", arg_reg=3)
    for i in range(n_threads):
        b.join(6 + i)
    b.halt()
    b.label("worker")
    b.li(4, data)
    with b.loop(counter=2, count=iters):
        b.load(5, base=4, disp=0)
        b.add(5, 5, imm=1)
        b.store(5, base=4, disp=0)
    b.halt()
    return b.build(), {"counter": data, "iters": iters,
                       "threads": n_threads}


def locked_counter(n_threads: int = 2, iters: int = 20
                   ) -> Tuple[Program, Dict]:
    """Same increments but lock-protected: race free."""
    b = ProgramBuilder("locked-counter")
    data = b.segment("counter", 64)
    b.label("main")
    b.li(3, 0)
    for i in range(n_threads):
        b.spawn(6 + i, "worker", arg_reg=3)
    for i in range(n_threads):
        b.join(6 + i)
    b.halt()
    b.label("worker")
    b.li(4, data)
    with b.loop(counter=2, count=iters):
        b.lock(lock_id=1)
        b.load(5, base=4, disp=0)
        b.add(5, 5, imm=1)
        b.store(5, base=4, disp=0)
        b.unlock(lock_id=1)
    b.halt()
    return b.build(), {"counter": data, "iters": iters,
                       "threads": n_threads}


def private_work(n_threads: int = 2, iters: int = 30
                 ) -> Tuple[Program, Dict]:
    """Each thread works on its own page: no sharing at all."""
    b = ProgramBuilder("private-work")
    # One page-aligned slab per thread, plus one for main.
    data = b.segment("slabs", PAGE_SIZE * (n_threads + 1))
    b.label("main")
    b.li(3, 0)
    for i in range(n_threads):
        b.li(3, data + PAGE_SIZE * (i + 1))
        b.spawn(6 + i, "worker", arg_reg=3)
    for i in range(n_threads):
        b.join(6 + i)
    b.halt()
    b.label("worker")
    b.mov(4, 1)                     # r1 = slab base (spawn arg)
    with b.loop(counter=2, count=iters):
        b.load(5, base=4, disp=0)
        b.add(5, 5, imm=1)
        b.store(5, base=4, disp=0)
    b.halt()
    return b.build(), {"slabs": data, "iters": iters,
                       "threads": n_threads}


def racy_flag() -> Tuple[Program, Dict]:
    """Main sets a flag; the child spins reading it: write-read race."""
    b = ProgramBuilder("racy-flag")
    data = b.segment("flag", 64)
    b.label("main")
    b.li(3, 0)
    b.spawn(6, "reader", arg_reg=3)
    b.li(4, data)
    b.li(5, 1)
    b.store(5, base=4, disp=0)     # unsynchronized publish
    b.join(6)
    b.halt()
    b.label("reader")
    b.li(4, data)
    with b.loop(counter=2, count=10):
        b.load(5, base=4, disp=0)  # unsynchronized read
    b.halt()
    return b.build(), {"flag": data}


def fork_join_pipeline(stages: int = 3) -> Tuple[Program, Dict]:
    """Strictly fork/join-ordered handoff through shared memory: race free."""
    b = ProgramBuilder("fork-join-pipeline")
    data = b.segment("cell", 64)
    b.label("main")
    b.li(4, data)
    b.li(5, 1)
    b.store(5, base=4, disp=0)
    b.li(3, 0)
    for i in range(stages):
        b.spawn(6, "stage", arg_reg=3)
        b.join(6)                    # full order between stages
    b.load(7, base=4, disp=0)
    b.store(7, base=4, disp=8)
    b.halt()
    b.label("stage")
    b.li(4, data)
    b.load(5, base=4, disp=0)
    b.mul(5, 5, imm=2)
    b.store(5, base=4, disp=0)
    b.halt()
    return b.build(), {"cell": data, "stages": stages}


def first_touch_race() -> Tuple[Program, Dict]:
    """The paper's §6 false-negative scenario.

    Each thread makes exactly one access to the shared page and both are
    the *first* accesses from their threads: main's unsynchronized write
    is consumed by the private->shared transition and never observed by
    an Aikido-accelerated tool, while a full-instrumentation tool reports
    the write-read race.
    """
    b = ProgramBuilder("first-touch-race")
    data = b.segment("cell", 64)
    b.label("main")
    b.li(3, 0)
    b.spawn(6, "reader", arg_reg=3)
    b.li(4, data)
    b.li(5, 42)
    b.store(5, base=4, disp=0)     # main's ONLY access to the page
    b.join(6)
    b.halt()
    b.label("reader")
    b.li(4, data)
    b.load(5, base=4, disp=0)      # reader's ONLY access to the page
    b.halt()
    return b.build(), {"cell": data}


def barrier_phases(n_threads: int = 2, phases: int = 3
                   ) -> Tuple[Program, Dict]:
    """Barrier-separated phases over a shared array: race free."""
    b = ProgramBuilder("barrier-phases")
    data = b.segment("array", 64 * max(1, n_threads))
    b.label("main")
    b.li(3, 0)
    for i in range(n_threads):
        b.li(3, i)
        b.spawn(6 + i, "worker", arg_reg=3)
    for i in range(n_threads):
        b.join(6 + i)
    b.halt()
    b.label("worker")
    # r1 = thread index; my slot = data + idx*8
    b.li(4, data)
    b.shl(5, 1, imm=3)
    b.add(4, 4, 5)
    b.li(8, n_threads)
    with b.loop(counter=2, count=phases):
        b.load(5, base=4, disp=0)
        b.add(5, 5, imm=1)
        b.store(5, base=4, disp=0)
        b.barrier(1, parties_reg=8)
    b.halt()
    return b.build(), {"array": data, "threads": n_threads,
                       "phases": phases}


def mersenne_twister_canneal(n_threads: int = 2, draws: int = 15
                             ) -> Tuple[Program, Dict]:
    """The canneal benign race (paper §5.3): a shared Mersenne-Twister-like
    RNG whose state is advanced by multiple threads without locking.

    The "twist" is abstracted to an LCG step on a shared state word; the
    racy pattern (read state / transform / write state from many threads)
    is exactly what the paper found in canneal's random number generator.
    """
    b = ProgramBuilder("mt-canneal")
    data = b.segment("rng", 64, initial={0: 0x1234})
    b.label("main")
    b.li(3, 0)
    for i in range(n_threads):
        b.spawn(6 + i, "annealer", arg_reg=3)
    for i in range(n_threads):
        b.join(6 + i)
    b.halt()
    b.label("annealer")
    b.li(4, data)
    with b.loop(counter=2, count=draws):
        b.load(5, base=4, disp=0)       # racy read of RNG state
        b.mul(5, 5, imm=6364136223846793005)
        b.add(5, 5, imm=1442695040888963407)
        b.store(5, base=4, disp=0)      # racy write back
    b.halt()
    return b.build(), {"rng": data, "threads": n_threads, "draws": draws}


def producer_consumer(items=5, consumers=1):
    """Classic bounded-buffer handshake over one cell.

    The producer deposits ``items`` values; a consumer waits for the
    cell to be full, consumes, and notifies. Everything is protected by
    lock 1 and coordinated by condition variables 10 (full) and 11
    (empty).
    """
    b = ProgramBuilder("prod-cons")
    data = b.segment("cell", 64)   # +0: full flag, +8: value, +16: sum
    b.label("main")
    b.li(3, 0)
    tids = []
    for i in range(consumers):
        # r13/r14 hold child tids (r5-r8 are clobbered by the loop body).
        b.spawn(13 + i, "consumer", arg_reg=3)
        tids.append(13 + i)
    b.li(4, data)
    with b.loop(counter=2, count=items):
        b.lock(lock_id=1)
        # wait until cell is empty
        loop_head = b.fresh_label("notfull")
        b.label(loop_head)
        b.load(6, base=4, disp=0)
        done = b.fresh_label("empty")
        b.bz(6, done)
        b.wait(10, lock_id=1)          # wait for "cell emptied"
        b.jmp(loop_head)
        b.label(done)
        b.add(7, 2, imm=100)           # value = 100 + i
        b.store(7, base=4, disp=8)
        b.li(6, 1)
        b.store(6, base=4, disp=0)     # full = 1
        b.notify(11)                   # wake a consumer
        b.unlock(lock_id=1)
    # Signal termination: value 0 with full=1, once per consumer.
    for _ in range(consumers):
        b.lock(lock_id=1)
        poison_head = b.fresh_label("poison")
        b.label(poison_head)
        b.load(6, base=4, disp=0)
        poison_ok = b.fresh_label("pok")
        b.bz(6, poison_ok)
        b.wait(10, lock_id=1)
        b.jmp(poison_head)
        b.label(poison_ok)
        b.li(7, 0)
        b.store(7, base=4, disp=8)
        b.li(6, 1)
        b.store(6, base=4, disp=0)
        b.notify(11)
        b.unlock(lock_id=1)
    for tid_reg in tids:
        b.join(tid_reg)
    b.halt()

    b.label("consumer")
    b.li(4, data)
    b.label("consume_loop")
    b.lock(lock_id=1)
    wait_head = b.fresh_label("notempty")
    b.label(wait_head)
    b.load(6, base=4, disp=0)
    have = b.fresh_label("have")
    b.bnz(6, have)
    b.wait(11, lock_id=1)              # wait for "cell filled"
    b.jmp(wait_head)
    b.label(have)
    b.load(7, base=4, disp=8)          # value
    b.li(6, 0)
    b.store(6, base=4, disp=0)         # full = 0
    b.notify(10)                       # wake the producer
    b.bz(7, "consumer_done_locked")
    b.load(8, base=4, disp=16)
    b.add(8, 8, 7)
    b.store(8, base=4, disp=16)        # sum += value
    b.unlock(lock_id=1)
    b.jmp("consume_loop")
    b.label("consumer_done_locked")
    b.unlock(lock_id=1)
    b.halt()
    return b.build(), data, items
