"""Shared machinery for the PARSEC-like synthetic benchmarks.

Each benchmark is a mini-ISA program generator calibrated so that the
*fraction of memory accesses that target shared pages* matches the
paper's Table 2 / Figure 6 ratios for that benchmark, and so sharing
scales with thread count the way the paper's Table 1 implies (partitioned
data with halos: more threads, proportionally more boundary).

Register conventions inside worker threads:

====  =====================================================
r1    thread index (0-based; passed as the spawn argument)
r2/r3 loop counters
r10   per-thread LCG state (seeded from the thread index)
r11+  scratch for address computation
r15   reserved for ProgramBuilder loop bounds
====  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.machine.asm import ProgramBuilder
from repro.machine.paging import PAGE_SIZE
from repro.machine.program import Program

#: Words per page (8-byte words, 4 KiB pages).
WORDS_PER_PAGE = PAGE_SIZE // 8


@dataclass
class PaperRow:
    """The paper's published numbers for one benchmark (for reports)."""

    shared_fraction: float            # Fig. 6 (col3/col1 of Table 2)
    instrumented_fraction: float      # Table 2 col2/col1
    ft_slowdown_8t: Optional[float] = None      # Fig. 5 (approx, read off)
    aikido_slowdown_8t: Optional[float] = None  # Fig. 5 (approx, read off)


@dataclass
class WorkloadSpec:
    """A named, parameterizable benchmark."""

    name: str
    build: Callable[..., Program]
    description: str
    paper: PaperRow
    default_threads: int = 8
    extra: Dict = field(default_factory=dict)

    def program(self, threads: Optional[int] = None,
                scale: float = 1.0) -> Program:
        return self.build(threads=threads or self.default_threads,
                          scale=scale)


# ---------------------------------------------------------------------
# builder helpers
# ---------------------------------------------------------------------
def scaled(count: int, scale: float, minimum: int = 1) -> int:
    """Scale an iteration count, keeping it at least ``minimum``."""
    return max(minimum, int(count * scale))


def per_thread_iters(total: int, threads: int, scale: float,
                     minimum: int = 1) -> int:
    """Split a fixed total work count across threads (PARSEC semantics:
    the input size does not change with the thread count — more threads
    means less work per thread)."""
    return max(minimum, int(total * scale / threads))


def spawn_workers(b: ProgramBuilder, n_threads: int,
                  worker_label: str = "worker") -> None:
    """Emit main-thread code spawning/joining ``n_threads`` workers.

    Each worker receives its 0-based index in r1. Uses r3 for the
    argument and r5 upward for tids (so supports up to 10 threads with
    the 16-register file; benchmarks needing more stash tids in memory —
    none do at the paper's 8 threads).
    """
    if n_threads > 10:
        raise ValueError("spawn_workers supports at most 10 threads")
    for i in range(n_threads):
        b.li(3, i)
        b.spawn(5 + i, worker_label, arg_reg=3)
    for i in range(n_threads):
        b.join(5 + i)


def seed_lcg(b: ProgramBuilder, index_reg: int = 1,
             state_reg: int = 10, salt: int = 0x9E3779B97F4A7C15) -> None:
    """Derive a per-thread LCG state from the thread index."""
    b.mul(state_reg, index_reg, imm=2654435761)
    b.add(state_reg, state_reg, imm=salt)


def partition_base(b: ProgramBuilder, dest_reg: int, region_base: int,
                   pages_per_thread: int, index_reg: int = 1) -> None:
    """``dest = region_base + index * pages_per_thread * PAGE_SIZE``."""
    b.mul(dest_reg, index_reg, imm=pages_per_thread * PAGE_SIZE)
    b.add(dest_reg, dest_reg, imm=region_base)


def random_word_load(b: ProgramBuilder, base_reg: int, words: int,
                     state_reg: int = 10, addr_reg: int = 11,
                     dest_reg: int = 12) -> None:
    """Load a pseudo-random word from [base, base + words*8)."""
    b.lcg_offset(addr_reg, state_reg, words)
    b.add(addr_reg, addr_reg, base_reg)
    b.load(dest_reg, base=addr_reg, disp=0)


def random_word_store(b: ProgramBuilder, base_reg: int, words: int,
                      value_reg: int = 12, state_reg: int = 10,
                      addr_reg: int = 11) -> None:
    """Store ``value_reg`` to a pseudo-random word of the region."""
    b.lcg_offset(addr_reg, state_reg, words)
    b.add(addr_reg, addr_reg, base_reg)
    b.store(value_reg, base=addr_reg, disp=0)


def neighbor_partition_base(b: ProgramBuilder, dest_reg: int,
                            region_base: int, pages_per_thread: int,
                            n_threads: int, index_reg: int = 1) -> None:
    """``dest = base + ((index+1) mod T) * partition`` — the halo target."""
    b.add(dest_reg, index_reg, imm=1)
    b.mod(dest_reg, dest_reg, imm=n_threads)
    b.mul(dest_reg, dest_reg, imm=pages_per_thread * PAGE_SIZE)
    b.add(dest_reg, dest_reg, imm=region_base)


def rotating_partition_base(b: ProgramBuilder, dest_reg: int,
                            region_base: int, pages_per_thread: int,
                            n_threads: int, ring: int, counter_reg: int,
                            shift: int, index_reg: int = 1,
                            neighbor: bool = False,
                            scratch_reg: int = 15) -> None:
    """Partition base inside a ring of buffer generations.

    ``dest = base + ((counter >> shift) % ring) * ring_span
            + owner * pages_per_thread * PAGE_SIZE``
    where ``owner`` is the thread index (or its successor when
    ``neighbor``). Models the per-frame / per-pass buffer churn of
    pipeline benchmarks: every rotation touches fresh pages, so sharing
    transitions (and Aikido faults) keep occurring throughout the run
    instead of only at startup.
    """
    span = n_threads * pages_per_thread * PAGE_SIZE
    b.shr(scratch_reg, counter_reg, imm=shift)
    b.mod(scratch_reg, scratch_reg, imm=ring)
    b.mul(scratch_reg, scratch_reg, imm=span)
    if neighbor:
        b.add(dest_reg, index_reg, imm=1)
        b.mod(dest_reg, dest_reg, imm=n_threads)
        b.mul(dest_reg, dest_reg, imm=pages_per_thread * PAGE_SIZE)
    else:
        b.mul(dest_reg, index_reg, imm=pages_per_thread * PAGE_SIZE)
    b.add(dest_reg, dest_reg, scratch_reg)
    b.add(dest_reg, dest_reg, imm=region_base)


def stride_accesses(b: ProgramBuilder, base_reg: int, words: int,
                    pattern: str, state_reg: int = 10,
                    addr_reg: int = 11, value_reg: int = 12) -> None:
    """One random jump, then a strided run of accesses (spatial locality).

    ``pattern`` is a string of 'r'/'w' characters, one access each, at
    consecutive word displacements from the random starting point. The
    run is kept inside the region by reserving ``len(pattern)`` words of
    headroom in the offset computation.
    """
    span = len(pattern)
    if span == 0:
        return
    usable = max(1, words - span)
    b.lcg_offset(addr_reg, state_reg, usable)
    b.add(addr_reg, addr_reg, base_reg)
    for i, kind in enumerate(pattern):
        if kind == "r":
            b.load(value_reg, base=addr_reg, disp=8 * i)
        elif kind == "w":
            b.store(value_reg, base=addr_reg, disp=8 * i)
        else:
            raise ValueError(f"bad access pattern char {kind!r}")


def every_n(b: ProgramBuilder, counter_reg: int, mask: int,
            scratch_reg: int = 13):
    """Context manager: run the body when ``counter & mask == 0``.

    ``mask`` must be ``2^k - 1``; the body executes once every ``2^k``
    iterations of the surrounding loop.
    """
    import contextlib

    @contextlib.contextmanager
    def _guard():
        skip = b.fresh_label("skip")
        b.and_(scratch_reg, counter_reg, imm=mask)
        b.bnz(scratch_reg, skip)
        yield
        b.label(skip)

    return _guard()


def alu_pad(b: ProgramBuilder, n: int, reg: int = 14) -> None:
    """Emit ``n`` pure-compute instructions (models FLOP-heavy kernels)."""
    for i in range(n):
        if i % 3 == 0:
            b.mul(reg, reg, imm=0x5DEECE66D)
        elif i % 3 == 1:
            b.add(reg, reg, imm=11)
        else:
            b.xor(reg, reg, imm=0x55AA55AA)
