"""freqmine: FP-growth frequent itemset mining.

Character: the paper's most heavily shared benchmark (~56 % of accesses
target shared pages) — all threads walk and update one global FP-tree,
with per-subtree locks, plus modest private projection scratch.
"""

from __future__ import annotations

from repro.machine.asm import ProgramBuilder
from repro.machine.paging import PAGE_SIZE
from repro.machine.program import Program
from repro.workloads.base import (
    WORDS_PER_PAGE,
    alu_pad,
    partition_base,
    per_thread_iters,
    scaled,
    seed_lcg,
    spawn_workers,
    stride_accesses,
)

TREE_PAGES = 8
SCRATCH_PAGES_PER_THREAD = 2
#: Locks striping the tree (lock id = 10 + stripe).
TREE_LOCK_STRIPES = 4


def build(threads: int = 8, scale: float = 1.0) -> Program:
    iters = per_thread_iters(960, threads, scale)
    b = ProgramBuilder("freqmine")
    tree_base = b.segment("fp-tree", TREE_PAGES * PAGE_SIZE)
    scratch_base = b.segment(
        "projections", threads * SCRATCH_PAGES_PER_THREAD * PAGE_SIZE)
    b.label("main")
    # Build a small initial tree.
    b.li(4, tree_base)
    b.li(5, 1)
    for i in range(8):
        b.store(5, base=4, disp=8 * i)
    spawn_workers(b, threads)
    b.halt()

    b.label("worker")
    seed_lcg(b)
    partition_base(b, 6, scratch_base, SCRATCH_PAGES_PER_THREAD)
    stripe_pages = TREE_PAGES // TREE_LOCK_STRIPES
    with b.loop(counter=2, count=iters):
        # Pick a tree stripe; its lock protects exactly that slice of
        # pages, so concurrent updates to one subtree never race.
        b.mod(9, 2, imm=TREE_LOCK_STRIPES)
        b.add(13, 9, imm=10)            # r13 = stripe lock id
        b.lock(reg=13)
        b.mul(9, 9, imm=stripe_pages * PAGE_SIZE)
        b.add(9, 9, imm=tree_base)      # r9 = stripe slice base
        # Walk the locked subtree: mostly reads, counter increments.
        stride_accesses(b, 9, stripe_pages * WORDS_PER_PAGE, "rrrwrw")
        b.unlock(reg=13)
        alu_pad(b, 3)
        # Private conditional-pattern projection.
        stride_accesses(b, 6, SCRATCH_PAGES_PER_THREAD * WORDS_PER_PAGE,
                        "rwrw")
    b.halt()
    return b.build()
