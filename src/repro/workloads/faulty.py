"""Deliberately misbehaving workloads for harness robustness tests.

These are *diagnostic* benchmarks: registered by name (so pool workers
can rebuild them from the registry like any other job) but excluded from
``PARSEC_BENCHMARKS`` and :func:`~repro.workloads.parsec.benchmark_names`
— no experiment sweep ever picks one up by accident.

=================  ====================================================
name               behavior
=================  ====================================================
``deadlock``       two workers acquire locks 1/2 in opposite orders,
                   with a barrier between the acquisitions so the AB-BA
                   cycle is guaranteed, not schedule-dependent
``segfault``       a worker loads from an unmapped low address, raising
                   :class:`~repro.errors.SegmentationFaultError` with
                   its ``address``/``thread_id`` fields populated
``spin``           a long pure-compute loop (runtime scales with
                   ``scale``) — the per-job timeout test target
``kill-worker``    kills its **pool worker process** (SIGKILL) at
                   program-build time, exactly once per flag file —
                   the BrokenProcessPool recovery test target
=================  ====================================================

``kill-worker`` is driven by two environment variables: it only fires
when ``AIKIDO_POOL_WORKER`` is set (so inline/fallback execution is
safe) and ``AIKIDO_CHAOS_KILL_FILE`` names a flag file; the first build
to create the file (``O_CREAT | O_EXCL``) dies, every later build — in
any process — proceeds normally. Unset, it is just a tiny spin.
"""

from __future__ import annotations

import os
import signal

from repro.machine.asm import ProgramBuilder
from repro.machine.program import Program
from repro.workloads.base import PaperRow, WorkloadSpec, alu_pad, scaled


def build_deadlock(threads: int = 2, scale: float = 1.0) -> Program:
    """Guaranteed AB-BA deadlock between two workers."""
    b = ProgramBuilder("deadlock")
    b.label("main")
    b.li(3, 0)
    b.spawn(5, "locker_a", arg_reg=3)
    b.spawn(6, "locker_b", arg_reg=3)
    b.join(5)
    b.join(6)
    b.halt()

    # Both workers hold their first lock when they meet at the barrier,
    # so each then blocks on the lock the other holds: a certain cycle.
    b.label("locker_a")
    b.li(2, 2)  # barrier parties
    b.lock(1)
    b.barrier(1, parties_reg=2)
    b.lock(2)
    b.unlock(2)
    b.unlock(1)
    b.halt()

    b.label("locker_b")
    b.li(2, 2)
    b.lock(2)
    b.barrier(1, parties_reg=2)
    b.lock(1)
    b.unlock(1)
    b.unlock(2)
    b.halt()
    return b.build()


def build_segfault(threads: int = 1, scale: float = 1.0) -> Program:
    """A worker dereferences an unmapped low address and dies."""
    b = ProgramBuilder("segfault")
    b.label("main")
    b.li(3, 0)
    b.spawn(5, "crasher", arg_reg=3)
    b.join(5)
    b.halt()

    b.label("crasher")
    alu_pad(b, 8)
    b.li(4, 0x18)  # far below every mapped segment
    b.load(6, base=4, disp=0)
    b.halt()
    return b.build()


def build_spin(threads: int = 1, scale: float = 1.0) -> Program:
    """Pure compute for a long time (wall-clock grows with ``scale``)."""
    b = ProgramBuilder("spin")
    b.label("main")
    with b.loop(counter=2, count=scaled(400_000, scale)):
        alu_pad(b, 12)
    b.halt()
    return b.build()


def build_kill_worker(threads: int = 1, scale: float = 1.0) -> Program:
    """SIGKILL this pool worker once, then behave like a short spin.

    The flag file (created with ``O_CREAT | O_EXCL``) makes "once" hold
    across the retry, whichever worker process picks the job up next.
    """
    flag = os.environ.get("AIKIDO_CHAOS_KILL_FILE")
    if flag and os.environ.get("AIKIDO_POOL_WORKER"):
        try:
            fd = os.open(flag, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            pass
        else:
            os.write(fd, str(os.getpid()).encode())
            os.close(fd)
            os.kill(os.getpid(), signal.SIGKILL)
    b = ProgramBuilder("kill-worker")
    b.label("main")
    with b.loop(counter=2, count=scaled(50, scale)):
        alu_pad(b, 6)
    b.halt()
    return b.build()


_NO_PAPER = PaperRow(shared_fraction=0.0, instrumented_fraction=0.0)

DIAGNOSTIC_BENCHMARKS = [
    WorkloadSpec("deadlock", build_deadlock,
                 "guaranteed AB-BA lock cycle between two workers",
                 _NO_PAPER, default_threads=2),
    WorkloadSpec("segfault", build_segfault,
                 "loads from an unmapped address (unhandled fault)",
                 _NO_PAPER, default_threads=1),
    WorkloadSpec("spin", build_spin,
                 "long pure-compute loop (timeout-test target)",
                 _NO_PAPER, default_threads=1),
    WorkloadSpec("kill-worker", build_kill_worker,
                 "SIGKILLs its pool worker once (recovery-test target)",
                 _NO_PAPER, default_threads=1),
]
