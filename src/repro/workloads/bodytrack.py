"""bodytrack: particle-filter body tracking.

Character: a worker pool pulls tiles off a lock-protected task queue,
reads the shared camera frames, and updates private particle weights;
moderate sharing (paper: ~20 %) with frequent short critical sections.
"""

from __future__ import annotations

from repro.machine.asm import ProgramBuilder
from repro.machine.paging import PAGE_SIZE
from repro.machine.program import Program
from repro.workloads.base import (
    WORDS_PER_PAGE,
    alu_pad,
    partition_base,
    per_thread_iters,
    scaled,
    seed_lcg,
    spawn_workers,
    stride_accesses,
)

FRAME_PAGES = 4
PARTICLE_PAGES_PER_THREAD = 4
QUEUE_LOCK = 1


def build(threads: int = 8, scale: float = 1.0) -> Program:
    iters = per_thread_iters(800, threads, scale)
    b = ProgramBuilder("bodytrack")
    frame_base = b.segment("frames", FRAME_PAGES * PAGE_SIZE)
    queue_base = b.segment("task-queue", 64)
    particles_base = b.segment(
        "particles", threads * PARTICLE_PAGES_PER_THREAD * PAGE_SIZE)
    b.label("main")
    b.li(4, queue_base)
    b.li(5, 0)
    b.store(5, base=4, disp=0)
    spawn_workers(b, threads)
    b.halt()

    b.label("worker")
    seed_lcg(b)
    b.li(4, frame_base)
    b.li(7, queue_base)
    partition_base(b, 6, particles_base, PARTICLE_PAGES_PER_THREAD)
    with b.loop(counter=2, count=iters):
        # Pull a tile index off the shared queue (short critical section).
        b.lock(lock_id=QUEUE_LOCK)
        b.load(12, base=7, disp=0)
        b.add(12, 12, imm=1)
        b.store(12, base=7, disp=0)
        b.unlock(lock_id=QUEUE_LOCK)
        # Edge/likelihood evaluation against the shared frame. The frame
        # header is read with a *direct* (absolute-address) instruction —
        # exercising AikidoSD's patch-the-displacement rewriting — the
        # rest with indirect addressing.
        b.load(12, disp=frame_base)
        stride_accesses(b, 4, FRAME_PAGES * WORDS_PER_PAGE, "r")
        alu_pad(b, 5)
        # Private particle updates.
        stride_accesses(b, 6, PARTICLE_PAGES_PER_THREAD * WORDS_PER_PAGE,
                        "rwrrwrwrrwrw" "rrwr")
    b.halt()
    return b.build()
