"""Canonical guest address-space layout.

The layout is deterministic so workload generators can compute static
segment addresses at *build* time (the loader lays segments out with the
same rule). All regions are disjoint by construction:

========  ==================  =========================================
base      region              owner
========  ==================  =========================================
0x1000_0000   static segments     loader (program DataSegments)
0x2000_0000   heap (brk)          kernel
0x4000_0000   mmap arena          kernel (grows upward)
0x8000_0000   mirror arena        AikidoSD mirror manager
0xF000_0000   Aikido fault pages  AikidoLib (fake-fault delivery, mailbox)
========  ==================  =========================================
"""

from __future__ import annotations

from typing import List

from repro.machine.paging import PAGE_SIZE

STATIC_BASE = 0x1000_0000
HEAP_BASE = 0x2000_0000
MMAP_BASE = 0x4000_0000
MIRROR_BASE = 0x8000_0000
AIKIDO_SPECIAL_BASE = 0xF000_0000

#: Hard ceiling of the heap so a runaway brk cannot collide with mmap.
HEAP_LIMIT = MMAP_BASE
#: Hard ceiling of the mmap arena.
MMAP_LIMIT = MIRROR_BASE


def align_up(value: int, alignment: int = PAGE_SIZE) -> int:
    """Round ``value`` up to a multiple of ``alignment``."""
    return (value + alignment - 1) & ~(alignment - 1)


def static_segment_bases(sizes: List[int]) -> List[int]:
    """Assign page-aligned base addresses to static segments in order.

    This single function is the layout contract shared by
    :class:`~repro.machine.asm.ProgramBuilder` (which tells workload code
    where its data will live) and the loader (which maps it there).
    """
    bases = []
    cursor = STATIC_BASE
    for size in sizes:
        bases.append(cursor)
        cursor += align_up(size)
        # Guard page between segments: keeps an off-by-one-page bug in a
        # workload from silently touching its neighbour.
        cursor += PAGE_SIZE
    return bases
