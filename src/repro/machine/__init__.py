"""Simulated hardware substrate.

This package models the minimal hardware contract that Aikido's algorithms
depend on: a small RISC-like ISA, word-addressable physical memory, page
tables with PRESENT/WRITABLE/USER protection bits, per-thread TLBs, and a
single-instruction CPU interpreter that raises :class:`~repro.machine.paging.PageFault`
on protection violations.

The real Aikido runs on x86-64 with Intel VMX; none of the x86 details
matter to the paper's protocols, only fault/protection semantics, which are
reproduced faithfully here (see DESIGN.md, substitution table).
"""

from repro.machine.isa import (
    Instruction,
    MemOperand,
    Opcode,
    REGISTER_COUNT,
)
from repro.machine.program import BasicBlock, Program
from repro.machine.asm import ProgramBuilder
from repro.machine.memory import PhysicalMemory, WORD_SIZE
from repro.machine.paging import (
    PAGE_SHIFT,
    PAGE_SIZE,
    PROT_NONE,
    PROT_READ,
    PROT_RW,
    PTE,
    PTE_PRESENT,
    PTE_USER,
    PTE_WRITABLE,
    PageFault,
    PageTable,
)
from repro.machine.tlb import TLB
from repro.machine.cpu import CPU, CycleCounter

__all__ = [
    "BasicBlock",
    "CPU",
    "CycleCounter",
    "Instruction",
    "MemOperand",
    "Opcode",
    "PAGE_SHIFT",
    "PAGE_SIZE",
    "PROT_NONE",
    "PROT_READ",
    "PROT_RW",
    "PTE",
    "PTE_PRESENT",
    "PTE_USER",
    "PTE_WRITABLE",
    "PageFault",
    "PageTable",
    "PhysicalMemory",
    "Program",
    "ProgramBuilder",
    "REGISTER_COUNT",
    "TLB",
    "WORD_SIZE",
]
