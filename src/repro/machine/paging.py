"""Page tables, protection bits and page faults.

The protection model matches what Aikido depends on from x86: each virtual
page has PRESENT (readable), WRITABLE, and USER (accessible from user mode)
bits, enforced on every translation. A failed check raises
:class:`PageFault`, which the platform layer routes — to the hypervisor
first when one is present (a VM exit), otherwise straight to the guest
kernel.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

#: log2 of the page size; 4 KiB pages as on x86.
PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT

# PTE permission bits (values match their x86 counterparts' meaning).
PTE_PRESENT = 0b001
PTE_WRITABLE = 0b010
PTE_USER = 0b100

# Protection levels used by mprotect-style requests and by Aikido's
# per-thread protection tables. These are *requested* protections; the
# effective PTE bits are derived from them.
PROT_NONE = 0
PROT_READ = 1
PROT_RW = 2


def prot_to_pte_flags(prot: int, user: bool = True) -> int:
    """Convert a PROT_* level to PTE permission bits."""
    if prot == PROT_NONE:
        return 0
    flags = PTE_PRESENT
    if prot == PROT_RW:
        flags |= PTE_WRITABLE
    if user:
        flags |= PTE_USER
    return flags


class PTE:
    """A page-table entry: physical frame number plus permission bits."""

    __slots__ = ("pfn", "flags")

    def __init__(self, pfn: int, flags: int):
        self.pfn = pfn
        self.flags = flags

    def permits(self, is_write: bool, user_mode: bool) -> bool:
        """Check whether an access is allowed by this entry."""
        if not self.flags & PTE_PRESENT:
            return False
        if is_write and not self.flags & PTE_WRITABLE:
            return False
        if user_mode and not self.flags & PTE_USER:
            return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        bits = "".join((
            "P" if self.flags & PTE_PRESENT else "-",
            "W" if self.flags & PTE_WRITABLE else "-",
            "U" if self.flags & PTE_USER else "-",
        ))
        return f"<PTE pfn={self.pfn} {bits}>"


class PageFault(Exception):
    """A hardware page fault.

    ``reason`` distinguishes a missing translation (``"not_present"``) from
    a permission violation (``"protection"``). ``vaddr`` is the faulting
    virtual address; the faulting instruction has *not* retired, so fixing
    the cause and re-executing is always legal.
    """

    def __init__(self, vaddr: int, *, is_write: bool, user_mode: bool,
                 reason: str):
        super().__init__(
            f"page fault at {vaddr:#x} "
            f"({'write' if is_write else 'read'}, "
            f"{'user' if user_mode else 'kernel'}, {reason})")
        self.vaddr = vaddr
        self.is_write = is_write
        self.user_mode = user_mode
        self.reason = reason

    @property
    def vpn(self) -> int:
        return self.vaddr >> PAGE_SHIFT


class PageTable:
    """A flat virtual-page-number -> PTE map.

    Real x86 uses a radix tree; a dict preserves the semantics (including
    the hypervisor's need to enumerate and shadow entries) without the
    bookkeeping noise.
    """

    def __init__(self, name: str = "pt"):
        self.name = name
        self.entries: Dict[int, PTE] = {}
        #: Monotonic version, bumped on every update; used by shadow-page
        #: sync logic and TLB-consistency assertions in tests.
        self.version = 0

    # ------------------------------------------------------------------
    # updates (the guest kernel writes these; the hypervisor intercepts
    # them via GuestPageTable below)
    # ------------------------------------------------------------------
    def map(self, vpn: int, pfn: int, flags: int) -> None:
        """Install or replace a translation."""
        self.entries[vpn] = PTE(pfn, flags)
        self.version += 1

    def unmap(self, vpn: int) -> Optional[PTE]:
        """Remove a translation, returning the old entry if any."""
        old = self.entries.pop(vpn, None)
        if old is not None:
            self.version += 1
        return old

    def set_flags(self, vpn: int, flags: int) -> None:
        """Change the permission bits of an existing entry."""
        entry = self.entries[vpn]
        entry.flags = flags
        self.version += 1

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def lookup(self, vpn: int) -> Optional[PTE]:
        return self.entries.get(vpn)

    def translate(self, vaddr: int, *, is_write: bool,
                  user_mode: bool) -> int:
        """Translate a virtual address, raising :class:`PageFault`."""
        vpn = vaddr >> PAGE_SHIFT
        entry = self.entries.get(vpn)
        if entry is None or not entry.flags & PTE_PRESENT:
            raise PageFault(vaddr, is_write=is_write, user_mode=user_mode,
                            reason="not_present")
        if not entry.permits(is_write, user_mode):
            raise PageFault(vaddr, is_write=is_write, user_mode=user_mode,
                            reason="protection")
        return (entry.pfn << PAGE_SHIFT) | (vaddr & (PAGE_SIZE - 1))

    def mapped_vpns(self) -> Iterator[int]:
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PageTable {self.name!r} entries={len(self.entries)}>"


class GuestPageTable(PageTable):
    """A guest page table whose updates can be observed by a hypervisor.

    The real AikidoVM write-protects the guest's page-table pages and traps
    stores to them; here the same interception is modeled by a write hook
    that fires on every update, carrying (vpn, old PTE, new PTE-or-None).
    """

    def __init__(self, name: str = "guest-pt"):
        super().__init__(name)
        self._write_hook = None

    def set_write_hook(self, hook) -> None:
        """Install the hypervisor's page-table write interceptor."""
        self._write_hook = hook

    def map(self, vpn: int, pfn: int, flags: int) -> None:
        old = self.entries.get(vpn)
        super().map(vpn, pfn, flags)
        if self._write_hook is not None:
            self._write_hook(vpn, old, self.entries[vpn])

    def unmap(self, vpn: int) -> Optional[PTE]:
        old = super().unmap(vpn)
        if old is not None and self._write_hook is not None:
            self._write_hook(vpn, old, None)
        return old

    def set_flags(self, vpn: int, flags: int) -> None:
        old = PTE(self.entries[vpn].pfn, self.entries[vpn].flags)
        super().set_flags(vpn, flags)
        if self._write_hook is not None:
            self._write_hook(vpn, old, self.entries[vpn])


def page_range(vaddr: int, length: int) -> Tuple[int, int]:
    """Return the inclusive-exclusive vpn range covering [vaddr, vaddr+length)."""
    first = vaddr >> PAGE_SHIFT
    last = (vaddr + length - 1) >> PAGE_SHIFT
    return first, last + 1
