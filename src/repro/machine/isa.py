"""The mini-ISA executed by the simulated machine.

The instruction set is deliberately small: just enough to express the
PARSEC-like synthetic workloads (loops, pseudo-random address generation,
loads/stores with both direct and register-indirect addressing, locks,
barriers, thread spawn/join, and syscalls).

Two properties matter for fidelity to the paper:

* **Direct vs indirect memory operands.** AikidoSD rewrites direct-address
  instructions by patching the effective address, while register-indirect
  instructions get a runtime shared/private branch (paper Fig. 4). The
  distinction therefore must exist in the ISA; see :class:`MemOperand`.
* **Static instruction identity.** Dynamic binary rewriting instruments
  *static* instructions (all dynamic executions of the same code-cache
  slot). Every :class:`Instruction` gets a process-unique ``uid`` when its
  program is finalized, which is what AikidoSD's instrumentation set keys
  on.
"""

from __future__ import annotations

import enum
from typing import Optional

#: Number of general-purpose registers per thread (r0..r15).
REGISTER_COUNT = 16


class Opcode(enum.IntEnum):
    """Operation codes of the mini-ISA.

    Arithmetic ops take ``rd, rs1, rs2`` (or ``rd, rs1, imm`` when ``rs2``
    is ``None``). Control flow may only appear as the *last* instruction of
    a basic block (enforced by :meth:`repro.machine.program.Program.finalize`).
    """

    NOP = 0
    #: rd <- imm
    LI = 1
    #: rd <- rs1
    MOV = 2
    ADD = 3
    SUB = 4
    MUL = 5
    AND = 6
    OR = 7
    XOR = 8
    SHL = 9
    SHR = 10
    #: unsigned modulo: rd <- rs1 % (rs2|imm)
    MOD = 11
    #: rd <- mem[ea]; ea from :class:`MemOperand`
    LOAD = 12
    #: mem[ea] <- rs1
    STORE = 13
    #: unconditional jump to label
    JMP = 14
    #: branch to label if rs1 == 0
    BZ = 15
    #: branch to label if rs1 != 0
    BNZ = 16
    #: branch to label if rs1 < rs2 (unsigned)
    BLT = 17
    #: branch to label if rs1 >= rs2 (unsigned)
    BGE = 18
    #: call a label; return address pushed on the thread's shadow stack
    CALL = 19
    RET = 20
    #: acquire lock number (rs1 if set, else imm)
    LOCK = 21
    #: release lock number (rs1 if set, else imm)
    UNLOCK = 22
    #: wait on barrier ``imm`` until ``rs1``-many threads arrive
    BARRIER = 23
    #: rd <- tid of a new thread starting at label with r1 = rs1's value
    SPAWN = 24
    #: join thread whose tid is in rs1
    JOIN = 25
    #: syscall number in imm; args in r1..r3; result in r0
    SYSCALL = 26
    #: hypercall number in imm; args in r1..r4; result in r0
    HYPERCALL = 27
    #: terminate the current thread (the whole process if it is the main thread)
    HALT = 28
    #: atomic mem[ea] <- mem[ea] + rs1, old value in rd
    ATOMIC_ADD = 29
    #: condition-variable wait: cv id in imm, held lock id in rs1's value
    WAIT = 30
    #: condition-variable notify: cv id in imm; rs1's value != 0 -> notify all
    NOTIFY = 31


#: Opcodes that terminate a basic block.
BLOCK_TERMINATORS = frozenset({
    Opcode.JMP,
    Opcode.BZ,
    Opcode.BNZ,
    Opcode.BLT,
    Opcode.BGE,
    Opcode.RET,
    Opcode.HALT,
})

#: Opcodes that read or write data memory (the instructions a conservative
#: shared-data analysis would have to instrument).
MEMORY_OPCODES = frozenset({Opcode.LOAD, Opcode.STORE, Opcode.ATOMIC_ADD})

#: Opcodes that are synchronization events for happens-before analyses.
SYNC_OPCODES = frozenset({
    Opcode.LOCK,
    Opcode.UNLOCK,
    Opcode.BARRIER,
    Opcode.SPAWN,
    Opcode.JOIN,
    Opcode.WAIT,
    Opcode.NOTIFY,
})


class MemOperand:
    """Effective-address operand of a LOAD/STORE/ATOMIC instruction.

    ``base`` is a register number or ``None``. When ``None`` the operand is
    *direct*: the effective address is the constant ``disp`` and AikidoSD
    may rewrite it in place. Otherwise the operand is *indirect*:
    ``ea = regs[base] + disp`` and rewriting requires the runtime
    shared/private check of paper Fig. 4.
    """

    __slots__ = ("base", "disp")

    def __init__(self, base: Optional[int], disp: int = 0):
        if base is not None and not 0 <= base < REGISTER_COUNT:
            raise ValueError(f"bad base register r{base}")
        self.base = base
        self.disp = disp

    @property
    def is_direct(self) -> bool:
        """True when the effective address is a compile-time constant."""
        return self.base is None

    def __repr__(self) -> str:
        # Must match the disassembler's rendering byte-for-byte
        # (tests/machine/test_disasm.py round-trips every bundled
        # workload through both): zero displacements are omitted.
        if self.base is None:
            return f"[{self.disp:#x}]"
        if self.disp:
            return f"[r{self.base}+{self.disp:#x}]"
        return f"[r{self.base}]"

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, MemOperand)
                and self.base == other.base and self.disp == other.disp)

    def __hash__(self) -> int:
        return hash((self.base, self.disp))


class Instruction:
    """One decoded mini-ISA instruction.

    Instances are mutable only in one way: :attr:`uid` is assigned when the
    enclosing program is finalized, and AikidoSD may *patch* the ``mem``
    operand of a direct-address instruction's code-cache copy. The static
    program copy is never modified after finalize.
    """

    __slots__ = ("op", "rd", "rs1", "rs2", "imm", "label", "mem", "uid")

    def __init__(
        self,
        op: Opcode,
        rd: Optional[int] = None,
        rs1: Optional[int] = None,
        rs2: Optional[int] = None,
        imm: int = 0,
        label: Optional[str] = None,
        mem: Optional[MemOperand] = None,
    ):
        self.op = op
        self.rd = rd
        self.rs1 = rs1
        self.rs2 = rs2
        self.imm = imm
        self.label = label
        self.mem = mem
        #: Process-unique static instruction id; -1 until finalized.
        self.uid = -1

    @property
    def is_memory_op(self) -> bool:
        """True when this instruction reads or writes data memory."""
        return self.op in MEMORY_OPCODES

    @property
    def is_write(self) -> bool:
        """True when this instruction writes data memory."""
        return self.op in (Opcode.STORE, Opcode.ATOMIC_ADD)

    @property
    def is_sync_op(self) -> bool:
        """True for synchronization instructions (lock/barrier/spawn/join)."""
        return self.op in SYNC_OPCODES

    def copy(self) -> "Instruction":
        """Shallow copy used by the code cache.

        The copy shares the :attr:`uid` of the original (it is the *same*
        static instruction) but gets its own :class:`MemOperand` so the
        rewriter can patch cached copies without touching the program.
        """
        clone = Instruction(self.op, self.rd, self.rs1, self.rs2,
                            self.imm, self.label,
                            MemOperand(self.mem.base, self.mem.disp)
                            if self.mem is not None else None)
        clone.uid = self.uid
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [self.op.name]
        if self.rd is not None:
            parts.append(f"r{self.rd}")
        if self.rs1 is not None:
            parts.append(f"r{self.rs1}")
        if self.rs2 is not None:
            parts.append(f"r{self.rs2}")
        if self.mem is not None:
            parts.append(repr(self.mem))
        if self.label is not None:
            parts.append(self.label)
        if self.imm:
            parts.append(f"#{self.imm}")
        return " ".join(parts)
