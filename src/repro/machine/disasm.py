"""Disassembler: render programs and blocks as readable listings.

Used by debugging examples and by race reports that want to show the
instruction behind a uid. The format round-trips conceptually (one line
per instruction, explicit operands) but is for humans — there is no
corresponding parser.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.machine.isa import Instruction, Opcode
from repro.machine.program import BasicBlock, Program


def format_instruction(instr: Instruction) -> str:
    """One-line rendering: ``uid: OP operands``."""
    op = instr.op
    parts = []
    if op in (Opcode.LI,):
        parts = [f"r{instr.rd}", f"#{instr.imm:#x}"]
    elif op is Opcode.MOV:
        parts = [f"r{instr.rd}", f"r{instr.rs1}"]
    elif op in (Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.AND, Opcode.OR,
                Opcode.XOR, Opcode.SHL, Opcode.SHR, Opcode.MOD):
        rhs = f"r{instr.rs2}" if instr.rs2 is not None else f"#{instr.imm}"
        parts = [f"r{instr.rd}", f"r{instr.rs1}", rhs]
    elif op is Opcode.LOAD:
        parts = [f"r{instr.rd}", _mem(instr)]
    elif op is Opcode.STORE:
        parts = [f"r{instr.rs1}", _mem(instr)]
    elif op is Opcode.ATOMIC_ADD:
        parts = [f"r{instr.rd}", f"r{instr.rs1}", _mem(instr)]
    elif op in (Opcode.JMP, Opcode.CALL):
        parts = [instr.label]
    elif op in (Opcode.BZ, Opcode.BNZ):
        parts = [f"r{instr.rs1}", instr.label]
    elif op in (Opcode.BLT, Opcode.BGE):
        parts = [f"r{instr.rs1}", f"r{instr.rs2}", instr.label]
    elif op in (Opcode.LOCK, Opcode.UNLOCK):
        parts = [f"r{instr.rs1}" if instr.rs1 is not None
                 else f"#{instr.imm}"]
    elif op is Opcode.BARRIER:
        parts = [f"#{instr.imm}", f"parties=r{instr.rs1}"]
    elif op is Opcode.SPAWN:
        parts = [f"r{instr.rd}", instr.label, f"arg=r{instr.rs1}"]
    elif op is Opcode.JOIN:
        parts = [f"r{instr.rs1}"]
    elif op is Opcode.WAIT:
        parts = [f"cv#{instr.imm}", f"lock=r{instr.rs1}"]
    elif op is Opcode.NOTIFY:
        parts = [f"cv#{instr.imm}",
                 "all" if instr.rs1 is not None else "one"]
    elif op in (Opcode.SYSCALL, Opcode.HYPERCALL):
        parts = [f"#{instr.imm}"]
    uid = f"{instr.uid:4d}" if instr.uid >= 0 else "   ?"
    return f"{uid}: {op.name:<10s} " + ", ".join(p for p in parts if p)


def _mem(instr: Instruction) -> str:
    # Delegate to MemOperand.__repr__ so the listing and instruction
    # reprs (race reports, lint findings) render addresses identically.
    return repr(instr.mem)


def disassemble_block(block: BasicBlock) -> Iterator[str]:
    yield f"{block.label}:"
    for instr in block.instructions:
        yield "    " + format_instruction(instr)


def disassemble(program: Program,
                highlight_uids: Optional[set] = None) -> str:
    """Full program listing; uids in ``highlight_uids`` get a ``*`` mark
    (the sharing detector's instrumented set, typically)."""
    lines = []
    for block in program.blocks:
        lines.append(f"{block.label}:")
        for instr in block.instructions:
            mark = "*" if highlight_uids and instr.uid in highlight_uids \
                else " "
            lines.append(f"  {mark} " + format_instruction(instr))
    return "\n".join(lines)
