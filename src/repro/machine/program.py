"""Static program representation: basic blocks and data segments.

A :class:`Program` is the unit loaded into a simulated process and the unit
the dynamic-binary-rewriting engine caches. Control flow may only occur at
basic-block boundaries, matching the granularity at which DynamoRIO copies
code into its cache.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import WorkloadError
from repro.machine.isa import BLOCK_TERMINATORS, Instruction, Opcode


class BasicBlock:
    """A straight-line run of instructions with a single entry point.

    Blocks fall through to the next block in program order unless their
    last instruction is a terminator (jump/return/halt).
    """

    __slots__ = ("label", "index", "instructions")

    def __init__(self, label: str, index: int = -1):
        self.label = label
        #: Position in the program's block list; -1 until finalized.
        self.index = index
        self.instructions: List[Instruction] = []

    def append(self, instr: Instruction) -> None:
        """Append an instruction, rejecting code after a terminator."""
        if self.instructions and self.instructions[-1].op in BLOCK_TERMINATORS:
            raise WorkloadError(
                f"block {self.label!r}: instruction after terminator")
        self.instructions.append(instr)

    @property
    def terminated(self) -> bool:
        """True when the block ends in an explicit terminator."""
        return bool(self.instructions) and \
            self.instructions[-1].op in BLOCK_TERMINATORS

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BasicBlock {self.label!r} x{len(self.instructions)}>"


class DataSegment:
    """A statically declared region of memory, mapped eagerly at load time.

    ``initial`` maps word offsets (in bytes, 8-aligned) to initial values.
    ``writable=False`` maps the segment read-only (like an ELF .rodata):
    stores raise a genuine guest protection fault — useful both for
    workload hygiene and for exercising the non-Aikido fault path.
    """

    __slots__ = ("name", "size", "initial", "writable")

    def __init__(self, name: str, size: int,
                 initial: Optional[Dict[int, int]] = None,
                 writable: bool = True):
        if size <= 0:
            raise WorkloadError(f"segment {name!r} has non-positive size")
        self.name = name
        self.size = size
        self.initial = dict(initial or {})
        self.writable = writable


class Program:
    """A finalized set of basic blocks plus static data segments.

    Construction protocol: create blocks (usually via
    :class:`repro.machine.asm.ProgramBuilder`), then call :meth:`finalize`,
    which resolves labels to block indices, assigns instruction uids, and
    validates structure. A finalized program is immutable.
    """

    def __init__(self, name: str = "program"):
        self.name = name
        self.blocks: List[BasicBlock] = []
        self.segments: List[DataSegment] = []
        self._labels: Dict[str, int] = {}
        self._finalized = False
        #: uid -> (block index, instruction index); built at finalize.
        self.instruction_locations: Dict[int, Tuple[int, int]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_block(self, label: str) -> BasicBlock:
        """Create and register a new basic block with a unique label."""
        self._check_mutable()
        if label in self._labels:
            raise WorkloadError(f"duplicate label {label!r}")
        block = BasicBlock(label, index=len(self.blocks))
        self._labels[label] = block.index
        self.blocks.append(block)
        return block

    def add_segment(self, segment: DataSegment) -> None:
        """Register a static data segment, mapped by the loader."""
        self._check_mutable()
        self.segments.append(segment)

    def finalize(self) -> "Program":
        """Validate, resolve labels and assign instruction uids.

        Returns self for chaining. Raises
        :class:`~repro.errors.WorkloadError` on structural problems:
        unknown labels, terminators in mid-block (prevented at append),
        fall-through off the end of the program, or an empty program.
        """
        self._check_mutable()
        if not self.blocks:
            raise WorkloadError(f"program {self.name!r} has no code")
        seen_segments: Dict[str, int] = {}
        for index, segment in enumerate(self.segments):
            first = seen_segments.setdefault(segment.name, index)
            if first != index:
                # Both segments would be laid out (at different bases),
                # but the loader's per-process ``segment_bases`` dict
                # keeps only one entry per name — a recipe for workloads
                # writing one copy and reading the other.
                raise WorkloadError(
                    f"{self.name}: duplicate data segment "
                    f"{segment.name!r} (segment #{first}, "
                    f"{self.segments[first].size} bytes, and segment "
                    f"#{index}, {segment.size} bytes)")
        uid = 0
        for block in self.blocks:
            for pos, instr in enumerate(block.instructions):
                if instr.label is not None and instr.label not in self._labels:
                    raise WorkloadError(
                        f"{self.name}: unknown label {instr.label!r} in "
                        f"block {block.label!r}")
                if (instr.op in BLOCK_TERMINATORS
                        and pos != len(block.instructions) - 1):
                    raise WorkloadError(
                        f"{self.name}: terminator mid-block in {block.label!r}")
                instr.uid = uid
                self.instruction_locations[uid] = (block.index, pos)
                uid += 1
        last = self.blocks[-1]
        if not last.terminated:
            raise WorkloadError(
                f"{self.name}: last block {last.label!r} falls through "
                "off the end of the program")
        self._finalized = True
        return self

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def finalized(self) -> bool:
        return self._finalized

    def label_index(self, label: str) -> int:
        """Resolve a label to its block index."""
        try:
            return self._labels[label]
        except KeyError:
            raise WorkloadError(f"unknown label {label!r}") from None

    def block_at(self, index: int) -> BasicBlock:
        return self.blocks[index]

    def instruction_at(self, uid: int) -> Instruction:
        """Return the static instruction with the given uid."""
        block_index, pos = self.instruction_locations[uid]
        return self.blocks[block_index].instructions[pos]

    def iter_instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.instructions

    def static_memory_instruction_count(self) -> int:
        """Number of static instructions that reference data memory."""
        return sum(1 for i in self.iter_instructions() if i.is_memory_op)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Program {self.name!r} blocks={len(self.blocks)} "
                f"segments={len(self.segments)}>")

    # ------------------------------------------------------------------
    def _check_mutable(self) -> None:
        if self._finalized:
            raise WorkloadError(f"program {self.name!r} is finalized")
