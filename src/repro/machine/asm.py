"""ProgramBuilder: a small assembler DSL for constructing workloads.

Workload generators build mini-ISA programs with this class instead of
hand-assembling :class:`~repro.machine.isa.Instruction` lists. The builder
manages basic-block splitting (a new block starts after every terminator
and at every label), provides structured loops, and includes helpers for
the LCG-based pseudo-random address generation that the synthetic PARSEC
workloads use.

Example::

    b = ProgramBuilder("demo")
    b.label("main")
    b.li(1, 0)                        # r1 = 0
    with b.loop(counter=2, count=100):
        b.load(3, base=4, disp=0)     # r3 = mem[r4]
    b.halt()
    program = b.build()
"""

from __future__ import annotations

import contextlib
from typing import Dict, Iterator, Optional

from repro.errors import WorkloadError
from repro.machine.isa import Instruction, MemOperand, Opcode
from repro.machine.layout import STATIC_BASE, align_up
from repro.machine.paging import PAGE_SIZE
from repro.machine.program import DataSegment, Program

#: Multiplier/increment of the builder's LCG helper (Knuth's MMIX values).
LCG_MULTIPLIER = 6364136223846793005
LCG_INCREMENT = 1442695040888963407


class ProgramBuilder:
    """Incrementally assemble a :class:`~repro.machine.program.Program`."""

    def __init__(self, name: str = "program"):
        self._program = Program(name)
        self._current = None
        self._fresh = 0
        self._static_cursor = STATIC_BASE

    # ------------------------------------------------------------------
    # block management
    # ------------------------------------------------------------------
    def label(self, name: str) -> None:
        """Start a new basic block with an explicit label.

        If the previous block does not end in a terminator it falls
        through into this one.
        """
        self._current = self._program.add_block(name)

    def fresh_label(self, hint: str = "L") -> str:
        """Return a new unique label name (does not start a block)."""
        self._fresh += 1
        return f".{hint}{self._fresh}"

    def segment(self, name: str, size: int,
                initial: Optional[Dict[int, int]] = None,
                writable: bool = True) -> int:
        """Declare a static data segment and return its base address.

        The address is computed with the same layout rule the loader uses
        (:func:`repro.machine.layout.static_segment_bases`), so workload
        code can embed it as an immediate. ``writable=False`` gives the
        segment .rodata semantics (initialized at load, sealed after).
        """
        self._program.add_segment(DataSegment(name, size, initial,
                                              writable=writable))
        base = self._static_cursor
        self._static_cursor += align_up(size) + PAGE_SIZE
        return base

    def build(self) -> Program:
        """Finalize and return the program."""
        return self._program.finalize()

    # ------------------------------------------------------------------
    # raw emission
    # ------------------------------------------------------------------
    def emit(self, instr: Instruction) -> Instruction:
        """Append one instruction to the current block."""
        if self._current is None:
            raise WorkloadError("emit before any label()")
        if self._current.terminated:
            # A terminator ended the block; continue in an anonymous one.
            self.label(self.fresh_label("cont"))
        self._current.append(instr)
        return instr

    # ------------------------------------------------------------------
    # data movement / arithmetic
    # ------------------------------------------------------------------
    def li(self, rd: int, imm: int) -> Instruction:
        return self.emit(Instruction(Opcode.LI, rd=rd, imm=imm))

    def mov(self, rd: int, rs: int) -> Instruction:
        return self.emit(Instruction(Opcode.MOV, rd=rd, rs1=rs))

    def _alu(self, op: Opcode, rd: int, rs1: int,
             rs2: Optional[int], imm: int) -> Instruction:
        return self.emit(Instruction(op, rd=rd, rs1=rs1, rs2=rs2, imm=imm))

    def add(self, rd: int, rs1: int, rs2: Optional[int] = None,
            imm: int = 0) -> Instruction:
        return self._alu(Opcode.ADD, rd, rs1, rs2, imm)

    def sub(self, rd: int, rs1: int, rs2: Optional[int] = None,
            imm: int = 0) -> Instruction:
        return self._alu(Opcode.SUB, rd, rs1, rs2, imm)

    def mul(self, rd: int, rs1: int, rs2: Optional[int] = None,
            imm: int = 0) -> Instruction:
        return self._alu(Opcode.MUL, rd, rs1, rs2, imm)

    def and_(self, rd: int, rs1: int, rs2: Optional[int] = None,
             imm: int = 0) -> Instruction:
        return self._alu(Opcode.AND, rd, rs1, rs2, imm)

    def or_(self, rd: int, rs1: int, rs2: Optional[int] = None,
            imm: int = 0) -> Instruction:
        return self._alu(Opcode.OR, rd, rs1, rs2, imm)

    def xor(self, rd: int, rs1: int, rs2: Optional[int] = None,
            imm: int = 0) -> Instruction:
        return self._alu(Opcode.XOR, rd, rs1, rs2, imm)

    def shl(self, rd: int, rs1: int, rs2: Optional[int] = None,
            imm: int = 0) -> Instruction:
        return self._alu(Opcode.SHL, rd, rs1, rs2, imm)

    def shr(self, rd: int, rs1: int, rs2: Optional[int] = None,
            imm: int = 0) -> Instruction:
        return self._alu(Opcode.SHR, rd, rs1, rs2, imm)

    def mod(self, rd: int, rs1: int, rs2: Optional[int] = None,
            imm: int = 0) -> Instruction:
        return self._alu(Opcode.MOD, rd, rs1, rs2, imm)

    # ------------------------------------------------------------------
    # memory
    # ------------------------------------------------------------------
    def load(self, rd: int, base: Optional[int] = None,
             disp: int = 0) -> Instruction:
        """``rd <- mem[base + disp]`` (direct when ``base`` is None)."""
        return self.emit(Instruction(Opcode.LOAD, rd=rd,
                                     mem=MemOperand(base, disp)))

    def store(self, rs: int, base: Optional[int] = None,
              disp: int = 0) -> Instruction:
        """``mem[base + disp] <- rs`` (direct when ``base`` is None)."""
        return self.emit(Instruction(Opcode.STORE, rs1=rs,
                                     mem=MemOperand(base, disp)))

    def atomic_add(self, rd: int, rs: int, base: Optional[int] = None,
                   disp: int = 0) -> Instruction:
        """Atomic fetch-and-add: ``rd <- mem[ea]; mem[ea] += rs``."""
        return self.emit(Instruction(Opcode.ATOMIC_ADD, rd=rd, rs1=rs,
                                     mem=MemOperand(base, disp)))

    # ------------------------------------------------------------------
    # control flow
    # ------------------------------------------------------------------
    def jmp(self, label: str) -> Instruction:
        return self.emit(Instruction(Opcode.JMP, label=label))

    def bz(self, rs: int, label: str) -> Instruction:
        return self.emit(Instruction(Opcode.BZ, rs1=rs, label=label))

    def bnz(self, rs: int, label: str) -> Instruction:
        return self.emit(Instruction(Opcode.BNZ, rs1=rs, label=label))

    def blt(self, rs1: int, rs2: int, label: str) -> Instruction:
        return self.emit(Instruction(Opcode.BLT, rs1=rs1, rs2=rs2,
                                     label=label))

    def bge(self, rs1: int, rs2: int, label: str) -> Instruction:
        return self.emit(Instruction(Opcode.BGE, rs1=rs1, rs2=rs2,
                                     label=label))

    def call(self, label: str) -> Instruction:
        return self.emit(Instruction(Opcode.CALL, label=label))

    def ret(self) -> Instruction:
        return self.emit(Instruction(Opcode.RET))

    def halt(self) -> Instruction:
        return self.emit(Instruction(Opcode.HALT))

    # ------------------------------------------------------------------
    # synchronization & system
    # ------------------------------------------------------------------
    def lock(self, lock_id: Optional[int] = None,
             reg: Optional[int] = None) -> Instruction:
        """Acquire lock ``lock_id`` (constant) or the lock id in ``reg``."""
        if (lock_id is None) == (reg is None):
            raise WorkloadError("lock() needs exactly one of lock_id/reg")
        return self.emit(Instruction(Opcode.LOCK, rs1=reg,
                                     imm=lock_id or 0))

    def unlock(self, lock_id: Optional[int] = None,
               reg: Optional[int] = None) -> Instruction:
        if (lock_id is None) == (reg is None):
            raise WorkloadError("unlock() needs exactly one of lock_id/reg")
        return self.emit(Instruction(Opcode.UNLOCK, rs1=reg,
                                     imm=lock_id or 0))

    def wait(self, cv_id: int, lock_id: Optional[int] = None,
             lock_reg: Optional[int] = None) -> Instruction:
        """Wait on condition variable ``cv_id``; the calling thread must
        hold the given lock (pthread_cond_wait semantics)."""
        if (lock_id is None) == (lock_reg is None):
            raise WorkloadError("wait() needs exactly one of lock_id/lock_reg")
        if lock_reg is None:
            self.li(15, lock_id)
            lock_reg = 15
        return self.emit(Instruction(Opcode.WAIT, rs1=lock_reg, imm=cv_id))

    def notify(self, cv_id: int, all_threads: bool = False) -> Instruction:
        """Wake one (or all) waiters of condition variable ``cv_id``."""
        rs1 = None
        if all_threads:
            self.li(15, 1)
            rs1 = 15
        return self.emit(Instruction(Opcode.NOTIFY, rs1=rs1, imm=cv_id))

    def barrier(self, barrier_id: int, parties_reg: int) -> Instruction:
        """Wait on barrier ``barrier_id`` until ``regs[parties_reg]`` arrive."""
        return self.emit(Instruction(Opcode.BARRIER, rs1=parties_reg,
                                     imm=barrier_id))

    def spawn(self, rd: int, label: str, arg_reg: int) -> Instruction:
        """Spawn a thread at ``label`` with ``r1 = regs[arg_reg]``; tid in rd."""
        return self.emit(Instruction(Opcode.SPAWN, rd=rd, rs1=arg_reg,
                                     label=label))

    def join(self, tid_reg: int) -> Instruction:
        return self.emit(Instruction(Opcode.JOIN, rs1=tid_reg))

    def syscall(self, number: int) -> Instruction:
        return self.emit(Instruction(Opcode.SYSCALL, imm=number))

    def hypercall(self, number: int) -> Instruction:
        return self.emit(Instruction(Opcode.HYPERCALL, imm=number))

    # ------------------------------------------------------------------
    # structured helpers
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def loop(self, counter: int, count: int) -> Iterator[None]:
        """Counted loop: ``for counter in range(count)``.

        Emits the loop header/back edge around the with-block body.
        ``counter`` must not be clobbered by the body.
        """
        head = self.fresh_label("loop")
        done = self.fresh_label("done")
        self.li(counter, 0)
        self.label(head)
        # counter >= count -> exit
        scratch = self._loop_bound_reg(counter)
        self.li(scratch, count)
        self.bge(counter, scratch, done)
        yield
        self.add(counter, counter, imm=1)
        self.jmp(head)
        self.label(done)

    @contextlib.contextmanager
    def loop_reg(self, counter: int, bound_reg: int) -> Iterator[None]:
        """Counted loop with a register bound: ``for counter in range(bound)``."""
        head = self.fresh_label("loop")
        done = self.fresh_label("done")
        self.li(counter, 0)
        self.label(head)
        self.bge(counter, bound_reg, done)
        yield
        self.add(counter, counter, imm=1)
        self.jmp(head)
        self.label(done)

    def lcg_next(self, state_reg: int) -> None:
        """Advance an in-register LCG: ``state = state * A + C (mod 2^64)``."""
        self.mul(state_reg, state_reg, imm=LCG_MULTIPLIER)
        self.add(state_reg, state_reg, imm=LCG_INCREMENT)

    def lcg_offset(self, dest_reg: int, state_reg: int, region_words: int,
                   *, advance: bool = True) -> None:
        """Derive an 8-aligned word offset within a region from the LCG.

        ``dest = ((state >> 17) % region_words) * 8``. Advances the LCG
        first unless ``advance`` is False.
        """
        if advance:
            self.lcg_next(state_reg)
        self.shr(dest_reg, state_reg, imm=17)
        self.mod(dest_reg, dest_reg, imm=region_words)
        self.shl(dest_reg, dest_reg, imm=3)

    # ------------------------------------------------------------------
    def _loop_bound_reg(self, counter: int) -> int:
        """Pick a scratch register for loop bounds that isn't the counter.

        r15 is reserved by convention for builder scratch; if the counter
        *is* r15, fall back to r14.
        """
        return 14 if counter == 15 else 15
