"""A small per-thread TLB.

The TLB caches (vpn -> pfn, flags) translations so the interpreter does not
walk the page table on every access — and, more importantly for fidelity,
so that *stale protection* is a real hazard: when AikidoVM downgrades a
page's protection it must invalidate the affected TLB entries in every
thread, exactly as the real hypervisor must execute INVLPG/flushes. Tests
deliberately break this invariant to show the sharing detector would miss
accesses without the flushes.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, Optional, Tuple

_PAGE_SHIFT = 12
_PTE_PRESENT = 0b001
_PTE_WRITABLE = 0b010
_PTE_USER = 0b100


class TLB:
    """A capacity-bounded FIFO translation cache.

    Entries store the PTE permission bits so protection checks hit the TLB
    too (as on real hardware, where a cached translation bypasses the page
    walk entirely).
    """

    def __init__(self, capacity: int = 64):
        self.capacity = capacity
        self._entries: "OrderedDict[int, Tuple[int, int]]" = OrderedDict()
        #: Translation micro-caches: vpn -> page-base physical address for
        #: entries whose cached permission bits already allow a user-mode
        #: read (``fast_ro``) or write (``fast_rw``). Strict subsets of
        #: ``_entries`` (same FIFO lifetime, same chaos semantics), they
        #: let hot paths resolve a repeat same-page access with one dict
        #: probe instead of lookup() + permission re-check. A fast hit is
        #: valid in kernel mode too: user-permitted implies
        #: kernel-permitted.
        self.fast_ro: Dict[int, int] = {}
        self.fast_rw: Dict[int, int] = {}
        self.fast_hits = 0
        self.fast_misses = 0
        #: statistics for the cost model
        self.hits = 0
        self.misses = 0
        self.flushes = 0
        self.single_invalidations = 0
        #: Invalidations the chaos injector swallowed (stale_tlb) and
        #: single invalidations it escalated to full flushes (tlb_flush).
        self.dropped_invalidations = 0
        self.chaos_flushes = 0
        #: Chaos wiring (None = no injection on this TLB).
        self.chaos = None
        self.owner_tid: Optional[int] = None

    def lookup(self, vpn: int) -> Optional[Tuple[int, int]]:
        """Return (pfn, flags) or None on miss."""
        entry = self._entries.get(vpn)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def fill(self, vpn: int, pfn: int, flags: int) -> None:
        """Insert a translation, evicting FIFO-oldest when full."""
        if vpn not in self._entries and len(self._entries) >= self.capacity:
            evicted, _ = self._entries.popitem(last=False)
            self.fast_ro.pop(evicted, None)
            self.fast_rw.pop(evicted, None)
        self._entries[vpn] = (pfn, flags)
        if flags & _PTE_PRESENT and flags & _PTE_USER:
            base = pfn << _PAGE_SHIFT
            self.fast_ro[vpn] = base
            if flags & _PTE_WRITABLE:
                self.fast_rw[vpn] = base
            else:
                self.fast_rw.pop(vpn, None)
        else:
            self.fast_ro.pop(vpn, None)
            self.fast_rw.pop(vpn, None)

    def invalidate(self, vpn: int) -> None:
        """Drop one page's translation (INVLPG)."""
        chaos = self.chaos
        if chaos is not None and vpn in self._entries:
            if chaos.fires("stale_tlb", tid=self.owner_tid,
                           detail=f"vpn={vpn:#x}"):
                # The shootdown is lost: the stale (possibly permissive)
                # translation survives. Deliberately unsound — the
                # invariant monitor must flag what this leaves behind.
                self.dropped_invalidations += 1
                return
            if chaos.fires("tlb_flush", tid=self.owner_tid,
                           detail=f"vpn={vpn:#x}"):
                # Escalate INVLPG to a full flush: a superset of the
                # requested shootdown, so correctness is preserved.
                self.chaos_flushes += 1
                self.flush()
                chaos.note_recovered("tlb_flush")
                return
        if self._entries.pop(vpn, None) is not None:
            self.fast_ro.pop(vpn, None)
            self.fast_rw.pop(vpn, None)
            self.single_invalidations += 1

    def flush(self) -> None:
        """Drop every translation (CR3 reload / full flush)."""
        self._entries.clear()
        self.fast_ro.clear()
        self.fast_rw.clear()
        self.flushes += 1

    def items(self) -> Iterator[Tuple[int, Tuple[int, int]]]:
        """Iterate (vpn, (pfn, flags)) — coherence checks walk this."""
        return iter(self._entries.items())

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, vpn: int) -> bool:
        return vpn in self._entries
