"""Simulated physical memory: frames of 8-byte words.

Physical memory is word-addressable (all mini-ISA accesses are 8-byte and
8-aligned, mirroring the 8-byte "variable" blocks the Aikido race detector
uses). Frames are allocated from a simple bump allocator with a free list;
freed frames are scrubbed so reuse cannot leak stale values between
simulated processes.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import PhysicalMemoryError
from repro.machine.paging import PAGE_SHIFT, PAGE_SIZE

#: Bytes per machine word; every data access moves one word.
WORD_SIZE = 8


class PhysicalMemory:
    """Machine memory: a frame allocator plus a word-granular value store.

    Values default to zero, so a fresh frame reads as zeroed memory.
    """

    def __init__(self, frame_limit: int = 1 << 20):
        #: Maximum number of frames (default 4 GiB worth of 4 KiB pages).
        self.frame_limit = frame_limit
        self._next_pfn = 0
        self._free: List[int] = []
        self._allocated: set[int] = set()
        # word-index (paddr >> 3) -> value
        self._words: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # frame management
    # ------------------------------------------------------------------
    def alloc_frame(self) -> int:
        """Allocate a zeroed physical frame; returns its frame number."""
        if self._free:
            pfn = self._free.pop()
        else:
            if self._next_pfn >= self.frame_limit:
                raise PhysicalMemoryError("out of physical frames")
            pfn = self._next_pfn
            self._next_pfn += 1
        self._allocated.add(pfn)
        return pfn

    def free_frame(self, pfn: int) -> None:
        """Release a frame, scrubbing its contents."""
        if pfn not in self._allocated:
            raise PhysicalMemoryError(f"double free of frame {pfn}")
        self._allocated.remove(pfn)
        base = (pfn << PAGE_SHIFT) >> 3
        for widx in range(base, base + PAGE_SIZE // WORD_SIZE):
            self._words.pop(widx, None)
        self._free.append(pfn)

    def is_allocated(self, pfn: int) -> bool:
        return pfn in self._allocated

    @property
    def allocated_frame_count(self) -> int:
        return len(self._allocated)

    # ------------------------------------------------------------------
    # data access (by physical address)
    # ------------------------------------------------------------------
    def read_word(self, paddr: int) -> int:
        """Read the 8-byte word at the physical address (must be aligned)."""
        if paddr & 7:
            raise PhysicalMemoryError(f"unaligned read at {paddr:#x}")
        self._check_backed(paddr)
        return self._words.get(paddr >> 3, 0)

    def write_word(self, paddr: int, value: int) -> None:
        """Write the 8-byte word at the physical address (must be aligned)."""
        if paddr & 7:
            raise PhysicalMemoryError(f"unaligned write at {paddr:#x}")
        self._check_backed(paddr)
        self._words[paddr >> 3] = value & 0xFFFFFFFFFFFFFFFF

    # ------------------------------------------------------------------
    def _check_backed(self, paddr: int) -> None:
        if (paddr >> PAGE_SHIFT) not in self._allocated:
            raise PhysicalMemoryError(
                f"access to unallocated frame at paddr {paddr:#x}")
