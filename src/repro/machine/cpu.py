"""Single-instruction CPU interpreter and cycle accounting.

The CPU executes exactly one already-fetched instruction at a time.
Fetching, program-counter management, instrumentation hooks and quantum
scheduling are the job of the *execution driver* (either the plain native
driver or the DBR engine) and of the guest kernel; the CPU only implements
instruction semantics:

* arithmetic on 64-bit wrapping registers,
* memory accesses translated through the platform's ``translate``
  callback, which raises :class:`~repro.machine.paging.PageFault` on
  protection violations (this is how Aikido sees anything at all),
* control transfers and traps, returned as small tagged values that the
  driver/kernel interpret.

Return protocol of :meth:`CPU.execute`:

* ``None`` — instruction retired, advance to the next one;
* ``("jmp", block_index)`` — transfer to a block;
* ``("call", block_index)`` / ``("ret",)`` — call/return (driver maintains
  the shadow return stack);
* an :class:`Action` — a trap the kernel must service (syscall, lock,
  spawn, ...). The instruction has retired when the kernel completes it.

A raised ``PageFault`` means the instruction did *not* retire and must be
re-executed after the fault is repaired.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.errors import InvalidInstructionError
from repro.machine.isa import Instruction, Opcode

_MASK64 = 0xFFFFFFFFFFFFFFFF


class CycleCounter:
    """Accumulates simulated cycles, split by category.

    ``instr_cycles`` is incremented inline by drivers (hot path); rarer
    events use :meth:`charge`. Slowdown figures are ratios of
    :attr:`total` between runs.
    """

    def __init__(self):
        self.instr_cycles = 0
        self.by_category: Dict[str, int] = {}
        #: Running sum of every charge(); kept in lockstep with
        #: ``by_category`` so ``total`` never re-sums the dict (it is read
        #: at quantum cadence by metrics/invariants and at every fault by
        #: the sharing detector's fault log).
        self._charged = 0

    def charge(self, category: str, cycles: int) -> None:
        """Add ``cycles`` to a named cost category."""
        try:
            self.by_category[category] += cycles
        except KeyError:
            self.by_category[category] = cycles
        self._charged += cycles

    @property
    def total(self) -> int:
        """All simulated cycles of the run."""
        return self.instr_cycles + self._charged

    def snapshot(self) -> Dict[str, int]:
        """A copy of the per-category breakdown, including instructions."""
        out = dict(self.by_category)
        out["instr"] = self.instr_cycles
        return out


class Action:
    """Base class for traps the guest kernel must service."""

    __slots__ = ("instr",)

    def __init__(self, instr: Instruction):
        self.instr = instr


class SyscallAction(Action):
    __slots__ = ("number",)

    def __init__(self, instr: Instruction, number: int):
        super().__init__(instr)
        self.number = number


class HypercallAction(Action):
    __slots__ = ("number",)

    def __init__(self, instr: Instruction, number: int):
        super().__init__(instr)
        self.number = number


class LockAction(Action):
    __slots__ = ("lock_id",)

    def __init__(self, instr: Instruction, lock_id: int):
        super().__init__(instr)
        self.lock_id = lock_id


class UnlockAction(Action):
    __slots__ = ("lock_id",)

    def __init__(self, instr: Instruction, lock_id: int):
        super().__init__(instr)
        self.lock_id = lock_id


class BarrierAction(Action):
    __slots__ = ("barrier_id", "parties")

    def __init__(self, instr: Instruction, barrier_id: int, parties: int):
        super().__init__(instr)
        self.barrier_id = barrier_id
        self.parties = parties


class SpawnAction(Action):
    __slots__ = ("target_block", "arg", "rd")

    def __init__(self, instr: Instruction, target_block: int, arg: int,
                 rd: int):
        super().__init__(instr)
        self.target_block = target_block
        self.arg = arg
        self.rd = rd


class JoinAction(Action):
    __slots__ = ("tid",)

    def __init__(self, instr: Instruction, tid: int):
        super().__init__(instr)
        self.tid = tid


class WaitAction(Action):
    __slots__ = ("cv_id", "lock_id")

    def __init__(self, instr: Instruction, cv_id: int, lock_id: int):
        super().__init__(instr)
        self.cv_id = cv_id
        self.lock_id = lock_id


class NotifyAction(Action):
    __slots__ = ("cv_id", "notify_all")

    def __init__(self, instr: Instruction, cv_id: int, notify_all: bool):
        super().__init__(instr)
        self.cv_id = cv_id
        self.notify_all = notify_all


class HaltAction(Action):
    __slots__ = ()


#: Base cycle cost per opcode (ALU = 1, memory ops cost more). Trap-style
#: opcodes are charged by the kernel when serviced, so only their decode
#: cost appears here.
BASE_COST: Dict[Opcode, int] = {op: 1 for op in Opcode}
BASE_COST[Opcode.LOAD] = 2
BASE_COST[Opcode.STORE] = 2
BASE_COST[Opcode.ATOMIC_ADD] = 6
BASE_COST[Opcode.MUL] = 3
BASE_COST[Opcode.MOD] = 3


class CPU:
    """Executes single instructions against a translation callback.

    ``translate(thread, vaddr, is_write)`` must return a physical address
    or raise :class:`~repro.machine.paging.PageFault`. ``user_mode``
    selects the privilege level for the protection check (guest kernel
    code runs with ``user_mode=False``).
    """

    def __init__(self, memory, translate: Callable, *, user_mode: bool = True):
        self.memory = memory
        self.translate = translate
        self.user_mode = user_mode

    def execute(self, instr: Instruction, thread,
                ea_override: Optional[int] = None):
        """Execute one fetched instruction for ``thread``.

        ``ea_override`` replaces the computed effective address of a memory
        instruction; AikidoSD's rewriting uses it to redirect instrumented
        accesses through mirror pages.
        """
        op = instr.op
        regs = thread.regs

        if op is Opcode.LOAD:
            mem = instr.mem
            ea = ea_override if ea_override is not None else (
                mem.disp if mem.base is None else
                (regs[mem.base] + mem.disp) & _MASK64)
            paddr = self.translate(thread, ea, False)
            regs[instr.rd] = self.memory.read_word(paddr)
            return None

        if op is Opcode.STORE:
            mem = instr.mem
            ea = ea_override if ea_override is not None else (
                mem.disp if mem.base is None else
                (regs[mem.base] + mem.disp) & _MASK64)
            paddr = self.translate(thread, ea, True)
            self.memory.write_word(paddr, regs[instr.rs1])
            return None

        if op is Opcode.ATOMIC_ADD:
            mem = instr.mem
            ea = ea_override if ea_override is not None else (
                mem.disp if mem.base is None else
                (regs[mem.base] + mem.disp) & _MASK64)
            paddr = self.translate(thread, ea, True)
            old = self.memory.read_word(paddr)
            self.memory.write_word(paddr, (old + regs[instr.rs1]) & _MASK64)
            if instr.rd is not None:
                regs[instr.rd] = old
            return None

        if op is Opcode.LI:
            regs[instr.rd] = instr.imm & _MASK64
            return None
        if op is Opcode.MOV:
            regs[instr.rd] = regs[instr.rs1]
            return None

        if op is Opcode.ADD:
            rhs = regs[instr.rs2] if instr.rs2 is not None else instr.imm
            regs[instr.rd] = (regs[instr.rs1] + rhs) & _MASK64
            return None
        if op is Opcode.SUB:
            rhs = regs[instr.rs2] if instr.rs2 is not None else instr.imm
            regs[instr.rd] = (regs[instr.rs1] - rhs) & _MASK64
            return None
        if op is Opcode.MUL:
            rhs = regs[instr.rs2] if instr.rs2 is not None else instr.imm
            regs[instr.rd] = (regs[instr.rs1] * rhs) & _MASK64
            return None
        if op is Opcode.AND:
            rhs = regs[instr.rs2] if instr.rs2 is not None else instr.imm
            regs[instr.rd] = regs[instr.rs1] & rhs
            return None
        if op is Opcode.OR:
            rhs = regs[instr.rs2] if instr.rs2 is not None else instr.imm
            regs[instr.rd] = regs[instr.rs1] | rhs
            return None
        if op is Opcode.XOR:
            rhs = regs[instr.rs2] if instr.rs2 is not None else instr.imm
            regs[instr.rd] = (regs[instr.rs1] ^ rhs) & _MASK64
            return None
        if op is Opcode.SHL:
            rhs = regs[instr.rs2] if instr.rs2 is not None else instr.imm
            regs[instr.rd] = (regs[instr.rs1] << (rhs & 63)) & _MASK64
            return None
        if op is Opcode.SHR:
            rhs = regs[instr.rs2] if instr.rs2 is not None else instr.imm
            regs[instr.rd] = regs[instr.rs1] >> (rhs & 63)
            return None
        if op is Opcode.MOD:
            rhs = regs[instr.rs2] if instr.rs2 is not None else instr.imm
            if rhs == 0:
                raise InvalidInstructionError("modulo by zero")
            regs[instr.rd] = regs[instr.rs1] % rhs
            return None

        if op is Opcode.JMP:
            return ("jmp", thread.program.label_index(instr.label))
        if op is Opcode.BZ:
            if regs[instr.rs1] == 0:
                return ("jmp", thread.program.label_index(instr.label))
            return None
        if op is Opcode.BNZ:
            if regs[instr.rs1] != 0:
                return ("jmp", thread.program.label_index(instr.label))
            return None
        if op is Opcode.BLT:
            if regs[instr.rs1] < regs[instr.rs2]:
                return ("jmp", thread.program.label_index(instr.label))
            return None
        if op is Opcode.BGE:
            if regs[instr.rs1] >= regs[instr.rs2]:
                return ("jmp", thread.program.label_index(instr.label))
            return None
        if op is Opcode.CALL:
            return ("call", thread.program.label_index(instr.label))
        if op is Opcode.RET:
            return ("ret",)

        if op is Opcode.NOP:
            return None

        if op is Opcode.LOCK:
            lock_id = (regs[instr.rs1] if instr.rs1 is not None
                       else instr.imm)
            return LockAction(instr, lock_id)
        if op is Opcode.UNLOCK:
            lock_id = (regs[instr.rs1] if instr.rs1 is not None
                       else instr.imm)
            return UnlockAction(instr, lock_id)
        if op is Opcode.BARRIER:
            return BarrierAction(instr, instr.imm, regs[instr.rs1])
        if op is Opcode.SPAWN:
            return SpawnAction(instr,
                               thread.program.label_index(instr.label),
                               regs[instr.rs1], instr.rd)
        if op is Opcode.JOIN:
            return JoinAction(instr, regs[instr.rs1])
        if op is Opcode.SYSCALL:
            return SyscallAction(instr, instr.imm)
        if op is Opcode.HYPERCALL:
            return HypercallAction(instr, instr.imm)
        if op is Opcode.WAIT:
            return WaitAction(instr, instr.imm, regs[instr.rs1])
        if op is Opcode.NOTIFY:
            notify_all = (instr.rs1 is not None
                          and regs[instr.rs1] != 0)
            return NotifyAction(instr, instr.imm, notify_all)
        if op is Opcode.HALT:
            return HaltAction(instr)

        raise InvalidInstructionError(f"cannot execute {instr!r}")

    def effective_address(self, instr: Instruction, thread) -> int:
        """Compute the app-level effective address of a memory instruction."""
        mem = instr.mem
        if mem.base is None:
            return mem.disp
        return (thread.regs[mem.base] + mem.disp) & _MASK64
