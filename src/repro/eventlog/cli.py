"""The ``aikido-repro record`` / ``aikido-repro replay`` verb tree.

::

    aikido-repro record --benchmark canneal --out canneal.aiklog
    aikido-repro replay --log canneal.aiklog \
        --analyses fasttrack,djit,eraser,memtag --jobs 4
    aikido-repro replay --log canneal.aiklog --diff-live \
        --benchmark canneal             # verdicts must equal live runs

``record`` simulates the workload once under full instrumentation and
streams every access + synchronization event into a chunked, CRC-framed
event log (atomic finalize — a killed recording leaves no torn file
behind). ``replay`` feeds that log to N detectors with zero
re-simulation; ``--jobs`` fans the analyses out over worker processes.

Exit codes follow the repo contract: 0 ok; 2 usage error, harness
error, or corrupt/torn log; 3 cross-analysis disagreement or a
``--diff-live`` mismatch.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.errors import EventLogError, HarnessError, WorkloadError

DEFAULT_ANALYSES = "fasttrack,djit,eraser,memtag"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="aikido-repro",
        description="Record one simulation, replay it through N analyses")
    sub = parser.add_subparsers(dest="verb", required=True)

    record = sub.add_parser(
        "record", help="simulate once, write the event log")
    record.add_argument("--benchmark", default="canneal")
    record.add_argument("--threads", type=int, default=4)
    record.add_argument("--scale", type=float, default=1.0,
                        help="workload size multiplier")
    record.add_argument("--seed", type=int, default=0)
    record.add_argument("--quantum", type=int, default=200)
    record.add_argument("--jitter", type=float, default=0.0,
                        help="scheduler jitter (keep 0.0 for runs meant "
                             "to be diffed against live re-runs)")
    record.add_argument("--out", metavar="PATH", default=None,
                        help="event log path (default <benchmark>.aiklog)")
    record.add_argument("--chunk-events", type=int, default=None,
                        metavar="N", help="events per log chunk")

    replay = sub.add_parser(
        "replay", help="replay a recorded log through N analyses")
    replay.add_argument("--log", metavar="PATH", required=True)
    replay.add_argument("--analyses", default=DEFAULT_ANALYSES,
                        help=f"comma-separated (default "
                             f"{DEFAULT_ANALYSES})")
    replay.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (1 = inline; the merged "
                             "verdicts are identical either way)")
    replay.add_argument("--json", metavar="PATH", default=None,
                        help="dump the merged verdict document")
    replay.add_argument("--no-check", action="store_true",
                        help="report cross-analysis disagreements "
                             "instead of failing on them")
    replay.add_argument("--diff-live", action="store_true",
                        help="re-run each analysis live and require "
                             "bit-identical verdicts (needs the "
                             "recording parameters below)")
    replay.add_argument("--benchmark", default="canneal",
                        help="workload of the recording (--diff-live)")
    replay.add_argument("--threads", type=int, default=4)
    replay.add_argument("--scale", type=float, default=1.0)
    replay.add_argument("--seed", type=int, default=0)
    replay.add_argument("--quantum", type=int, default=200)
    replay.add_argument("--jitter", type=float, default=0.0)
    return parser


def _record(args, counters) -> int:
    from repro.eventlog.replay import record_run
    from repro.workloads.parsec import get_benchmark

    out = args.out or f"{args.benchmark}.aiklog"
    program = get_benchmark(args.benchmark).program(
        threads=args.threads, scale=args.scale)
    kwargs = {}
    if args.chunk_events is not None:
        kwargs["chunk_events"] = args.chunk_events
    stats = record_run(program, out, seed=args.seed, quantum=args.quantum,
                       jitter=args.jitter, counters=counters, **kwargs)
    print(f"recorded {args.benchmark} ({args.threads} threads): "
          f"{stats['events']} events in {stats['chunks']} chunks, "
          f"{stats['bytes']} bytes -> {stats['path']}")
    return 0


def _replay(args, counters) -> int:
    from repro.eventlog.replay import ReplayFanout, live_run_verdict

    names = [name.strip() for name in args.analyses.split(",")
             if name.strip()]
    fanout = ReplayFanout(names, jobs=args.jobs, counters=counters)
    merged = fanout.run(args.log, check=False)
    stat = merged["log"]
    for name in merged["analyses"]:
        verdict = merged["verdicts"][name]
        print(f"{name:>10s}: {verdict['report_count']} report(s) on "
              f"{len(verdict['blocks'])} block(s)")
    status = 0
    if merged["disagreements"]:
        print(f"{len(merged['disagreements'])} cross-analysis "
              f"disagreement(s):", file=sys.stderr)
        for line in merged["disagreements"]:
            print(f"  {line}", file=sys.stderr)
        if not args.no_check:
            status = 3
    if args.diff_live:
        from repro.workloads.parsec import get_benchmark

        spec = get_benchmark(args.benchmark)
        mismatches = []
        for name in merged["analyses"]:
            live = live_run_verdict(
                spec.program(threads=args.threads, scale=args.scale),
                name, seed=args.seed, quantum=args.quantum,
                jitter=args.jitter)
            if live != merged["verdicts"][name]:
                mismatches.append(name)
        if mismatches:
            print(f"replayed verdicts differ from live runs for: "
                  f"{', '.join(mismatches)}", file=sys.stderr)
            status = 3
        else:
            print(f"diff-live ok: {len(merged['analyses'])} replayed "
                  f"verdict(s) bit-identical to live runs")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(merged, handle, indent=2, sort_keys=True)
        print(f"(json written to {args.json})")
    print(f"replayed {stat['events']} events x {len(names)} analyses "
          f"from {stat['chunks']} chunk(s) (jobs={fanout.jobs}, "
          f"0 simulations)")
    return status


def main(argv=None) -> int:
    from repro.observability.eventlog import EventLogCounters

    parser = build_parser()
    args = parser.parse_args(argv)
    counters = EventLogCounters()
    started = time.monotonic()
    try:
        if args.verb == "record":
            status = _record(args, counters)
        else:
            status = _replay(args, counters)
    except (EventLogError, HarnessError, WorkloadError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"[{time.monotonic() - started:.1f}s; {counters.stats_line()}]",
          file=sys.stderr)
    return status


if __name__ == "__main__":
    raise SystemExit(main())
