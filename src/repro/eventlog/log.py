"""Chunked on-disk framing for recorded event logs.

File layout::

    [file header]  magic "AIKLOG\\x01" + reserved byte
    [chunk]*       "CHNK" + event_count + byte_length + crc32(payload)
                   + payload (encoding.encode_entries of the entries)
    [trailer]      "ENDL" + total_events + total_chunks
                   + crc32(header..last chunk)

Chunks delta-code independently (the encoder resets per chunk), so a
reader can skip to any chunk and decode it in isolation — the property
parallel replay needs to hand chunks to workers. The trailer is written
only by :meth:`EventLogWriter.close`; its CRC covers every preceding
byte, so a torn file (killed writer, short copy) is detected and
*rejected* rather than replayed as a silently shortened trace.

Durability follows the WAL idiom used elsewhere in the repo: the writer
appends to a temp file in the destination directory and atomically
``os.replace``\\ s it into place after fsync, so a crashed recording
never leaves a half-written log under the final name.
"""

from __future__ import annotations

import os
import struct
import tempfile
import zlib
from typing import Iterator, List, Tuple

from repro.errors import EventLogError
from repro.eventlog.encoding import TraceEntry, decode_entries, encode_entries

FILE_MAGIC = b"AIKLOG\x01\x00"
_CHUNK_MAGIC = b"CHNK"
_TRAILER_MAGIC = b"ENDL"
_CHUNK_HEADER = struct.Struct("<4sIII")     # magic, events, length, crc
_TRAILER = struct.Struct("<4sQII")          # magic, events, chunks, crc

DEFAULT_CHUNK_EVENTS = 2048


class EventLogWriter:
    """Append-only event log writer with atomic finalize.

    Entries accumulate in memory until ``chunk_events`` are pending, then
    flush as one framed chunk. :meth:`close` flushes the final partial
    chunk, writes the trailer, fsyncs, and atomically renames the temp
    file to ``path``. Until then ``path`` does not exist (or keeps its
    previous content), so readers never observe a torn log. Usable as a
    context manager: exceptions abort the recording and unlink the temp
    file.
    """

    def __init__(self, path: str, *, chunk_events: int = DEFAULT_CHUNK_EVENTS,
                 counters=None):
        if chunk_events < 1:
            raise EventLogError(
                f"eventlog: chunk_events must be >= 1, got {chunk_events}")
        self.path = str(path)
        self.chunk_events = chunk_events
        self.counters = counters
        self.events = 0
        self.chunks = 0
        self.bytes_written = 0
        self._pending: List[TraceEntry] = []
        directory = os.path.dirname(os.path.abspath(self.path))
        fd, self._tmp_path = tempfile.mkstemp(
            prefix=".aiklog-", dir=directory)
        self._fh = os.fdopen(fd, "wb")
        self._crc = 0
        self._write(FILE_MAGIC)

    def _write(self, data: bytes) -> None:
        self._fh.write(data)
        self._crc = zlib.crc32(data, self._crc)
        self.bytes_written += len(data)

    def append(self, entry: TraceEntry) -> None:
        self._pending.append(entry)
        self.events += 1
        if self.counters is not None:
            self.counters.bump("events_recorded")
        if len(self._pending) >= self.chunk_events:
            self._flush_chunk()

    def extend(self, entries) -> None:
        for entry in entries:
            self.append(entry)

    def _flush_chunk(self) -> None:
        if not self._pending:
            return
        payload = encode_entries(self._pending)
        header = _CHUNK_HEADER.pack(_CHUNK_MAGIC, len(self._pending),
                                    len(payload), zlib.crc32(payload))
        self._write(header)
        self._write(payload)
        self.chunks += 1
        if self.counters is not None:
            self.counters.bump("chunks_written")
        self._pending.clear()

    def close(self) -> None:
        """Flush, write the trailer, fsync and atomically publish."""
        if self._fh is None:
            return
        self._flush_chunk()
        trailer = _TRAILER.pack(_TRAILER_MAGIC, self.events, self.chunks,
                                self._crc)
        self._write(trailer)
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._fh.close()
        self._fh = None
        os.replace(self._tmp_path, self.path)
        if self.counters is not None:
            self.counters.bump("logs_finalized")
            self.counters.bump("bytes_written", self.bytes_written)

    def abort(self) -> None:
        """Discard the recording; the destination path is untouched."""
        if self._fh is None:
            return
        self._fh.close()
        self._fh = None
        os.unlink(self._tmp_path)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc_type is None:
            self.close()
        else:
            self.abort()
        return False


class EventLogReader:
    """Lazy, validating reader over a finalized event log.

    ``iter_chunks`` decodes one chunk at a time — memory stays bounded
    by the chunk size regardless of log length — and verifies each
    chunk's CRC before yielding it. The constructor checks only the file
    magic; structural validation (trailer present, totals consistent)
    happens as iteration reaches the end, and any violation raises
    :class:`EventLogError` instead of yielding a partial trace.
    """

    def __init__(self, path: str):
        self.path = str(path)
        with open(self.path, "rb") as fh:
            magic = fh.read(len(FILE_MAGIC))
        if magic != FILE_MAGIC:
            raise EventLogError(
                f"eventlog: {self.path} is not an event log "
                f"(bad magic {magic!r})")

    def iter_chunks(self) -> Iterator[Tuple[int, List[TraceEntry]]]:
        """Yield ``(chunk_index, entries)`` pairs, validating as it goes."""
        with open(self.path, "rb") as fh:
            crc = zlib.crc32(fh.read(len(FILE_MAGIC)))
            index = 0
            events_seen = 0
            while True:
                header = fh.read(_CHUNK_HEADER.size)
                if len(header) >= 4 and header[:4] == _TRAILER_MAGIC:
                    trailer = header + fh.read(
                        _TRAILER.size - len(header))
                    self._check_trailer(trailer, crc, events_seen, index)
                    if fh.read(1):
                        raise EventLogError(
                            f"eventlog: {self.path} has trailing bytes "
                            f"after the trailer")
                    return
                if len(header) < _CHUNK_HEADER.size:
                    raise EventLogError(
                        f"eventlog: {self.path} is torn — ended after "
                        f"{index} chunk(s) with no trailer")
                magic, count, length, payload_crc = _CHUNK_HEADER.unpack(
                    header)
                if magic != _CHUNK_MAGIC:
                    raise EventLogError(
                        f"eventlog: {self.path} chunk {index} has bad "
                        f"magic {magic!r}")
                payload = fh.read(length)
                if len(payload) < length:
                    raise EventLogError(
                        f"eventlog: {self.path} is torn — chunk {index} "
                        f"payload truncated "
                        f"({len(payload)}/{length} bytes)")
                if zlib.crc32(payload) != payload_crc:
                    raise EventLogError(
                        f"eventlog: {self.path} chunk {index} CRC "
                        f"mismatch — payload corrupt")
                crc = zlib.crc32(payload, zlib.crc32(header, crc))
                entries = decode_entries(payload)
                if len(entries) != count:
                    raise EventLogError(
                        f"eventlog: {self.path} chunk {index} header "
                        f"claims {count} events, payload decodes to "
                        f"{len(entries)}")
                events_seen += count
                yield index, entries
                index += 1

    def _check_trailer(self, trailer: bytes, crc: int, events_seen: int,
                       chunks_seen: int) -> None:
        if len(trailer) < _TRAILER.size:
            raise EventLogError(
                f"eventlog: {self.path} is torn — truncated trailer")
        magic, total_events, total_chunks, body_crc = _TRAILER.unpack(
            trailer)
        if magic != _TRAILER_MAGIC:
            raise EventLogError(
                f"eventlog: {self.path} has a corrupt trailer "
                f"(magic {magic!r})")
        if body_crc != crc:
            raise EventLogError(
                f"eventlog: {self.path} body CRC mismatch "
                f"(trailer {body_crc:#x}, computed {crc:#x})")
        if (total_events, total_chunks) != (events_seen, chunks_seen):
            raise EventLogError(
                f"eventlog: {self.path} trailer claims "
                f"{total_events} events / {total_chunks} chunks, file "
                f"holds {events_seen} / {chunks_seen}")

    def __iter__(self) -> Iterator[TraceEntry]:
        for _, entries in self.iter_chunks():
            yield from entries

    def read_all(self) -> List[TraceEntry]:
        """Decode the whole log into one list (tests, small logs)."""
        return list(self)

    def stat(self) -> dict:
        """Summary from a full validating pass (events, chunks, bytes)."""
        events = 0
        chunks = 0
        for _, entries in self.iter_chunks():
            events += len(entries)
            chunks += 1
        return {"path": self.path, "events": events, "chunks": chunks,
                "bytes": os.path.getsize(self.path)}
