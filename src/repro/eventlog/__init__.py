"""Persistent event log + multi-analysis replay (record once, analyze everywhere).

The in-memory traces of :mod:`repro.analyses.record` feed one detector in
one process. This package makes the recorded stream a durable artifact:

* :mod:`repro.eventlog.encoding` — compact binary entry encoding
  (varint deltas for tid/addr/uid, one tag byte per entry);
* :mod:`repro.eventlog.log` — chunked on-disk framing with per-chunk
  CRCs, an append-only writer with atomic finalize, and a lazy reader
  that rejects torn or corrupt logs;
* :mod:`repro.eventlog.replay` — :class:`ReplayFanout`, replaying one
  recorded simulation into N detectors in parallel with zero
  re-simulation;
* :mod:`repro.eventlog.cli` — the ``aikido-repro record`` / ``replay``
  command-line verbs.
"""

from repro.eventlog.encoding import decode_entries, encode_entries
from repro.eventlog.log import EventLogReader, EventLogWriter
from repro.eventlog.replay import (
    ANALYSES,
    ReplayFanout,
    StreamingRecorder,
    detector_verdict,
    live_run_verdict,
    record_run,
    replay_log,
)

__all__ = [
    "ANALYSES",
    "EventLogReader",
    "EventLogWriter",
    "ReplayFanout",
    "StreamingRecorder",
    "decode_entries",
    "detector_verdict",
    "encode_entries",
    "live_run_verdict",
    "record_run",
    "replay_log",
]
