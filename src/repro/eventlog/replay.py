"""Replay one recorded simulation into N detectors — the paper's payoff.

Simulating a workload under full instrumentation is the expensive part;
every shared-data analysis only needs the event stream that simulation
produced. :func:`record_run` pays the simulation cost once, streaming
the access + synchronization stream into a chunked
:class:`~repro.eventlog.log.EventLogWriter`; :class:`ReplayFanout` then
feeds the finalized log to any number of detectors with **zero**
re-simulation — in parallel (one worker process per analysis, each
iterating the log chunk by chunk) or inline, with bit-identical merged
output either way.

Verdicts are canonical JSON-safe dicts (:func:`detector_verdict`), so
"replay equals live" is a plain ``==`` between a replayed verdict and
the verdict of a fresh full-instrumentation run
(:func:`live_run_verdict`) — the property the smoke test and the
replay-equivalence tests assert on every bundled workload.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, List, Optional

from repro.analyses.djit import DjitDetector
from repro.analyses.eraser import EraserDetector
from repro.analyses.fasttrack.detector import FastTrackDetector
from repro.analyses.memtag import MemTagDetector
from repro.analyses.record import replay
from repro.chaos.invariants import (
    check_analysis_agreement,
    cross_analysis_disagreements,
)
from repro.dbr.engine import DBREngine
from repro.errors import HarnessError
from repro.eventlog.log import (
    DEFAULT_CHUNK_EVENTS,
    EventLogReader,
    EventLogWriter,
)
from repro.guestos.kernel import Kernel

_DEFAULT_BUDGET = 200_000_000

#: The registered replay consumers: name -> zero-arg detector factory.
#: All detectors run counter-free (no simulated cycle charging) so a
#: replayed verdict is comparable bit-for-bit with a live one.
ANALYSES: Dict[str, Callable[[], object]] = {
    "fasttrack": lambda: FastTrackDetector(block_size=8),
    "djit": lambda: DjitDetector(block_size=8),
    "eraser": lambda: EraserDetector(block_size=8),
    "memtag": lambda: MemTagDetector(block_size=8),
}

#: Per-analysis profile counters included in the verdict.
_PROFILE_FIELDS = {
    "fasttrack": ("reads", "writes", "same_epoch_hits",
                  "read_shared_transitions", "sync_ops", "metadata_pings"),
    "djit": ("reads", "writes", "sync_ops"),
    "eraser": ("accesses",),
    "memtag": ("accesses", "tag_collisions"),
}


def build_detector(name: str):
    factory = ANALYSES.get(name)
    if factory is None:
        raise HarnessError(
            f"unknown analysis {name!r}; registered: "
            f"{', '.join(sorted(ANALYSES))}")
    return factory()


def detector_verdict(name: str, detector) -> Dict:
    """Canonicalize a detector's findings into a JSON-safe dict.

    Contains only what the detector *concluded* (sorted report strings,
    flagged blocks, path-profile counters) — no run-side metadata — so
    live and replayed verdicts for the same event stream compare equal.
    """
    reports = getattr(detector, "races", None)
    if reports is None:
        reports = detector.reports
    return {
        "analysis": name,
        "reports": sorted(r.describe() for r in reports),
        "blocks": sorted({r.block for r in reports}),
        "report_count": len(reports),
        "profile": {field: getattr(detector, field)
                    for field in _PROFILE_FIELDS[name]},
    }


class StreamingRecorder:
    """Detector-protocol recorder that appends straight to a log writer.

    The streaming sibling of
    :class:`repro.analyses.record.FullTraceRecorder`: same entry tuples,
    but each one goes to the :class:`EventLogWriter` immediately, so
    recording memory stays bounded by the chunk size.
    """

    def __init__(self, writer: EventLogWriter):
        self.writer = writer

    def on_access(self, tid: int, addr: int, is_write: bool,
                  instr_uid: int = -1) -> None:
        self.writer.append(("access", tid, addr, bool(is_write), instr_uid))

    def on_acquire(self, tid: int, lock_id: int) -> None:
        self.writer.append(("acquire", tid, lock_id))

    def on_release(self, tid: int, lock_id: int) -> None:
        self.writer.append(("release", tid, lock_id))

    def on_fork(self, parent_tid: int, child_tid: int) -> None:
        self.writer.append(("fork", parent_tid, child_tid))

    def on_join(self, parent_tid: int, child_tid: int) -> None:
        self.writer.append(("join", parent_tid, child_tid))

    def on_barrier(self, tids, barrier_id: int = 0) -> None:
        self.writer.append(("barrier", barrier_id, tuple(tids)))


def record_run(program, path: str, *, seed: int = 0, quantum: int = 200,
               jitter: float = 0.0, compile_blocks: bool = True,
               chunk_events: int = DEFAULT_CHUNK_EVENTS, counters=None,
               max_instructions: int = _DEFAULT_BUDGET) -> Dict:
    """Simulate ``program`` once under full instrumentation, streaming
    every access + sync event into an event log at ``path``.

    The log is finalized atomically on success and aborted (destination
    untouched) if the run raises. Returns recording stats.
    """
    kernel = Kernel(seed=seed, quantum=quantum, jitter=jitter)
    kernel.create_process(program)
    engine = DBREngine(kernel, compile_blocks=compile_blocks)
    # Imported late: generic_tool pulls in the DBR/umbra stack, which
    # replay-only consumers (worker processes) never need.
    from repro.analyses.generic_tool import FullInstrumentationTool

    with EventLogWriter(path, chunk_events=chunk_events,
                        counters=counters) as writer:
        tool = FullInstrumentationTool(kernel, StreamingRecorder(writer))
        engine.attach_tool(tool)
        kernel.run(max_instructions=max_instructions)
    # Stats read after close(): the final partial chunk and the trailer
    # only land during finalize.
    stats = {"path": str(path), "events": writer.events,
             "chunks": writer.chunks, "bytes": writer.bytes_written,
             "cycles": kernel.counter.total}
    if counters is not None:
        counters.bump("simulations")
    return stats


def live_run_verdict(program, name: str, *, seed: int = 0,
                     quantum: int = 200, jitter: float = 0.0,
                     compile_blocks: bool = True,
                     max_instructions: int = _DEFAULT_BUDGET) -> Dict:
    """Run one analysis live (full instrumentation, fresh simulation).

    The reference point replayed verdicts are diffed against.
    """
    detector = build_detector(name)
    kernel = Kernel(seed=seed, quantum=quantum, jitter=jitter)
    kernel.create_process(program)
    engine = DBREngine(kernel, compile_blocks=compile_blocks)
    from repro.analyses.generic_tool import FullInstrumentationTool

    engine.attach_tool(FullInstrumentationTool(kernel, detector))
    kernel.run(max_instructions=max_instructions)
    return detector_verdict(name, detector)


def replay_log(path: str, name: str, counters=None) -> Dict:
    """Replay one log through one analysis, chunk by chunk."""
    detector = build_detector(name)
    for _, entries in EventLogReader(path).iter_chunks():
        replay(entries, detector)
        if counters is not None:
            counters.bump("events_replayed", len(entries))
            counters.bump("chunks_replayed")
    if counters is not None:
        counters.bump("analyses_run")
    return detector_verdict(name, detector)


def _fanout_worker(path: str, name: str) -> Dict:
    """Top-level worker body (must be picklable for the process pool)."""
    return replay_log(path, name)


class ReplayFanout:
    """Replay one recorded log into N analyses, merged deterministically.

    ``jobs > 1`` runs one worker process per analysis (each streams the
    log's chunks independently — the per-chunk framing means no worker
    ever holds more than one chunk of decoded entries); ``jobs == 1``
    replays inline. Both paths produce the identical merged document:
    verdicts keyed by analysis in sorted-name order, plus the
    cross-analysis disagreement list. With ``check=True`` a non-empty
    disagreement list raises
    :class:`~repro.errors.InvariantViolationError` (the
    ``analysis_agreement`` replay invariant).
    """

    def __init__(self, analyses, *, jobs: int = 1, counters=None):
        self.analyses: List[str] = sorted(analyses)
        if not self.analyses:
            raise HarnessError("replay fan-out needs at least one analysis")
        for name in self.analyses:
            if name not in ANALYSES:
                raise HarnessError(
                    f"unknown analysis {name!r}; registered: "
                    f"{', '.join(sorted(ANALYSES))}")
        if jobs < 1:
            raise HarnessError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.counters = counters

    def run(self, path: str, *, check: bool = True) -> Dict:
        # Validate the whole log once up front (CRCs, trailer totals):
        # cheaper than failing identically in N workers, and it yields
        # the stat block for the merged document.
        stat = EventLogReader(path).stat()
        verdicts: Dict[str, Dict] = {}
        if self.jobs == 1 or len(self.analyses) == 1:
            for name in self.analyses:
                verdicts[name] = replay_log(path, name, self.counters)
        else:
            workers = min(self.jobs, len(self.analyses))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {name: pool.submit(_fanout_worker, path, name)
                           for name in self.analyses}
                for name in self.analyses:
                    verdicts[name] = futures[name].result()
            if self.counters is not None:
                # Workers cannot share the parent's counters; account
                # for their traffic here (each replayed the full log).
                per_analysis_events = stat["events"]
                per_analysis_chunks = stat["chunks"]
                for _ in self.analyses:
                    self.counters.bump("events_replayed",
                                       per_analysis_events)
                    self.counters.bump("chunks_replayed",
                                       per_analysis_chunks)
                    self.counters.bump("analyses_run")
        block_sets = {name: set(verdict["blocks"])
                      for name, verdict in verdicts.items()}
        disagreements = cross_analysis_disagreements(block_sets)
        if self.counters is not None:
            self.counters.bump("replays_completed")
            self.counters.bump("disagreements", len(disagreements))
        # Deliberately excludes ``jobs``: the merged document describes
        # the *result*, which must be bit-identical however many workers
        # produced it.
        merged = {
            "log": stat,
            "analyses": list(self.analyses),
            "verdicts": {name: verdicts[name] for name in self.analyses},
            "disagreements": disagreements,
        }
        if check and disagreements:
            check_analysis_agreement(block_sets)
        return merged
