"""Binary encoding of trace entries (the payload inside each log chunk).

Entries are the pickle-friendly tuples of :mod:`repro.analyses.record`:

* ``("access", tid, addr, is_write, instr_uid)``
* ``("acquire"|"release", tid, lock_id)``
* ``("fork"|"join", parent_tid, child_tid)``
* ``("barrier", barrier_id, tids)``

Each entry starts with a one-byte kind tag; every integer field is an
unsigned LEB128 varint. Access entries — the overwhelming bulk of any
trace — are delta-coded against the previous access in the same chunk
(zigzag-signed deltas for tid, addr and instr_uid), which collapses the
common stride-1 / same-thread patterns to one or two bytes per field.
The delta state resets per ``encode_entries`` call, so chunks decode
independently and the log stays seekable.

The encoding is canonical (minimal varints, fixed field order), so
``encode_entries(decode_entries(buf)) == buf`` for any buffer the
decoder accepts — the byte-stability property the oracle checks.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import EventLogError

TraceEntry = Tuple

# Kind tags. Read/write accesses get distinct tags so the flag costs no
# payload byte; sync kinds follow.
_ACCESS_READ = 0
_ACCESS_WRITE = 1
_ACQUIRE = 2
_RELEASE = 3
_FORK = 4
_JOIN = 5
_BARRIER = 6

_SYNC_NAMES = {_ACQUIRE: "acquire", _RELEASE: "release",
               _FORK: "fork", _JOIN: "join"}
_SYNC_TAGS = {name: tag for tag, name in _SYNC_NAMES.items()}


def _zigzag(n: int) -> int:
    return n * 2 if n >= 0 else -n * 2 - 1


def _unzigzag(z: int) -> int:
    return z // 2 if z % 2 == 0 else -(z // 2) - 1


def _put_varint(out: bytearray, value: int) -> None:
    if value < 0:
        raise EventLogError(f"eventlog: cannot encode negative varint "
                            f"{value} (zigzag signed fields first)")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _get_varint(buf: bytes, pos: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    start = pos
    while True:
        if pos >= len(buf):
            raise EventLogError(
                f"eventlog: truncated varint at byte {start}")
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            if byte == 0 and shift:
                # A continuation chain ending in 0x00 encodes the same
                # value in more bytes — reject to keep encoding canonical.
                raise EventLogError(
                    f"eventlog: non-minimal varint at byte {start}")
            return result, pos
        shift += 7
        if shift > 63:
            raise EventLogError(
                f"eventlog: varint at byte {start} exceeds 64 bits")


def encode_entries(entries) -> bytes:
    """Encode a sequence of trace entries into one chunk payload."""
    out = bytearray()
    prev_tid = prev_addr = prev_uid = 0
    for entry in entries:
        kind = entry[0]
        if kind == "access":
            _, tid, addr, is_write, uid = entry
            out.append(_ACCESS_WRITE if is_write else _ACCESS_READ)
            _put_varint(out, _zigzag(tid - prev_tid))
            _put_varint(out, _zigzag(addr - prev_addr))
            _put_varint(out, _zigzag(uid - prev_uid))
            prev_tid, prev_addr, prev_uid = tid, addr, uid
        elif kind in _SYNC_TAGS:
            _, first, second = entry
            out.append(_SYNC_TAGS[kind])
            _put_varint(out, first)
            _put_varint(out, second)
        elif kind == "barrier":
            _, barrier_id, tids = entry
            out.append(_BARRIER)
            _put_varint(out, barrier_id)
            _put_varint(out, len(tids))
            for tid in tids:
                _put_varint(out, tid)
        else:
            raise EventLogError(
                f"eventlog: cannot encode unknown entry kind {kind!r}")
    return bytes(out)


def decode_entries(buf: bytes) -> List[TraceEntry]:
    """Decode one chunk payload back into trace entries.

    Raises :class:`EventLogError` on an unknown tag, a truncated or
    non-minimal varint, or trailing garbage — never returns a prefix.
    """
    entries: List[TraceEntry] = []
    pos = 0
    prev_tid = prev_addr = prev_uid = 0
    size = len(buf)
    while pos < size:
        tag = buf[pos]
        pos += 1
        if tag in (_ACCESS_READ, _ACCESS_WRITE):
            dtid, pos = _get_varint(buf, pos)
            daddr, pos = _get_varint(buf, pos)
            duid, pos = _get_varint(buf, pos)
            prev_tid += _unzigzag(dtid)
            prev_addr += _unzigzag(daddr)
            prev_uid += _unzigzag(duid)
            entries.append(("access", prev_tid, prev_addr,
                            tag == _ACCESS_WRITE, prev_uid))
        elif tag in _SYNC_NAMES:
            first, pos = _get_varint(buf, pos)
            second, pos = _get_varint(buf, pos)
            entries.append((_SYNC_NAMES[tag], first, second))
        elif tag == _BARRIER:
            barrier_id, pos = _get_varint(buf, pos)
            count, pos = _get_varint(buf, pos)
            tids = []
            for _ in range(count):
                tid, pos = _get_varint(buf, pos)
                tids.append(tid)
            entries.append(("barrier", barrier_id, tuple(tids)))
        else:
            raise EventLogError(
                f"eventlog: unknown entry tag {tag} at byte {pos - 1}")
    return entries
