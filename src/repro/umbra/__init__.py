"""Umbra-style shadow memory framework (paper §2.2).

Umbra maps densely populated application memory regions to shadow regions
through an offset table, accelerated by layered caches: an inlined
memoization cache, thread-local caches consulted by a lean procedure, and
a slow full-context-switch lookup. Aikido extends Umbra to map each
application address to *two* shadow addresses: analysis metadata and the
mirror page (§3.3.1).

In this reproduction the translation layers are a faithful *cost* model
(the expensive part of Umbra is exactly these lookups) while metadata
itself lives in host dictionaries keyed by 8-byte block id.
"""

from repro.umbra.shadow import ShadowMemory, ShadowRegion

__all__ = ["ShadowMemory", "ShadowRegion"]
