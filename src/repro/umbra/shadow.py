"""Region table, mirror offsets and the layered translation-cache model."""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Set

from repro import costs
from repro.errors import ToolError


class ShadowRegion:
    """One densely populated application region and its two shadow targets.

    ``shadow_base`` is the synthetic base of the metadata shadow (only its
    existence matters — metadata lives host-side); ``mirror_base`` is a
    real guest virtual address, aliased to the same physical frames by the
    mirror manager.
    """

    __slots__ = ("app_start", "length", "shadow_base", "mirror_base")

    def __init__(self, app_start: int, length: int, shadow_base: int,
                 mirror_base: Optional[int] = None):
        self.app_start = app_start
        self.length = length
        self.shadow_base = shadow_base
        self.mirror_base = mirror_base

    @property
    def app_end(self) -> int:
        return self.app_start + self.length

    def contains(self, addr: int) -> bool:
        return self.app_start <= addr < self.app_end

    def mirror_address(self, addr: int) -> int:
        """Translate an app address into this region's mirror."""
        if self.mirror_base is None:
            raise ToolError(
                f"region at {self.app_start:#x} has no mirror mapping")
        return self.mirror_base + (addr - self.app_start)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ShadowRegion app={self.app_start:#x}+{self.length:#x} "
                f"mirror={self.mirror_base and hex(self.mirror_base)}>")


#: Synthetic base for metadata shadow regions; never dereferenced.
_SHADOW_SYNTHETIC_BASE = 0x7000_0000_0000


class ShadowMemory:
    """The region table plus the per-thread translation-cache cost model.

    Lookup hierarchy (matching §2.2): the inlined memoization cache holds
    the thread's last-hit region; the thread-local cache holds every
    region the thread has translated before (lean-procedure cost); cold
    regions pay the full-context-switch cost.
    """

    def __init__(self, counter=None, block_size: int = 8):
        self.counter = counter
        self.block_size = block_size
        self._starts: List[int] = []
        self._regions: List[ShadowRegion] = []
        self._next_shadow = _SHADOW_SYNTHETIC_BASE
        # tid -> last region hit (inline memoization cache).
        self._inline_cache: Dict[int, ShadowRegion] = {}
        # tid -> (page, region) memo for repeat same-page accesses. Set
        # only when the region covers the whole page, so a page match
        # alone proves containment — and since it is written in lockstep
        # with the inline cache (and regions are never removed), a memo
        # hit is exactly an inline-cache hit minus the containment
        # arithmetic: same counter, same charge.
        self._page_memo: Dict[int, tuple] = {}
        # tid -> set of region ids translated before (thread-local cache).
        self._warm: Dict[int, Set[int]] = {}
        self.inline_hits = 0
        self.lean_hits = 0
        self.full_lookups = 0
        #: Observability tracer, attached by AikidoSystem (None = off).
        #: Only cold (full-context) lookups emit events — the inline and
        #: lean paths run per shared access and stay untraced.
        self.tracer = None

    # ------------------------------------------------------------------
    # region management
    # ------------------------------------------------------------------
    def add_region(self, app_start: int, length: int,
                   mirror_base: Optional[int] = None) -> ShadowRegion:
        """Register a new application region, keeping the table sorted."""
        idx = bisect.bisect_left(self._starts, app_start)
        if idx < len(self._starts) and self._starts[idx] == app_start:
            raise ToolError(f"duplicate shadow region at {app_start:#x}")
        region = ShadowRegion(app_start, length, self._next_shadow,
                              mirror_base)
        self._next_shadow += length + 0x1000
        self._starts.insert(idx, app_start)
        self._regions.insert(idx, region)
        return region

    def set_mirror(self, app_start: int, mirror_base: int) -> None:
        region = self.region_for(app_start)
        if region is None or region.app_start != app_start:
            raise ToolError(f"no shadow region at {app_start:#x}")
        region.mirror_base = mirror_base

    def region_for(self, addr: int) -> Optional[ShadowRegion]:
        """Uncosted structural lookup (host bookkeeping)."""
        idx = bisect.bisect_right(self._starts, addr) - 1
        if idx < 0:
            return None
        region = self._regions[idx]
        return region if region.contains(addr) else None

    # ------------------------------------------------------------------
    # costed translation (what instrumented code executes)
    # ------------------------------------------------------------------
    def translate(self, tid: int, addr: int) -> ShadowRegion:
        """App address -> region, charging the appropriate cache level."""
        page = addr >> 12
        memo = self._page_memo.get(tid)
        if memo is not None and memo[0] == page:
            self.inline_hits += 1
            if self.counter is not None:
                self.counter.charge("umbra", costs.UMBRA_TRANSLATE_INLINE)
            return memo[1]
        region = self._inline_cache.get(tid)
        if region is not None and region.contains(addr):
            self.inline_hits += 1
            if self.counter is not None:
                self.counter.charge("umbra", costs.UMBRA_TRANSLATE_INLINE)
            self._refresh_page_memo(tid, page, region)
            return region
        region = self.region_for(addr)
        if region is None:
            raise ToolError(f"no shadow region covers {addr:#x}")
        warm = self._warm.setdefault(tid, set())
        key = id(region)
        if key in warm:
            self.lean_hits += 1
            if self.counter is not None:
                self.counter.charge("umbra", costs.UMBRA_TRANSLATE_LEAN)
        else:
            warm.add(key)
            self.full_lookups += 1
            if self.counter is not None:
                self.counter.charge("umbra", costs.UMBRA_TRANSLATE_FULL)
            if self.tracer is not None:
                self.tracer.instant("umbra_full_lookup", "umbra", tid=tid,
                                    app_start=region.app_start)
        self._inline_cache[tid] = region
        self._refresh_page_memo(tid, page, region)
        return region

    def _refresh_page_memo(self, tid: int, page: int, region: ShadowRegion):
        if (region.app_start <= (page << 12)
                and ((page + 1) << 12) <= region.app_end):
            self._page_memo[tid] = (page, region)
        else:
            # Page straddles a region boundary: a page match would not
            # prove containment, so drop the memo entirely.
            self._page_memo.pop(tid, None)

    # ------------------------------------------------------------------
    def block_id(self, addr: int) -> int:
        """The metadata block ("variable") an address falls into."""
        return addr // self.block_size

    @property
    def region_count(self) -> int:
        return len(self._regions)
