"""Compare two archived suite runs (the --json output) for regressions.

Intended workflow: archive a baseline once the calibration looks right,
then after any cost-constant or workload edit::

    aikido-repro all --json new.json
    python -m repro.harness.regression baseline.json new.json

Exit code 1 when any benchmark's speedup moved more than the tolerance.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from typing import Dict, List

from repro.errors import HarnessError


class ArchiveError(HarnessError):
    """A suite archive is unreadable or not the --json suite format."""


@dataclass
class Delta:
    benchmark: str
    metric: str
    before: float
    after: float

    @property
    def relative(self) -> float:
        if self.before == 0:
            return float("inf") if self.after else 0.0
        return (self.after - self.before) / self.before

    def describe(self) -> str:
        return (f"{self.benchmark:>14s} {self.metric:<18s} "
                f"{self.before:8.3f} -> {self.after:8.3f} "
                f"({self.relative:+.1%})")


WATCHED_METRICS = ("speedup", "shared_fraction", "ft_slowdown",
                   "aikido_slowdown")


def compare(baseline: Dict, candidate: Dict,
            tolerance: float = 0.10) -> List[Delta]:
    """Return the deltas exceeding ``tolerance`` (relative)."""
    offenders: List[Delta] = []
    base_benches = baseline.get("benchmarks", {})
    cand_benches = candidate.get("benchmarks", {})
    for name in sorted(set(base_benches) | set(cand_benches)):
        if name not in base_benches or name not in cand_benches:
            offenders.append(Delta(name, "presence",
                                   float(name in base_benches),
                                   float(name in cand_benches)))
            continue
        for metric in WATCHED_METRICS:
            before = base_benches[name].get(metric)
            after = cand_benches[name].get(metric)
            if before is None or after is None:
                continue
            delta = Delta(name, metric, before, after)
            if abs(delta.relative) > tolerance:
                offenders.append(delta)
    return offenders


def load_archive(path: str) -> Dict:
    """Load and validate one ``aikido-repro --json`` suite archive.

    Raises :class:`ArchiveError` (instead of leaking ``OSError``,
    ``JSONDecodeError`` or ``KeyError``) when the file is unreadable,
    not JSON, or missing the ``benchmarks`` table the comparison needs.
    """
    try:
        with open(path) as handle:
            data = json.load(handle)
    except OSError as exc:
        raise ArchiveError(f"cannot read {path}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise ArchiveError(f"{path} is not valid JSON: {exc}") from None
    if not isinstance(data, dict) or "benchmarks" not in data:
        raise ArchiveError(
            f"{path} is not a suite archive: missing the 'benchmarks' "
            f"table (generate one with 'aikido-repro all --json {path}')")
    benchmarks = data["benchmarks"]
    if not isinstance(benchmarks, dict):
        raise ArchiveError(
            f"{path}: 'benchmarks' must be an object mapping benchmark "
            f"names to metrics, got {type(benchmarks).__name__}")
    for name, entry in benchmarks.items():
        if not isinstance(entry, dict):
            raise ArchiveError(
                f"{path}: benchmark entry {name!r} must be an object of "
                f"metrics, got {type(entry).__name__}")
    return data


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        description="compare two aikido-repro --json archives")
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="relative change that counts as a regression")
    args = ap.parse_args(argv)
    try:
        baseline = load_archive(args.baseline)
        candidate = load_archive(args.candidate)
    except ArchiveError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    offenders = compare(baseline, candidate, args.tolerance)
    if not offenders:
        print(f"no metric moved more than {args.tolerance:.0%}")
        return 0
    print(f"{len(offenders)} metric(s) moved more than "
          f"{args.tolerance:.0%}:")
    for delta in offenders:
        print("  " + delta.describe())
    return 1


if __name__ == "__main__":
    sys.exit(main())
