"""Drivers for every table and figure of the paper's evaluation (§5).

* :func:`run_suite` executes all ten PARSEC-like benchmarks in all three
  modes once and caches the results; Figure 5, Figure 6 and Table 2 are
  different projections of the same suite run, exactly as in the paper
  (one set of measured executions, several views).
* :func:`table1` runs fluidanimate and vips at 2/4/8 threads.
* :func:`detected_races` reproduces §5.3: the two tools report the same
  races (the canneal Mersenne-Twister race included).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chaos.plan import ChaosPlan
from repro.core.config import AikidoConfig
from repro.errors import HarnessError
from repro.harness.parallel import BatchEntry, Job, JobFailure, ParallelRunner
from repro.harness.resultcache import ResultCache
from repro.harness.runner import (
    MODES,
    RunResult,
    run_aikido_fasttrack,
    run_fasttrack,
    run_native,
)
from repro.workloads.base import WorkloadSpec
from repro.workloads.parsec import PARSEC_BENCHMARKS, get_benchmark

#: Default experiment parameters (8 threads = the paper's configuration).
DEFAULT_THREADS = 8
DEFAULT_SCALE = 1.0
DEFAULT_SEED = 1
DEFAULT_QUANTUM = 150


@dataclass
class BenchmarkRuns:
    """One benchmark's three runs."""

    spec: WorkloadSpec
    native: RunResult
    fasttrack: RunResult
    aikido: RunResult

    @property
    def ft_slowdown(self) -> float:
        return self.fasttrack.slowdown_vs(self.native)

    @property
    def aikido_slowdown(self) -> float:
        return self.aikido.slowdown_vs(self.native)

    @property
    def speedup(self) -> float:
        """FastTrack time / Aikido-FastTrack time (>1 means Aikido wins)."""
        return self.ft_slowdown / self.aikido_slowdown

    @property
    def shared_fraction(self) -> float:
        """Fraction of memory accesses that target shared pages (Fig. 6)."""
        return self.aikido.shared_accesses / max(1, self.aikido.memory_refs)

    @property
    def instrumented_fraction(self) -> float:
        return (self.aikido.instrumented_execs
                / max(1, self.aikido.memory_refs))


@dataclass
class SuiteResult:
    """All benchmarks, all modes, one configuration."""

    threads: int
    scale: float
    seed: int
    runs: Dict[str, BenchmarkRuns] = field(default_factory=dict)

    def geomean_speedup(self) -> float:
        values = [r.speedup for r in self.runs.values()]
        return _geomean(values, "geomean speedup")

    def geomean_instrumentation_reduction(self) -> float:
        """Table 2's headline: geomean of col1/col2 across benchmarks."""
        values = []
        for r in self.runs.values():
            values.append(r.aikido.memory_refs
                          / max(1, r.aikido.instrumented_execs))
        return _geomean(values, "geomean instrumentation reduction")


def _geomean(values: Sequence[float], what: str) -> float:
    if not values:
        raise HarnessError(
            f"cannot compute {what}: the suite is empty (did a "
            f"--benchmarks filter match nothing?)")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _mode_jobs(spec: WorkloadSpec, *, threads: int, scale: float,
               seed: int, quantum: int,
               config: Optional[AikidoConfig] = None) -> List[Job]:
    """The three-mode job triple for one benchmark (MODES order).

    ``config`` only applies to the aikido-fasttrack run; attaching it to
    the native/fasttrack jobs would needlessly split their cache keys
    across configurations that cannot affect them.
    """
    return [Job(spec.name, mode, threads=threads, scale=scale,
                seed=seed, quantum=quantum,
                config=config if mode == "aikido-fasttrack" else None)
            for mode in MODES]


def run_benchmark(spec: WorkloadSpec, *, threads: int = DEFAULT_THREADS,
                  scale: float = DEFAULT_SCALE, seed: int = DEFAULT_SEED,
                  quantum: int = DEFAULT_QUANTUM,
                  config: Optional[AikidoConfig] = None,
                  runner: Optional[ParallelRunner] = None) -> BenchmarkRuns:
    """Run one benchmark in all three modes.

    Without a ``runner`` the three runs execute inline (works for any
    spec, registered or not). With one, the triple goes through its
    cache/pool — the spec must then be a registered benchmark, since
    worker processes rebuild the program by name. ``config`` shapes the
    aikido-fasttrack run only (see :func:`_mode_jobs`).
    """
    if runner is None:
        kwargs = dict(seed=seed, quantum=quantum)

        def program():
            return spec.program(threads=threads, scale=scale)

        return BenchmarkRuns(
            spec=spec,
            native=run_native(program(), **kwargs),
            fasttrack=run_fasttrack(program(), **kwargs),
            aikido=run_aikido_fasttrack(program(), config=config,
                                        **kwargs),
        )
    native, fasttrack, aikido = runner.run(_mode_jobs(
        spec, threads=threads, scale=scale, seed=seed, quantum=quantum,
        config=config))
    return BenchmarkRuns(spec=spec, native=native, fasttrack=fasttrack,
                         aikido=aikido)


def run_suite(*, threads: int = DEFAULT_THREADS, scale: float = DEFAULT_SCALE,
              seed: int = DEFAULT_SEED, quantum: int = DEFAULT_QUANTUM,
              benchmarks: Optional[List[str]] = None, jobs: int = 1,
              cache: Optional[ResultCache] = None,
              config: Optional[AikidoConfig] = None,
              runner: Optional[ParallelRunner] = None) -> SuiteResult:
    """Run the full PARSEC suite (or a named subset) in all modes.

    All ``3 × len(benchmarks)`` runs are submitted as one batch, so
    ``jobs=N`` parallelizes across benchmarks and modes alike;
    ``jobs=1`` with no cache reproduces the historical serial behavior
    exactly. Pass ``cache`` to reuse archived runs, or a pre-built
    ``runner`` (which overrides ``jobs``/``cache``) to share counters
    across calls. ``config`` shapes the aikido-fasttrack runs only
    (e.g. ``AikidoConfig(static_prepass=True)`` for ``--static-prepass``).
    """
    suite = SuiteResult(threads=threads, scale=scale, seed=seed)
    specs = (PARSEC_BENCHMARKS if benchmarks is None
             else [get_benchmark(n) for n in benchmarks])
    if runner is None:
        runner = ParallelRunner(jobs=jobs, cache=cache)
    batch: List[Job] = []
    for spec in specs:
        batch.extend(_mode_jobs(spec, threads=threads, scale=scale,
                                seed=seed, quantum=quantum, config=config))
    results = runner.run(batch)
    for index, spec in enumerate(specs):
        native, fasttrack, aikido = results[3 * index:3 * index + 3]
        suite.runs[spec.name] = BenchmarkRuns(
            spec=spec, native=native, fasttrack=fasttrack, aikido=aikido)
    return suite


# ---------------------------------------------------------------------
# Figure 5: slowdown vs native, FastTrack vs Aikido-FastTrack
# ---------------------------------------------------------------------
def figure5(suite: SuiteResult) -> List[Tuple[str, float, float]]:
    """Rows of (benchmark, ft_slowdown, aikido_slowdown) + geomean row."""
    rows = [(name, runs.ft_slowdown, runs.aikido_slowdown)
            for name, runs in suite.runs.items()]
    ft_geo = _geomean([r[1] for r in rows], "Figure 5 FastTrack geomean")
    aik_geo = _geomean([r[2] for r in rows], "Figure 5 Aikido geomean")
    rows.append(("geomean", ft_geo, aik_geo))
    return rows


# ---------------------------------------------------------------------
# Figure 6: percentage of accesses targeting shared pages
# ---------------------------------------------------------------------
def figure6(suite: SuiteResult) -> List[Tuple[str, float]]:
    return [(name, runs.shared_fraction)
            for name, runs in suite.runs.items()]


# ---------------------------------------------------------------------
# Table 1: fluidanimate and vips at 2/4/8 threads
# ---------------------------------------------------------------------
TABLE1_BENCHMARKS = ("fluidanimate", "vips")
TABLE1_THREADS = (2, 4, 8)


def table1(*, scale: float = DEFAULT_SCALE, seed: int = DEFAULT_SEED,
           quantum: int = DEFAULT_QUANTUM, jobs: int = 1,
           cache: Optional[ResultCache] = None,
           runner: Optional[ParallelRunner] = None
           ) -> Dict[str, Dict[int, Tuple[float, float]]]:
    """benchmark -> {threads: (ft_slowdown, aikido_slowdown)}.

    All ``2 benchmarks × 3 thread counts × 3 modes = 18`` runs are
    submitted as one batch (see :func:`run_suite` for the
    ``jobs``/``cache``/``runner`` semantics).
    """
    if runner is None:
        runner = ParallelRunner(jobs=jobs, cache=cache)
    cells = [(name, threads) for name in TABLE1_BENCHMARKS
             for threads in TABLE1_THREADS]
    batch: List[Job] = []
    for name, threads in cells:
        batch.extend(_mode_jobs(get_benchmark(name), threads=threads,
                                scale=scale, seed=seed, quantum=quantum))
    results = runner.run(batch)
    out: Dict[str, Dict[int, Tuple[float, float]]] = {}
    for index, (name, threads) in enumerate(cells):
        native, fasttrack, aikido = results[3 * index:3 * index + 3]
        out.setdefault(name, {})[threads] = (
            fasttrack.slowdown_vs(native), aikido.slowdown_vs(native))
    return out


# ---------------------------------------------------------------------
# Table 2: instrumentation statistics
# ---------------------------------------------------------------------
@dataclass
class Table2Row:
    benchmark: str
    memory_refs: int          # col 1: instrs referencing memory (dynamic)
    instrumented_execs: int   # col 2: executions of instrumented instrs
    shared_accesses: int      # col 3: accesses that hit shared pages
    segfaults: int            # col 4: faults delivered by AikidoVM


def table2(suite: SuiteResult) -> List[Table2Row]:
    return [Table2Row(name, runs.aikido.memory_refs,
                      runs.aikido.instrumented_execs,
                      runs.aikido.shared_accesses,
                      runs.aikido.segfaults)
            for name, runs in suite.runs.items()]


# ---------------------------------------------------------------------
# Static-prepass ablation: discovery overhead with and without seeding
# ---------------------------------------------------------------------
@dataclass
class PrepassComparison:
    """One benchmark's aikido-fasttrack run, dynamic-only vs seeded.

    The prepass is overhead-only by construction: ``races_match`` and
    ``analysis_match`` must always hold (the soundness cross-check and
    the runtime tripwire both enforce it); the savings columns are what
    the seeding buys.
    """

    benchmark: str
    dynamic: RunResult
    prepass: RunResult

    @property
    def faults_saved(self) -> int:
        return (self.dynamic.aikido_stats.get("faults_handled", 0)
                - self.prepass.aikido_stats.get("faults_handled", 0))

    @property
    def flushes_saved(self) -> int:
        return (self.dynamic.run_stats.get("codecache_flushes", 0)
                - self.prepass.run_stats.get("codecache_flushes", 0))

    @property
    def coverage(self) -> float:
        return self.prepass.prepass_coverage

    @property
    def races_match(self) -> bool:
        return ([r.describe() for r in self.dynamic.races]
                == [r.describe() for r in self.prepass.races])

    @property
    def analysis_match(self) -> bool:
        """Same races and the same shared-access stream length."""
        return (self.races_match
                and self.dynamic.shared_accesses
                == self.prepass.shared_accesses)


def prepass_ablation(*, threads: int = DEFAULT_THREADS,
                     scale: float = DEFAULT_SCALE, seed: int = DEFAULT_SEED,
                     quantum: int = DEFAULT_QUANTUM,
                     benchmarks: Optional[List[str]] = None, jobs: int = 1,
                     cache: Optional[ResultCache] = None,
                     runner: Optional[ParallelRunner] = None
                     ) -> List[PrepassComparison]:
    """Run every benchmark twice in aikido-fasttrack mode: with and
    without ``--static-prepass``, same seed/quantum, one batch."""
    specs = (PARSEC_BENCHMARKS if benchmarks is None
             else [get_benchmark(n) for n in benchmarks])
    if runner is None:
        runner = ParallelRunner(jobs=jobs, cache=cache)
    seeded = AikidoConfig(static_prepass=True)
    batch: List[Job] = []
    for spec in specs:
        for config in (None, seeded):
            batch.append(Job(spec.name, "aikido-fasttrack",
                             threads=threads, scale=scale, seed=seed,
                             quantum=quantum, config=config))
    results = runner.run(batch)
    out: List[PrepassComparison] = []
    for index, spec in enumerate(specs):
        dynamic, prepass = results[2 * index:2 * index + 2]
        comparison = PrepassComparison(spec.name, dynamic, prepass)
        if not comparison.analysis_match:
            raise HarnessError(
                f"{spec.name}: --static-prepass changed analysis "
                f"results (races {len(dynamic.races)} vs "
                f"{len(prepass.races)}, shared accesses "
                f"{dynamic.shared_accesses} vs "
                f"{prepass.shared_accesses}) — seeding must be "
                f"overhead-only")
        out.append(comparison)
    return out


# ---------------------------------------------------------------------
# Static-elision ablation: shared-check elision with parity enforcement
# ---------------------------------------------------------------------
@dataclass
class ElisionComparison:
    """One benchmark's aikido-fasttrack run, plain vs ``static_elide``.

    Elision is bit-identical by contract: every simulated statistic of
    the elided run must equal the baseline's (the fast paths replay the
    exact charges of the steps they fuse, and the dynamic tripwire
    retires any elided access whose page turns SHARED). The elision
    payload (checks elided, fast-path instructions, retired uids) is
    host-side observability and the only thing allowed to differ.
    """

    benchmark: str
    baseline: RunResult
    elided: RunResult

    @property
    def parity(self) -> bool:
        return (self.baseline.cycles == self.elided.cycles
                and self.baseline.run_stats == self.elided.run_stats
                and self.baseline.aikido_stats == self.elided.aikido_stats
                and [r.describe() for r in self.baseline.races]
                == [r.describe() for r in self.elided.races])

    @property
    def elision(self) -> Dict:
        return self.elided.elision or {}

    @property
    def checks_elided(self) -> int:
        return self.elision.get("checks_elided", 0)

    @property
    def fast_path_instructions(self) -> int:
        return self.elision.get("fast_path_instructions", 0)

    @property
    def retired_uids(self) -> int:
        return len(self.elision.get("retired_uids", ()))

    @property
    def plan(self) -> Dict:
        return self.elision.get("plan", {})


def elision_ablation(*, threads: int = DEFAULT_THREADS,
                     scale: float = DEFAULT_SCALE, seed: int = DEFAULT_SEED,
                     quantum: int = DEFAULT_QUANTUM,
                     benchmarks: Optional[List[str]] = None, jobs: int = 1,
                     cache: Optional[ResultCache] = None,
                     runner: Optional[ParallelRunner] = None
                     ) -> List[ElisionComparison]:
    """Run every benchmark twice in aikido-fasttrack mode: with and
    without ``static_elide``, same seed/quantum, one batch. Raises when
    any pair breaks bit-identity."""
    specs = (PARSEC_BENCHMARKS if benchmarks is None
             else [get_benchmark(n) for n in benchmarks])
    if runner is None:
        runner = ParallelRunner(jobs=jobs, cache=cache)
    eliding = AikidoConfig(static_elide=True)
    batch: List[Job] = []
    for spec in specs:
        for config in (None, eliding):
            batch.append(Job(spec.name, "aikido-fasttrack",
                             threads=threads, scale=scale, seed=seed,
                             quantum=quantum, config=config))
    results = runner.run(batch)
    out: List[ElisionComparison] = []
    for index, spec in enumerate(specs):
        baseline, elided = results[2 * index:2 * index + 2]
        comparison = ElisionComparison(spec.name, baseline, elided)
        if not comparison.parity:
            raise HarnessError(
                f"{spec.name}: static_elide changed simulated results "
                f"(cycles {baseline.cycles} vs {elided.cycles}) — "
                f"elision must be bit-identical")
        out.append(comparison)
    return out


# ---------------------------------------------------------------------
# Chaos sweep: survivability under deterministic fault injection
# ---------------------------------------------------------------------
@dataclass
class ChaosCell:
    """One (benchmark, plan, chaos seed) run next to its clean baseline.

    ``run`` is either a :class:`RunResult` (the stack absorbed every
    injection) or a :class:`JobFailure` (it failed — *structurally*: an
    invariant violation or simulated error record, never an unhandled
    crash, because the hardened runner converts everything).
    """

    benchmark: str
    plan: str
    chaos_seed: int
    schedule_neutral: bool
    baseline: RunResult
    run: BatchEntry

    @property
    def survived(self) -> bool:
        return isinstance(self.run, RunResult)

    @property
    def injected(self) -> int:
        return self.run.chaos_injections if self.survived else 0

    @property
    def recovered(self) -> int:
        return self.run.chaos_recovered if self.survived else 0

    @property
    def invariant_checks(self) -> int:
        return self.run.invariant_checks if self.survived else 0

    @property
    def races_match(self) -> bool:
        """Chaos run reported bit-identical races to the clean run.

        The guarantee only holds for schedule-neutral plans; hostile
        (preemption) cells report the comparison for information.
        """
        if not self.survived:
            return False
        return (sorted(r.describe() for r in self.run.races)
                == sorted(r.describe() for r in self.baseline.races))

    def to_dict(self) -> Dict:
        cell = {
            "benchmark": self.benchmark,
            "plan": self.plan,
            "chaos_seed": self.chaos_seed,
            "schedule_neutral": self.schedule_neutral,
            "survived": self.survived,
            "injected": self.injected,
            "recovered": self.recovered,
            "invariant_checks": self.invariant_checks,
            "races_match": self.races_match,
            "baseline_races": len(self.baseline.races),
        }
        if isinstance(self.run, JobFailure):
            cell["failure"] = {
                "kind": self.run.kind,
                "error_type": self.run.error_type,
                "message": self.run.message,
                "invariant": self.run.invariant,
            }
        else:
            cell["races"] = len(self.run.races)
        return cell


@dataclass
class ChaosSweep:
    """Every cell of one chaos sweep plus its parameters."""

    threads: int
    scale: float
    seed: int
    intensity: float
    cells: List[ChaosCell] = field(default_factory=list)

    @property
    def delivered(self) -> int:
        return sum(c.injected for c in self.cells)

    @property
    def recovered(self) -> int:
        return sum(c.recovered for c in self.cells)

    def all_recovery_cells_clean(self) -> bool:
        """Every schedule-neutral cell survived with identical races."""
        return all(c.survived and c.races_match
                   for c in self.cells if c.schedule_neutral)

    def to_dict(self) -> Dict:
        return {
            "threads": self.threads,
            "scale": self.scale,
            "seed": self.seed,
            "intensity": self.intensity,
            "delivered": self.delivered,
            "recovered": self.recovered,
            "cells": [c.to_dict() for c in self.cells],
        }


DEFAULT_CHAOS_SEEDS = (11, 23, 47)


def chaos_sweep(*, threads: int = DEFAULT_THREADS,
                scale: float = DEFAULT_SCALE, seed: int = DEFAULT_SEED,
                quantum: int = DEFAULT_QUANTUM,
                benchmarks: Optional[List[str]] = None,
                chaos_seeds: Sequence[int] = DEFAULT_CHAOS_SEEDS,
                intensity: float = 0.05, include_hostile: bool = False,
                jobs: int = 1, cache: Optional[ResultCache] = None,
                runner: Optional[ParallelRunner] = None) -> ChaosSweep:
    """Survivability sweep: aikido-fasttrack under fault injection.

    Per benchmark: one chaos-free baseline, then one recovery-plan run
    (every recoverable schedule-neutral injection point active, with the
    invariant monitor on) per chaos seed — and, with ``include_hostile``,
    one adversarial-preemption run per benchmark. The batch runs
    non-strict: a failed cell becomes a failure record in its row, and
    the rest of the sweep completes.
    """
    specs = (PARSEC_BENCHMARKS if benchmarks is None
             else [get_benchmark(n) for n in benchmarks])
    if runner is None:
        runner = ParallelRunner(jobs=jobs, cache=cache)
    plans: List[Tuple[str, int, ChaosPlan]] = []
    for chaos_seed in chaos_seeds:
        plans.append(("recovery", chaos_seed,
                      ChaosPlan.recovery(seed=chaos_seed,
                                         intensity=intensity)))
    if include_hostile:
        plans.append(("hostile", chaos_seeds[0],
                      ChaosPlan.hostile(seed=chaos_seeds[0],
                                        intensity=intensity)))

    batch: List[Job] = []
    for spec in specs:
        batch.append(Job(spec.name, "aikido-fasttrack", threads=threads,
                         scale=scale, seed=seed, quantum=quantum))
        for _, _, plan in plans:
            batch.append(Job(spec.name, "aikido-fasttrack",
                             threads=threads, scale=scale, seed=seed,
                             quantum=quantum,
                             config=AikidoConfig(chaos=plan,
                                                 check_invariants=True)))
    results = runner.run(batch, strict=False)

    sweep = ChaosSweep(threads=threads, scale=scale, seed=seed,
                       intensity=intensity)
    stride = 1 + len(plans)
    for index, spec in enumerate(specs):
        row = results[stride * index:stride * (index + 1)]
        baseline = row[0]
        if isinstance(baseline, JobFailure):
            raise HarnessError(
                f"{spec.name}: chaos-free baseline failed "
                f"({baseline.describe()}) — the sweep cannot judge "
                f"survivability without it")
        for (plan_name, chaos_seed, plan), entry in zip(plans, row[1:]):
            sweep.cells.append(ChaosCell(
                benchmark=spec.name, plan=plan_name,
                chaos_seed=chaos_seed,
                schedule_neutral=plan.schedule_neutral,
                baseline=baseline, run=entry))
    return sweep


# ---------------------------------------------------------------------
# §5.3: detected races
# ---------------------------------------------------------------------
def detected_races(suite: SuiteResult) -> Dict[str, Dict[str, int]]:
    """benchmark -> {'fasttrack': n_races, 'aikido': n_races}."""
    return {name: {"fasttrack": len(runs.fasttrack.races),
                   "aikido": len(runs.aikido.races)}
            for name, runs in suite.runs.items()}
