"""Command-line entry point: regenerate any of the paper's artifacts.

Usage (installed as ``aikido-repro`` or ``python -m repro.harness.cli``)::

    aikido-repro fig5             # Figure 5 bar chart
    aikido-repro fig6             # Figure 6 sharing fractions
    aikido-repro table1           # Table 1 thread-count sweep
    aikido-repro table2           # Table 2 instrumentation statistics
    aikido-repro races            # §5.3 detected-races comparison
    aikido-repro races-static     # static race analyzer verdicts
    aikido-repro profile --benchmark vips   # workload profile
    aikido-repro lint             # static linter over the workloads
    aikido-repro prepass          # --static-prepass on/off ablation
    aikido-repro elide            # --static-elide on/off ablation
    aikido-repro instr            # instrumentation-machinery counters
    aikido-repro chaos            # fault-injection survivability sweep
    aikido-repro trace --benchmark vips     # Chrome trace + attribution
    aikido-repro bench            # wall-clock tier bench (BENCH_simulator.json)
    aikido-repro bench --quick    # small/fast bench (schema smoke)
    aikido-repro fuzz --seed 1 --count 200 --quick  # differential fuzz
    aikido-repro fuzz --seed 1 --count 500 --journal f.jsonl --resume
    aikido-repro fleet run --workers 2 --state-dir st/   # sharded fleet
    aikido-repro fleet run --kind fuzz --count 1000 --resume --state-dir st/
    aikido-repro fleet worker --connect HOST:PORT  # serve a coordinator
    aikido-repro record --benchmark canneal --out canneal.aiklog
    aikido-repro replay --log canneal.aiklog \
        --analyses fasttrack,djit,eraser,memtag --jobs 4
    aikido-repro all              # everything, one suite run
    aikido-repro all --static-prepass  # suite with seeded discovery
    aikido-repro all --scale 0.5  # faster, smaller run
    aikido-repro all --jobs 8     # fan runs out over 8 processes
    aikido-repro all --no-cache   # force fresh simulations

Suite runs fan out over a process pool (``--jobs``, default one worker
per CPU) and are served from the on-disk result cache when an identical
run was already simulated (disable with ``--no-cache``).

Robustness knobs: ``--timeout`` bounds each job's wall clock,
``--retries`` grants transient failures extra attempts, ``--journal`` +
``--resume`` checkpoint a suite so an interrupted invocation picks up
with zero re-simulation. Chaos runs: ``--chaos`` activates the recovery
fault-injection plan in aikido-fasttrack runs (``--chaos-seed``,
``--chaos-intensity`` shape it) and ``--check-invariants`` turns on the
cross-layer invariant monitor. Failed jobs never abort a batch — they
are reported per job and the exit code is 3.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.chaos.plan import ChaosPlan
from repro.core.config import AikidoConfig
from repro.errors import HarnessError, SuiteFailureError, WorkloadError
from repro.harness import experiments
from repro.harness.journal import RunJournal
from repro.harness.parallel import ParallelRunner
from repro.harness.resultcache import ResultCache
from repro.harness.report import (
    render_chaos,
    render_figure5,
    render_figure6,
    render_races,
    render_summary,
    render_table1,
    render_table2,
)

SUITE_ARTIFACTS = ("fig5", "fig6", "table2", "races", "breakdown",
                   "instr")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="aikido-repro",
        description="Regenerate the Aikido paper's evaluation artifacts")
    parser.add_argument("artifact",
                        choices=("fig5", "fig6", "table1", "table2",
                                 "races", "races-static", "profile",
                                 "breakdown", "instr", "prepass", "elide",
                                 "chaos", "trace", "bench", "fuzz", "lint",
                                 "all"))
    parser.add_argument("--benchmark", default=None,
                        help="restrict 'profile'/'lint'/'trace' to one "
                             "benchmark")
    parser.add_argument("--trace-out", metavar="PATH",
                        default="aikido-trace.json",
                        help="Chrome trace_event output of the 'trace' "
                             "artifact (open in chrome://tracing or "
                             "Perfetto)")
    parser.add_argument("--trace-jsonl", metavar="PATH", default=None,
                        help="also write the trace as one JSON object "
                             "per line")
    parser.add_argument("--bench-out", metavar="PATH",
                        default="BENCH_simulator.json",
                        help="JSON output of the 'bench' artifact")
    parser.add_argument("--quick", action="store_true",
                        help="shrink the 'bench' artifact to a fast "
                             "schema-smoke run (small scale, one repeat, "
                             "workload subset)")
    parser.add_argument("--repeats", type=int, default=3, metavar="N",
                        help="best-of-N repeats per bench measurement")
    parser.add_argument("--static-prepass", action="store_true",
                        help="seed the sharing detector from the static "
                             "pre-classifier in aikido-fasttrack runs")
    parser.add_argument("--static-elide", action="store_true",
                        help="fuse statically race-free shared-checks "
                             "into compiled fast paths in "
                             "aikido-fasttrack runs (bit-identical by "
                             "contract)")
    parser.add_argument("--threads", type=int,
                        default=experiments.DEFAULT_THREADS)
    parser.add_argument("--scale", type=float,
                        default=experiments.DEFAULT_SCALE,
                        help="workload size multiplier")
    parser.add_argument("--seed", type=int, default=experiments.DEFAULT_SEED)
    parser.add_argument("--quantum", type=int,
                        default=experiments.DEFAULT_QUANTUM)
    parser.add_argument("--jobs", type=int, default=0, metavar="N",
                        help="worker processes for suite runs "
                             "(0 = one per CPU, 1 = serial; default 0)")
    parser.add_argument("--no-cache", action="store_true",
                        help="always re-simulate instead of reusing the "
                             "on-disk result cache")
    parser.add_argument("--json", metavar="PATH",
                        help="also dump machine-readable suite results")
    parser.add_argument("--latex", metavar="PATH",
                        help="also write booktabs LaTeX tables")
    parser.add_argument("--chaos", action="store_true",
                        help="inject the recovery fault plan into "
                             "aikido-fasttrack runs (and for the 'chaos' "
                             "artifact, include hostile preemption)")
    parser.add_argument("--chaos-seed", type=int, default=11,
                        help="seed of the chaos plan's RNG streams")
    parser.add_argument("--chaos-intensity", type=float, default=0.05,
                        help="per-opportunity injection probability")
    parser.add_argument("--check-invariants", action="store_true",
                        help="run the cross-layer invariant monitor "
                             "during aikido-fasttrack runs")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-job wall-clock budget")
    parser.add_argument("--retries", type=int, default=0, metavar="N",
                        help="extra attempts for transient job failures")
    parser.add_argument("--journal", metavar="PATH",
                        help="checkpoint finished jobs to this JSONL file")
    parser.add_argument("--resume", action="store_true",
                        help="replay finished jobs from --journal instead "
                             "of re-simulating them")
    parser.add_argument("--count", type=int, default=100, metavar="N",
                        help="scenarios per 'fuzz' campaign (seeds "
                             "--seed .. --seed+N-1)")
    parser.add_argument("--corpus-dir", metavar="DIR", default=None,
                        help="archive failing fuzz scenarios (verdict + "
                             "minimized repro) as JSON under this "
                             "directory")
    return parser


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv[:1] == ["fleet"]:
        # The sharded campaign service has its own verb tree (run /
        # worker) and keeps the exit-code contract: 0 ok, 2 usage or
        # harness error, 3 per-unit failures / quarantined shards.
        from repro.fleet.cli import main as fleet_main

        return fleet_main(argv[1:])
    if argv[:1] in (["record"], ["replay"]):
        # Record/replay fan-out verbs; same exit-code contract (3 =
        # cross-analysis disagreement or a --diff-live mismatch).
        from repro.eventlog.cli import main as eventlog_main

        return eventlog_main(argv)
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.jobs < 0:
        parser.error(f"--jobs must be >= 0 (0 = auto), got {args.jobs}")
    if args.resume and not args.journal:
        parser.error("--resume requires --journal PATH")
    if args.count < 1:
        parser.error(f"--count must be >= 1, got {args.count}")
    try:
        return _run(args)
    except SuiteFailureError as exc:
        # Completed runs were kept; report what failed, job by job.
        print(f"error: {len(exc.failures)} job(s) failed:", file=sys.stderr)
        for failure in exc.failures:
            print(f"  {failure.describe()}", file=sys.stderr)
        return 3
    except (HarnessError, WorkloadError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _lint_workloads(threads: int, benchmark=None) -> int:
    """Lint every bundled workload (or one); exit status style return."""
    from repro.staticanalysis import lint_program
    from repro.workloads.parsec import benchmark_names, get_benchmark

    names = [benchmark] if benchmark else benchmark_names()
    total = 0
    for name in names:
        program = get_benchmark(name).program(threads=threads)
        findings = lint_program(program)
        if findings:
            total += len(findings)
            print(f"{name}:")
            for finding in findings:
                print(f"  {finding.render()}")
        else:
            print(f"{name}: clean")
    if total:
        print(f"{total} finding(s)")
    return 1 if total else 0


def _trace_artifact(args) -> list:
    """Run one traced benchmark; emit + validate the Chrome trace."""
    from repro.harness.runner import build_aikido_system, system_result
    from repro.observability import BUCKETS, TraceSink, load_chrome
    from repro.workloads.parsec import get_benchmark

    name = args.benchmark or "freqmine"
    spec = get_benchmark(name)
    program = spec.program(threads=args.threads, scale=args.scale)
    chaos_plan = (ChaosPlan.recovery(seed=args.chaos_seed,
                                     intensity=args.chaos_intensity)
                  if args.chaos else None)
    config = AikidoConfig(static_prepass=args.static_prepass,
                          chaos=chaos_plan,
                          check_invariants=args.check_invariants,
                          trace=True, metrics_cadence=25)
    system = build_aikido_system(program, seed=args.seed,
                                 quantum=args.quantum, config=config)
    system.run()
    result = system_result(system)
    sink = TraceSink(system.tracer)
    chrome_path = sink.write_chrome(args.trace_out,
                                    label=f"aikido-repro {name}")
    load_chrome(chrome_path)  # round-trip validation before reporting
    pieces = [f"trace: {name} ({args.threads} threads) — "
              f"{len(system.tracer.events)} events, "
              f"{system.tracer.dropped} dropped, "
              f"{len(result.timeline)} timeline samples\n"
              f"chrome trace written to {chrome_path} (validated; open "
              "in chrome://tracing or Perfetto)"]
    if args.trace_jsonl:
        jsonl_path = sink.write_jsonl(args.trace_jsonl)
        pieces.append(f"jsonl trace written to {jsonl_path}")
    attribution = result.cycle_attribution
    total = max(1, attribution["total"])
    lines = [f"cycle attribution ({attribution['total']:,} total):"]
    lines.extend(f"  {bucket:>16s}: {attribution[bucket]:>12,d} "
                 f"({100 * attribution[bucket] / total:5.1f}%)"
                 for bucket in BUCKETS)
    pieces.append("\n".join(lines))
    return pieces


def _bench_artifact(args) -> list:
    """Run the wall-clock tier bench and write BENCH_simulator.json."""
    from repro.harness.bench import bench_suite, render_bench, write_bench

    doc = bench_suite(
        threads=args.threads, scale=args.scale, seed=args.seed,
        quantum=args.quantum, repeats=args.repeats, quick=args.quick,
        benchmarks=[args.benchmark] if args.benchmark else None,
        progress=lambda message: print(message, file=sys.stderr))
    path = write_bench(doc, args.bench_out)
    return [render_bench(doc), f"(bench json written to {path})"]


def _fuzz_artifact(args, started: float) -> int:
    """Seeded differential fuzz campaign over generated scenarios."""
    from repro.scengen import render_campaign, run_campaign

    cache = None if args.no_cache else ResultCache()
    journal = (RunJournal(args.journal, resume=args.resume)
               if args.journal else None)
    result = run_campaign(
        args.seed, args.count, quick=args.quick, journal=journal,
        cache=cache, corpus_dir=args.corpus_dir,
        progress=lambda message: print(message, file=sys.stderr))
    print(render_campaign(result))
    if args.corpus_dir and result.disagreements:
        print(f"(failing scenarios archived under {args.corpus_dir})")
    print(f"[{time.monotonic() - started:.1f}s; {result.stats_line()}]",
          file=sys.stderr)
    return 3 if result.disagreements else 0


def _run(args) -> int:
    started = time.monotonic()
    if args.artifact == "lint":
        return _lint_workloads(args.threads, args.benchmark)
    if args.artifact == "fuzz":
        return _fuzz_artifact(args, started)
    pieces = []
    cache = None if args.no_cache else ResultCache()
    journal = (RunJournal(args.journal, resume=args.resume)
               if args.journal else None)
    runner = ParallelRunner(jobs=args.jobs, cache=cache,
                            timeout=args.timeout, retries=args.retries,
                            journal=journal)
    chaos_plan = (ChaosPlan.recovery(seed=args.chaos_seed,
                                     intensity=args.chaos_intensity)
                  if args.chaos else None)
    config = None
    if (args.static_prepass or args.static_elide or chaos_plan
            or args.check_invariants):
        config = AikidoConfig(static_prepass=args.static_prepass,
                              static_elide=args.static_elide,
                              chaos=chaos_plan,
                              check_invariants=args.check_invariants)
    wants_suite = args.artifact in SUITE_ARTIFACTS or args.artifact == "all"
    suite = None
    if wants_suite:
        suite = experiments.run_suite(threads=args.threads,
                                      scale=args.scale, seed=args.seed,
                                      quantum=args.quantum, runner=runner,
                                      config=config)
    if args.artifact in ("fig5", "all"):
        pieces.append(render_figure5(suite))
    if args.artifact in ("fig6", "all"):
        pieces.append(render_figure6(suite))
    if args.artifact in ("table1", "all"):
        results = experiments.table1(scale=args.scale, seed=args.seed,
                                     quantum=args.quantum, runner=runner)
        pieces.append(render_table1(results))
    if args.artifact in ("table2", "all"):
        pieces.append(render_table2(suite))
    if args.artifact in ("races", "all"):
        pieces.append(render_races(experiments.detected_races(suite)))
    if args.artifact == "breakdown":
        from repro.harness.report import render_breakdown

        pieces.append(render_breakdown(suite))
    if args.artifact in ("instr", "all"):
        from repro.harness.report import render_instrumentation

        pieces.append(render_instrumentation(suite))
    if args.artifact == "all":
        from repro.harness.report import render_attribution

        pieces.append(render_attribution(suite))
    if args.artifact == "trace":
        pieces.extend(_trace_artifact(args))
    if args.artifact == "bench":
        pieces.extend(_bench_artifact(args))
    if args.artifact == "chaos":
        sweep = experiments.chaos_sweep(
            threads=args.threads, scale=args.scale, seed=args.seed,
            quantum=args.quantum, runner=runner,
            chaos_seeds=(args.chaos_seed,
                         args.chaos_seed + 12, args.chaos_seed + 36),
            intensity=args.chaos_intensity, include_hostile=args.chaos,
            benchmarks=[args.benchmark] if args.benchmark else None)
        pieces.append(render_chaos(sweep))
        if args.json:
            import json

            with open(args.json, "w") as handle:
                json.dump(sweep.to_dict(), handle, indent=2)
            pieces.append(f"(json written to {args.json})")
    if args.artifact == "prepass":
        from repro.harness.report import render_prepass

        comparisons = experiments.prepass_ablation(
            threads=args.threads, scale=args.scale, seed=args.seed,
            quantum=args.quantum, runner=runner,
            benchmarks=[args.benchmark] if args.benchmark else None)
        pieces.append(render_prepass(comparisons))
    if args.artifact == "elide":
        from repro.harness.report import render_elision

        comparisons = experiments.elision_ablation(
            threads=args.threads, scale=args.scale, seed=args.seed,
            quantum=args.quantum, runner=runner,
            benchmarks=[args.benchmark] if args.benchmark else None)
        pieces.append(render_elision(comparisons))
    if args.artifact == "races-static":
        from repro.harness.report import render_static_races
        from repro.staticanalysis.analysiscache import analysis_for
        from repro.workloads.parsec import benchmark_names, get_benchmark

        names = ([args.benchmark] if args.benchmark
                 else benchmark_names())
        reports = []
        for name in names:
            program = get_benchmark(name).program(threads=args.threads,
                                                  scale=args.scale)
            reports.append(analysis_for(program).races)
        pieces.append(render_static_races(reports))
    if args.artifact == "profile":
        from repro.workloads.parsec import benchmark_names, get_benchmark
        from repro.workloads.profile import (
            dynamic_profile,
            render_profile,
            static_profile,
        )

        names = ([args.benchmark] if args.benchmark
                 else benchmark_names())
        for name in names:
            spec = get_benchmark(name)

            def factory(spec=spec):
                return spec.program(threads=args.threads,
                                    scale=args.scale)

            pieces.append(render_profile(
                name, static_profile(factory()),
                dynamic_profile(factory, seed=args.seed,
                                quantum=args.quantum)))
    if args.artifact == "all":
        pieces.append(render_summary(suite))
    if args.latex and suite is not None:
        from repro.harness.latex import render_all

        with open(args.latex, "w") as handle:
            handle.write(render_all(suite) + "\n")
        pieces.append(f"(latex written to {args.latex})")
    if args.json and suite is not None:
        import json

        from repro.harness.report import suite_to_dict

        with open(args.json, "w") as handle:
            json.dump(suite_to_dict(suite), handle, indent=2)
        pieces.append(f"(json written to {args.json})")
    print("\n".join(pieces))
    print(f"[{time.monotonic() - started:.1f}s; {runner.stats_line()}]",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
