"""Command-line entry point: regenerate any of the paper's artifacts.

Usage (installed as ``aikido-repro`` or ``python -m repro.harness.cli``)::

    aikido-repro fig5             # Figure 5 bar chart
    aikido-repro fig6             # Figure 6 sharing fractions
    aikido-repro table1           # Table 1 thread-count sweep
    aikido-repro table2           # Table 2 instrumentation statistics
    aikido-repro races            # §5.3 detected-races comparison
    aikido-repro profile --benchmark vips   # workload profile
    aikido-repro lint             # static linter over the workloads
    aikido-repro prepass          # --static-prepass on/off ablation
    aikido-repro instr            # instrumentation-machinery counters
    aikido-repro all              # everything, one suite run
    aikido-repro all --static-prepass  # suite with seeded discovery
    aikido-repro all --scale 0.5  # faster, smaller run
    aikido-repro all --jobs 8     # fan runs out over 8 processes
    aikido-repro all --no-cache   # force fresh simulations

Suite runs fan out over a process pool (``--jobs``, default one worker
per CPU) and are served from the on-disk result cache when an identical
run was already simulated (disable with ``--no-cache``).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.core.config import AikidoConfig
from repro.errors import HarnessError, WorkloadError
from repro.harness import experiments
from repro.harness.parallel import ParallelRunner
from repro.harness.resultcache import ResultCache
from repro.harness.report import (
    render_figure5,
    render_figure6,
    render_races,
    render_summary,
    render_table1,
    render_table2,
)

SUITE_ARTIFACTS = ("fig5", "fig6", "table2", "races", "breakdown",
                   "instr")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="aikido-repro",
        description="Regenerate the Aikido paper's evaluation artifacts")
    parser.add_argument("artifact",
                        choices=("fig5", "fig6", "table1", "table2",
                                 "races", "profile", "breakdown", "instr",
                                 "prepass", "lint", "all"))
    parser.add_argument("--benchmark", default=None,
                        help="restrict 'profile'/'lint' to one benchmark")
    parser.add_argument("--static-prepass", action="store_true",
                        help="seed the sharing detector from the static "
                             "pre-classifier in aikido-fasttrack runs")
    parser.add_argument("--threads", type=int,
                        default=experiments.DEFAULT_THREADS)
    parser.add_argument("--scale", type=float,
                        default=experiments.DEFAULT_SCALE,
                        help="workload size multiplier")
    parser.add_argument("--seed", type=int, default=experiments.DEFAULT_SEED)
    parser.add_argument("--quantum", type=int,
                        default=experiments.DEFAULT_QUANTUM)
    parser.add_argument("--jobs", type=int, default=0, metavar="N",
                        help="worker processes for suite runs "
                             "(0 = one per CPU, 1 = serial; default 0)")
    parser.add_argument("--no-cache", action="store_true",
                        help="always re-simulate instead of reusing the "
                             "on-disk result cache")
    parser.add_argument("--json", metavar="PATH",
                        help="also dump machine-readable suite results")
    parser.add_argument("--latex", metavar="PATH",
                        help="also write booktabs LaTeX tables")
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.jobs < 0:
        parser.error(f"--jobs must be >= 0 (0 = auto), got {args.jobs}")
    try:
        return _run(args)
    except (HarnessError, WorkloadError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _lint_workloads(threads: int, benchmark=None) -> int:
    """Lint every bundled workload (or one); exit status style return."""
    from repro.staticanalysis import lint_program
    from repro.workloads.parsec import benchmark_names, get_benchmark

    names = [benchmark] if benchmark else benchmark_names()
    total = 0
    for name in names:
        program = get_benchmark(name).program(threads=threads)
        findings = lint_program(program)
        if findings:
            total += len(findings)
            print(f"{name}:")
            for finding in findings:
                print(f"  {finding.render()}")
        else:
            print(f"{name}: clean")
    if total:
        print(f"{total} finding(s)")
    return 1 if total else 0


def _run(args) -> int:
    started = time.time()
    if args.artifact == "lint":
        return _lint_workloads(args.threads, args.benchmark)
    pieces = []
    cache = None if args.no_cache else ResultCache()
    runner = ParallelRunner(jobs=args.jobs, cache=cache)
    config = (AikidoConfig(static_prepass=True) if args.static_prepass
              else None)
    wants_suite = args.artifact in SUITE_ARTIFACTS or args.artifact == "all"
    suite = None
    if wants_suite:
        suite = experiments.run_suite(threads=args.threads,
                                      scale=args.scale, seed=args.seed,
                                      quantum=args.quantum, runner=runner,
                                      config=config)
    if args.artifact in ("fig5", "all"):
        pieces.append(render_figure5(suite))
    if args.artifact in ("fig6", "all"):
        pieces.append(render_figure6(suite))
    if args.artifact in ("table1", "all"):
        results = experiments.table1(scale=args.scale, seed=args.seed,
                                     quantum=args.quantum, runner=runner)
        pieces.append(render_table1(results))
    if args.artifact in ("table2", "all"):
        pieces.append(render_table2(suite))
    if args.artifact in ("races", "all"):
        pieces.append(render_races(experiments.detected_races(suite)))
    if args.artifact == "breakdown":
        from repro.harness.report import render_breakdown

        pieces.append(render_breakdown(suite))
    if args.artifact in ("instr", "all"):
        from repro.harness.report import render_instrumentation

        pieces.append(render_instrumentation(suite))
    if args.artifact == "prepass":
        from repro.harness.report import render_prepass

        comparisons = experiments.prepass_ablation(
            threads=args.threads, scale=args.scale, seed=args.seed,
            quantum=args.quantum, runner=runner,
            benchmarks=[args.benchmark] if args.benchmark else None)
        pieces.append(render_prepass(comparisons))
    if args.artifact == "profile":
        from repro.workloads.parsec import benchmark_names, get_benchmark
        from repro.workloads.profile import (
            dynamic_profile,
            render_profile,
            static_profile,
        )

        names = ([args.benchmark] if args.benchmark
                 else benchmark_names())
        for name in names:
            spec = get_benchmark(name)

            def factory(spec=spec):
                return spec.program(threads=args.threads,
                                    scale=args.scale)

            pieces.append(render_profile(
                name, static_profile(factory()),
                dynamic_profile(factory, seed=args.seed,
                                quantum=args.quantum)))
    if args.artifact == "all":
        pieces.append(render_summary(suite))
    if args.latex and suite is not None:
        from repro.harness.latex import render_all

        with open(args.latex, "w") as handle:
            handle.write(render_all(suite) + "\n")
        pieces.append(f"(latex written to {args.latex})")
    if args.json and suite is not None:
        import json

        from repro.harness.report import suite_to_dict

        with open(args.json, "w") as handle:
            json.dump(suite_to_dict(suite), handle, indent=2)
        pieces.append(f"(json written to {args.json})")
    print("\n".join(pieces))
    print(f"[{time.time() - started:.1f}s; {runner.stats_line()}]",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
