"""Experiment harness: runners, the parallel/cached suite executor,
cost-model utilities, experiment drivers for every table and figure of
the paper's evaluation, and report rendering."""

from repro.harness.parallel import Job, ParallelRunner
from repro.harness.resultcache import ResultCache
from repro.harness.runner import (
    MODES,
    RunResult,
    run_aikido_fasttrack,
    run_fasttrack,
    run_mode,
    run_native,
)

__all__ = [
    "MODES",
    "Job",
    "ParallelRunner",
    "ResultCache",
    "RunResult",
    "run_aikido_fasttrack",
    "run_fasttrack",
    "run_mode",
    "run_native",
]
