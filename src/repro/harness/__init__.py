"""Experiment harness: runners, cost-model utilities, experiment drivers
for every table and figure of the paper's evaluation, and report
rendering."""

from repro.harness.runner import (
    MODES,
    RunResult,
    run_aikido_fasttrack,
    run_fasttrack,
    run_mode,
    run_native,
)

__all__ = [
    "MODES",
    "RunResult",
    "run_aikido_fasttrack",
    "run_fasttrack",
    "run_mode",
    "run_native",
]
