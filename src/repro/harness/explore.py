"""Schedule exploration: run a workload under many schedules.

Happens-before race detection is schedule-dependent — "the race
detector's ability to detect races is often tied to the particular
execution schedule seen by the application" (paper §7.3). This harness
makes that concrete: run the same program under N scheduler seeds (and
optionally several quanta), union and intersect the race reports, and
report per-race detection frequency.

Typical use::

    result = explore(lambda: micro.racy_flag()[0], seeds=range(10))
    result.union          # every race any schedule exposed
    result.flaky          # races only some schedules exposed
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Set, Tuple

from repro.harness.runner import run_aikido_fasttrack, run_fasttrack


@dataclass
class ExplorationResult:
    """Aggregated race reports across schedules."""

    runs: int = 0
    #: race key -> number of schedules that reported it.
    frequency: Dict[Tuple, int] = field(default_factory=dict)

    @property
    def union(self) -> Set[Tuple]:
        return set(self.frequency)

    @property
    def intersection(self) -> Set[Tuple]:
        return {key for key, count in self.frequency.items()
                if count == self.runs}

    @property
    def flaky(self) -> Set[Tuple]:
        """Races that only some schedules expose."""
        return self.union - self.intersection

    def detection_rate(self, key: Tuple) -> float:
        return self.frequency.get(key, 0) / max(1, self.runs)


def explore(program_factory: Callable, *, seeds: Iterable[int] = range(8),
            quanta: Iterable[int] = (20,), mode: str = "fasttrack",
            jitter: float = 0.3) -> ExplorationResult:
    """Run the program under every (seed, quantum) pair and aggregate."""
    if mode == "fasttrack":
        runner = run_fasttrack
    elif mode == "aikido-fasttrack":
        runner = run_aikido_fasttrack
    else:
        raise ValueError(f"unknown mode {mode!r}")
    result = ExplorationResult()
    for quantum in quanta:
        for seed in seeds:
            run = runner(program_factory(), seed=seed, quantum=quantum,
                         jitter=jitter)
            result.runs += 1
            for race in run.races:
                result.frequency[race.key] = \
                    result.frequency.get(race.key, 0) + 1
    return result


def render_exploration(result: ExplorationResult) -> str:
    lines = [f"schedules explored: {result.runs}",
             f"races found in at least one schedule: {len(result.union)}",
             f"races found in every schedule: "
             f"{len(result.intersection)}"]
    for key in sorted(result.flaky):
        rate = result.detection_rate(key)
        lines.append(f"  flaky: block {key[0]:#x} ({key[1]}) "
                     f"detected in {rate:.0%} of schedules")
    return "\n".join(lines)
