"""Cost-model overrides for ablation experiments.

All cycle costs live as module attributes of :mod:`repro.costs`.
:class:`CostModel` is a context manager that temporarily replaces a set
of them — e.g. to ask "what if VM exits were 10x more expensive?" or to
zero out the mirror-page penalty — and restores the originals on exit.

Example::

    with CostModel(VMEXIT=2000, CONTEXT_SWITCH_TRAP=5000):
        result = run_aikido_fasttrack(program)
"""

from __future__ import annotations

from typing import Dict

from repro import costs
from repro.errors import HarnessError


class CostModel:
    """Temporarily override constants in :mod:`repro.costs`."""

    def __init__(self, **overrides: int):
        for name in overrides:
            if not hasattr(costs, name):
                raise HarnessError(f"unknown cost constant {name!r}")
        self.overrides = overrides
        self._saved: Dict[str, int] = {}

    def __enter__(self) -> "CostModel":
        for name, value in self.overrides.items():
            self._saved[name] = getattr(costs, name)
            setattr(costs, name, value)
        return self

    def __exit__(self, *exc) -> None:
        for name, value in self._saved.items():
            setattr(costs, name, value)
        self._saved.clear()


def snapshot() -> Dict[str, int]:
    """All current cost constants (for reports)."""
    return {name: value for name, value in vars(costs).items()
            if name.isupper() and isinstance(value, int)}
