"""On-disk JSON cache for deterministic simulation results.

Every harness run is a pure function of its job tuple (workload, mode,
threads, scale, seed, quantum, config) and of the active cost model, so
a finished run can be archived and replayed instead of re-simulated.
:class:`ResultCache` stores one JSON file per run under a cache
directory, keyed by a SHA-256 of the canonical job description plus a
cost-model/config fingerprint (see :func:`repro.harness.parallel.fingerprint`).

Location: ``$AIKIDO_CACHE_DIR`` when set, else
``$XDG_CACHE_HOME/aikido-repro``, else ``~/.cache/aikido-repro``.

Invalidation is purely key-based: editing a cost constant, the package
version, or any job parameter changes the key, so stale entries are
never *read* — they are only reclaimed by :meth:`ResultCache.clear`.
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings
from pathlib import Path
from typing import Dict, Optional


def default_cache_dir() -> Path:
    """Resolve the cache directory from the environment."""
    override = os.environ.get("AIKIDO_CACHE_DIR")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "aikido-repro"


class ResultCache:
    """Persist run results as ``<key>.json`` files under one directory.

    ``get``/``put`` take an opaque hex ``key`` (the caller hashes the job)
    and a JSON-serializable payload. Counters (``hits``, ``misses``,
    ``stores``) track this instance's traffic so callers can assert cache
    behavior (e.g. a warm rerun performing zero simulations).

    **Multi-writer safe.** Fleet workers on one host share this
    directory, and two of them racing on the same key is routine (the
    same job lands in two redelivered shards). Every ``put`` writes to
    a private ``mkstemp`` file and publishes with ``os.replace``, which
    is atomic on POSIX: a concurrent ``get`` observes either the old
    complete entry or the new complete one, never a torn interleaving —
    and because keys are content addresses, concurrent writers are by
    construction publishing identical bytes, so last-write-wins is
    harmless. ``durable=True`` additionally fsyncs before publishing,
    so an entry that a coordinator WAL refers to cannot be lost to a
    host power cut after the rename.
    """

    def __init__(self, directory: Optional[os.PathLike] = None, *,
                 durable: bool = False):
        self.directory = (Path(directory) if directory is not None
                          else default_cache_dir())
        self.durable = durable
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: Failed stores (full disk, permissions, ...): the cache goes
        #: quiet instead of killing the suite that feeds it.
        self.put_errors = 0
        self._put_warned = False

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def get(self, key: str) -> Optional[Dict]:
        """Return the cached payload for ``key``, or None on a miss.

        A corrupt entry (interrupted write, manual edit) counts as a miss
        and is deleted so the slot can be rewritten.
        """
        path = self._path(key)
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            if path.exists():
                try:
                    path.unlink()
                except OSError:
                    pass
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key: str, payload: Dict) -> None:
        """Store ``payload`` under ``key`` atomically (tmpfile + rename).

        A cache is an accelerator, not a dependency: any ``OSError``
        (read-only filesystem, disk full, permission change mid-suite) is
        swallowed — warned about once per instance, counted in
        ``put_errors`` — and the run simply stays uncached.
        """
        tmp = None
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
                if self.durable:
                    handle.flush()
                    os.fsync(handle.fileno())
            os.replace(tmp, self._path(key))
        except OSError as exc:
            self.put_errors += 1
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
            if not self._put_warned:
                self._put_warned = True
                warnings.warn(
                    f"result cache write failed ({exc}); continuing "
                    f"uncached (further failures will be silent)",
                    RuntimeWarning, stacklevel=2)
            return
        except BaseException:
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
            raise
        self.stores += 1

    def clear(self) -> int:
        """Delete every cached entry; return how many were removed."""
        removed = 0
        if not self.directory.is_dir():
            return removed
        for path in self.directory.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ResultCache {self.directory} hits={self.hits} "
                f"misses={self.misses} stores={self.stores}>")
