"""Append-only run journal for checkpoint/resume.

The result cache (:mod:`repro.harness.resultcache`) already makes warm
reruns free — but it lives in a global directory keyed by job hash, and a
user may run with caching disabled or a scratch cache. The journal is the
suite-local complement: one JSONL file per suite invocation, recording
every finished job as a ``{"key": ..., "payload": ...}`` line. Re-running
with ``--resume`` replays finished jobs from the journal and simulates
only what is missing — a suite killed nine jobs into ten restarts with
exactly one simulation left.

The format is deliberately crash-tolerant: a process killed mid-write
leaves at most one truncated final line, which loading skips (along with
any other undecodable line) instead of refusing the whole file.
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path
from typing import Dict, Optional


class RunJournal:
    """A JSONL checkpoint file mapping job keys to result payloads.

    ``resume=True`` loads any existing journal content first (the
    ``replayed`` counter says how many entries survived); ``resume=False``
    truncates, so a fresh suite never replays stale results by accident.
    Records are flushed per entry and, with ``fsync=True`` (the
    default), fsync'd too — the journal's whole job is surviving the
    death of the process writing it; ``fsync=False`` trades power-cut
    durability for append throughput (crash-of-the-process safety is
    retained either way, the OS owns the flushed bytes).

    Resume is damage-tolerant: a truncated or otherwise undecodable
    line (a crash mid-append, manual editing) is skipped with a
    :class:`RuntimeWarning` naming the count — never a refusal that
    would cost the campaign every *good* entry in the file.
    """

    def __init__(self, path: os.PathLike, resume: bool = False, *,
                 fsync: bool = True):
        self.path = Path(path)
        self.fsync = fsync
        self._entries: Dict[str, Dict] = {}
        self.replayed = 0
        self.dropped_lines = 0
        if resume:
            self._load()
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.path.write_text("")

    def _load(self) -> None:
        if not self.path.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
            return
        with open(self.path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    key = record["key"]
                    payload = record["payload"]
                except (json.JSONDecodeError, KeyError, TypeError):
                    # Truncated tail from a crash mid-write, or manual
                    # editing damage: skip the line, keep the rest.
                    self.dropped_lines += 1
                    continue
                self._entries[key] = payload
        self.replayed = len(self._entries)
        if self.dropped_lines:
            warnings.warn(
                f"journal {self.path}: skipped {self.dropped_lines} "
                "undecodable line(s) — expected after a crash "
                "mid-append; every decodable entry was kept",
                RuntimeWarning, stacklevel=2)

    def get(self, key: str) -> Optional[Dict]:
        """Return the journaled payload for ``key``, or None."""
        return self._entries.get(key)

    def record(self, key: str, payload: Dict) -> None:
        """Append one finished job (idempotent per key on reload)."""
        self._entries[key] = payload
        with open(self.path, "a") as handle:
            handle.write(json.dumps({"key": key, "payload": payload}))
            handle.write("\n")
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<RunJournal {self.path} entries={len(self._entries)} "
                f"replayed={self.replayed}>")
