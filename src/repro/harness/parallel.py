"""Process-pool execution of harness runs, with an on-disk result cache.

Every run of the evaluation (§5) is an independent, deterministic
simulation: the same job tuple always produces the same metrics. That
makes the suite embarrassingly parallel and perfectly cacheable, and
this module exploits both:

* :class:`Job` — one run, described by plain data (a registered
  benchmark name rather than a live :class:`~repro.machine.program.Program`,
  so it pickles cheaply and hashes stably);
* :class:`ParallelRunner` — executes a batch of jobs via
  :class:`concurrent.futures.ProcessPoolExecutor` (``jobs>1``) or inline
  (``jobs=1``, byte-for-byte today's serial behavior), consulting a
  :class:`~repro.harness.resultcache.ResultCache` first when one is
  attached;
* :func:`fingerprint` — hash of the package version plus every active
  cost constant, folded into each cache key so editing the cost model
  (or running under a :class:`~repro.harness.costmodel.CostModel`
  override) invalidates prior results automatically.

Because runs are deterministic per seed, parallel and serial execution
produce identical metrics — ``tests/harness/test_parallel.py`` enforces
this metric-for-metric.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro import __version__
from repro.analyses.fasttrack.reports import RaceReport
from repro.core.config import AikidoConfig
from repro.errors import HarnessError
from repro.harness.costmodel import snapshot
from repro.harness.resultcache import ResultCache
from repro.harness.runner import MODES, RunResult, run_mode


@dataclass(frozen=True)
class Job:
    """One simulation run, described by plain (picklable, hashable) data.

    ``workload`` is a registered benchmark name (see
    :mod:`repro.workloads.parsec`); the worker process rebuilds the
    program from the registry, so no simulator state crosses the
    process boundary.
    """

    workload: str
    mode: str
    threads: int = 8
    scale: float = 1.0
    seed: int = 1
    quantum: int = 150
    config: Optional[AikidoConfig] = None

    def __post_init__(self):
        if self.mode not in MODES:
            raise HarnessError(
                f"unknown mode {self.mode!r}; expected one of {MODES}")

    def canonical(self) -> Dict:
        """JSON-able description used for cache keying."""
        return {
            "workload": self.workload,
            "mode": self.mode,
            "threads": self.threads,
            "scale": self.scale,
            "seed": self.seed,
            "quantum": self.quantum,
            "config": (dataclasses.asdict(self.config)
                       if self.config is not None else None),
        }


def fingerprint() -> str:
    """Hash of everything that can change a run's result besides the job.

    Covers the package version and the full cost-constant snapshot, so
    cache entries written under a different cost model (including
    temporary :class:`CostModel` overrides) never satisfy a lookup.
    """
    basis = {"version": __version__, "costs": snapshot()}
    blob = json.dumps(basis, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


def job_key(job: Job, fp: Optional[str] = None) -> str:
    """Stable cache key for one job under the given fingerprint."""
    basis = {"job": job.canonical(),
             "fingerprint": fp if fp is not None else fingerprint()}
    blob = json.dumps(basis, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


# ---------------------------------------------------------------------
# RunResult <-> JSON
# ---------------------------------------------------------------------
_RACE_FIELDS = ("kind", "block", "address", "prior_epoch",
                "current_tid", "current_clock", "instr_uid")


class CachedRace:
    """Replayed race report whose structured fields were not archived."""

    def __init__(self, description: str):
        self._description = description

    def describe(self) -> str:
        return self._description

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CachedRace {self._description}>"


def _race_to_dict(race) -> Dict:
    if all(hasattr(race, field) for field in _RACE_FIELDS):
        return {field: getattr(race, field) for field in _RACE_FIELDS}
    return {"describe": race.describe()}


def _race_from_dict(payload: Dict):
    if "describe" in payload:
        return CachedRace(payload["describe"])
    return RaceReport(payload["kind"], payload["block"], payload["address"],
                      payload["prior_epoch"], payload["current_tid"],
                      payload["current_clock"],
                      payload.get("instr_uid", -1))


def result_to_dict(result: RunResult) -> Dict:
    """Serialize a :class:`RunResult` for caching / IPC."""
    return {
        "mode": result.mode,
        "cycles": result.cycles,
        "run_stats": dict(result.run_stats),
        "cycle_breakdown": dict(result.cycle_breakdown),
        "races": [_race_to_dict(r) for r in result.races],
        "aikido_stats": dict(result.aikido_stats),
        "hypervisor_stats": dict(result.hypervisor_stats),
        "detector_profile": dict(result.detector_profile),
    }


def result_from_dict(payload: Dict) -> RunResult:
    """Rebuild a :class:`RunResult` from :func:`result_to_dict` output."""
    return RunResult(
        payload["mode"], payload["cycles"], dict(payload["run_stats"]),
        dict(payload["cycle_breakdown"]),
        races=[_race_from_dict(r) for r in payload["races"]],
        aikido_stats=dict(payload["aikido_stats"]),
        hypervisor_stats=dict(payload["hypervisor_stats"]),
        detector_profile=dict(payload["detector_profile"]),
    )


def execute_job(job: Job) -> RunResult:
    """Run one job in this process (the serial path and the worker body)."""
    from repro.workloads.parsec import get_benchmark

    spec = get_benchmark(job.workload)
    program = spec.program(threads=job.threads, scale=job.scale)
    kwargs = dict(seed=job.seed, quantum=job.quantum)
    if job.config is not None:
        kwargs["config"] = job.config
    return run_mode(program, job.mode, **kwargs)


def _pool_worker(job: Job) -> Dict:
    """Top-level (picklable) worker: run one job, ship metrics back."""
    return result_to_dict(execute_job(job))


def resolve_jobs(jobs: Optional[int]) -> int:
    """Map the user-facing ``--jobs`` value to a worker count.

    ``None`` or ``0`` mean "auto" (one worker per CPU); anything below
    zero is an error.
    """
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise HarnessError(f"jobs must be >= 0 (0 = auto), got {jobs}")
    return jobs


class ParallelRunner:
    """Execute job batches across processes, reusing cached results.

    ``jobs=1`` runs everything inline in submission order — exactly the
    pre-existing serial behavior. ``jobs>1`` fans the batch out over a
    :class:`ProcessPoolExecutor`; ``jobs=0`` (or None) sizes the pool to
    the machine. ``cache`` (a :class:`ResultCache` or None) short-circuits
    any job whose key is already archived.

    Counters: ``simulations`` (runs actually executed) and ``cache_hits``
    (runs served from the archive) — the acceptance check "a warm rerun
    performs zero simulations" is ``runner.simulations == 0``.
    """

    def __init__(self, jobs: Optional[int] = 1,
                 cache: Optional[ResultCache] = None):
        self.jobs = resolve_jobs(jobs)
        self.cache = cache
        self.simulations = 0
        self.cache_hits = 0

    def run(self, jobs: Sequence[Job]) -> List[RunResult]:
        """Run a batch; results come back in submission order."""
        jobs = list(jobs)
        results: List[Optional[RunResult]] = [None] * len(jobs)
        keys: Dict[int, str] = {}
        pending: List[int] = []

        if self.cache is not None:
            fp = fingerprint()
            for index, job in enumerate(jobs):
                keys[index] = job_key(job, fp)
                payload = self.cache.get(keys[index])
                if payload is not None:
                    results[index] = result_from_dict(payload)
                    self.cache_hits += 1
                else:
                    pending.append(index)
        else:
            pending = list(range(len(jobs)))

        if pending:
            self.simulations += len(pending)
            if self.jobs == 1 or len(pending) == 1:
                for index in pending:
                    result = execute_job(jobs[index])
                    results[index] = result
                    if self.cache is not None:
                        self.cache.put(keys[index], result_to_dict(result))
            else:
                workers = min(self.jobs, len(pending))
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    payloads = pool.map(_pool_worker,
                                        [jobs[i] for i in pending])
                    for index, payload in zip(pending, payloads):
                        results[index] = result_from_dict(payload)
                        if self.cache is not None:
                            self.cache.put(keys[index], payload)
        return results

    def run_one(self, job: Job) -> RunResult:
        """Convenience wrapper: run a single job through cache + pool."""
        return self.run([job])[0]

    def stats_line(self) -> str:
        """One-line traffic summary for CLI/script footers."""
        return (f"{self.simulations} simulated, "
                f"{self.cache_hits} served from cache")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ParallelRunner jobs={self.jobs} "
                f"simulations={self.simulations} "
                f"cache_hits={self.cache_hits}>")
