"""Process-pool execution of harness runs, with an on-disk result cache.

Every run of the evaluation (§5) is an independent, deterministic
simulation: the same job tuple always produces the same metrics. That
makes the suite embarrassingly parallel and perfectly cacheable, and
this module exploits both:

* :class:`Job` — one run, described by plain data (a registered
  benchmark name rather than a live :class:`~repro.machine.program.Program`,
  so it pickles cheaply and hashes stably);
* :class:`ParallelRunner` — executes a batch of jobs via
  :class:`concurrent.futures.ProcessPoolExecutor` (``jobs>1``) or inline
  (``jobs=1``, byte-for-byte today's serial behavior), consulting a
  :class:`~repro.harness.resultcache.ResultCache` first when one is
  attached;
* :func:`fingerprint` — hash of the package version plus every active
  cost constant, folded into each cache key so editing the cost model
  (or running under a :class:`~repro.harness.costmodel.CostModel`
  override) invalidates prior results automatically.

The runner is crash-tolerant (this is the harness the chaos experiments
lean on, so it must outlive anything it measures): per-job wall-clock
timeouts, bounded retry with backoff for transient failures, recovery
from a killed worker (:class:`BrokenProcessPool` rebuilds the pool or
falls back to inline execution), per-job :class:`JobFailure` records
instead of batch aborts, and an optional
:class:`~repro.harness.journal.RunJournal` checkpoint so ``--resume``
replays every finished job with zero re-simulation.

Because runs are deterministic per seed, parallel and serial execution
produce identical metrics — ``tests/harness/test_parallel.py`` enforces
this metric-for-metric.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import signal
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro import __version__
from repro.analyses.fasttrack.reports import RaceReport
from repro.core.config import AikidoConfig
from repro.errors import (
    HarnessError,
    JobTimeoutError,
    ReproError,
    SuiteFailureError,
)
from repro.harness.costmodel import snapshot
from repro.harness.journal import RunJournal
from repro.harness.resultcache import ResultCache
from repro.harness.runner import MODES, RunResult, run_mode

#: Failure kinds the runner will retry (transient by nature). Simulated
#: errors (deadlock, segfault, invariant violation) are deterministic —
#: retrying replays the identical failure, so they fail fast instead.
_RETRYABLE_KINDS = frozenset({"timeout", "exception", "worker-lost"})


@dataclass(frozen=True)
class Job:
    """One simulation run, described by plain (picklable, hashable) data.

    ``workload`` is a registered benchmark name (see
    :mod:`repro.workloads.parsec`); the worker process rebuilds the
    program from the registry, so no simulator state crosses the
    process boundary.
    """

    workload: str
    mode: str
    threads: int = 8
    scale: float = 1.0
    seed: int = 1
    quantum: int = 150
    config: Optional[AikidoConfig] = None

    def __post_init__(self):
        if self.mode not in MODES:
            raise HarnessError(
                f"unknown mode {self.mode!r}; expected one of {MODES}")

    def canonical(self) -> Dict:
        """JSON-able description used for cache keying."""
        return {
            "workload": self.workload,
            "mode": self.mode,
            "threads": self.threads,
            "scale": self.scale,
            "seed": self.seed,
            "quantum": self.quantum,
            "config": (dataclasses.asdict(self.config)
                       if self.config is not None else None),
        }


def fingerprint() -> str:
    """Hash of everything that can change a run's result besides the job.

    Covers the package version and the full cost-constant snapshot, so
    cache entries written under a different cost model (including
    temporary :class:`CostModel` overrides) never satisfy a lookup.
    """
    basis = {"version": __version__, "costs": snapshot()}
    blob = json.dumps(basis, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


def job_key(job: Job, fp: Optional[str] = None) -> str:
    """Stable cache key for one job under the given fingerprint."""
    basis = {"job": job.canonical(),
             "fingerprint": fp if fp is not None else fingerprint()}
    blob = json.dumps(basis, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


# ---------------------------------------------------------------------
# RunResult <-> JSON
# ---------------------------------------------------------------------
_RACE_FIELDS = ("kind", "block", "address", "prior_epoch",
                "current_tid", "current_clock", "instr_uid")


class CachedRace:
    """Replayed race report whose structured fields were not archived."""

    def __init__(self, description: str):
        self._description = description

    def describe(self) -> str:
        return self._description

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CachedRace {self._description}>"


def _race_to_dict(race) -> Dict:
    if all(hasattr(race, field) for field in _RACE_FIELDS):
        return {field: getattr(race, field) for field in _RACE_FIELDS}
    return {"describe": race.describe()}


def _race_from_dict(payload: Dict):
    if "describe" in payload:
        return CachedRace(payload["describe"])
    return RaceReport(payload["kind"], payload["block"], payload["address"],
                      payload["prior_epoch"], payload["current_tid"],
                      payload["current_clock"],
                      payload.get("instr_uid", -1))


def result_to_dict(result: RunResult) -> Dict:
    """Serialize a :class:`RunResult` for caching / IPC."""
    return {
        "mode": result.mode,
        "cycles": result.cycles,
        "run_stats": dict(result.run_stats),
        "cycle_breakdown": dict(result.cycle_breakdown),
        "races": [_race_to_dict(r) for r in result.races],
        "aikido_stats": dict(result.aikido_stats),
        "hypervisor_stats": dict(result.hypervisor_stats),
        "detector_profile": dict(result.detector_profile),
        "chaos": result.chaos,
        "timeline": [dict(sample) for sample in result.timeline],
        "elision": result.elision,
        "superblocks": result.superblocks,
    }


def result_from_dict(payload: Dict) -> RunResult:
    """Rebuild a :class:`RunResult` from :func:`result_to_dict` output."""
    return RunResult(
        payload["mode"], payload["cycles"], dict(payload["run_stats"]),
        dict(payload["cycle_breakdown"]),
        races=[_race_from_dict(r) for r in payload["races"]],
        aikido_stats=dict(payload["aikido_stats"]),
        hypervisor_stats=dict(payload["hypervisor_stats"]),
        detector_profile=dict(payload["detector_profile"]),
        chaos=payload.get("chaos"),  # absent in pre-chaos archives
        timeline=payload.get("timeline"),  # absent in pre-1.2 archives
        elision=payload.get("elision"),  # absent in pre-elision archives
        superblocks=payload.get("superblocks"),  # absent pre-1.4
    )


def execute_job(job: Job) -> RunResult:
    """Run one job in this process (the serial path and the worker body)."""
    from repro.workloads.parsec import get_benchmark

    spec = get_benchmark(job.workload)
    program = spec.program(threads=job.threads, scale=job.scale)
    kwargs = dict(seed=job.seed, quantum=job.quantum)
    if job.config is not None:
        kwargs["config"] = job.config
    return run_mode(program, job.mode, **kwargs)


@dataclass
class JobFailure:
    """Per-job failure record: what failed, how, and what it left behind.

    Takes a failed job's slot in the batch result list so one bad run no
    longer costs the suite every *good* run. ``kind`` is one of
    ``timeout`` / ``simulated`` / ``exception`` / ``worker-lost``;
    ``address`` / ``thread_id`` / ``invariant`` carry the structured
    fields of :class:`~repro.errors.SegmentationFaultError` and
    :class:`~repro.errors.InvariantViolationError` when present.
    """

    job: Job
    kind: str
    error_type: str
    message: str
    attempts: int = 1
    address: Optional[int] = None
    thread_id: Optional[int] = None
    invariant: Optional[str] = None
    details: Dict = field(default_factory=dict)

    def describe(self) -> str:
        parts = [f"{self.job.workload}/{self.job.mode}",
                 f"[{self.kind}] {self.error_type}: {self.message}"]
        if self.address is not None:
            parts.append(f"addr={self.address:#x}")
        if self.thread_id is not None:
            parts.append(f"tid={self.thread_id}")
        if self.invariant is not None:
            parts.append(f"invariant={self.invariant}")
        if self.attempts > 1:
            parts.append(f"after {self.attempts} attempts")
        return " ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<JobFailure {self.describe()}>"


@contextmanager
def _deadline(seconds: Optional[float]):
    """Enforce a wall-clock budget on the enclosed block via SIGALRM.

    No-op when ``seconds`` is falsy or we are not on the main thread
    (SIGALRM can only be handled there). Nests: an enclosing deadline's
    remaining time is re-armed on exit, so the per-job guard composes
    with e.g. the test suite's global runaway guard.
    """
    if not seconds or seconds <= 0:
        yield
        return
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    def _on_alarm(signum, frame):
        raise JobTimeoutError(
            f"job exceeded its {seconds:g}s wall-clock budget")

    old_handler = signal.signal(signal.SIGALRM, _on_alarm)
    old_delay, old_interval = signal.setitimer(signal.ITIMER_REAL, seconds)
    started = time.monotonic()
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, old_handler)
        if old_delay:
            remaining = old_delay - (time.monotonic() - started)
            signal.setitimer(signal.ITIMER_REAL, max(remaining, 0.001),
                             old_interval)


def _error_outcome(kind: str, exc: BaseException) -> Dict:
    outcome = {
        "status": "error",
        "kind": kind,
        "error_type": type(exc).__name__,
        "message": str(exc),
    }
    for attr in ("address", "thread_id", "invariant"):
        value = getattr(exc, attr, None)
        if value is not None:
            outcome[attr] = value
    details = getattr(exc, "details", None)
    if details:
        outcome["details"] = dict(details)
    return outcome


def _guarded_outcome(job: Job, timeout: Optional[float]) -> Dict:
    """Run one job, capturing any failure as a plain outcome dict.

    Outcome dicts (not exceptions) cross the process boundary: exception
    pickling would silently drop the structured fields of errors like
    :class:`SegmentationFaultError` whose ``__init__`` takes keyword-only
    extras.
    """
    try:
        with _deadline(timeout):
            result = execute_job(job)
    except JobTimeoutError as exc:
        return _error_outcome("timeout", exc)
    except ReproError as exc:
        return _error_outcome("simulated", exc)
    except Exception as exc:  # noqa: BLE001 - the pool must survive anything
        return _error_outcome("exception", exc)
    return {"status": "ok", "payload": result_to_dict(result)}


def _pool_worker(job: Job, timeout: Optional[float] = None) -> Dict:
    """Top-level (picklable) worker: run one job, ship the outcome back."""
    os.environ["AIKIDO_POOL_WORKER"] = "1"
    return _guarded_outcome(job, timeout)


def resolve_jobs(jobs: Optional[int]) -> int:
    """Map the user-facing ``--jobs`` value to a worker count.

    ``None`` or ``0`` mean "auto" (one worker per CPU); anything below
    zero is an error.
    """
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise HarnessError(f"jobs must be >= 0 (0 = auto), got {jobs}")
    return jobs


#: What ParallelRunner.run hands back per job.
BatchEntry = Union[RunResult, JobFailure]


class ParallelRunner:
    """Execute job batches across processes, reusing cached results.

    ``jobs=1`` runs everything inline in submission order — exactly the
    pre-existing serial behavior. ``jobs>1`` fans the batch out over a
    :class:`ProcessPoolExecutor`; ``jobs=0`` (or None) sizes the pool to
    the machine. ``cache`` (a :class:`ResultCache` or None) short-circuits
    any job whose key is already archived.

    Hardening knobs (all keyword-only, all off by default):

    ``timeout``
        Per-job wall-clock budget in seconds; an overrunning job becomes
        a ``timeout`` failure record instead of hanging the suite.
    ``retries``
        Extra attempts granted to *transient* failures (timeout, host
        exception, killed worker). Simulated errors never retry — the
        simulation is deterministic, so the rerun would fail identically.
    ``backoff``
        Seconds slept before retry attempt *n* (scaled by n).
    ``journal``
        A :class:`RunJournal`; every finished job is checkpointed, and
        journaled results are replayed before cache lookup, so resuming
        an interrupted suite re-simulates nothing that finished.

    A worker death (:class:`BrokenProcessPool`) is absorbed: completed
    results are kept, the pool is rebuilt for jobs with retry budget, and
    jobs without budget run inline in this process — the batch always
    comes back full.

    Counters: ``simulations`` (runs actually started), ``cache_hits``,
    ``journal_hits``, ``timeouts``, ``retries_performed``,
    ``pool_recoveries``, ``inline_fallbacks`` — the acceptance check "a
    warm rerun performs zero simulations" is ``runner.simulations == 0``.
    """

    def __init__(self, jobs: Optional[int] = 1,
                 cache: Optional[ResultCache] = None, *,
                 timeout: Optional[float] = None, retries: int = 0,
                 backoff: float = 0.0,
                 journal: Optional[RunJournal] = None):
        if retries < 0:
            raise HarnessError(f"retries must be >= 0, got {retries}")
        self.jobs = resolve_jobs(jobs)
        self.cache = cache
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.journal = journal
        self.simulations = 0
        self.cache_hits = 0
        self.journal_hits = 0
        self.timeouts = 0
        self.retries_performed = 0
        self.pool_recoveries = 0
        self.inline_fallbacks = 0

    def run(self, jobs: Sequence[Job],
            strict: bool = True) -> List[BatchEntry]:
        """Run a batch; entries come back in submission order.

        With ``strict=True`` (default) any failed job raises
        :class:`SuiteFailureError` *after* the whole batch settles; the
        exception carries both the failure records and the full mixed
        result list, so completed work is never lost. ``strict=False``
        returns the mixed list directly.
        """
        jobs = list(jobs)
        results: List[Optional[BatchEntry]] = [None] * len(jobs)
        keys: List[str] = []
        pending: List[int] = []

        fp = fingerprint()
        for index, job in enumerate(jobs):
            keys.append(job_key(job, fp))
            payload = None
            if self.journal is not None:
                payload = self.journal.get(keys[index])
                if payload is not None:
                    self.journal_hits += 1
            if payload is None and self.cache is not None:
                payload = self.cache.get(keys[index])
                if payload is not None:
                    self.cache_hits += 1
            if payload is not None:
                results[index] = result_from_dict(payload)
            else:
                pending.append(index)

        if pending:
            self.simulations += len(pending)
            queue: List[Tuple[int, int]] = [(i, 1) for i in pending]
            if self.jobs == 1 or len(pending) == 1:
                self._run_inline(jobs, queue, results, keys)
            else:
                self._run_pool(jobs, queue, results, keys)

        failures = [entry for entry in results
                    if isinstance(entry, JobFailure)]
        if failures and strict:
            lines = "; ".join(f.describe() for f in failures)
            raise SuiteFailureError(
                f"{len(failures)} of {len(jobs)} jobs failed: {lines}",
                failures=failures, results=results)
        return results

    # ------------------------------------------------------------------
    # execution backends
    # ------------------------------------------------------------------
    def _run_inline(self, jobs: List[Job], queue: List[Tuple[int, int]],
                    results: List[Optional[BatchEntry]],
                    keys: List[str]) -> None:
        while queue:
            retry_queue: List[Tuple[int, int]] = []
            for index, attempt in queue:
                outcome = _guarded_outcome(jobs[index], self.timeout)
                self._settle(jobs, index, attempt, outcome, results, keys,
                             retry_queue)
            queue = retry_queue

    def _run_pool(self, jobs: List[Job], queue: List[Tuple[int, int]],
                  results: List[Optional[BatchEntry]],
                  keys: List[str]) -> None:
        while queue:
            workers = min(self.jobs, len(queue))
            retry_queue: List[Tuple[int, int]] = []
            casualties: List[Tuple[int, int]] = []
            broken = False
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(_pool_worker, jobs[index], self.timeout):
                    (index, attempt)
                    for index, attempt in queue
                }
                not_done = set(futures)
                while not_done and not broken:
                    done, not_done = wait(not_done,
                                          return_when=FIRST_COMPLETED)
                    for future in done:
                        index, attempt = futures[future]
                        try:
                            outcome = future.result()
                        except BrokenProcessPool:
                            broken = True
                            casualties.append((index, attempt))
                            continue
                        self._settle(jobs, index, attempt, outcome,
                                     results, keys, retry_queue)
                if broken:
                    # The pool is dead but completed futures still hold
                    # their outcomes — harvest them, requeue the rest.
                    self.pool_recoveries += 1
                    for future in not_done:
                        index, attempt = futures[future]
                        try:
                            outcome = future.result(timeout=0)
                        except Exception:  # noqa: BLE001 - dead future
                            casualties.append((index, attempt))
                            continue
                        self._settle(jobs, index, attempt, outcome,
                                     results, keys, retry_queue)
            for index, attempt in casualties:
                if attempt <= self.retries:
                    self.retries_performed += 1
                    retry_queue.append((index, attempt + 1))
                else:
                    # No retry budget left: guarantee progress by running
                    # the casualty inline (a kill loop cannot reach us
                    # here — this process is the suite).
                    self.inline_fallbacks += 1
                    outcome = _guarded_outcome(jobs[index], self.timeout)
                    self._settle(jobs, index, attempt, outcome, results,
                                 keys, retry_queue,
                                 lost_worker_fallback=True)
            queue = retry_queue

    def _settle(self, jobs: List[Job], index: int, attempt: int,
                outcome: Dict, results: List[Optional[BatchEntry]],
                keys: List[str], retry_queue: List[Tuple[int, int]],
                lost_worker_fallback: bool = False) -> None:
        """Turn one outcome dict into a result, a retry, or a failure."""
        if outcome["status"] == "ok":
            payload = outcome["payload"]
            results[index] = result_from_dict(payload)
            if self.cache is not None:
                self.cache.put(keys[index], payload)
            if self.journal is not None:
                self.journal.record(keys[index], payload)
            return
        kind = outcome["kind"]
        if kind == "timeout":
            self.timeouts += 1
        if (kind in _RETRYABLE_KINDS and attempt <= self.retries
                and not lost_worker_fallback):
            self.retries_performed += 1
            if self.backoff > 0:
                time.sleep(self.backoff * attempt)
            retry_queue.append((index, attempt + 1))
            return
        results[index] = JobFailure(
            job=jobs[index], kind=kind,
            error_type=outcome.get("error_type", "Exception"),
            message=outcome.get("message", ""), attempts=attempt,
            address=outcome.get("address"),
            thread_id=outcome.get("thread_id"),
            invariant=outcome.get("invariant"),
            details=outcome.get("details", {}))

    def run_one(self, job: Job) -> RunResult:
        """Convenience wrapper: run a single job through cache + pool."""
        return self.run([job])[0]

    def stats_line(self) -> str:
        """One-line traffic summary for CLI/script footers."""
        line = (f"{self.simulations} simulated, "
                f"{self.cache_hits} served from cache")
        if self.journal_hits:
            line += f", {self.journal_hits} replayed from journal"
        extras = []
        if self.timeouts:
            extras.append(f"{self.timeouts} timeouts")
        if self.retries_performed:
            extras.append(f"{self.retries_performed} retries")
        if self.pool_recoveries:
            extras.append(f"{self.pool_recoveries} pool recoveries")
        if self.inline_fallbacks:
            extras.append(f"{self.inline_fallbacks} inline fallbacks")
        if extras:
            line += " (" + ", ".join(extras) + ")"
        return line

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ParallelRunner jobs={self.jobs} "
                f"simulations={self.simulations} "
                f"cache_hits={self.cache_hits}>")
