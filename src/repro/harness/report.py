"""Render experiment results as the paper's tables and figures (ASCII).

Figures are printed as horizontal bar charts; tables as aligned columns
with measured-vs-paper comparisons where the paper published numbers.
"""

from __future__ import annotations

import io
from typing import List, Optional, Tuple

from repro.harness.experiments import (
    ChaosSweep,
    SuiteResult,
    Table2Row,
    figure5,
    figure6,
    table2,
)
from repro.workloads.parsec import get_benchmark


def _bar(value: float, maximum: float, width: int = 36) -> str:
    filled = 0 if maximum <= 0 else int(round(width * value / maximum))
    return "#" * min(width, filled)


def render_figure5(suite: SuiteResult) -> str:
    """Figure 5: slowdown vs native (lower is better)."""
    rows = figure5(suite)
    maximum = max(max(ft, aik) for _, ft, aik in rows)
    out = io.StringIO()
    out.write("Figure 5: slowdown vs native "
              f"({suite.threads} threads; lower is better)\n")
    out.write(f"{'benchmark':>14s}  {'tool':>16s} {'x':>7s}  chart\n")
    for name, ft, aik in rows:
        out.write(f"{name:>14s}  {'FastTrack':>16s} {ft:6.1f}x  "
                  f"{_bar(ft, maximum)}\n")
        out.write(f"{'':>14s}  {'Aikido-FastTrack':>16s} {aik:6.1f}x  "
                  f"{_bar(aik, maximum)}\n")
    return out.getvalue()


def render_figure6(suite: SuiteResult) -> str:
    """Figure 6: % of accesses that target shared pages."""
    rows = figure6(suite)
    out = io.StringIO()
    out.write("Figure 6: accesses to shared pages "
              f"({suite.threads} threads)\n")
    out.write(f"{'benchmark':>14s} {'measured':>9s} {'paper':>7s}  chart\n")
    for name, fraction in rows:
        paper = get_benchmark(name).paper.shared_fraction
        label = (f"{fraction*100:8.2f}%" if fraction >= 0.005
                 else f"{fraction*100:8.2f}%")
        out.write(f"{name:>14s} {label} {paper*100:6.2f}%  "
                  f"{_bar(fraction, 1.0, 40)}\n")
    return out.getvalue()


def render_table1(results, *, paper: Optional[dict] = None) -> str:
    """Table 1: fluidanimate/vips slowdowns at 2/4/8 threads."""
    paper = paper if paper is not None else PAPER_TABLE1
    out = io.StringIO()
    out.write("Table 1: slowdowns at different thread counts "
              "(measured | paper)\n")
    threads = sorted(next(iter(results.values())).keys())
    header = "".join(f"{t:>20d}T" for t in threads)
    out.write(f"{'benchmark (tool)':>32s}{header}\n")
    for name, per_thread in results.items():
        for idx, tool in enumerate(("FastTrack", "Aikido-FastTrack")):
            cells = []
            for t in threads:
                measured = per_thread[t][idx]
                published = paper.get((name, tool, t))
                cells.append(f"{measured:9.1f}x |{published:7.1f}x"
                             if published is not None
                             else f"{measured:9.1f}x |      - ")
            out.write(f"{name + ' (' + tool + ')':>32s}"
                      + "".join(f"{c:>21s}" for c in cells) + "\n")
    return out.getvalue()


#: The paper's Table 1 numbers.
PAPER_TABLE1 = {
    ("fluidanimate", "FastTrack", 2): 55.79,
    ("fluidanimate", "FastTrack", 4): 127.62,
    ("fluidanimate", "FastTrack", 8): 178.60,
    ("fluidanimate", "Aikido-FastTrack", 2): 48.11,
    ("fluidanimate", "Aikido-FastTrack", 4): 110.65,
    ("fluidanimate", "Aikido-FastTrack", 8): 184.33,
    ("vips", "FastTrack", 2): 45.52,
    ("vips", "FastTrack", 4): 53.34,
    ("vips", "FastTrack", 8): 67.24,
    ("vips", "Aikido-FastTrack", 2): 31.5,
    ("vips", "Aikido-FastTrack", 4): 35.96,
    ("vips", "Aikido-FastTrack", 8): 66.37,
}

#: The paper's Table 2 (absolute dynamic counts on the real PARSEC runs;
#: our counts are scaled, so reports compare the *ratios*).
PAPER_TABLE2 = {
    "freqmine": (1_167_712_401, 742_195_956, 651_009_521, 24_880),
    "blackscholes": (105_944_404, 7_395_315, 7_340_038, 889),
    "bodytrack": (384_925_938, 83_514_877, 77_116_382, 8_993),
    "raytrace": (13_186_394_771, 16_920_360, 14_419_167, 23_350),
    "swaptions": (350_009_582, 58_348_333, 41_602_078, 1_778),
    "fluidanimate": (556_317_760, 356_317_897, 267_758_255, 11_054),
    "vips": (1_044_161_383, 253_794_130, 231_533_572, 10_227),
    "x264": (241_456_020, 82_561_137, 70_813_420, 32_616),
    "canneal": (560_635_087, 69_108_663, 68_153_896, 23_049),
    "streamcluster": (1_067_233_548, 403_953_097, 396_265_668, 5_918),
}


def render_table2(suite: SuiteResult) -> str:
    rows = table2(suite)
    out = io.StringIO()
    out.write("Table 2: instrumentation statistics "
              f"({suite.threads} threads)\n")
    out.write(f"{'benchmark':>14s} {'mem refs':>10s} {'instrumented':>13s} "
              f"{'shared acc':>11s} {'segfaults':>10s} "
              f"{'instr frac (paper)':>19s}\n")
    for row in rows:
        paper = PAPER_TABLE2[row.benchmark]
        paper_frac = paper[1] / paper[0]
        frac = row.instrumented_execs / max(1, row.memory_refs)
        out.write(f"{row.benchmark:>14s} {row.memory_refs:>10d} "
                  f"{row.instrumented_execs:>13d} {row.shared_accesses:>11d} "
                  f"{row.segfaults:>10d} "
                  f"{frac*100:8.1f}% ({paper_frac*100:5.1f}%)\n")
    reduction = suite.geomean_instrumentation_reduction()
    out.write(f"geomean reduction in instrumented memory instructions: "
              f"{reduction:.2f}x (paper: 6.75x)\n")
    return out.getvalue()


def render_breakdown(suite: SuiteResult, top: int = 6) -> str:
    """Where the cycles go: top cost categories per benchmark and mode.

    The view the calibration was done with — useful when tuning the cost
    model or explaining a benchmark's slowdown.
    """
    out = io.StringIO()
    out.write("Cycle breakdown (top categories; share of the mode's "
              "total)\n")
    for name, runs in suite.runs.items():
        out.write(f"{name}:\n")
        for label, result in (("FastTrack", runs.fasttrack),
                              ("Aikido-FastTrack", runs.aikido)):
            total = max(1, result.cycles)
            top_categories = sorted(result.cycle_breakdown.items(),
                                    key=lambda kv: -kv[1])[:top]
            cells = ", ".join(f"{category} {100*cycles/total:.0f}%"
                              for category, cycles in top_categories)
            out.write(f"  {label:>16s}: {cells}\n")
    return out.getvalue()


def render_attribution(suite: SuiteResult) -> str:
    """Where the cycles go: the bucket decomposition per benchmark.

    One aikido-fasttrack row per benchmark, showing each attribution
    bucket's share of the run's total simulated cycles. The buckets
    partition the cycle counter's categories, so the shares sum to 100%
    exactly (modulo display rounding) — the per-row total is asserted by
    :attr:`~repro.harness.runner.RunResult.cycle_attribution` itself.
    """
    from repro.observability.attribution import BUCKETS

    out = io.StringIO()
    out.write("Where the cycles go (aikido-fasttrack, "
              f"{suite.threads} threads; share of total simulated "
              "cycles)\n")
    header = "".join(f"{bucket:>17s}" for bucket in BUCKETS)
    out.write(f"{'benchmark':>14s}{header} {'total cycles':>14s}\n")
    for name, runs in suite.runs.items():
        attribution = runs.aikido.cycle_attribution
        total = max(1, attribution["total"])
        cells = "".join(f"{100 * attribution[b] / total:16.1f}%"
                        for b in BUCKETS)
        out.write(f"{name:>14s}{cells} {attribution['total']:>14,d}\n")
    return out.getvalue()


def render_instrumentation(suite: SuiteResult) -> str:
    """Discovery-machinery counters per benchmark (aikido-fasttrack).

    The satellite view of Table 2: how much re-JIT work the fault-driven
    discovery performed — faults handled, blocks flushed and rebuilt,
    direct patches and indirect hooks installed across all (re)builds.
    """
    out = io.StringIO()
    out.write("Instrumentation machinery (aikido-fasttrack, "
              f"{suite.threads} threads)\n")
    out.write(f"{'benchmark':>14s} {'faults':>7s} {'rejit':>6s} "
              f"{'cc builds':>10s} {'cc flushes':>11s} {'patches':>8s} "
              f"{'hooks':>6s} {'traces':>7s}\n")
    for name, runs in suite.runs.items():
        aik = runs.aikido
        out.write(
            f"{name:>14s} "
            f"{aik.aikido_stats.get('faults_handled', 0):>7d} "
            f"{aik.rejit_flushes:>6d} "
            f"{aik.run_stats.get('codecache_builds', 0):>10d} "
            f"{aik.run_stats.get('codecache_flushes', 0):>11d} "
            f"{aik.aikido_stats.get('direct_patches', 0):>8d} "
            f"{aik.aikido_stats.get('indirect_hooks', 0):>6d} "
            f"{aik.run_stats.get('traces_built', 0):>7d}\n")
    return out.getvalue()


def render_prepass(comparisons) -> str:
    """The --static-prepass ablation: discovery overhead saved.

    Every row is one benchmark run twice in aikido-fasttrack mode with
    identical seed/quantum; the driver has already asserted analysis
    parity, so only overhead columns can differ.
    """
    out = io.StringIO()
    out.write("Static-prepass ablation (aikido-fasttrack, "
              "dynamic-only vs seeded)\n")
    out.write(f"{'benchmark':>14s} {'coverage':>9s} {'seeded':>7s} "
              f"{'faults':>13s} {'cc flushes':>13s} {'cycles':>15s} "
              f"{'parity':>7s}\n")
    for c in comparisons:
        dyn_f = c.dynamic.aikido_stats.get("faults_handled", 0)
        pre_f = c.prepass.aikido_stats.get("faults_handled", 0)
        dyn_x = c.dynamic.run_stats.get("codecache_flushes", 0)
        pre_x = c.prepass.run_stats.get("codecache_flushes", 0)
        out.write(
            f"{c.benchmark:>14s} {c.coverage*100:8.1f}% "
            f"{c.prepass.aikido_stats.get('prepass_seeded', 0):>7d} "
            f"{f'{dyn_f}->{pre_f}':>13s} "
            f"{f'{dyn_x}->{pre_x}':>13s} "
            f"{f'{c.dynamic.cycles}->{c.prepass.cycles}':>15s} "
            f"{'ok' if c.analysis_match else 'BROKEN':>7s}\n")
    total_f = sum(c.faults_saved for c in comparisons)
    total_x = sum(c.flushes_saved for c in comparisons)
    out.write(f"total saved: {total_f} faults, {total_x} cache flushes\n")
    return out.getvalue()


def render_elision(comparisons) -> str:
    """The static-elision ablation: checks elided at bit-identity.

    Every row is one benchmark run twice in aikido-fasttrack mode with
    identical seed/quantum; the driver has already asserted full parity
    (cycles, stats, races), so the elision columns are pure overhead
    accounting: how many shared-check hook dispatches the compiled fast
    paths absorbed, and how many planned uids the dynamic tripwire had
    to retire when their pages turned SHARED.
    """
    out = io.StringIO()
    out.write("Static-elision ablation (aikido-fasttrack, plain vs "
              "--static-elide)\n")
    out.write(f"{'benchmark':>14s} {'plan':>9s} {'elided':>8s} "
              f"{'fast-path':>10s} {'retired':>8s} {'cycles':>12s} "
              f"{'parity':>7s}\n")
    total_elided = 0
    for c in comparisons:
        plan = c.plan
        planned = plan.get("elidable", 0)
        memory = plan.get("memory_instructions", 0)
        total_elided += c.checks_elided
        out.write(
            f"{c.benchmark:>14s} {f'{planned}/{memory}':>9s} "
            f"{c.checks_elided:>8,d} {c.fast_path_instructions:>10,d} "
            f"{c.retired_uids:>8d} {c.elided.cycles:>12,d} "
            f"{'ok' if c.parity else 'BROKEN':>7s}\n")
    out.write(f"total shared-check dispatches elided: {total_elided:,}\n")
    return out.getvalue()


def render_static_races(reports) -> str:
    """Static race analyzer verdicts, one section per workload."""
    out = io.StringIO()
    for report in reports:
        out.write(report.render() + "\n\n")
    return out.getvalue().rstrip() + "\n"


def render_chaos(sweep) -> str:
    """Survivability table for a chaos sweep.

    Accepts a :class:`ChaosSweep` or its :meth:`~ChaosSweep.to_dict`
    payload (so archived JSON renders identically). Per cell: injections
    delivered, injections recovered, invariant checks run, and whether
    the race reports matched the chaos-free baseline bit for bit —
    guaranteed for recovery plans, informational for hostile ones.
    """
    payload = sweep.to_dict() if isinstance(sweep, ChaosSweep) else sweep
    out = io.StringIO()
    out.write("Chaos sweep: survivability under fault injection "
              f"({payload['threads']} threads, "
              f"intensity {payload['intensity']:g})\n")
    out.write(f"{'benchmark':>14s} {'plan':>9s} {'seed':>5s} "
              f"{'injected':>9s} {'recovered':>10s} {'inv.checks':>11s} "
              f"{'races':>7s} {'outcome':>24s}\n")
    for cell in payload["cells"]:
        if cell["survived"]:
            races = "same" if cell["races_match"] else "differ"
            if not cell["schedule_neutral"] and not cell["races_match"]:
                races += "*"
            outcome = "survived"
        else:
            races = "-"
            failure = cell.get("failure", {})
            outcome = failure.get("error_type", "failed")
            if failure.get("invariant"):
                outcome = f"violation:{failure['invariant']}"
        out.write(f"{cell['benchmark']:>14s} {cell['plan']:>9s} "
                  f"{cell['chaos_seed']:>5d} {cell['injected']:>9d} "
                  f"{cell['recovered']:>10d} "
                  f"{cell['invariant_checks']:>11d} {races:>7s} "
                  f"{outcome:>24s}\n")
    out.write(f"total: {payload['delivered']} injections delivered, "
              f"{payload['recovered']} recovered\n")
    if any(not c["schedule_neutral"] for c in payload["cells"]):
        out.write("(* hostile preemption perturbs the schedule; differing "
                  "races are expected, invariants must still hold)\n")
    return out.getvalue()


def render_races(race_table: dict) -> str:
    out = io.StringIO()
    out.write("Detected races (§5.3): FastTrack vs Aikido-FastTrack\n")
    out.write(f"{'benchmark':>14s} {'FastTrack':>10s} {'Aikido':>8s}\n")
    for name, counts in race_table.items():
        out.write(f"{name:>14s} {counts['fasttrack']:>10d} "
                  f"{counts['aikido']:>8d}\n")
    return out.getvalue()


def suite_to_dict(suite: SuiteResult) -> dict:
    """Machine-readable form of one suite run (for --json / archiving)."""
    out = {
        "config": {"threads": suite.threads, "scale": suite.scale,
                   "seed": suite.seed},
        "geomean_speedup": suite.geomean_speedup(),
        "geomean_instrumentation_reduction":
            suite.geomean_instrumentation_reduction(),
        "benchmarks": {},
    }
    for name, runs in suite.runs.items():
        paper = get_benchmark(name).paper
        out["benchmarks"][name] = {
            "ft_slowdown": runs.ft_slowdown,
            "aikido_slowdown": runs.aikido_slowdown,
            "speedup": runs.speedup,
            "shared_fraction": runs.shared_fraction,
            "instrumented_fraction": runs.instrumented_fraction,
            "memory_refs": runs.aikido.memory_refs,
            "instrumented_execs": runs.aikido.instrumented_execs,
            "shared_accesses": runs.aikido.shared_accesses,
            "segfaults": runs.aikido.segfaults,
            "races_fasttrack": len(runs.fasttrack.races),
            "races_aikido": len(runs.aikido.races),
            "faults_handled":
                runs.aikido.aikido_stats.get("faults_handled", 0),
            "rejit_flushes": runs.aikido.rejit_flushes,
            "direct_patches":
                runs.aikido.aikido_stats.get("direct_patches", 0),
            "indirect_hooks":
                runs.aikido.aikido_stats.get("indirect_hooks", 0),
            "codecache_builds":
                runs.aikido.run_stats.get("codecache_builds", 0),
            "codecache_flushes":
                runs.aikido.run_stats.get("codecache_flushes", 0),
            "traces_built":
                runs.aikido.run_stats.get("traces_built", 0),
            "prepass": {
                "seeded":
                    runs.aikido.aikido_stats.get("prepass_seeded", 0),
                "coverage": runs.aikido.prepass_coverage,
                "faults_avoided": runs.aikido.prepass_faults_avoided,
                "flushes_avoided": runs.aikido.prepass_flushes_avoided,
            },
            # The complete counter set, under its canonical field names
            # (the schema-consistency test pins this against AikidoStats).
            "aikido_stats": dict(runs.aikido.aikido_stats),
            "cycle_attribution": runs.aikido.cycle_attribution,
            "timeline": [dict(s) for s in runs.aikido.timeline],
            "paper": {
                "shared_fraction": paper.shared_fraction,
                "instrumented_fraction": paper.instrumented_fraction,
                "ft_slowdown_8t": paper.ft_slowdown_8t,
                "aikido_slowdown_8t": paper.aikido_slowdown_8t,
            },
        }
    return out


def render_summary(suite: SuiteResult) -> str:
    speedup = suite.geomean_speedup()
    best_name, best = max(
        ((name, runs.speedup) for name, runs in suite.runs.items()),
        key=lambda kv: kv[1])
    wins = sum(1 for r in suite.runs.values() if r.speedup > 1.1)
    parity = sum(1 for r in suite.runs.values()
                 if 0.95 <= r.speedup <= 1.1)
    losses = sum(1 for r in suite.runs.values() if r.speedup < 0.95)
    return (
        "Headline vs paper:\n"
        f"  average speedup: {100*(speedup-1):.0f}% (paper: 76%)\n"
        f"  best speedup: {best:.1f}x on {best_name} "
        "(paper: 6.0x on raytrace)\n"
        f"  improved: {wins}, little change: {parity}, slower: {losses} "
        "(paper: 6 improved, 3 little change, 1 slower)\n")
