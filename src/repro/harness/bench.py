"""Wall-clock benchmark suite for the DBR execution tiers.

Everything else in the harness measures *simulated cycles* — a
deterministic quantity that is bit-identical between the interpreter and
block-compiled tiers by design. This module measures the one thing that
is allowed to differ: **host wall-clock speed**. It runs each bundled
workload under both tiers and reports seconds, instructions/second and
the compiled-tier speedup, in a stable JSON document
(``BENCH_simulator.json``) that the regression gate
(``scripts/bench_gate.py``) diffs against the committed trajectory.

Five sections:

* ``workloads`` — the headline: each PARSEC-style workload on the bare
  DBR engine (no tool attached), all three tiers — interpreter,
  block-compiled, and superblock (compiled blocks chained into
  trace-scheduled superblocks). This isolates the execution engine
  itself, where the block compiler and the superblock builder do their
  work.
* ``macro`` — the full aikido-fasttrack stack on a few workloads, where
  hook dispatch and analysis time dilute the engine's share.
* ``micro`` — synthetic kernels (pure ALU spin, lock traffic, a
  producer/consumer queue) that bound the best and worst case.
* ``elision`` — the full stack on the compiled tier, plain vs
  ``static_elide``: the wall-clock value of fusing statically
  race-free shared-checks into straight-line fast paths, measured at
  enforced bit-identity of every simulated statistic.
* ``replay`` — the record-once/analyze-everywhere economics: record one
  full-instrumentation run to an event log, replay it through all four
  registered analyses, and compare against running each analysis live.
  Measured at enforced verdict bit-identity (every replayed verdict
  must equal its live counterpart); the headline is the amortization
  factor ``live_total / (record + replay)``.

Each measurement is best-of-``repeats`` (minimum seconds), the standard
way to strip scheduler noise from a throughput number. The suite also
cross-checks that both tiers retired the *same instruction count* per
workload — a cheap standing parity assertion in every bench run.
"""

from __future__ import annotations

import json
import math
import platform
import time
from typing import Callable, Dict, List, Optional

from repro.core.config import AikidoConfig
from repro.dbr.engine import DBREngine
from repro.errors import HarnessError
from repro.guestos.kernel import Kernel
from repro.harness.runner import run_aikido_fasttrack
from repro.staticanalysis.analysiscache import analysis_for
from repro.workloads import micro
from repro.workloads.parsec import benchmark_names, build_benchmark

#: Bump when the JSON layout changes incompatibly.
#: 2: three execution tiers per row (interp/compiled/superblock),
#:    superblock speedup columns + summary geomeans, and an optional
#:    ``history`` list carrying prior documents' summaries forward.
BENCH_SCHEMA_VERSION = 2

#: Older documents the loader/gate still accept (read-compatible).
SUPPORTED_BENCH_VERSIONS = (1, BENCH_SCHEMA_VERSION)

#: The execution tiers one bench row measures, with the engine knobs
#: each maps to: ``(compile_blocks, superblocks)``.
TIER_FLAGS = (
    ("interp", (False, False)),
    ("compiled", (True, False)),
    ("superblock", (True, True)),
)

#: Workloads the full-stack macro section runs (engine share is diluted
#: by analysis work there, so a few representatives suffice).
MACRO_BENCHMARKS = ("freqmine", "canneal", "streamcluster")

#: Workloads the record/replay fan-out section measures, and the
#: analyses each recorded log is replayed through.
REPLAY_BENCHMARKS = ("canneal", "streamcluster")
REPLAY_ANALYSES = ("fasttrack", "djit", "eraser", "memtag")

DEFAULT_REPEATS = 3
DEFAULT_THREADS = 4
#: Longer runs than the old default (1.0): superblock-vs-compiled
#: deltas are tens of percent on runs of tens of milliseconds, and the
#: best-of only punches through host noise when a run lasts long enough
#: to amortize scheduler wakeups.
DEFAULT_SCALE = 4.0
DEFAULT_SEED = 3
DEFAULT_QUANTUM = 200
DEFAULT_JITTER = 0.1


def _geomean(values: List[float]) -> float:
    if not values:
        raise HarnessError("geomean of an empty sequence")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _micro_programs() -> Dict[str, Callable]:
    return {
        "alu_spin": lambda: micro.private_work(4, 400)[0],
        "locked_counter": lambda: micro.locked_counter(4, 300)[0],
        "producer_consumer": lambda: micro.producer_consumer(
            items=200, consumers=2)[0],
    }


def _bare_dbr_run(program_factory, *, compile_blocks: bool,
                  superblocks: bool, seed: int, quantum: int,
                  jitter: float) -> Dict[str, float]:
    """One bare-engine run (no tool): seconds + retired instructions."""
    program = program_factory()
    kernel = Kernel(seed=seed, quantum=quantum, jitter=jitter)
    kernel.create_process(program)
    engine = DBREngine(kernel, compile_blocks=compile_blocks,
                       superblocks=superblocks)
    start = time.perf_counter()
    kernel.run()
    seconds = time.perf_counter() - start
    return {"seconds": seconds,
            "instructions": engine.stats.instructions,
            "cycles": kernel.counter.total}


def _aikido_run(program_factory, *, compile_blocks: bool,
                superblocks: bool, seed: int, quantum: int,
                jitter: float) -> Dict[str, float]:
    """One full aikido-fasttrack stack run."""
    config = AikidoConfig(compile_blocks=compile_blocks,
                          superblocks=superblocks)
    start = time.perf_counter()
    result = run_aikido_fasttrack(program_factory(), seed=seed,
                                  quantum=quantum, jitter=jitter,
                                  config=config)
    seconds = time.perf_counter() - start
    return {"seconds": seconds,
            "instructions": result.run_stats["instructions"],
            "cycles": result.cycles}


def _elide_run(program_factory, *, static_elide: bool, seed: int,
               quantum: int, jitter: float) -> Dict[str, float]:
    """One compiled-tier full-stack run, with or without elision.

    The static analysis is compile-time work amortized across runs
    (it is memoized per program fingerprint), so the elided arm warms
    the analysis cache *outside* the timed region — the section
    measures the runtime value of the elided checks, not the one-off
    cost of computing the plan.
    """
    config = AikidoConfig(compile_blocks=True, static_elide=static_elide)
    program = program_factory()
    if static_elide:
        analysis_for(program).elision
    start = time.perf_counter()
    result = run_aikido_fasttrack(program, seed=seed,
                                  quantum=quantum, jitter=jitter,
                                  config=config)
    seconds = time.perf_counter() - start
    elision = result.elision or {}
    return {"seconds": seconds,
            "instructions": result.run_stats["instructions"],
            "cycles": result.cycles,
            "checks_elided": elision.get("checks_elided", 0)}


def _best_of(run: Callable[[], Dict], repeats: int) -> Dict:
    best = None
    for _ in range(max(1, repeats)):
        sample = run()
        if best is None or sample["seconds"] < best["seconds"]:
            if best is not None and sample["instructions"] != \
                    best["instructions"]:
                raise HarnessError(
                    "non-deterministic instruction count across repeats "
                    f"({sample['instructions']} vs {best['instructions']})")
            best = sample
    return best


def _tier_row(name: str, run_tier: Callable[[bool, bool], Dict],
              repeats: int) -> Dict:
    """Measure one subject under all three tiers, derive speedups.

    ``run_tier`` takes ``(compile_blocks, superblocks)``. Each tier
    must retire the same instruction count and the same simulated
    cycle total — a standing parity assertion in every bench run.
    """
    samples = {}
    for tier, (cb, sb) in TIER_FLAGS:
        samples[tier] = _best_of(
            lambda cb=cb, sb=sb: run_tier(cb, sb), repeats)
    interp = samples["interp"]
    for tier in ("compiled", "superblock"):
        for what in ("instructions", "cycles"):
            if samples[tier][what] != interp[what]:
                raise HarnessError(
                    f"{name}: tiers disagree on {what} "
                    f"(interp={interp[what]}, "
                    f"{tier}={samples[tier][what]}) — parity violation")
    instructions = interp["instructions"]

    def rate(sample):
        return instructions / sample["seconds"] if sample["seconds"] else 0.0

    def ratio(slow, fast):
        return (samples[slow]["seconds"] / samples[fast]["seconds"]
                if samples[fast]["seconds"] else 0.0)

    row = {"name": name, "instructions": instructions}
    for tier, _ in TIER_FLAGS:
        row[tier] = {"seconds": samples[tier]["seconds"],
                     "instrs_per_sec": rate(samples[tier])}
    row["speedup"] = ratio("interp", "compiled")
    row["superblock_speedup"] = ratio("interp", "superblock")
    row["superblock_over_compiled"] = ratio("compiled", "superblock")
    return row


def _elision_row(name: str, run_elide: Callable[[bool], Dict],
                 repeats: int) -> Dict:
    """Measure plain vs static_elide and derive the elision speedup."""
    baseline = _best_of(lambda: run_elide(False), repeats)
    elided = _best_of(lambda: run_elide(True), repeats)
    if baseline["instructions"] != elided["instructions"]:
        raise HarnessError(
            f"{name}: static_elide changed retired instructions "
            f"(plain={baseline['instructions']}, "
            f"elided={elided['instructions']}) — parity violation")
    if baseline["cycles"] != elided["cycles"]:
        raise HarnessError(
            f"{name}: static_elide changed simulated cycles "
            f"(plain={baseline['cycles']}, "
            f"elided={elided['cycles']}) — parity violation")
    instructions = baseline["instructions"]

    def rate(sample):
        return instructions / sample["seconds"] if sample["seconds"] else 0.0

    return {
        "name": name,
        "instructions": instructions,
        "checks_elided": elided["checks_elided"],
        "baseline": {"seconds": baseline["seconds"],
                     "instrs_per_sec": rate(baseline)},
        "elided": {"seconds": elided["seconds"],
                   "instrs_per_sec": rate(elided)},
        "speedup": (baseline["seconds"] / elided["seconds"]
                    if elided["seconds"] else 0.0),
    }


def _replay_row(name: str, factory: Callable, *, seed: int, quantum: int,
                jitter: float, repeats: int) -> Dict:
    """Record once, replay through every analysis, diff against live.

    Each arm is best-of-``repeats`` seconds. Verdict bit-identity
    between the replayed and live runs is *enforced* — a mismatch is a
    fidelity regression, not a timing artifact, so it raises.
    """
    import os
    import tempfile

    from repro.eventlog.replay import (
        live_run_verdict,
        record_run,
        replay_log,
    )

    tmpdir = tempfile.mkdtemp(prefix="aikido-bench-replay-")
    path = os.path.join(tmpdir, f"{name}.aiklog")
    try:
        record_seconds = None
        events = None
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            stats = record_run(factory(), path, seed=seed,
                               quantum=quantum, jitter=jitter)
            seconds = time.perf_counter() - start
            if events is not None and stats["events"] != events:
                raise HarnessError(
                    f"replay bench {name}: non-deterministic recording "
                    f"({stats['events']} vs {events} events)")
            events = stats["events"]
            if record_seconds is None or seconds < record_seconds:
                record_seconds = seconds

        live_seconds = 0.0
        live_verdicts = {}
        for analysis in REPLAY_ANALYSES:
            best = None
            for _ in range(max(1, repeats)):
                start = time.perf_counter()
                verdict = live_run_verdict(factory(), analysis,
                                           seed=seed, quantum=quantum,
                                           jitter=jitter)
                seconds = time.perf_counter() - start
                if best is None or seconds < best:
                    best = seconds
                live_verdicts[analysis] = verdict
            live_seconds += best

        replay_seconds = None
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            replayed = {analysis: replay_log(path, analysis)
                        for analysis in REPLAY_ANALYSES}
            seconds = time.perf_counter() - start
            if replay_seconds is None or seconds < replay_seconds:
                replay_seconds = seconds
        for analysis in REPLAY_ANALYSES:
            if replayed[analysis] != live_verdicts[analysis]:
                raise HarnessError(
                    f"replay bench {name}: replayed {analysis} verdict "
                    f"differs from the live run — fidelity regression")
    finally:
        if os.path.exists(path):
            os.unlink(path)
        os.rmdir(tmpdir)

    fanout_seconds = record_seconds + replay_seconds
    return {
        "name": name,
        "events": events,
        "analyses": list(REPLAY_ANALYSES),
        "record": {"seconds": record_seconds},
        "live": {"seconds": live_seconds},
        "replay": {"seconds": replay_seconds},
        "amortization": (live_seconds / fanout_seconds
                         if fanout_seconds else 0.0),
    }


def bench_suite(*, threads: int = DEFAULT_THREADS,
                scale: float = DEFAULT_SCALE, seed: int = DEFAULT_SEED,
                quantum: int = DEFAULT_QUANTUM,
                jitter: float = DEFAULT_JITTER,
                repeats: int = DEFAULT_REPEATS, quick: bool = False,
                benchmarks: Optional[List[str]] = None,
                progress: Optional[Callable[[str], None]] = None) -> Dict:
    """Run the wall-clock suite; returns the BENCH_simulator document.

    ``quick`` shrinks everything (small scale, one repeat, a workload
    subset, no macro section) — for smoke tests that only need a valid
    document, not a stable measurement.
    """
    names = list(benchmarks) if benchmarks else list(benchmark_names())
    if quick:
        scale = min(scale, 0.1)
        repeats = 1
        if benchmarks is None:
            names = names[:3]

    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    workloads = []
    for name in names:
        note(f"bench: {name} (bare DBR, both tiers)")
        factory = (lambda name=name:
                   build_benchmark(name, threads=threads, scale=scale))
        workloads.append(_tier_row(
            name,
            lambda cb, sb, factory=factory: _bare_dbr_run(
                factory, compile_blocks=cb, superblocks=sb, seed=seed,
                quantum=quantum, jitter=jitter),
            repeats))

    macro = []
    if not quick:
        for name in MACRO_BENCHMARKS:
            if name not in names:
                continue
            note(f"bench: {name} (full aikido-fasttrack stack)")
            factory = (lambda name=name:
                       build_benchmark(name, threads=threads, scale=scale))
            macro.append(_tier_row(
                f"aikido:{name}",
                lambda cb, sb, factory=factory: _aikido_run(
                    factory, compile_blocks=cb, superblocks=sb, seed=seed,
                    quantum=quantum, jitter=jitter),
                repeats))

    micro_rows = []
    for name, factory in _micro_programs().items():
        note(f"bench: micro {name}")
        micro_rows.append(_tier_row(
            f"micro:{name}",
            lambda cb, sb, factory=factory: _bare_dbr_run(
                factory, compile_blocks=cb, superblocks=sb, seed=seed,
                quantum=quantum, jitter=jitter),
            repeats))

    elision_rows = []
    for name in names:
        note(f"bench: {name} (elision ablation, plain vs --static-elide)")
        factory = (lambda name=name:
                   build_benchmark(name, threads=threads, scale=scale))
        # Elision deltas are a few percent on runs of a few hundred
        # milliseconds — extra repeats are cheap here and the best-of
        # needs them to punch through host timing noise.
        elision_rows.append(_elision_row(
            name,
            lambda elide, factory=factory: _elide_run(
                factory, static_elide=elide, seed=seed, quantum=quantum,
                jitter=jitter),
            repeats if quick else max(repeats, 5)))

    replay_rows = []
    for name in REPLAY_BENCHMARKS:
        if name not in names:
            continue
        note(f"bench: {name} (record once, replay through "
             f"{len(REPLAY_ANALYSES)} analyses)")
        factory = (lambda name=name:
                   build_benchmark(name, threads=threads, scale=scale))
        replay_rows.append(_replay_row(
            name, factory, seed=seed, quantum=quantum, jitter=jitter,
            repeats=repeats))

    speedups = [row["speedup"] for row in workloads]
    super_speedups = [row["superblock_speedup"] for row in workloads]
    super_over_compiled = [row["superblock_over_compiled"]
                           for row in workloads]
    elision_speedups = [row["speedup"] for row in elision_rows]
    amortizations = [row["amortization"] for row in replay_rows]
    doc = {
        "version": BENCH_SCHEMA_VERSION,
        "host": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "params": {
            "threads": threads, "scale": scale, "seed": seed,
            "quantum": quantum, "jitter": jitter, "repeats": repeats,
            "quick": quick,
        },
        "workloads": workloads,
        "macro": macro,
        "micro": micro_rows,
        "elision": elision_rows,
        "replay": replay_rows,
        "summary": {
            "geomean_speedup": _geomean(speedups) if speedups else 0.0,
            "workloads_2x": sum(1 for s in speedups if s >= 2.0),
            "workload_count": len(workloads),
            "superblock_geomean_speedup": (
                _geomean(super_speedups) if super_speedups else 0.0),
            "superblock_over_compiled_geomean": (
                _geomean(super_over_compiled)
                if super_over_compiled else 0.0),
            "elision_geomean_speedup": (_geomean(elision_speedups)
                                        if elision_speedups else 0.0),
            "elision_nonzero": sum(1 for row in elision_rows
                                   if row["checks_elided"] > 0),
            "replay_amortization_geomean": (_geomean(amortizations)
                                            if amortizations else 0.0),
            "replay_analyses": len(REPLAY_ANALYSES),
        },
    }
    validate_bench(doc)
    return doc


# ----------------------------------------------------------------------
# schema validation (shared by the CLI, the smoke test and the gate)
# ----------------------------------------------------------------------
_RATE_KEYS = ("seconds", "instrs_per_sec")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise HarnessError(f"invalid bench document: {message}")


def validate_bench(doc: Dict) -> Dict:
    """Raise :class:`HarnessError` unless ``doc`` is a valid bench
    document; returns it unchanged so call sites can chain."""
    _require(isinstance(doc, dict), "not a JSON object")
    version = doc.get("version")
    _require(version in SUPPORTED_BENCH_VERSIONS,
             f"version not in {SUPPORTED_BENCH_VERSIONS}")
    tiers = (("interp", "compiled", "superblock") if version >= 2
             else ("interp", "compiled"))
    speedup_keys = (("speedup", "superblock_speedup",
                     "superblock_over_compiled") if version >= 2
                    else ("speedup",))
    for section in ("host", "params", "summary"):
        _require(isinstance(doc.get(section), dict),
                 f"missing object {section!r}")
    history = doc.get("history", [])
    _require(isinstance(history, list)
             and all(isinstance(entry, dict) for entry in history),
             "history is not a list of objects")
    for section in ("workloads", "macro", "micro"):
        rows = doc.get(section)
        _require(isinstance(rows, list), f"missing list {section!r}")
        for row in rows:
            _require(isinstance(row, dict) and isinstance(
                row.get("name"), str), f"{section}: row without a name")
            name = row["name"]
            _require(isinstance(row.get("instructions"), int)
                     and row["instructions"] > 0,
                     f"{name}: bad instruction count")
            for tier in tiers:
                sample = row.get(tier)
                _require(isinstance(sample, dict), f"{name}: missing {tier}")
                for key in _RATE_KEYS:
                    value = sample.get(key)
                    _require(isinstance(value, (int, float))
                             and value >= 0,
                             f"{name}: bad {tier}.{key}")
            for key in speedup_keys:
                _require(isinstance(row.get(key), (int, float))
                         and row[key] > 0,
                         f"{name}: bad {key}")
    # The elision section is optional (older documents predate it);
    # when present its rows pair a baseline and an elided sample.
    elision = doc.get("elision", [])
    _require(isinstance(elision, list), "elision is not a list")
    for row in elision:
        _require(isinstance(row, dict) and isinstance(
            row.get("name"), str), "elision: row without a name")
        name = row["name"]
        _require(isinstance(row.get("instructions"), int)
                 and row["instructions"] > 0,
                 f"elision {name}: bad instruction count")
        _require(isinstance(row.get("checks_elided"), int)
                 and row["checks_elided"] >= 0,
                 f"elision {name}: bad checks_elided")
        for arm in ("baseline", "elided"):
            sample = row.get(arm)
            _require(isinstance(sample, dict),
                     f"elision {name}: missing {arm}")
            for key in _RATE_KEYS:
                value = sample.get(key)
                _require(isinstance(value, (int, float)) and value >= 0,
                         f"elision {name}: bad {arm}.{key}")
        _require(isinstance(row.get("speedup"), (int, float))
                 and row["speedup"] > 0,
                 f"elision {name}: bad speedup")
    # The replay section is likewise optional; each row pairs recording
    # and serial-replay timings against the sum of live runs.
    replay = doc.get("replay", [])
    _require(isinstance(replay, list), "replay is not a list")
    for row in replay:
        _require(isinstance(row, dict) and isinstance(
            row.get("name"), str), "replay: row without a name")
        name = row["name"]
        _require(isinstance(row.get("events"), int) and row["events"] > 0,
                 f"replay {name}: bad event count")
        _require(isinstance(row.get("analyses"), list)
                 and len(row["analyses"]) >= 1,
                 f"replay {name}: bad analyses list")
        for arm in ("record", "live", "replay"):
            sample = row.get(arm)
            _require(isinstance(sample, dict)
                     and isinstance(sample.get("seconds"), (int, float))
                     and sample["seconds"] >= 0,
                     f"replay {name}: bad {arm}.seconds")
        _require(isinstance(row.get("amortization"), (int, float))
                 and row["amortization"] > 0,
                 f"replay {name}: bad amortization")
    _require(len(doc["workloads"]) > 0, "no workload rows")
    summary = doc["summary"]
    _require(isinstance(summary.get("geomean_speedup"), (int, float)),
             "summary.geomean_speedup missing")
    _require(isinstance(summary.get("workloads_2x"), int),
             "summary.workloads_2x missing")
    _require(summary.get("workload_count") == len(doc["workloads"]),
             "summary.workload_count disagrees with workloads")
    if version >= 2:
        for key in ("superblock_geomean_speedup",
                    "superblock_over_compiled_geomean"):
            _require(isinstance(summary.get(key), (int, float)),
                     f"summary.{key} missing")
    return doc


def write_bench(doc: Dict, path: str, *,
                carry_history: bool = True) -> str:
    """Validate and write ``doc``; carry the trajectory forward.

    When overwriting an existing document, the prior document's
    ``params`` and ``summary`` (plus any history it already carried)
    are folded into ``doc["history"]`` — per-tier geomeans across
    regenerations stay diffable in one file instead of vanishing with
    every refresh.
    """
    validate_bench(doc)
    if carry_history:
        try:
            with open(path) as handle:
                prior = json.load(handle)
        except (OSError, ValueError):
            prior = None
        if isinstance(prior, dict) and isinstance(
                prior.get("summary"), dict):
            history = [entry for entry in prior.get("history", [])
                       if isinstance(entry, dict)]
            history.append({
                "version": prior.get("version"),
                "params": prior.get("params"),
                "summary": prior.get("summary"),
            })
            doc = dict(doc, history=history)
            validate_bench(doc)
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_bench(path: str) -> Dict:
    try:
        with open(path) as handle:
            doc = json.load(handle)
    except (OSError, ValueError) as exc:
        raise HarnessError(f"cannot load bench document {path}: {exc}")
    return validate_bench(doc)


def render_bench(doc: Dict) -> str:
    """Human-readable table of one bench document."""
    lines = [f"simulator wall-clock bench "
             f"(threads={doc['params']['threads']}, "
             f"scale={doc['params']['scale']}, "
             f"repeats={doc['params']['repeats']}"
             f"{', quick' if doc['params'].get('quick') else ''})",
             f"{'workload':<24s} {'instrs':>10s} {'interp/s':>12s} "
             f"{'compiled/s':>12s} {'super/s':>12s} {'speedup':>8s} "
             f"{'sb/comp':>8s}"]
    for section in ("workloads", "macro", "micro"):
        for row in doc[section]:
            superblock = row.get("superblock")
            lines.append(
                f"{row['name']:<24s} {row['instructions']:>10,d} "
                f"{row['interp']['instrs_per_sec']:>12,.0f} "
                f"{row['compiled']['instrs_per_sec']:>12,.0f} "
                + (f"{superblock['instrs_per_sec']:>12,.0f} "
                   if superblock else f"{'-':>12s} ")
                + f"{row['speedup']:>7.2f}x "
                + (f"{row['superblock_over_compiled']:>7.2f}x"
                   if superblock else f"{'-':>8s}"))
    elision = doc.get("elision", [])
    if elision:
        lines.append("")
        lines.append(f"{'elision ablation':<24s} {'elided':>10s} "
                     f"{'plain/s':>12s} {'elided/s':>12s} {'speedup':>8s}")
        for row in elision:
            lines.append(
                f"{row['name']:<24s} {row['checks_elided']:>10,d} "
                f"{row['baseline']['instrs_per_sec']:>12,.0f} "
                f"{row['elided']['instrs_per_sec']:>12,.0f} "
                f"{row['speedup']:>7.2f}x")
    replay = doc.get("replay", [])
    if replay:
        lines.append("")
        lines.append(f"{'record/replay fan-out':<24s} {'events':>10s} "
                     f"{'record s':>10s} {'replay s':>10s} "
                     f"{'live s':>10s} {'amortize':>8s}")
        for row in replay:
            lines.append(
                f"{row['name']:<24s} {row['events']:>10,d} "
                f"{row['record']['seconds']:>10.3f} "
                f"{row['replay']['seconds']:>10.3f} "
                f"{row['live']['seconds']:>10.3f} "
                f"{row['amortization']:>7.2f}x")
    summary = doc["summary"]
    lines.append(f"geomean speedup {summary['geomean_speedup']:.2f}x; "
                 f"{summary['workloads_2x']}/{summary['workload_count']} "
                 f"workloads at >=2x")
    if summary.get("superblock_geomean_speedup"):
        lines.append(
            f"superblock geomean speedup "
            f"{summary['superblock_geomean_speedup']:.2f}x vs interp, "
            f"{summary.get('superblock_over_compiled_geomean', 0.0):.2f}x "
            f"vs compiled")
    if elision:
        lines.append(f"elision geomean speedup "
                     f"{summary.get('elision_geomean_speedup', 0.0):.2f}x; "
                     f"{summary.get('elision_nonzero', 0)}/{len(elision)} "
                     f"workloads elide checks")
    if replay:
        lines.append(
            f"replay amortization geomean "
            f"{summary.get('replay_amortization_geomean', 0.0):.2f}x over "
            f"{summary.get('replay_analyses', 0)} analyses "
            f"(verdicts bit-identical to live by construction)")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# regression gate (scripts/bench_gate.py calls this)
# ----------------------------------------------------------------------
def compare_bench(baseline: Dict, current: Dict,
                  threshold: float = 0.15) -> Dict:
    """Compare two bench documents' per-tier throughput.

    For every execution tier present in both documents, the gated
    quantity is the geomean, over workloads present in both, of
    ``current instrs/sec / baseline instrs/sec``. Any tier's geomean
    below ``1 - threshold`` fails the gate, so a regression confined
    to the superblock tier (e.g. a builder bail-out that silently
    degrades it to the compiled tier) cannot hide behind a healthy
    compiled-tier number. Per-workload ratios ride along for
    diagnosis; the top-level ``ratios``/``geomean_ratio`` keep the
    legacy compiled-tier view.
    """
    validate_bench(baseline)
    validate_bench(current)
    base_rows = {row["name"]: row for row in baseline["workloads"]}
    tiers: Dict[str, Dict] = {}
    for tier, _ in TIER_FLAGS:
        ratios = {}
        for row in current["workloads"]:
            base = base_rows.get(row["name"])
            if (base is None or not isinstance(base.get(tier), dict)
                    or not isinstance(row.get(tier), dict)):
                continue
            old = base[tier]["instrs_per_sec"]
            new = row[tier]["instrs_per_sec"]
            if old > 0 and new > 0:
                ratios[row["name"]] = new / old
        if ratios:
            geomean = _geomean(list(ratios.values()))
            tiers[tier] = {
                "ratios": ratios,
                "geomean_ratio": geomean,
                "ok": geomean >= 1.0 - threshold,
            }
    if "compiled" not in tiers:
        raise HarnessError("no common workloads between bench documents")
    compiled = tiers["compiled"]
    return {
        "tiers": tiers,
        "ratios": compiled["ratios"],
        "geomean_ratio": compiled["geomean_ratio"],
        "threshold": threshold,
        "ok": all(entry["ok"] for entry in tiers.values()),
    }
