"""LaTeX rendering of the reproduced artifacts.

For dropping the measured-vs-paper comparison straight into a paper or
report: each function returns a self-contained ``tabular`` environment
(booktabs style — ``\\usepackage{booktabs}``).

    from repro.harness import experiments
    from repro.harness.latex import figure5_table, table2_table

    suite = experiments.run_suite()
    print(figure5_table(suite))
"""

from __future__ import annotations

from typing import List

from repro.harness.experiments import SuiteResult, table2
from repro.harness.report import PAPER_TABLE2
from repro.workloads.parsec import get_benchmark


def _tabular(columns: str, header: List[str], rows: List[List[str]],
             caption: str) -> str:
    lines = [
        "\\begin{table}[t]",
        "  \\centering",
        f"  \\caption{{{caption}}}",
        f"  \\begin{{tabular}}{{{columns}}}",
        "    \\toprule",
        "    " + " & ".join(header) + " \\\\",
        "    \\midrule",
    ]
    for row in rows:
        lines.append("    " + " & ".join(row) + " \\\\")
    lines += [
        "    \\bottomrule",
        "  \\end{tabular}",
        "\\end{table}",
    ]
    return "\n".join(lines)


def _name(benchmark: str) -> str:
    return f"\\texttt{{{benchmark}}}"


def figure5_table(suite: SuiteResult) -> str:
    """Figure 5 as a table: slowdowns and speedups, measured vs paper."""
    rows = []
    for name, runs in suite.runs.items():
        paper = get_benchmark(name).paper
        paper_speedup = (paper.ft_slowdown_8t / paper.aikido_slowdown_8t)
        rows.append([
            _name(name),
            f"{runs.ft_slowdown:.1f}$\\times$",
            f"{runs.aikido_slowdown:.1f}$\\times$",
            f"{runs.speedup:.2f}$\\times$",
            f"{paper_speedup:.2f}$\\times$",
        ])
    rows.append([
        "\\textbf{geomean}", "", "",
        f"\\textbf{{{suite.geomean_speedup():.2f}$\\times$}}",
        "\\textbf{1.76$\\times$}",
    ])
    return _tabular(
        "lrrrr",
        ["benchmark", "FastTrack", "Aikido-FT", "speedup",
         "speedup (paper)"],
        rows,
        "Reproduction of Aikido Fig.~5: slowdown vs native at 8 threads.")


def figure6_table(suite: SuiteResult) -> str:
    rows = []
    for name, runs in suite.runs.items():
        paper = get_benchmark(name).paper
        rows.append([
            _name(name),
            f"{100 * runs.shared_fraction:.2f}\\%",
            f"{100 * paper.shared_fraction:.2f}\\%",
        ])
    return _tabular(
        "lrr",
        ["benchmark", "shared accesses (ours)", "paper"],
        rows,
        "Reproduction of Aikido Fig.~6: accesses to shared pages.")


def table2_table(suite: SuiteResult) -> str:
    rows = []
    for row in table2(suite):
        paper = PAPER_TABLE2[row.benchmark]
        rows.append([
            _name(row.benchmark),
            f"{row.memory_refs:,}",
            f"{row.instrumented_execs:,}",
            f"{row.shared_accesses:,}",
            f"{row.segfaults:,}",
            f"{100 * row.instrumented_execs / row.memory_refs:.1f}\\% "
            f"({100 * paper[1] / paper[0]:.1f}\\%)",
        ])
    return _tabular(
        "lrrrrr",
        ["benchmark", "mem.\\ refs", "instrumented", "shared",
         "faults", "instr.\\ frac (paper)"],
        rows,
        "Reproduction of Aikido Table~2 (counts scaled; see text).")


def render_all(suite: SuiteResult) -> str:
    return "\n\n".join([figure5_table(suite), figure6_table(suite),
                        table2_table(suite)])
