"""Run one workload in one of the paper's three configurations.

=====================  ====================================================
mode                   stack
=====================  ====================================================
``native``             guest kernel + CPU; no tool (the normalization
                       baseline of Figure 5)
``fasttrack``          DBR engine + Umbra + FastTrack instrumenting every
                       memory access (the paper's baseline tool)
``aikido-fasttrack``   AikidoVM + AikidoSD + mirror pages; FastTrack fed
                       only shared-page accesses (the paper's system)
=====================  ====================================================

Slowdowns are ratios of deterministic simulated cycle counts; see
DESIGN.md for the substitution rationale.
"""

from __future__ import annotations

import inspect
from typing import Dict, List, Optional

from repro.analyses.fasttrack.aikido_tool import AikidoFastTrack
from repro.analyses.fasttrack.tool import FastTrackTool
from repro.core.config import AikidoConfig
from repro.core.system import AikidoSystem
from repro.dbr.engine import DBREngine
from repro.errors import HarnessError
from repro.guestos.kernel import Kernel
from repro.observability.attribution import attribute_cycles

MODES = ("native", "fasttrack", "aikido-fasttrack")

_DEFAULT_BUDGET = 200_000_000


class RunResult:
    """Everything one run produced."""

    def __init__(self, mode: str, cycles: int, run_stats: Dict[str, int],
                 cycle_breakdown: Dict[str, int],
                 races: Optional[List] = None,
                 aikido_stats: Optional[Dict[str, int]] = None,
                 hypervisor_stats: Optional[Dict[str, int]] = None,
                 detector_profile: Optional[Dict[str, int]] = None,
                 chaos: Optional[Dict] = None,
                 timeline: Optional[List[Dict]] = None,
                 elision: Optional[Dict] = None,
                 superblocks: Optional[Dict] = None):
        self.mode = mode
        self.cycles = cycles
        self.run_stats = run_stats
        self.cycle_breakdown = cycle_breakdown
        self.races = races if races is not None else []
        self.aikido_stats = aikido_stats or {}
        self.hypervisor_stats = hypervisor_stats or {}
        self.detector_profile = detector_profile or {}
        #: Chaos/invariant payload (None when the run had chaos disabled):
        #: {"plan", "delivered", "recovered", "events", "invariant_checks",
        #:  "invariant_violations"}.
        self.chaos = chaos
        #: Metrics timeline samples ([] unless the run's config set
        #: ``metrics_cadence`` > 0).
        self.timeline = timeline if timeline is not None else []
        #: Static-elision payload (None unless ``static_elide``):
        #: {"plan", "checks_elided", "fast_path_instructions",
        #:  "retired_uids"}. Host-side observability — deliberately NOT
        #: part of run_stats/aikido_stats, which stay bit-identical
        #: between elided and non-elided runs.
        self.elision = elision
        #: Superblock-tier payload (None unless the engine ran with
        #: ``superblocks``): {"superblocks_built", "superblocks_dropped",
        #: "side_exits", "entries", "completions", "instructions",
        #: "live"}. Host-side observability — deliberately NOT part of
        #: run_stats, which stays bit-identical across all three tiers.
        self.superblocks = superblocks

    @property
    def cycle_attribution(self) -> Dict[str, int]:
        """The run's cycles decomposed into app / discovery-fault /
        re-JIT / tool-hook / kernel-emulation buckets.

        Computed from the per-category breakdown, which the counter
        guarantees sums to ``cycles`` — passing the total re-asserts the
        exact-sum invariant on every access.
        """
        return attribute_cycles(self.cycle_breakdown, total=self.cycles)

    @property
    def memory_refs(self) -> int:
        """Dynamic memory-referencing instructions (Table 2 col 1)."""
        return self.run_stats.get("memory_refs", 0)

    @property
    def instrumented_execs(self) -> int:
        """Dynamic executions of instrumented instructions (col 2)."""
        return self.run_stats.get("instrumented_execs", 0)

    @property
    def shared_accesses(self) -> int:
        """Accesses that targeted shared pages (col 3)."""
        return self.aikido_stats.get("shared_accesses", 0)

    @property
    def segfaults(self) -> int:
        """Fake faults delivered by AikidoVM (col 4)."""
        return self.hypervisor_stats.get("segfaults_delivered", 0)

    @property
    def chaos_injections(self) -> int:
        """Faults the chaos injector actually delivered this run."""
        if self.chaos is None:
            return 0
        return sum(self.chaos.get("delivered", {}).values())

    @property
    def chaos_recovered(self) -> int:
        """Delivered injections the stack demonstrably absorbed."""
        if self.chaos is None:
            return 0
        return sum(self.chaos.get("recovered", {}).values())

    @property
    def invariant_checks(self) -> int:
        return 0 if self.chaos is None else self.chaos.get(
            "invariant_checks", 0)

    @property
    def rejit_flushes(self) -> int:
        """Code-cache flushes forced by instrumentation upgrades."""
        return self.aikido_stats.get("rejit_flushes", 0)

    @property
    def prepass_coverage(self) -> float:
        """Fraction of static memory instructions the prepass decided."""
        return self.aikido_stats.get("prepass_coverage", 0.0)

    @property
    def prepass_faults_avoided(self) -> int:
        return self.aikido_stats.get("prepass_faults_avoided", 0)

    @property
    def prepass_flushes_avoided(self) -> int:
        return self.aikido_stats.get("prepass_flushes_avoided", 0)

    def slowdown_vs(self, native: "RunResult") -> float:
        if native.cycles == 0:
            raise HarnessError("native run has zero cycles")
        return self.cycles / native.cycles

    def summary(self, native: Optional["RunResult"] = None) -> str:
        """Multi-line human summary; includes the slowdown when the
        matching native run is provided."""
        lines = [f"mode: {self.mode}",
                 f"simulated cycles: {self.cycles:,}"]
        if native is not None:
            lines.append(f"slowdown vs native: "
                         f"{self.slowdown_vs(native):.1f}x")
        instructions = self.run_stats.get("instructions", 0)
        lines.append(f"instructions: {instructions:,} "
                     f"({self.memory_refs:,} memory refs)")
        if self.mode == "aikido-fasttrack":
            frac = self.shared_accesses / max(1, self.memory_refs)
            lines.append(f"shared accesses: {self.shared_accesses:,} "
                         f"({frac:.1%}); faults: {self.segfaults}")
        if self.races:
            lines.append(f"races: {len(self.races)}")
            lines.extend("  " + r.describe() for r in self.races[:5])
        else:
            lines.append("races: none")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RunResult {self.mode} cycles={self.cycles}>"


def _detector_profile(detector) -> Dict[str, int]:
    return {
        "reads": detector.reads,
        "writes": detector.writes,
        "same_epoch_hits": detector.same_epoch_hits,
        "read_shared_transitions": detector.read_shared_transitions,
        "sync_ops": detector.sync_ops,
        "race_count": len(detector.races),
    }


def _engine_run_stats(engine) -> Dict[str, int]:
    """Driver stats plus the engine's code-cache traffic counters.

    Builds/flushes/traces are the denominator the prepass savings are
    judged against (every avoided re-JIT is one build + one flush less),
    so DBR-backed modes surface them alongside the execution counts.
    """
    stats = engine.stats.as_dict()
    cache = engine.codecache
    stats["codecache_builds"] = cache.builds
    stats["codecache_flushes"] = cache.flushes
    stats["traces_built"] = cache.traces_built
    return stats


def run_native(program, *, seed: int = 0, quantum: int = 200,
               jitter: float = 0.1,
               max_instructions: int = _DEFAULT_BUDGET) -> RunResult:
    """Bare execution: the baseline every slowdown is normalized to."""
    kernel = Kernel(seed=seed, quantum=quantum, jitter=jitter)
    kernel.create_process(program)
    kernel.run(max_instructions=max_instructions)
    return RunResult("native", kernel.counter.total,
                     kernel.driver.stats.as_dict(),
                     kernel.counter.snapshot())


def run_fasttrack(program, *, seed: int = 0, quantum: int = 200,
                  jitter: float = 0.1, block_size: int = 8,
                  compile_blocks: bool = True, superblocks: bool = True,
                  max_instructions: int = _DEFAULT_BUDGET) -> RunResult:
    """The conservative instrument-everything FastTrack baseline."""
    kernel = Kernel(seed=seed, quantum=quantum, jitter=jitter)
    kernel.create_process(program)
    engine = DBREngine(kernel, compile_blocks=compile_blocks,
                       superblocks=superblocks)
    tool = FastTrackTool(kernel, block_size=block_size)
    engine.attach_tool(tool)
    kernel.run(max_instructions=max_instructions)
    return RunResult("fasttrack", kernel.counter.total,
                     _engine_run_stats(engine), kernel.counter.snapshot(),
                     races=list(tool.races),
                     detector_profile=_detector_profile(tool.detector),
                     superblocks=engine.superblock_snapshot())


def build_aikido_system(program, *, seed: int = 0, quantum: int = 200,
                        jitter: float = 0.1,
                        config: Optional[AikidoConfig] = None
                        ) -> AikidoSystem:
    """Assemble (but do not run) the aikido-fasttrack stack.

    The system exposes the live tracer/metrics recorder, which the trace
    CLI artifact needs after the run — :func:`run_aikido_fasttrack` only
    hands back the distilled :class:`RunResult`.
    """
    config = config if config is not None else AikidoConfig()
    return AikidoSystem(
        program,
        lambda kernel: AikidoFastTrack(kernel, block_size=config.block_size),
        config, seed=seed, quantum=quantum, jitter=jitter)


def system_result(system: AikidoSystem) -> RunResult:
    """Distill a finished :class:`AikidoSystem` run into a RunResult."""
    analysis = system.analysis
    chaos_payload = None
    if system.chaos is not None or system.monitor is not None:
        chaos_payload = system.chaos.as_dict() if system.chaos else {}
        if system.monitor is not None:
            chaos_payload.update(system.monitor.snapshot())
    return RunResult("aikido-fasttrack", system.cycles,
                     _engine_run_stats(system.engine),
                     system.kernel.counter.snapshot(),
                     races=list(analysis.races),
                     aikido_stats=system.stats.as_dict(),
                     hypervisor_stats=system.hypervisor_stats.as_dict(),
                     detector_profile=_detector_profile(analysis.detector),
                     chaos=chaos_payload,
                     timeline=system.timeline(),
                     elision=system.engine.elision_snapshot(),
                     superblocks=system.engine.superblock_snapshot())


def run_aikido_fasttrack(program, *, seed: int = 0, quantum: int = 200,
                         jitter: float = 0.1,
                         config: Optional[AikidoConfig] = None,
                         max_instructions: int = _DEFAULT_BUDGET
                         ) -> RunResult:
    """The paper's system: FastTrack on shared-page accesses only."""
    system = build_aikido_system(program, seed=seed, quantum=quantum,
                                 jitter=jitter, config=config)
    system.run(max_instructions=max_instructions)
    return system_result(system)


_MODE_RUNNERS = {
    "native": run_native,
    "fasttrack": run_fasttrack,
    "aikido-fasttrack": run_aikido_fasttrack,
}

#: Keyword arguments each mode's runner actually accepts.
_MODE_KWARGS = {
    mode: frozenset(
        p.name for p in inspect.signature(fn).parameters.values()
        if p.kind == inspect.Parameter.KEYWORD_ONLY)
    for mode, fn in _MODE_RUNNERS.items()
}

#: The shared kwarg set: anything at least one mode understands.
SHARED_KWARGS = frozenset().union(*_MODE_KWARGS.values())


def run_mode(program, mode: str, **kwargs) -> RunResult:
    """Dispatch by mode name.

    Accepts the union of all three runners' keyword arguments and strips
    the ones the selected mode does not take (``config`` for native and
    fasttrack, ``block_size`` for native), so suite drivers can pass one
    kwarg set to every mode. For ``aikido-fasttrack``, a bare
    ``block_size``, ``compile_blocks`` or ``superblocks`` is folded into
    the :class:`AikidoConfig`.
    """
    if mode not in _MODE_RUNNERS:
        raise HarnessError(f"unknown mode {mode!r}; expected one of {MODES}")
    unknown = set(kwargs) - SHARED_KWARGS
    if unknown:
        raise HarnessError(
            f"unknown keyword argument(s) {sorted(unknown)} for run_mode; "
            f"accepted: {sorted(SHARED_KWARGS)}")
    if mode == "aikido-fasttrack":
        bare = {field: kwargs.pop(field)
                for field in ("block_size", "compile_blocks",
                              "superblocks")
                if field in kwargs}
        if bare:
            config = kwargs.get("config")
            if config is None:
                kwargs["config"] = AikidoConfig(**bare)
            else:
                for field, value in bare.items():
                    if getattr(config, field) != value:
                        raise HarnessError(
                            f"conflicting {field}={value} and "
                            f"config.{field}={getattr(config, field)}")
    accepted = _MODE_KWARGS[mode]
    return _MODE_RUNNERS[mode](
        program, **{k: v for k, v in kwargs.items() if k in accepted})
