"""Aikido: the paper's primary contribution.

This package wires the substrates together into the system of paper
Fig. 1: AikidoLib (hypercall userspace library), the mirror-page manager,
the AikidoSD sharing detector, and the :class:`AikidoSystem` convenience
assembly that runs a workload under a shared-data analysis with
shared-page-only instrumentation.
"""

from repro.core.config import AikidoConfig
from repro.core.aikidolib import AikidoLib
from repro.core.pagestate import PageState, PageStateTable
from repro.core.mirror import BackingFile, MirrorManager
from repro.core.analysis import SharedDataAnalysis
from repro.core.stats import AikidoStats
from repro.core.sharing import SharingDetector
from repro.core.system import AikidoSystem

__all__ = [
    "AikidoConfig",
    "AikidoLib",
    "AikidoStats",
    "AikidoSystem",
    "BackingFile",
    "MirrorManager",
    "PageState",
    "PageStateTable",
    "SharedDataAnalysis",
    "SharingDetector",
]
