"""Aikido configuration knobs.

Defaults match the paper's system; the non-default settings exist for the
ablation benchmarks (see DESIGN.md §7).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Optional

from repro.chaos.plan import ChaosPlan


@dataclass
class AikidoConfig:
    """Tunable behavior of the Aikido stack.

    Attributes:
        block_size: bytes per analysis "variable" (paper uses 8).
        ctx_switch_mode: how AikidoVM intercepts same-address-space
            context switches — ``"hypercall"`` (inserted into the guest
            kernel, the paper's current implementation) or ``"gs_trap"``
            (VM exit on GS/FS segment-register writes, the paper's
            planned unmodified-guest variant).
        mirror_pages: when False, a page that becomes shared is simply
            unprotected for everyone instead of being redirected through
            mirror pages — the "no mirror" ablation. Only the two
            faulting instructions get instrumented, so later instructions
            touching the page are silently missed (completeness loss the
            mirror design exists to avoid).
        order_first_accesses: enable the §6 workaround — the sharing
            detector reports page first-touch ordering to the analysis so
            it can add a happens-before edge between a page's private
            phase and its sharing access, removing the first-two-access
            false-negative class (at the price of suppressing races
            between exactly those first accesses, which the deterministic
            substrate is assumed to order).
        protect_new_threads: protect every mapped page for newly spawned
            threads (required for correctness; exposed only to let tests
            demonstrate what breaks without it).
        static_prepass: seed the sharing detector with the static
            pre-classifier's results (see
            :mod:`repro.staticanalysis.sharing`): instructions proved
            shared are instrumented at install time — no discovery
            fault, no re-JIT, no cache flush — and instructions proved
            private arm a soundness tripwire. Off by default; analysis
            results (races, shared accesses) are identical either way,
            only the discovery overhead changes.
        per_thread_protection: when False, emulate what a system limited
            to *process-wide* page protection (ordinary mprotect, as
            Grace/Dthreads-style designs would have without their
            process-per-thread trick) can do: the faulting thread's
            identity cannot be told apart, so every touched page must
            conservatively be treated as shared immediately. The
            ablation shows per-thread protection is the paper's key
            enabler — without it nearly everything gets instrumented.
        trace_threshold: block execution count before trace promotion in
            the DBR engine.
        chaos: a :class:`~repro.chaos.plan.ChaosPlan` of deterministic
            fault injections to deliver during the run, or None (the
            default) for a chaos-free run. With chaos disabled every
            metric is byte-identical to a build without the chaos hooks.
        check_invariants: run the cross-layer
            :class:`~repro.chaos.invariants.InvariantMonitor` during and
            after the run, raising a structured
            :class:`~repro.errors.InvariantViolationError` on the first
            inconsistency.
        invariant_cadence: scheduler quanta between in-run invariant
            sweeps (0 = only the run-end check). Only meaningful with
            ``check_invariants``.
        trace: record structured trace events (spans/instants/counter
            samples on the simulated cycle clock) via
            :class:`~repro.observability.tracer.Tracer`. Off by default;
            tracing charges no cycles and touches no statistic, so every
            metric is bit-identical either way.
        trace_max_events: trace buffer cap (events beyond it are counted
            as dropped, never silently lost). Only meaningful with
            ``trace``.
        metrics_cadence: scheduler quanta between
            :class:`~repro.observability.metrics.MetricsRecorder`
            timeline samples (0 = no timeline; the run-end snapshot is
            always available from the stats and cycle counter).
        compile_blocks: run the DBR engine's block-compiled execution
            tier (see :mod:`repro.dbr.blockcompiler`). On by default;
            the interpreter tier is the reference and every simulated
            statistic is bit-identical between the two — this switch
            only changes host wall-clock speed (and is the escape hatch
            if it ever doesn't).
        superblocks: run the DBR engine's superblock (trace) tier on top
            of the compiled tier (see :mod:`repro.dbr.superblock`): hot
            block chains selected by the trace profiler are stitched
            into single generated functions with guard-protected side
            exits and hoisted TLB/elision checks. On by default;
            ignored without ``compile_blocks``. Like the compiled tier,
            every simulated statistic is bit-identical with it on or
            off — the switch exists for benchmarking the tiers apart
            (and as the escape hatch).
        static_elide: compile-time shared-check elision (``--static-elide``):
            feed the static race analyzer's elision plan (see
            :mod:`repro.staticanalysis.elision`) into the block
            compiler, fusing accesses proved PROVABLY_PRIVATE or
            statically race-free into guarded straight-line fast paths.
            Requires ``compile_blocks``; every simulated statistic stays
            bit-identical to a non-elided run (a dynamic tripwire
            retires any elided access whose page turns SHARED, and the
            InvariantMonitor's ``elision_no_shared`` check enforces it).
    """

    block_size: int = 8
    ctx_switch_mode: str = "hypercall"
    mirror_pages: bool = True
    order_first_accesses: bool = False
    protect_new_threads: bool = True
    static_prepass: bool = False
    per_thread_protection: bool = True
    trace_threshold: int = 50
    chaos: Optional[ChaosPlan] = None
    check_invariants: bool = False
    invariant_cadence: int = 50
    trace: bool = False
    trace_max_events: int = 250_000
    metrics_cadence: int = 0
    compile_blocks: bool = True
    superblocks: bool = True
    static_elide: bool = False

    def to_dict(self) -> Dict:
        """JSON-safe form (what job canonicalization already embeds)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict) -> "AikidoConfig":
        """Rebuild a config from :meth:`to_dict` output.

        The inverse the fleet wire protocol needs: a worker receives the
        canonical job dict and must reconstruct the exact config object,
        nested :class:`ChaosPlan` included, so its cache/journal keys
        match the coordinator's.
        """
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown AikidoConfig field(s) {sorted(unknown)}")
        kwargs = dict(payload)
        chaos = kwargs.get("chaos")
        if chaos is not None and not isinstance(chaos, ChaosPlan):
            kwargs["chaos"] = ChaosPlan.from_dict(chaos)
        return cls(**kwargs)
