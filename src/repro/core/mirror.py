"""Mirror pages: unprotected aliases of the application's memory (§3.3.3).

AikidoSD cannot unprotect a shared page (it must keep discovering new
instructions that touch it), so rewritten instructions access the data
through *mirror pages*: a second virtual mapping of the same physical
memory that carries no Aikido protection.

The real system builds mirrors by creating a backing file per memory
segment, copying the segment into it and mmapping the file twice
(``MAP_SHARED``) — once over the original range, once into the mirror
range — and intercepts ``mmap``/``brk`` to keep new allocations mirrored.
Here the file dance is modeled by :class:`BackingFile` records plus a
direct page-table alias (``map_alias_at``), which yields exactly the same
observable property: *both mappings resolve to the same frames*. brk
interception falls out of the VM's post-map hook, since our kernel already
implements heap growth as region mappings (the paper had to emulate brk
with mmapped files for the same reason).
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import ToolError
from repro.umbra.shadow import ShadowMemory


class BackingFile:
    """Models the shared backing file created for one mirrored segment."""

    __slots__ = ("file_id", "segment_name", "size", "mappings")

    def __init__(self, file_id: int, segment_name: str, size: int):
        self.file_id = file_id
        self.segment_name = segment_name
        self.size = size
        #: Virtual base addresses this file is mapped at (original, mirror).
        self.mappings: List[int] = []


class MirrorManager:
    """Creates and tracks mirror mappings for every application region."""

    def __init__(self, vm, shadow: ShadowMemory, *, enabled: bool = True):
        self.vm = vm
        self.shadow = shadow
        #: When disabled (ablation), regions are still registered with the
        #: shadow framework but no alias mappings are created.
        self.enabled = enabled
        self.backing_files: Dict[int, BackingFile] = {}
        self._next_file_id = 1
        self._attached = False

    # ------------------------------------------------------------------
    def attach(self) -> None:
        """Mirror all existing regions and intercept future mmap/brk."""
        if self._attached:
            raise ToolError("MirrorManager attached twice")
        self._attached = True
        for region in list(self.vm.user_regions()):
            self._mirror_region(region)
        self.vm.post_map_hooks.append(self._on_new_region)

    def mirror_address(self, addr: int) -> int:
        """Translate an application address to its mirror alias."""
        region = self.shadow.region_for(addr)
        if region is None:
            raise ToolError(f"address {addr:#x} is not in a mirrored region")
        return region.mirror_address(addr)

    # ------------------------------------------------------------------
    def _on_new_region(self, region) -> None:
        if region.kind in ("static", "heap", "mmap"):
            self._mirror_region(region)

    def _mirror_region(self, region) -> None:
        backing = BackingFile(self._next_file_id, region.name, region.length)
        self._next_file_id += 1
        backing.mappings.append(region.start)
        mirror_base = None
        if self.enabled:
            mirror_base = self.vm.alloc_mirror_range(region.length)
            self.vm.map_alias_at(mirror_base, region.start, region.length,
                                 name=f"mirror:{region.name}")
            backing.mappings.append(mirror_base)
        self.backing_files[backing.file_id] = backing
        self.shadow.add_region(region.start, region.length, mirror_base)
