"""The sharing detector's page state machine (paper §3.3.2, Fig. 3).

Each page moves monotonically through::

    UNUSED --first access by t--> PRIVATE(t) --access by u != t--> SHARED

SHARED is absorbing: the page stays globally protected forever so every
new instruction touching it is discovered.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional, Tuple

from repro.errors import ToolError


class PageState(enum.Enum):
    UNUSED = "unused"
    PRIVATE = "private"
    SHARED = "shared"


#: Encoded shared marker in the internal table (tids are positive).
_SHARED = -1


class PageStateTable:
    """vpn -> sharing state, with transition counters."""

    def __init__(self):
        self._table: Dict[int, int] = {}
        self.private_transitions = 0
        self.shared_transitions = 0

    def state(self, vpn: int) -> Tuple[PageState, Optional[int]]:
        """Return (state, owner-tid-or-None)."""
        value = self._table.get(vpn)
        if value is None:
            return PageState.UNUSED, None
        if value == _SHARED:
            return PageState.SHARED, None
        return PageState.PRIVATE, value

    def is_shared(self, vpn: int) -> bool:
        """Fast path used by the Fig. 4 runtime check."""
        return self._table.get(vpn) == _SHARED

    def make_private(self, vpn: int, tid: int) -> None:
        current = self._table.get(vpn)
        if current is not None:
            raise ToolError(
                f"page {vpn:#x} already tracked (state {current})")
        self._table[vpn] = tid
        self.private_transitions += 1

    def make_shared(self, vpn: int) -> int:
        """Transition PRIVATE -> SHARED; returns the previous owner tid."""
        current = self._table.get(vpn)
        if current is None or current == _SHARED:
            raise ToolError(
                f"page {vpn:#x} cannot become shared from state {current}")
        self._table[vpn] = _SHARED
        self.shared_transitions += 1
        return current

    def make_shared_direct(self, vpn: int) -> None:
        """UNUSED -> SHARED in one step.

        Only used by the per-process-protection ablation, where the
        faulting thread's identity is unknowable and every touched page
        must conservatively be treated as shared.
        """
        current = self._table.get(vpn)
        if current is not None:
            raise ToolError(
                f"page {vpn:#x} already tracked (state {current})")
        self._table[vpn] = _SHARED
        self.shared_transitions += 1

    @property
    def private_pages(self) -> int:
        return sum(1 for v in self._table.values() if v != _SHARED)

    @property
    def shared_pages(self) -> int:
        return sum(1 for v in self._table.values() if v == _SHARED)

    def __len__(self) -> int:
        return len(self._table)
