"""AikidoLib: the userspace hypercall library (paper §3.1, §3.2.5).

AikidoLib is linked into the instrumented process (here: a host-level
runtime object, per the convention in DESIGN.md) and is the only way
userspace talks to AikidoVM. At initialization it:

* allocates one page with **no read access** and one with **no write
  access** — the pre-determined fake-fault addresses, mapped with exactly
  the protection that makes the guest kernel deliver the fault to the
  application instead of "fixing" it;
* allocates the **mailbox** page where AikidoVM records each true
  faulting address;
* registers all three with the hypervisor via ``HC_INIT``.

Afterwards it provides ``aikido_is_aikido_pagefault()`` (§3.2.5) and
protection-request wrappers over ``HC_SET_PROT``.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.errors import HypervisorError, TransientHypercallError
from repro.hypervisor.hypercalls import ALL_THREADS, HC_INIT, HC_SET_PROT
from repro.machine.layout import AIKIDO_SPECIAL_BASE
from repro.machine.paging import (
    PAGE_SHIFT,
    PAGE_SIZE,
    PTE_PRESENT,
    PTE_USER,
    PTE_WRITABLE,
)


class AikidoLib:
    """Userspace access to AikidoVM's per-thread page protection."""

    def __init__(self, kernel, hypervisor, process=None):
        self.kernel = kernel
        self.hypervisor = hypervisor
        self.process = process if process is not None else kernel.process
        self.read_fault_page: Optional[int] = None
        self.write_fault_page: Optional[int] = None
        self.mailbox: Optional[int] = None
        self._initialized = False
        #: HC_SET_PROT retries absorbed after transient hypercall failures.
        self.transient_retries = 0

    # ------------------------------------------------------------------
    def initialize(self) -> None:
        """Map the special pages and register them with the hypervisor."""
        if self._initialized:
            raise HypervisorError("AikidoLib initialized twice")
        vm = self.process.vm
        base = AIKIDO_SPECIAL_BASE
        # "allocating a page with no write access and one with no read
        # access and reporting both page addresses to the AikidoVM"
        vm.map_region(base, PAGE_SIZE, "aikido-fault-read", kind="special",
                      flags=0, notify=False)  # not readable
        vm.map_region(base + PAGE_SIZE, PAGE_SIZE, "aikido-fault-write",
                      kind="special", flags=PTE_PRESENT | PTE_USER,
                      notify=False)  # readable, not writable
        vm.map_region(base + 2 * PAGE_SIZE, PAGE_SIZE, "aikido-mailbox",
                      kind="special",
                      flags=PTE_PRESENT | PTE_WRITABLE | PTE_USER,
                      notify=False)
        self.read_fault_page = base
        self.write_fault_page = base + PAGE_SIZE
        self.mailbox = base + 2 * PAGE_SIZE
        main_thread = self.process.threads[min(self.process.threads)]
        self.hypervisor.hypercall(
            main_thread, HC_INIT,
            (self.read_fault_page, self.write_fault_page, self.mailbox))
        self._initialized = True

    # ------------------------------------------------------------------
    def is_aikido_pagefault(self, info) -> bool:
        """Is this delivered SIGSEGV an Aikido-injected fake fault?"""
        return info.fault_address in (self.read_fault_page,
                                      self.write_fault_page)

    def true_fault(self) -> Tuple[int, bool]:
        """Read the true faulting (address, is_write) from the mailbox."""
        vm = self.process.vm
        addr = vm.read_word(self.mailbox)
        is_write = bool(vm.read_word(self.mailbox + 8))
        return addr, is_write

    # ------------------------------------------------------------------
    def set_page_protection(self, thread, tid: int, vpn: int, count: int,
                            prot: int) -> None:
        """Request a per-thread protection change for a page range.

        ``tid`` may be :data:`~repro.hypervisor.hypercalls.ALL_THREADS`.
        ``thread`` is the thread issuing the hypercall.

        Transient hypercall failures (chaos-injected, modelling e.g. a
        busy hypervisor slot) are retried a bounded number of times; the
        failure happens before any protection state changes, so a retry
        is exactly equivalent to a clean first attempt.
        """
        max_attempts = 8
        for attempt in range(1, max_attempts + 1):
            try:
                self.hypervisor.hypercall(thread, HC_SET_PROT,
                                          (tid, vpn, count, prot))
            except TransientHypercallError:
                if attempt == max_attempts:
                    raise
                self.transient_retries += 1
                continue
            if attempt > 1:
                chaos = getattr(self.hypervisor, "chaos", None)
                if chaos is not None:
                    for _ in range(attempt - 1):
                        chaos.note_recovered("hypercall_fail")
            return

    def protect_range(self, thread, tid: int, addr: int, length: int,
                      prot: int) -> None:
        """Byte-range convenience wrapper around :meth:`set_page_protection`."""
        first = addr >> PAGE_SHIFT
        last = (addr + length - 1) >> PAGE_SHIFT
        self.set_page_protection(thread, tid, first, last - first + 1, prot)

    @staticmethod
    def all_threads() -> int:
        return ALL_THREADS
