"""AikidoSystem: one-call assembly of the full stack (paper Fig. 1).

Builds, in order: AikidoVM -> guest kernel -> process -> DBR engine ->
sharing detector (with AikidoLib, mirror manager, Umbra shadow memory) ->
the user's shared-data analysis, and runs the workload.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from repro.chaos.injector import ChaosInjector
from repro.chaos.invariants import InvariantMonitor
from repro.core.analysis import SharedDataAnalysis
from repro.core.config import AikidoConfig
from repro.core.sharing import SharingDetector
from repro.dbr.engine import DBREngine
from repro.errors import ToolError
from repro.guestos.kernel import Kernel
from repro.hypervisor.aikidovm import AikidoVM
from repro.observability.metrics import MetricsRecorder, metrics_snapshot
from repro.observability.tracer import Tracer


class AikidoSystem:
    """A ready-to-run Aikido stack hosting one workload and one analysis.

    ``analysis`` may be a :class:`SharedDataAnalysis` instance or a
    factory ``kernel -> SharedDataAnalysis`` (useful when the analysis
    wants the run's cycle counter, which only exists once the kernel
    does).
    """

    def __init__(self, program,
                 analysis: Union[SharedDataAnalysis,
                                 Callable[[Kernel], SharedDataAnalysis]],
                 config: Optional[AikidoConfig] = None, *,
                 seed: int = 0, quantum: int = 200, jitter: float = 0.1):
        self.config = config if config is not None else AikidoConfig()
        self.hypervisor = AikidoVM(
            ctx_switch_mode=self.config.ctx_switch_mode)
        self.kernel = Kernel(platform=self.hypervisor, seed=seed,
                             quantum=quantum, jitter=jitter)
        self.process = self.kernel.create_process(program)
        self.engine = DBREngine(self.kernel,
                                trace_threshold=self.config.trace_threshold,
                                compile_blocks=self.config.compile_blocks,
                                superblocks=self.config.superblocks)
        if callable(analysis) and not isinstance(analysis,
                                                 SharedDataAnalysis):
            analysis = analysis(self.kernel)
        self.analysis = analysis
        self.sd = SharingDetector(self.kernel, self.hypervisor, analysis,
                                  self.config)
        #: Observability plumbing (None unless the config enables it).
        self.tracer: Optional[Tracer] = None
        self.metrics: Optional[MetricsRecorder] = None
        if self.config.trace:
            self.tracer = Tracer(self.kernel.counter,
                                 max_events=self.config.trace_max_events)
            # Every layer holds the same tracer; sites stay inert (one
            # attribute load + None test) on untraced stacks.
            self.kernel.tracer = self.tracer
            self.hypervisor.tracer = self.tracer
            self.engine.tracer = self.tracer
            self.engine.codecache.tracer = self.tracer
            self.sd.tracer = self.tracer
            self.sd.shadow.tracer = self.tracer
        if self.config.metrics_cadence > 0:
            self.metrics = MetricsRecorder(
                self.kernel.counter, self.sd.stats,
                cadence=self.config.metrics_cadence, tracer=self.tracer)
            self.metrics.install(self.kernel)
        self.sd.install(self.engine)
        #: Chaos plumbing (both None unless the config enables them).
        self.chaos: Optional[ChaosInjector] = None
        self.monitor: Optional[InvariantMonitor] = None
        if self.config.chaos is not None and self.config.chaos.points:
            self.chaos = ChaosInjector(self.config.chaos)
            self.chaos.attach(self.kernel, engine=self.engine,
                              hypervisor=self.hypervisor)
        if self.config.check_invariants:
            self.monitor = InvariantMonitor(self.kernel, self.hypervisor,
                                            sd=self.sd)
            self.monitor.install(cadence=self.config.invariant_cadence)

    def run(self, max_instructions: int = 200_000_000) -> "AikidoSystem":
        """Execute the workload to completion; returns self for chaining."""
        self.kernel.run(max_instructions=max_instructions)
        self.sd.on_run_end()
        if self.monitor is not None:
            # Final sweep: quiescent state must satisfy every invariant.
            self.monitor.check_all()
            self.sd.stats.invariant_checks = self.monitor.checks_run
        if self.chaos is not None:
            # The injector is the single source of truth for these two
            # counters: layers report via ChaosInjector.note_recovered,
            # never by advancing the stats directly. A nonzero value here
            # would mean some layer double-counted — and the copy below
            # would silently discard it — so it is an error, not a merge.
            if (self.sd.stats.chaos_injections
                    or self.sd.stats.chaos_recovered):
                raise ToolError(
                    "chaos counters advanced outside the injector "
                    f"(injections={self.sd.stats.chaos_injections}, "
                    f"recovered={self.sd.stats.chaos_recovered}); "
                    "report recoveries via ChaosInjector.note_recovered")
            self.sd.stats.chaos_injections = self.chaos.total_delivered
            self.sd.stats.chaos_recovered = self.chaos.total_recovered
        if self.metrics is not None:
            self.metrics.finalize()
        return self

    # ------------------------------------------------------------------
    # result accessors
    # ------------------------------------------------------------------
    @property
    def cycles(self) -> int:
        return self.kernel.counter.total

    @property
    def stats(self):
        return self.sd.stats

    @property
    def run_stats(self):
        return self.engine.stats

    @property
    def hypervisor_stats(self):
        return self.hypervisor.stats

    def metrics_snapshot(self) -> dict:
        """Run-end metrics payload (full stats + exact cycle attribution)."""
        return metrics_snapshot(self.sd.stats, self.kernel.counter)

    def timeline(self) -> list:
        """The metrics timeline ([] unless ``metrics_cadence`` > 0)."""
        return self.metrics.timeline() if self.metrics is not None else []
