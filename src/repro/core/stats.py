"""AikidoSD statistics (the raw material of the paper's Table 2)."""

from __future__ import annotations


class AikidoStats:
    """Counters maintained by the sharing detector."""

    def __init__(self):
        #: Aikido faults handled by the SD (mirrors the hypervisor's
        #: delivered-segfault count, which is Table 2 column 4).
        self.faults_handled = 0
        self.private_transitions = 0
        self.shared_transitions = 0
        #: Static instructions upgraded to instrumented *dynamically*
        #: (fault-discovered; statically seeded ones count separately).
        self.instructions_instrumented = 0
        #: Code-cache blocks flushed for re-JIT.
        self.rejit_flushes = 0
        #: Direct instructions patched to their mirror address at block
        #: build (each rebuild of an instrumented block re-patches).
        self.direct_patches = 0
        #: Fig. 4 runtime hooks installed on indirect instructions at
        #: block build (same multiplicity as direct_patches).
        self.indirect_hooks = 0
        #: --static-prepass: instructions seeded as PROVABLY_SHARED.
        self.prepass_seeded = 0
        #: --static-prepass: instructions proved PROVABLY_PRIVATE
        #: (these arm the soundness tripwire).
        self.prepass_private = 0
        #: --static-prepass: fraction of static memory instructions the
        #: pre-classifier decided (0.0 when the prepass is off).
        self.prepass_coverage = 0.0
        #: Discovery faults that seeding made unnecessary (the seeded
        #: instruction observed its page shared via its hook instead of
        #: faulting into the SD).
        self.prepass_faults_avoided = 0
        #: Re-JIT cache flushes that seeding made unnecessary (the
        #: instruction was already instrumented when discovery would
        #: have upgraded it).
        self.prepass_flushes_avoided = 0
        #: Dynamic accesses that went to shared pages through the Fig. 4
        #: path (Table 2 column 3).
        self.shared_accesses = 0
        #: Dynamic executions of instrumented indirect instructions that
        #: took the private fast path.
        self.private_fastpath = 0
        #: Redundant faults (e.g. a private page's owner re-faulting after
        #: a temporary-unprotection restore).
        self.redundant_faults = 0
        #: Chaos injections delivered during the run (0 without --chaos).
        self.chaos_injections = 0
        #: Delivered injections the stack's recovery paths absorbed.
        self.chaos_recovered = 0
        #: Invariant-monitor sweeps performed (0 without
        #: --check-invariants).
        self.invariant_checks = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)
