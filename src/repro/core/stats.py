"""AikidoSD statistics (the raw material of the paper's Table 2)."""

from __future__ import annotations


class AikidoStats:
    """Counters maintained by the sharing detector."""

    def __init__(self):
        #: Aikido faults handled by the SD (mirrors the hypervisor's
        #: delivered-segfault count, which is Table 2 column 4).
        self.faults_handled = 0
        self.private_transitions = 0
        self.shared_transitions = 0
        #: Static instructions upgraded to instrumented.
        self.instructions_instrumented = 0
        #: Code-cache blocks flushed for re-JIT.
        self.rejit_flushes = 0
        #: Dynamic accesses that went to shared pages through the Fig. 4
        #: path (Table 2 column 3).
        self.shared_accesses = 0
        #: Dynamic executions of instrumented indirect instructions that
        #: took the private fast path.
        self.private_fastpath = 0
        #: Redundant faults (e.g. a private page's owner re-faulting after
        #: a temporary-unprotection restore).
        self.redundant_faults = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)
