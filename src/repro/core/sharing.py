"""AikidoSD: the sharing detector (paper §3.3).

AikidoSD page-protects the whole application, classifies the resulting
faults through the page state machine, and upgrades instructions to
instrumented as they are discovered touching shared pages:

* **UNUSED page** faults make it PRIVATE to the faulting thread and
  unprotect it *for that thread only* — all of that thread's later
  accesses run at native speed (the design's key goal, §3.3.2);
* a second thread's fault makes the page **SHARED** and globally
  protected; the faulting instruction is instrumented via re-JIT;
* faults on SHARED pages instrument each newly discovered instruction.

Instrumented instructions execute the paper's Fig. 4 sequence: direct
instructions have their effective address patched to the mirror page and
call the analysis unconditionally; indirect instructions get a runtime
shared/private check, redirect shared accesses through the mirror, and
fall through to the original access (native speed, may fault) for private
ones.
"""

from __future__ import annotations

from typing import Optional, Set

from repro import costs
from repro.core.aikidolib import AikidoLib
from repro.core.analysis import SharedDataAnalysis
from repro.core.config import AikidoConfig
from repro.core.mirror import MirrorManager
from repro.core.pagestate import PageState, PageStateTable
from repro.core.stats import AikidoStats
from repro.dbr.codecache import CachedBlock
from repro.dbr.tool import Tool
from repro.errors import ToolError
from repro.events import ForkEvent
from repro.guestos.signals import HandlerResult
from repro.hypervisor.hypercalls import ALL_THREADS, PROT_CLEAR
from repro.machine.paging import PAGE_SHIFT, PROT_NONE
from repro.staticanalysis.analysiscache import analysis_for
from repro.staticanalysis.sharing import SharingClass
from repro.umbra.shadow import ShadowMemory

_MASK64 = 0xFFFFFFFFFFFFFFFF


class SharingDetector(Tool):
    """The AikidoSD tool: sharing detection + instrumentation management."""

    name = "aikido-sd"

    def __init__(self, kernel, hypervisor, analysis: SharedDataAnalysis,
                 config: Optional[AikidoConfig] = None, process=None):
        super().__init__()
        self.kernel = kernel
        self.hypervisor = hypervisor
        self.analysis = analysis
        self.config = config if config is not None else AikidoConfig()
        self.counter = kernel.counter
        #: The Aikido-enabled target process (defaults to the kernel's
        #: primary process; pass explicitly to instrument another one —
        #: several detectors may coexist, one per process).
        self.process = process if process is not None else kernel.process
        self.pagestate = PageStateTable()
        self.stats = AikidoStats()
        self.shadow = ShadowMemory(kernel.counter,
                                   block_size=self.config.block_size)
        self.mirror = MirrorManager(self.process.vm, self.shadow,
                                    enabled=self.config.mirror_pages)
        self.lib = AikidoLib(kernel, hypervisor, process=self.process)
        self.instrumented: Set[int] = set()
        #: --static-prepass state: the classifier's report, the
        #: PROVABLY_PRIVATE uids (soundness tripwire), and the seeded
        #: uids whose avoided discovery has not been credited yet.
        self.prepass_report = None
        self.prepass_private: Set[int] = set()
        self._prepass_pending: Set[int] = set()
        #: --static-elide state: the elision plan handed to the engine
        #: (None when off); see :mod:`repro.staticanalysis.elision`.
        self.elision_plan = None
        #: (cycle-at-fault, vpn, classification) per handled fault —
        #: the raw material for fault-timeline analyses (churny
        #: benchmarks sustain faults for the whole run; static-footprint
        #: ones front-load them).
        self.fault_log: list = []
        self._installed = False
        #: Observability tracer, attached by AikidoSystem (None = off).
        self.tracer = None

    # ------------------------------------------------------------------
    # installation
    # ------------------------------------------------------------------
    def install(self, engine) -> None:
        """Wire the SD into the engine, hypervisor and address space."""
        if self._installed:
            raise ToolError("SharingDetector installed twice")
        self._installed = True
        if self.config.static_prepass:
            self._run_prepass()
        self.lib.initialize()
        self.mirror.attach()
        engine.attach_tool(self)
        engine.register_master_signal_handler()
        engine.fault_router = self._route_fault
        engine.overhead_per_instr = costs.AIKIDO_RESIDENCY_PER_INSTR
        if self.config.static_elide:
            # Compile-time shared-check elision: hand the static plan to
            # the block compiler. Installed at the same point the
            # residency overhead changes, so any closure compiled before
            # install is already stale and recompiles against the plan.
            if not engine.compile_blocks:
                raise ToolError(
                    "static_elide requires the block-compiled tier "
                    "(compile_blocks=True)")
            self.elision_plan = analysis_for(self.process.program).elision
            engine.set_elision_plan(self.elision_plan)
        # Protect everything currently mapped, for every current thread.
        main = self.process.threads[min(self.process.threads)]
        for region in self.process.vm.user_regions():
            self.lib.protect_range(main, ALL_THREADS, region.start,
                                   region.length, PROT_NONE)
        # Future mappings are protected as they appear (mmap/brk
        # interception). The mirror manager's hook ran first (attach
        # order), so the region is mirrored before it is protected.
        self.process.vm.post_map_hooks.append(self._on_new_region)

    def _run_prepass(self) -> None:
        """Seed instrumentation from the static pre-classifier (§tentpole).

        PROVABLY_SHARED instructions enter ``instrumented`` before the
        first block is ever built, so they are hooked at build time —
        the discovery fault, the re-JIT and the cache flush all become
        unnecessary. PROVABLY_PRIVATE instructions must *never* be
        discovered touching a shared page; they arm a tripwire in
        :meth:`_instrument_instruction` instead of changing behavior.
        """
        report = analysis_for(self.process.program).sharing
        self.prepass_report = report
        seeded = report.uids(SharingClass.PROVABLY_SHARED)
        self.instrumented.update(seeded)
        self._prepass_pending = set(seeded)
        self.prepass_private = report.uids(SharingClass.PROVABLY_PRIVATE)
        self.stats.prepass_seeded = len(seeded)
        self.stats.prepass_private = len(self.prepass_private)
        self.stats.prepass_coverage = report.coverage

    # ------------------------------------------------------------------
    # Tool interface
    # ------------------------------------------------------------------
    def instrument_block(self, cached: CachedBlock) -> None:
        """Patch/hook the instrumented instructions of a rebuilt block."""
        if not self.instrumented:
            return
        for pos, instr in enumerate(cached.instrs):
            if instr.uid not in self.instrumented:
                continue
            if instr.mem is None:
                continue
            if instr.mem.base is None:
                if instr.uid in self._prepass_pending:
                    # Statically seeded, never yet seen touching a
                    # shared page: patching now would redirect accesses
                    # to still-private pages through the mirror and
                    # change what the analysis sees. A conditional hook
                    # defers the patch to the first shared observation.
                    self._hook_seeded_direct(cached, pos, instr)
                else:
                    self._patch_direct(cached, pos, instr)
            else:
                self.stats.indirect_hooks += 1
                cached.set_hook(pos, self._indirect_hook)

    def on_sync_event(self, event) -> None:
        # Kernel sync events are global; Aikido instruments exactly one
        # process, so events from other processes are invisible to it
        # (DynamoRIO only wraps the target's threads).
        if not self._event_in_process(event):
            return
        if (event.__class__ is ForkEvent
                and self.config.protect_new_threads):
            self._protect_all_for_thread(event.child_tid)
        self.analysis.on_sync_event(event)

    def _event_in_process(self, event) -> bool:
        threads = self.process.threads
        tid = getattr(event, "tid", None)
        if tid is not None:
            return tid in threads
        parent = getattr(event, "parent_tid", None)
        if parent is not None:
            return parent in threads
        tids = getattr(event, "tids", None)
        if tids is not None:
            return all(t in threads for t in tids)
        return True

    def on_run_end(self) -> None:
        self.analysis.on_run_end()

    # ------------------------------------------------------------------
    # fault routing (called from the DynamoRIO master signal handler)
    # ------------------------------------------------------------------
    def _route_fault(self, thread, info) -> Optional[HandlerResult]:
        if not self.lib.is_aikido_pagefault(info):
            return None
        true_addr, is_write = self.lib.true_fault()
        self._handle_sharing_fault(thread, true_addr, is_write)
        return HandlerResult.RESUME

    def _handle_sharing_fault(self, thread, addr: int,
                              is_write: bool) -> None:
        if self.tracer is None:
            return self._handle_sharing_fault_inner(thread, addr,
                                                    is_write)
        with self.tracer.span("sharing_fault", "aikido_sd",
                              tid=thread.tid, addr=addr,
                              write=is_write):
            return self._handle_sharing_fault_inner(thread, addr,
                                                    is_write)

    def _handle_sharing_fault_inner(self, thread, addr: int,
                                    is_write: bool) -> None:
        self.stats.faults_handled += 1
        self.counter.charge("aikido_sd", costs.SD_FAULT_HANDLER)
        vpn = addr >> PAGE_SHIFT
        state, owner = self.pagestate.state(vpn)
        self.fault_log.append((self.counter.total, vpn,
                               state.value))
        if state is PageState.UNUSED and not self.config.per_thread_protection:
            # Ablation: process-wide protection cannot attribute the
            # fault to a thread, so "touched" must mean "shared".
            self.pagestate.make_shared_direct(vpn)
            self.stats.shared_transitions += 1
            self._note_page_shared(vpn)
            if self.config.mirror_pages:
                self.lib.set_page_protection(thread, ALL_THREADS, vpn, 1,
                                             PROT_NONE)
            else:
                self.lib.set_page_protection(thread, ALL_THREADS, vpn, 1,
                                             PROT_CLEAR)
            self._instrument_instruction(self._faulting_instruction(thread))
            return
        if state is PageState.UNUSED:
            # First scenario of Fig. 3: page becomes ours alone.
            self.pagestate.make_private(vpn, thread.tid)
            self.stats.private_transitions += 1
            self.lib.set_page_protection(thread, thread.tid, vpn, 1,
                                         PROT_CLEAR)
            if self.config.order_first_accesses:
                self.analysis.on_page_first_touch(vpn, thread)
            return
        if state is PageState.PRIVATE and owner == thread.tid:
            # Can happen after a temporary-unprotection restore re-applied
            # a stale PROT_NONE for the owner: simply unprotect again.
            self.stats.redundant_faults += 1
            self.lib.set_page_protection(thread, thread.tid, vpn, 1,
                                         PROT_CLEAR)
            return
        if state is PageState.PRIVATE:
            # Third scenario of Fig. 3: second thread -> page is shared.
            self.pagestate.make_shared(vpn)
            self.stats.shared_transitions += 1
            self._note_page_shared(vpn)
            if self.config.mirror_pages:
                # Globally protect so every new instruction is discovered.
                self.lib.set_page_protection(thread, ALL_THREADS, vpn, 1,
                                             PROT_NONE)
            else:
                # Ablation: give up on discovering further instructions.
                self.lib.set_page_protection(thread, ALL_THREADS, vpn, 1,
                                             PROT_CLEAR)
            if self.config.order_first_accesses:
                self.analysis.on_page_shared(vpn, thread)
            self._instrument_instruction(self._faulting_instruction(thread))
            return
        # SHARED: a new instruction touched a known-shared page.
        if not self.config.mirror_pages:
            # Ablation mode has no mirror to redirect through; the page
            # must be opened up for this thread (e.g. one spawned after
            # the page was shared) or it would fault forever.
            self.lib.set_page_protection(thread, thread.tid, vpn, 1,
                                         PROT_CLEAR)
        self._instrument_instruction(self._faulting_instruction(thread))

    def _note_page_shared(self, vpn: int) -> None:
        """Elision tripwire: retire elided uids whose footprint covers
        the page that just turned SHARED (dropping their compiled
        closures, host-side only), and escalate private-tier hits: with
        per-thread protection a PROVABLY_PRIVATE access's page becoming
        shared means the classifier was wrong. (The process-wide
        ablation shares pages without evidence of a second thread, so —
        like the prepass tripwire — it only retires there.)
        """
        if self.elision_plan is None:
            return
        retired = self.engine.note_page_shared(vpn)
        if not retired or not self.config.per_thread_protection:
            return
        bad = sorted(uid for uid, tier in retired if tier == "private")
        if bad:
            raise ToolError(
                f"static elision unsound: page {vpn:#x} became SHARED "
                f"inside the footprint of provably-private elided "
                f"instruction(s) {bad}")

    # ------------------------------------------------------------------
    # instrumentation management
    # ------------------------------------------------------------------
    def _faulting_instruction(self, thread):
        block = thread.program.blocks[thread.pc[0]]
        instr = block.instructions[thread.pc[1]]
        if instr.mem is None:
            raise ToolError(
                f"Aikido fault at a non-memory instruction: {instr!r}")
        return instr

    def _instrument_instruction(self, instr) -> None:
        if instr.uid in self.instrumented:
            # Already instrumented — including statically seeded
            # instructions reached by a page-transition fault: the
            # fault itself was unavoidable, but the re-JIT flush is.
            self._credit_prepass(instr.uid, fault_avoided=False)
            return
        if (instr.uid in self.prepass_private
                and self.config.per_thread_protection):
            # Soundness tripwire: with real per-thread protection a
            # PROVABLY_PRIVATE instruction can never be discovered
            # touching a shared page. (The process-wide-protection
            # ablation marks pages shared without any second thread, so
            # the invariant intentionally does not hold there.)
            raise ToolError(
                f"static prepass unsound: provably-private instruction "
                f"uid {instr.uid} ({instr!r}) discovered touching a "
                f"shared page")
        if (self.elision_plan is not None
                and self.config.per_thread_protection
                and self.elision_plan.tier(instr.uid) == "private"):
            # Same invariant as the prepass tripwire, for the elision
            # plan's private tier (which exists even without
            # static_prepass).
            raise ToolError(
                f"static elision unsound: provably-private elided "
                f"instruction uid {instr.uid} ({instr!r}) discovered "
                f"touching a shared page")
        self.instrumented.add(instr.uid)
        self.stats.instructions_instrumented += 1
        if self.tracer is not None:
            self.tracer.instant("instrument", "aikido_sd", uid=instr.uid)
        flushed = self.engine.invalidate_instruction(instr.uid)
        self.stats.rejit_flushes += flushed

    def _credit_prepass(self, uid: int, *, fault_avoided: bool) -> None:
        """Record the discovery work one seeded instruction saved.

        Called at most once per seeded uid, on the first event where
        dynamic-only operation would have had to instrument it: either
        its hook observed the page shared with no fault at all
        (``fault_avoided=True``), or a page-state-transition fault it
        caused anyway landed on it (flush avoided, fault not).
        """
        if uid in self._prepass_pending:
            self._prepass_pending.discard(uid)
            if fault_avoided:
                self.stats.prepass_faults_avoided += 1
            self.stats.prepass_flushes_avoided += 1

    def _patch_direct(self, cached: CachedBlock, pos: int, instr) -> None:
        """Rewrite a direct instruction's address and hook the analysis.

        The patched copy accesses the mirror page with zero runtime
        translation cost; the hook reports the access against the
        *original* application address.
        """
        app_addr = instr.mem.disp
        self.stats.direct_patches += 1
        if self.config.mirror_pages:
            instr.mem.disp = self.mirror.mirror_address(app_addr)
        analysis = self.analysis
        stats = self.stats
        counter = self.counter
        tracer = self.tracer
        mirror_cost = (costs.MIRROR_ACCESS_PENALTY
                       if self.config.mirror_pages else 0)

        def direct_hook(thread, _instr, _ea, *, _addr=app_addr):
            if mirror_cost:
                counter.charge("aikido_inline", mirror_cost)
            stats.shared_accesses += 1
            if tracer is not None:
                tracer.instant("shared_access", "tool", tid=thread.tid,
                               addr=_addr, write=_instr.is_write)
            analysis.on_shared_access(thread, _instr, _addr,
                                      _instr.is_write)
            return None  # the patched operand already targets the mirror

        cached.set_hook(pos, direct_hook)

    def _hook_seeded_direct(self, cached: CachedBlock, pos: int,
                            instr) -> None:
        """Conditional hook for a statically seeded *direct* instruction.

        Until its page is dynamically shared, the original access runs
        untouched — first-touch faults and the Fig. 3 state machine are
        preserved exactly (the hook only pays the Fig. 4 status check).
        On the first shared observation the block copy is patched to
        the mirror just as a fault-discovered instruction would be,
        minus the fault and the re-JIT flush.
        """
        counter = self.counter

        def seeded_hook(thread, _instr, ea):
            counter.charge("aikido_inline", costs.SHARED_STATUS_CHECK)
            if not self.pagestate.is_shared(ea >> PAGE_SHIFT):
                # Private/untracked page: native access (it may fault
                # into the SD and drive the page state machine, exactly
                # as if this instruction were not seeded).
                return None
            app_addr = _instr.mem.disp
            self._credit_prepass(_instr.uid, fault_avoided=True)
            # Patch the cached copy in place and swap in the plain
            # reporting hook for every later execution of this copy.
            self._patch_direct(cached, pos, _instr)
            if self.config.mirror_pages:
                counter.charge("aikido_inline",
                               costs.MIRROR_ACCESS_PENALTY)
            self.stats.shared_accesses += 1
            self.analysis.on_shared_access(thread, _instr, app_addr,
                                           _instr.is_write)
            if not self.config.mirror_pages:
                return None
            return self.mirror.mirror_address(app_addr)

        cached.set_hook(pos, seeded_hook)

    def _indirect_hook(self, thread, instr, ea: int) -> Optional[int]:
        """The Fig. 4 runtime sequence for register-indirect instructions.

        Per Fig. 4, the app->shadow translation happens *before* the
        shared/private branch (the page-status word lives in shadow
        memory), so every execution of an instrumented indirect
        instruction pays it — including private fast-path executions.
        """
        self.shadow.translate(thread.tid, ea)
        self.counter.charge("aikido_inline", costs.SHARED_STATUS_CHECK)
        if not self.pagestate.is_shared(ea >> PAGE_SHIFT):
            # Private (or not-yet-tracked) page: run the original access.
            # It executes at native speed, or faults into the SD if this
            # thread has not touched the page before.
            self.stats.private_fastpath += 1
            return None
        if self._prepass_pending:
            self._credit_prepass(instr.uid, fault_avoided=True)
        self.stats.shared_accesses += 1
        if self.tracer is not None:
            self.tracer.instant("shared_access", "tool", tid=thread.tid,
                                addr=ea, write=instr.is_write)
        self.analysis.on_shared_access(thread, instr, ea, instr.is_write)
        if not self.config.mirror_pages:
            return None
        self.counter.charge("aikido_inline", costs.MIRROR_REDIRECT
                            + costs.MIRROR_ACCESS_PENALTY)
        return self.mirror.mirror_address(ea)

    # ------------------------------------------------------------------
    # protection plumbing
    # ------------------------------------------------------------------
    def _on_new_region(self, region) -> None:
        if region.kind not in ("static", "heap", "mmap"):
            return
        thread = self._any_live_thread()
        self.lib.protect_range(thread, ALL_THREADS, region.start,
                               region.length, PROT_NONE)

    def _protect_all_for_thread(self, tid: int) -> None:
        thread = self.process.threads[tid]
        for region in self.process.vm.user_regions():
            self.lib.protect_range(thread, tid, region.start,
                                   region.length, PROT_NONE)

    def _any_live_thread(self):
        for thread in self.process.threads.values():
            if not thread.exited:
                return thread
        raise ToolError("no live thread")

    # ------------------------------------------------------------------
    # self-checks (used by tests; cheap enough to call after any run)
    # ------------------------------------------------------------------
    def verify_invariants(self) -> None:
        """Assert the protection state matches the page-state machine.

        * every SHARED page is globally inaccessible (mirror mode);
        * every PRIVATE page is unrestricted for its owner and
          inaccessible to every other live thread;
        * every instrumented uid names a memory instruction.

        Raises :class:`~repro.errors.ToolError` on any violation —
        silent divergence here is exactly the class of bug that would
        make the analysis quietly unsound.
        """
        from repro.core.pagestate import PageState

        live_tids = [t.tid for t in self.process.threads.values()
                     if not t.exited]
        for vpn in list(self.pagestate._table):
            state, owner = self.pagestate.state(vpn)
            for tid in live_tids:
                ptable = self.hypervisor.protection_tables.get(tid)
                if ptable is None:
                    continue
                restricted = ptable.restricts(vpn, is_write=False) or \
                    ptable.restricts(vpn, is_write=True)
                if state is PageState.SHARED and self.config.mirror_pages:
                    if not ptable.restricts(vpn, is_write=False):
                        raise ToolError(
                            f"shared page {vpn:#x} accessible to t{tid}")
                elif state is PageState.PRIVATE and tid != owner:
                    # (The owner may transiently carry a stale
                    # restriction after a §3.2.6 restore; it self-heals
                    # on its next access, so it is not checked here.)
                    if not restricted:
                        raise ToolError(
                            f"private page {vpn:#x} open to non-owner "
                            f"t{tid}")
        program = self.process.program
        for uid in self.instrumented:
            if not program.instruction_at(uid).is_memory_op:
                raise ToolError(
                    f"instrumented uid {uid} is not a memory instruction")
