"""The shared-data-analysis interface AikidoSD drives.

A *shared data analysis* in the paper's sense is any dynamic analysis that
only needs to observe accesses to shared data (race detection, atomicity
checking, sharing profiling, ...). Under Aikido such an analysis is fed:

* every access an instrumented instruction makes to a shared page,
* every synchronization event,
* page-lifecycle notifications (first touch / became shared) that carry
  the information the §6 ordering workaround needs.

The analysis is responsible for charging its own per-event instrumentation
cycles (clean call + algorithm work) against the run's cycle counter.
"""

from __future__ import annotations


class SharedDataAnalysis:
    """Base class for analyses accelerated by Aikido."""

    name = "analysis"

    def on_shared_access(self, thread, instr, addr: int,
                         is_write: bool) -> None:
        """An instrumented instruction accessed a shared page."""

    def on_sync_event(self, event) -> None:
        """A kernel synchronization event occurred."""

    def on_page_first_touch(self, vpn: int, thread) -> None:
        """Page became PRIVATE(thread). Only called when the §6
        first-access ordering workaround is enabled."""

    def on_page_shared(self, vpn: int, thread) -> None:
        """Page became SHARED; ``thread`` is the second toucher. Only
        called when the §6 first-access ordering workaround is enabled."""

    def on_run_end(self) -> None:
        """The workload finished; flush any buffered reports."""
